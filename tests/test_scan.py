"""Tests for certificates, fingerprints, scanning, and offnet detection."""

import pytest

from repro._util import make_rng
from repro.scan.certificates import (
    Certificate,
    certificate_for_server,
    impostor_certificate,
    infrastructure_certificate,
    onnet_certificate,
)
from repro.scan.detection import detect_offnets, score_detection
from repro.scan.fingerprints import fingerprint_rules
from repro.scan.scanner import ScanConfig, ScanResult, ScanRecord, run_scan


@pytest.fixture(scope="module")
def scan23(small_internet, state23):
    return run_scan(small_internet, state23, seed=2)


@pytest.fixture(scope="module")
def inventory23(small_internet, scan23):
    return detect_offnets(small_internet, scan23)


def server_of(state, hypergiant):
    return next(s for s in state.servers if s.hypergiant == hypergiant)


class TestCertificates:
    def test_google_2021_has_organization(self, state23):
        cert = certificate_for_server(server_of(state23, "Google"), "2021", make_rng(0))
        assert cert.subject_organization == "Google LLC"

    def test_google_2023_dropped_organization(self, state23):
        cert = certificate_for_server(server_of(state23, "Google"), "2023", make_rng(0))
        assert cert.subject_organization is None
        assert cert.subject_common_name == "*.googlevideo.com"

    def test_meta_2021_uses_onnet_name(self, state23):
        cert = certificate_for_server(server_of(state23, "Meta"), "2021", make_rng(0))
        assert cert.subject_common_name == "*.fbcdn.net"

    def test_meta_2023_site_specific_name(self, state23):
        server = server_of(state23, "Meta")
        cert = certificate_for_server(server, "2023", make_rng(0))
        assert cert.subject_common_name.endswith(".fna.fbcdn.net")
        assert cert.subject_common_name != "*.fbcdn.net"
        # The site code embeds the facility's IATA code, like fhan14-4.
        iata = server.facility.city.iata
        assert f"f{iata}" in cert.subject_common_name

    def test_rejects_unknown_epoch(self, state23):
        with pytest.raises(ValueError):
            certificate_for_server(state23.servers[0], "2020", make_rng(0))

    def test_onnet_matches_offnet_naming(self):
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            cert = onnet_certificate(hypergiant)
            assert cert.subject_common_name

    def test_onnet_google_2021_has_org(self):
        assert onnet_certificate("Google", "2021").subject_organization == "Google LLC"

    def test_impostor_is_self_signed(self):
        cert = impostor_certificate("Google", make_rng(0))
        assert cert.self_signed

    def test_all_names_dedup(self):
        cert = Certificate("a.example", None, ("a.example", "b.example"), "CA", "Org")
        assert cert.all_names == ("a.example", "b.example")


class TestFingerprints:
    def test_editions(self):
        assert {r.hypergiant for r in fingerprint_rules("2021")} == {"Google", "Netflix", "Meta", "Akamai"}
        with pytest.raises(ValueError):
            fingerprint_rules("2022")

    def test_2021_google_rule_misses_2023_cert(self, state23):
        cert = certificate_for_server(server_of(state23, "Google"), "2023", make_rng(0))
        rule_2021 = next(r for r in fingerprint_rules("2021") if r.hypergiant == "Google")
        rule_2023 = next(r for r in fingerprint_rules("2023") if r.hypergiant == "Google")
        assert not rule_2021.matches(cert)
        assert rule_2023.matches(cert)

    def test_2021_meta_rule_misses_site_specific_names(self, state23):
        cert = certificate_for_server(server_of(state23, "Meta"), "2023", make_rng(0))
        rule_2021 = next(r for r in fingerprint_rules("2021") if r.hypergiant == "Meta")
        rule_2023 = next(r for r in fingerprint_rules("2023") if r.hypergiant == "Meta")
        assert not rule_2021.matches(cert)
        assert rule_2023.matches(cert)

    def test_netflix_rule_stable_across_epochs(self, state23):
        for epoch in ("2021", "2023"):
            cert = certificate_for_server(server_of(state23, "Netflix"), epoch, make_rng(0))
            for edition in ("2021", "2023"):
                rule = next(r for r in fingerprint_rules(edition) if r.hypergiant == "Netflix")
                assert rule.matches(cert)

    def test_impostors_rejected_by_issuer_check(self):
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            cert = impostor_certificate(hypergiant, make_rng(1))
            for rule in fingerprint_rules("2023"):
                assert not rule.matches(cert)

    def test_infrastructure_certs_never_match(self, small_internet):
        cert = infrastructure_certificate(small_internet.isps[0], 0)
        for edition in ("2021", "2023"):
            for rule in fingerprint_rules(edition):
                assert not rule.matches(cert)

    def test_meta_suffix_does_not_match_lookalike(self):
        lookalike = Certificate(
            "evil-fbcdn.net.example.com", None, (), "DigiCert", "DigiCert Inc"
        )
        rule = next(r for r in fingerprint_rules("2023") if r.hypergiant == "Meta")
        assert not rule.matches(lookalike)


class TestScanner:
    def test_unique_ips(self, scan23):
        ips = [r.ip for r in scan23.records]
        assert len(ips) == len(set(ips))

    def test_epoch_recorded(self, scan23):
        assert scan23.epoch == "2023"

    def test_most_offnets_respond(self, scan23, state23):
        responded = sum(1 for s in state23.servers if scan23.record_at(s.ip) is not None)
        assert responded / len(state23.servers) > 0.95

    def test_some_offnets_missed(self, scan23, state23):
        responded = sum(1 for s in state23.servers if scan23.record_at(s.ip) is not None)
        assert responded < len(state23.servers)

    def test_onnet_servers_present(self, small_internet, scan23):
        google = small_internet.hypergiant_as("Google")
        prefix = small_internet.plan.prefixes_of(google)[0]
        assert scan23.record_at(prefix.base + 1) is not None

    def test_duplicate_record_rejected(self):
        cert = Certificate("a", None, (), "CA", "Org")
        with pytest.raises(ValueError):
            ScanResult(epoch="2023", records=[ScanRecord(1, cert), ScanRecord(1, cert)])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ScanConfig(offnet_nonresponse_rate=1.5)

    def test_scan_deterministic(self, small_internet, state23):
        a = run_scan(small_internet, state23, seed=8)
        b = run_scan(small_internet, state23, seed=8)
        assert [r.ip for r in a.records] == [r.ip for r in b.records]


class TestDetection:
    def test_high_precision_and_recall(self, inventory23, state23):
        score = score_detection(inventory23, state23)
        assert score.precision > 0.999
        assert score.recall > 0.95

    def test_onnets_excluded(self, small_internet, inventory23):
        hypergiant_asns = {a.asn for a in small_internet.hypergiant_ases.values()}
        assert not (inventory23.hosting_isp_asns() & hypergiant_asns)

    def test_detected_isps_match_truth(self, inventory23, state23):
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            truth_asns = {i.asn for i in state23.isps_hosting(hypergiant)}
            detected = inventory23.isp_asns(hypergiant)
            assert detected <= truth_asns
            assert len(detected) >= 0.95 * len(truth_asns)

    def test_2021_rules_on_2023_scan_miss_evaders(self, small_internet, scan23):
        stale = detect_offnets(small_internet, scan23, rules=fingerprint_rules("2021"))
        assert stale.isp_count("Google") == 0
        assert stale.isp_count("Meta") == 0
        assert stale.isp_count("Netflix") > 0
        assert stale.isp_count("Akamai") > 0

    def test_2021_rules_work_on_2021_scan(self, small_internet, history):
        state21 = history.state("2021")
        scan21 = run_scan(small_internet, state21, seed=2)
        inventory = detect_offnets(small_internet, scan21)
        score = score_detection(inventory, state21)
        assert score.precision > 0.999
        assert score.recall > 0.95

    def test_hypergiants_in_isp(self, inventory23):
        asn = next(iter(inventory23.hosting_isp_asns()))
        hypergiants = inventory23.hypergiants_in_isp(asn)
        assert hypergiants == sorted(hypergiants)
        assert hypergiants

    def test_detections_in_isp_sorted(self, inventory23):
        asn = next(iter(inventory23.hosting_isp_asns()))
        detections = inventory23.detections_in_isp(asn)
        assert [d.ip for d in detections] == sorted(d.ip for d in detections)
