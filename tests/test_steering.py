"""Tests for steering policy, DNS authority, embedded URLs, and mapping."""

import pytest

from repro.steering.dns import DnsQuery, SteeringMode, site_hostname
from repro.steering.mapping import MappingConfig, build_authority, run_client_mapping
from repro.steering.policy import ServingSource, build_steering_policy
from repro.steering.urls import EmbeddedUrlFrontend


@pytest.fixture(scope="module")
def policy(small_internet, state23):
    return build_steering_policy(small_internet, state23)


@pytest.fixture(scope="module")
def google_legacy(small_internet, policy):
    return build_authority(small_internet, policy, "Google", SteeringMode.LEGACY_DNS)


@pytest.fixture(scope="module")
def meta_frontend(small_internet, policy):
    return build_authority(small_internet, policy, "Meta", SteeringMode.FRONTEND)


@pytest.fixture(scope="module")
def akamai_allowlist(small_internet, policy):
    return build_authority(
        small_internet, policy, "Akamai", SteeringMode.ECS_ALLOWLIST, allowlisted_resolvers=(99,)
    )


class TestSteeringPolicy:
    def test_hosting_isp_served_locally(self, small_internet, state23, policy):
        isp = state23.isps_hosting("Google")[0]
        decision = policy.decision("Google", isp)
        assert decision.source is ServingSource.LOCAL_OFFNET
        assert decision.deployment is state23.deployment_of("Google", isp)

    def test_non_hosting_isp_uses_provider_or_onnet(self, small_internet, state23, policy):
        hosting = {i.asn for i in state23.isps_hosting("Google")}
        non_hosting = [i for i in small_internet.access_isps if i.asn not in hosting]
        assert non_hosting
        for isp in non_hosting[:20]:
            decision = policy.decision("Google", isp)
            assert decision.source in (ServingSource.PROVIDER_OFFNET, ServingSource.ONNET)
            if decision.source is ServingSource.PROVIDER_OFFNET:
                assert decision.deployment.isp is not isp

    def test_every_access_isp_has_decisions(self, small_internet, policy):
        for isp in small_internet.access_isps:
            for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
                assert (hypergiant, isp.asn) in policy.decisions

    def test_serving_ips_belong_to_deployment(self, state23, policy):
        isp = state23.isps_hosting("Netflix")[0]
        decision = policy.decision("Netflix", isp)
        deployment_ips = {s.ip for s in decision.deployment.servers}
        assert set(decision.serving_ips) == deployment_ips


class TestSiteHostnames:
    def test_meta_convention(self):
        assert site_hostname("Meta", 34, "han") == "fhan15-1.fna.fbcdn.net"

    def test_google_convention(self):
        name = site_hostname("Google", 3, "lhr")
        assert name.endswith(".c.googlevideo.com") and "lhr" in name

    def test_unknown_hypergiant(self):
        with pytest.raises(ValueError):
            site_hostname("Cloudflare", 1, "lhr")


class TestDnsAuthority:
    def test_legacy_dns_honours_ecs(self, small_internet, state23, google_legacy):
        isp = state23.isps_hosting("Google")[0]
        client_ip = small_internet.plan.prefixes_of(isp)[0].base + 700
        response = google_legacy.resolve(
            DnsQuery("www.google.com", resolver_ip=0, ecs_client_ip=client_ip)
        )
        assert response.ecs_used
        truth = {s.ip for s in state23.deployment_of("Google", isp).servers}
        assert set(response.answers) <= truth and response.answers

    def test_frontend_never_reveals_offnets(self, small_internet, state23, meta_frontend):
        isp = state23.isps_hosting("Meta")[0]
        client_ip = small_internet.plan.prefixes_of(isp)[0].base + 700
        response = meta_frontend.resolve(
            DnsQuery("www.facebook.com", resolver_ip=0, ecs_client_ip=client_ip)
        )
        offnets = {s.ip for s in state23.servers}
        assert not (set(response.answers) & offnets)
        assert response.answers  # front ends are returned

    def test_site_hostname_resolves_for_everyone(self, small_internet, state23, meta_frontend):
        isp = state23.isps_hosting("Meta")[0]
        names = meta_frontend.site_hostnames_for(isp)
        assert names
        response_a = meta_frontend.resolve(DnsQuery(names[0], resolver_ip=0))
        response_b = meta_frontend.resolve(DnsQuery(names[0], resolver_ip=12345))
        assert response_a.answers == response_b.answers and response_a.answers

    def test_allowlist_gates_ecs(self, small_internet, state23, akamai_allowlist):
        isp = state23.isps_hosting("Akamai")[0]
        client_ip = small_internet.plan.prefixes_of(isp)[0].base + 700
        gated = akamai_allowlist.resolve(
            DnsQuery("a248.e.akamai.net", resolver_ip=0, ecs_client_ip=client_ip)
        )
        assert not gated.ecs_used
        honoured = akamai_allowlist.resolve(
            DnsQuery("a248.e.akamai.net", resolver_ip=99, ecs_client_ip=client_ip)
        )
        assert honoured.ecs_used
        truth = {s.ip for s in state23.deployment_of("Akamai", isp).servers}
        assert set(honoured.answers) <= truth and honoured.answers

    def test_unknown_name_empty(self, google_legacy):
        assert google_legacy.resolve(DnsQuery("nxdomain.example", resolver_ip=0)).answers == ()


class TestEmbeddedUrls:
    def test_manifest_points_to_true_serving_sites(self, small_internet, state23, meta_frontend):
        isp = state23.isps_hosting("Meta")[0]
        frontend = EmbeddedUrlFrontend(meta_frontend)
        manifest = frontend.fetch_manifest(isp)
        assert manifest.uses_offnet
        ips = frontend.content_ips(isp)
        truth = {s.ip for s in state23.deployment_of("Meta", isp).servers}
        assert set(ips) == truth

    def test_manifest_empty_for_onnet_served_isp(self, small_internet, policy, meta_frontend):
        onnet_isps = [
            isp
            for isp in small_internet.access_isps
            if policy.decision("Meta", isp).source is ServingSource.ONNET
        ]
        if onnet_isps:
            frontend = EmbeddedUrlFrontend(meta_frontend)
            assert not frontend.fetch_manifest(onnet_isps[0]).uses_offnet


class TestClientMapping:
    def test_legacy_dns_fully_mappable(self, small_internet, google_legacy):
        result = run_client_mapping(small_internet, google_legacy, seed=4)
        assert result.coverage > 0.95
        assert result.false_attribution_rate < 0.05

    def test_frontend_unmappable(self, small_internet, meta_frontend):
        result = run_client_mapping(small_internet, meta_frontend, seed=4)
        assert result.coverage == 0.0

    def test_allowlist_mostly_unmappable(self, small_internet, akamai_allowlist):
        result = run_client_mapping(
            small_internet, akamai_allowlist, MappingConfig(open_resolver_fraction=0.3), seed=4
        )
        # Only ISPs with an open resolver leak their mapping.
        assert 0.0 < result.coverage < 0.5

    def test_allowlisted_measurer_recovers_everything(self, small_internet, policy):
        authority = build_authority(
            small_internet, policy, "Akamai", SteeringMode.ECS_ALLOWLIST, allowlisted_resolvers=(0,)
        )
        result = run_client_mapping(
            small_internet, authority, MappingConfig(open_resolver_fraction=0.0), seed=4
        )
        assert result.coverage > 0.95

    def test_no_open_resolvers_no_leak(self, small_internet, akamai_allowlist):
        result = run_client_mapping(
            small_internet, akamai_allowlist, MappingConfig(open_resolver_fraction=0.0), seed=4
        )
        assert result.coverage == 0.0


class TestExperiment:
    def test_blindness_experiment(self, small_study):
        from repro.experiments.steering_blindness import run_steering_blindness

        result = run_steering_blindness(small_study)
        assert result.coverage("Google", "legacy_dns") > 0.95
        assert result.coverage("Google", "frontend") == 0.0
        assert result.coverage("Meta", "frontend") == 0.0
        assert result.coverage("Akamai", "ecs_allowlist") < 0.5
        assert "mapping coverage" in result.render()
