"""Tests for demand, capacity plans, spillover, events, and cascades."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.capacity.cascade import simulate_cascade
from repro.capacity.demand import DemandModel, DiurnalProfile
from repro.capacity.events import (
    DemandSurge,
    Scenario,
    bad_update_scenario,
    covid_scenario,
    facility_outage_scenario,
)
from repro.capacity.links import (
    IXP_PORT_TIERS,
    ProvisioningConfig,
    build_capacity_plan,
    _pick_port_tier,
)
from repro.capacity.spillover import SpilloverModel, _fair_share
from repro.population.users import build_population_dataset


@pytest.fixture(scope="module")
def demand():
    return DemandModel()


@pytest.fixture(scope="module")
def plans(small_internet, state23, demand):
    return build_capacity_plan(small_internet, state23, demand, seed=11)


@pytest.fixture(scope="module")
def model(small_internet, demand, plans):
    return SpilloverModel(small_internet, demand, plans)


@pytest.fixture(scope="module")
def population(small_internet):
    return build_population_dataset(small_internet)


class TestDiurnal:
    def test_peak_normalised(self):
        assert max(DiurnalProfile().hourly) == 1.0

    def test_trough_before_dawn(self):
        profile = DiurnalProfile()
        assert min(profile.hourly) == profile.at(3) or min(profile.hourly) == profile.at(4)

    def test_evening_peak(self):
        profile = DiurnalProfile()
        assert profile.at(20) == 1.0

    def test_wraps_around(self):
        profile = DiurnalProfile()
        assert profile.at(24) == profile.at(0)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly=(1.0,) * 23)


class TestDemand:
    def test_scales_with_users(self, small_internet, demand):
        isps = sorted(small_internet.access_isps, key=lambda i: i.users)
        assert demand.total_peak_gbps(isps[-1]) > demand.total_peak_gbps(isps[0])

    def test_hypergiant_split_by_traffic_share(self, small_internet, demand):
        isp = small_internet.access_isps[0]
        google = demand.hypergiant_peak_gbps(isp, "Google")
        netflix = demand.hypergiant_peak_gbps(isp, "Netflix")
        assert google / netflix == pytest.approx(0.21 / 0.09)

    def test_anecdote_scale(self, small_internet, demand):
        # §2.1: an ISP of ~2M users sees ~tens of Gbps per hypergiant.
        isp = min(small_internet.access_isps, key=lambda i: abs(i.users - 2_000_000))
        peak = demand.hypergiant_peak_gbps(isp, "Google")
        assert 10 < peak < 120

    def test_offnet_eligible_below_total(self, small_internet, demand):
        isp = small_internet.access_isps[0]
        for hour in range(24):
            assert demand.offnet_eligible_gbps(isp, "Google", hour) <= demand.hypergiant_demand_gbps(
                isp, "Google", hour
            )

    def test_background_is_remainder(self, small_internet, demand):
        isp = small_internet.access_isps[0]
        total = demand.total_peak_gbps(isp)
        hypergiant_peak = sum(
            demand.hypergiant_peak_gbps(isp, hg) for hg in ("Google", "Netflix", "Meta", "Akamai")
        )
        assert demand.background_peering_gbps(isp, 20) == pytest.approx(total - hypergiant_peak)


class TestCapacityPlan:
    def test_every_hosting_isp_planned(self, plans, state23):
        assert set(plans) == {i.asn for i in state23.hosting_isps()}

    def test_offnet_sites_match_deployment_facilities(self, plans, state23):
        for asn, plan in plans.items():
            for hypergiant, sites in plan.offnet_sites.items():
                deployment = state23.deployment_of(hypergiant, plan.isp)
                truth = {f.facility_id for f in deployment.facilities}
                assert {s.facility_id for s in sites} == truth

    def test_offnet_capacity_has_headroom(self, plans, demand):
        for plan in list(plans.values())[:30]:
            for hypergiant in plan.offnet_sites:
                capacity = plan.offnet_capacity_gbps(hypergiant)
                expected_peak = demand.offnet_eligible_gbps(plan.isp, hypergiant, 20)
                assert capacity == pytest.approx(expected_peak * 1.2, rel=1e-6)

    def test_pni_only_where_graph_has_pni(self, small_internet, plans):
        for plan in plans.values():
            for hypergiant in plan.pni:
                hg_as = small_internet.hypergiant_as(hypergiant)
                assert small_internet.graph.are_peers(plan.isp, hg_as)
                assert small_internet.graph.peer_edge(plan.isp, hg_as).has_pni

    def test_ixp_port_tiers(self, plans):
        for plan in plans.values():
            if plan.ixp_port is not None:
                assert plan.ixp_port.capacity_gbps in IXP_PORT_TIERS

    def test_pick_port_tier(self):
        assert _pick_port_tier(5) == 10.0
        assert _pick_port_tier(50) == 100.0
        assert _pick_port_tier(10_000) == IXP_PORT_TIERS[-1]

    def test_some_pnis_undersized(self, plans, demand):
        # §4.2.2: a substantial minority of PNIs cannot carry normal peaks.
        ratios = []
        for plan in plans.values():
            for hypergiant, pni in plan.pni.items():
                peak_total = demand.hypergiant_peak_gbps(plan.isp, hypergiant)
                peak_eligible = demand.offnet_eligible_gbps(plan.isp, hypergiant, 20)
                interdomain = peak_total - min(plan.offnet_capacity_gbps(hypergiant), peak_eligible)
                ratios.append(interdomain / pni.capacity_gbps)
        overloaded = sum(1 for r in ratios if r > 1.0) / len(ratios)
        assert 0.1 < overloaded < 0.6

    def test_sites_in_facility(self, plans, state23):
        plan = next(iter(plans.values()))
        hypergiant = next(iter(plan.offnet_sites))
        facility_id = plan.offnet_sites[hypergiant][0].facility_id
        assert plan.offnet_sites[hypergiant][0] in plan.sites_in_facility(facility_id)

    def test_provisioning_validation(self):
        with pytest.raises(ValueError):
            ProvisioningConfig(offnet_headroom=0.0)


class TestFairShare:
    def test_no_congestion_grants_all(self):
        granted, collateral, utilization = _fair_share({"a": 5.0}, 2.0, 10.0)
        assert granted == {"a": 5.0} and collateral == 0.0 and utilization == 0.7

    def test_congestion_throttles_proportionally(self):
        granted, collateral, utilization = _fair_share({"a": 6.0, "b": 6.0}, 8.0, 10.0)
        assert utilization == 2.0
        assert granted["a"] == pytest.approx(3.0)
        assert collateral == pytest.approx(4.0)

    def test_zero_capacity(self):
        granted, collateral, utilization = _fair_share({"a": 1.0}, 1.0, 0.0)
        assert granted["a"] == 0.0 and collateral == 1.0

    @given(
        st.dictionaries(st.sampled_from(["a", "b", "c"]), st.floats(0, 100), min_size=1),
        st.floats(0, 100),
        st.floats(0.1, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_served_never_exceeds_capacity_or_demand(self, wanted, background, capacity):
        granted, collateral, _ = _fair_share(wanted, background, capacity)
        assert sum(granted.values()) + (background - collateral) <= capacity * (1 + 1e-9) or (
            sum(wanted.values()) + background <= capacity
        )
        for name, volume in granted.items():
            assert volume <= wanted[name] * (1 + 1e-9)
        assert 0 <= collateral <= background * (1 + 1e-9)


class TestSpillover:
    def test_flow_conservation(self, model, plans):
        for asn in list(plans)[:20]:
            report = model.report(asn, 20)
            for flow in report.flows.values():
                assert flow.served_gbps <= flow.demand_gbps * (1 + 1e-9)
                assert flow.unserved_gbps >= 0

    def test_offnet_preferred_over_interdomain(self, model, plans, demand):
        for asn in list(plans)[:20]:
            report = model.report(asn, 3)  # overnight trough: no pressure
            for hypergiant, flow in report.flows.items():
                eligible = demand.offnet_eligible_gbps(plans[asn].isp, hypergiant, 3)
                capacity = plans[asn].offnet_capacity_gbps(hypergiant)
                assert flow.offnet_gbps == pytest.approx(min(eligible, capacity))

    def test_surge_multiplier_scales_demand(self, model, plans):
        asn = next(iter(plans))
        base = model.report(asn, 20)
        surged = model.report(asn, 20, {"Netflix": 2.0})
        if "Netflix" in base.flows:
            assert surged.flows["Netflix"].demand_gbps == pytest.approx(
                2 * base.flows["Netflix"].demand_gbps
            )

    def test_utilization_cap_reduces_offnet(self, model, plans):
        asn = next(iter(plans))
        full = model.report(asn, 20, offnet_utilization_cap=1.0)
        capped = model.report(asn, 20, offnet_utilization_cap=0.5)
        assert capped.total_offnet_gbps <= full.total_offnet_gbps

    def test_ixp_stage_requires_ixp_peering(self, small_internet, model, plans):
        for asn in list(plans)[:30]:
            report = model.report(asn, 20)
            for hypergiant, flow in report.flows.items():
                if flow.ixp_gbps > 0:
                    hg_as = small_internet.hypergiant_as(hypergiant)
                    assert small_internet.graph.peer_edge(plans[asn].isp, hg_as).has_ixp

    def test_invalid_cap_rejected(self, model, plans):
        with pytest.raises(ValueError):
            model.report(next(iter(plans)), 0, offnet_utilization_cap=0.0)

    def test_unknown_asn_rejected(self, model):
        with pytest.raises(ValueError):
            model.report(1, 0)


class TestEventsAndCascade:
    def test_facility_outage_zeroes_sites(self, plans, state23):
        facility_id = state23.servers[0].facility.facility_id
        scenario = facility_outage_scenario(facility_id)
        damaged = scenario.apply_to_plans(plans)
        for plan in damaged.values():
            for site in plan.sites_in_facility(facility_id):
                assert site.usable_gbps == 0.0

    def test_outage_leaves_originals_untouched(self, plans, state23):
        facility_id = state23.servers[0].facility.facility_id
        facility_outage_scenario(facility_id).apply_to_plans(plans)
        for plan in plans.values():
            for sites in plan.offnet_sites.values():
                for site in sites:
                    assert site.availability == 1.0

    def test_bad_update_hits_one_hypergiant_only(self, plans):
        scenario = bad_update_scenario("Netflix", failure_fraction=1.0)
        damaged = scenario.apply_to_plans(plans)
        for plan in damaged.values():
            for hypergiant, sites in plan.offnet_sites.items():
                for site in sites:
                    if hypergiant == "Netflix":
                        assert site.availability == 0.0
                    else:
                        assert site.availability == 1.0

    def test_surge_multipliers_compose(self):
        scenario = Scenario(
            name="x",
            surges=[
                DemandSurge(1.5, ("Netflix",)),
                DemandSurge(2.0, ("Netflix",), asns=(1,)),
            ],
        )
        assert scenario.demand_multipliers(1)["Netflix"] == pytest.approx(3.0)
        assert scenario.demand_multipliers(2)["Netflix"] == pytest.approx(1.5)

    def test_covid_cascade_shape(self, small_internet, demand, state23, population):
        constrained = build_capacity_plan(
            small_internet, state23, demand, ProvisioningConfig(offnet_headroom=0.62), seed=11
        )
        asns = [i.asn for i in state23.isps_hosting("Netflix")][:25]
        report = simulate_cascade(
            small_internet,
            demand,
            constrained,
            covid_scenario(),
            population,
            asns=asns,
            baseline_utilization_cap=0.9,
        )
        # Offnets bounded below the surge, interdomain grows (the
        # aggregate dilutes across all hypergiants; the Netflix-specific
        # paper numbers are asserted in test_experiments).
        assert report.aggregate_offnet_change() < 0.58
        assert report.aggregate_interdomain_ratio() > 1.0

    def test_facility_outage_cascade_causes_collateral(
        self, small_internet, demand, plans, state23, population
    ):
        facility_hgs = {}
        for server in state23.servers:
            facility_hgs.setdefault(server.facility.facility_id, set()).add(server.hypergiant)
        facility_id = max(facility_hgs, key=lambda f: len(facility_hgs[f]))
        owner_asn = next(
            s.isp.asn for s in state23.servers if s.facility.facility_id == facility_id
        )
        report = simulate_cascade(
            small_internet,
            demand,
            plans,
            facility_outage_scenario(facility_id),
            population,
            asns=[owner_asn],
        )
        outcome = report.outcomes[owner_asn]
        assert outcome.scenario_offnet_gbph < outcome.baseline_offnet_gbph
        assert outcome.interdomain_ratio > 1.0
        assert report.affected_users() > 0

    def test_baseline_scenario_identical_without_events(
        self, small_internet, demand, plans, population
    ):
        empty = Scenario(name="noop")
        asns = sorted(plans)[:5]
        report = simulate_cascade(small_internet, demand, plans, empty, population, asns=asns)
        for outcome in report.outcomes.values():
            assert outcome.offnet_change == pytest.approx(0.0)
            assert outcome.interdomain_ratio == pytest.approx(1.0)
