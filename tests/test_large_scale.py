"""Large-scenario smoke test: the pipeline at 2x default scale.

Guards against quadratic blowups (the pipeline must stay interactive at
1400 access ISPs) and asserts the headline shapes survive the scale-up.
"""

import pytest

from repro.experiments.scenarios import LARGE_SCENARIO, cached_study
from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def large_study():
    return cached_study(LARGE_SCENARIO.name)


class TestLargeScale:
    def test_pipeline_completes(self, large_study):
        assert len(large_study.history.state("2023").servers) > 10_000
        assert len(large_study.campaign.analyzable_isp_asns) > 300

    def test_growth_shape_survives_scale(self, large_study):
        result = run_table1(large_study)
        assert result.growth_ranking() == ["Netflix", "Google", "Meta", "Akamai"]

    def test_detection_quality_at_scale(self, large_study):
        from repro.scan.detection import score_detection

        score = score_detection(
            large_study.latest_inventory, large_study.history.state("2023")
        )
        assert score.precision > 0.999 and score.recall > 0.95

    def test_clusterings_cover_all_analyzable(self, large_study):
        for xi in large_study.config.xis:
            assert set(large_study.clusterings[xi]) == set(
                large_study.campaign.analyzable_isp_asns
            )
