"""repro.eval: scorecards, regress-fail accuracy floors, differential stability.

Covers the tentpole contracts:

* each stage's score matches a direct call to the underlying scorer;
* scoring against an incomplete facility map raises ``KeyError`` naming
  the first missing IP (the ``SiteClustering.label_of`` convention);
* the committed ``benchmarks/BENCH_accuracy.json`` floors hold on a fresh
  small-scenario scorecard, and a deliberately injected misclassification
  trips the gate;
* scorecard JSON is byte-stable across serial/process backends and
  1/2/4 workers (the ``tests/test_parallel_equivalence.py`` discipline).
"""

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.clustering.sites import ClusteringConfig, SiteClustering
from repro.core.pipeline import StudyConfig, run_study
from repro.eval import (
    build_scorecard,
    check_accuracy,
    clustering_truth_labels,
    compare_to_floors,
    derive_floors,
    score_isp_clustering,
)
from repro.parallel import ParallelConfig
from repro.scan.detection import DetectionScore, score_detection
from repro.topology.generator import InternetConfig

BASELINE_PATH = Path(__file__).parent.parent / "benchmarks" / "BENCH_accuracy.json"


@pytest.fixture(scope="module")
def scorecard(small_study):
    """The small scenario scored once per module (the peering stage costs)."""
    return build_scorecard(small_study, scenario="small")


class TestScorecard:
    def test_detection_matches_direct_scoring(self, small_study, scorecard):
        for epoch, inventory in small_study.inventories.items():
            direct = score_detection(inventory, small_study.history.state(epoch))
            assert scorecard.detection[epoch] == direct

    def test_clustering_covers_every_xi_and_isp(self, small_study, scorecard):
        assert set(scorecard.clustering) == set(small_study.config.xis)
        for xi, stage in scorecard.clustering.items():
            assert stage.n_isps == len(small_study.clusterings[xi])
            assert 0.0 <= stage.pooled_rand <= 1.0
            assert 0.0 <= stage.homogeneity <= 1.0
            assert 0.0 <= stage.completeness <= 1.0

    def test_rdns_counts_are_consistent(self, scorecard):
        rdns = scorecard.rdns
        assert rdns.n_servers >= rdns.n_with_ptr >= rdns.n_located
        assert rdns.n_located >= rdns.n_metro_correct >= rdns.n_city_correct
        assert rdns.n_wrong_stale <= rdns.n_located - rdns.n_metro_correct

    def test_f1_is_between_precision_and_recall(self, scorecard):
        for score in (*scorecard.detection.values(), *scorecard.traceroute.values()):
            low, high = sorted((score.precision, score.recall))
            assert low <= score.f1 <= high or (low == 0.0 and score.f1 == 0.0)

    def test_aggregate_is_the_mean_of_stage_headlines(self, scorecard):
        headlines = scorecard.stage_headlines
        assert scorecard.aggregate == pytest.approx(sum(headlines.values()) / len(headlines))
        assert 0.0 < scorecard.aggregate <= 1.0

    def test_flat_metrics_name_every_stage(self, scorecard):
        names = scorecard.flat_metrics()
        for prefix in ("detection.2023.", "clustering.xi=", "rdns.", "traceroute.Google."):
            assert any(name.startswith(prefix) for name in names), prefix
        assert "aggregate" in names

    def test_canonical_json_shape(self, scorecard):
        document = json.loads(scorecard.canonical_json())
        assert document["format"] == "repro-scorecard-v1"
        assert document["scenario"] == "small"
        assert set(document["detection"]) == {"2021", "2023"}
        assert scorecard.canonical_json().endswith("\n")

    def test_study_helper_builds_the_same_scorecard(self, small_study, scorecard):
        assert small_study.scorecard(scenario="small").canonical_json() == (
            scorecard.canonical_json()
        )


class TestTruthLabelErgonomics:
    """Satellite: missing-IP inputs fail loudly, naming the first offender."""

    def _clustering(self):
        return SiteClustering(
            ips=[10, 20, 30], labels=np.array([0, 0, -1]), config=ClusteringConfig(xi=0.5)
        )

    def test_missing_ip_raises_keyerror_naming_it(self):
        with pytest.raises(KeyError, match=r"IP 20 has no ground-truth facility"):
            clustering_truth_labels(self._clustering(), {10: 7, 30: 8})

    def test_first_missing_ip_is_named(self):
        with pytest.raises(KeyError, match=r"IP 10 "):
            clustering_truth_labels(self._clustering(), {})

    def test_complete_map_yields_aligned_labels(self):
        labels = clustering_truth_labels(self._clustering(), {10: 7, 20: 7, 30: 8})
        assert labels.tolist() == [7, 7, 8]

    def test_perfect_clustering_scores_perfectly(self):
        score = score_isp_clustering(1, self._clustering(), {10: 7, 20: 7, 30: 8})
        assert score.rand == 1.0
        assert score.n_pure_clusters == score.n_clusters == 1
        assert score.n_intact_facilities == score.n_multi_ip_facilities == 1

    def test_merged_facilities_lower_the_score(self):
        merged = {10: 7, 20: 8, 30: 9}  # the predicted pair straddles facilities
        score = score_isp_clustering(1, self._clustering(), merged)
        assert score.rand < 1.0
        assert score.n_pure_clusters == 0


@pytest.mark.eval
class TestAccuracyGate:
    def test_committed_baseline_holds_on_a_fresh_scorecard(self, scorecard):
        result = check_accuracy(BASELINE_PATH, scorecard=scorecard)
        assert result.passed, result.render()
        assert "accuracy check passed" in result.render()

    def test_injected_misclassification_trips_the_gate(self, scorecard):
        """Half the 2023 true positives become false positives: the fixture's
        deliberate misclassification must fail the committed floors."""
        honest = scorecard.detection["2023"]
        flipped = honest.true_positives // 2
        corrupted = dataclasses.replace(
            scorecard,
            detection={
                **scorecard.detection,
                "2023": DetectionScore(
                    true_positives=honest.true_positives - flipped,
                    false_positives=honest.false_positives + flipped,
                    false_negatives=honest.false_negatives,
                ),
            },
        )
        result = check_accuracy(BASELINE_PATH, scorecard=corrupted)
        assert not result.passed
        tripped = {check.metric for check in result.regressions}
        assert "detection.2023.precision" in tripped
        assert "REGRESSION" in result.render() and "FAILED" in result.render()

    def test_committed_baseline_documents_evasion_degradation(self):
        document = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        assert document["format"] == "repro-accuracy-v1"
        honest_recall = document["measured"]["detection"]["2023"]["recall"]
        assert len(document["evasion"]) == 3
        for name, degraded in document["evasion"].items():
            assert degraded["detection"]["2023"]["recall"] < honest_recall, name

    def test_floors_sit_below_their_measured_values(self, scorecard):
        floors = derive_floors(scorecard, slack=0.05)
        measured = scorecard.flat_metrics()
        assert floors  # per-stage floors exist
        for metric, floor in floors.items():
            assert floor <= measured[metric]
            assert measured[metric] - floor <= 0.06  # slack + rounding

    def test_vanished_metric_fails_the_check(self, scorecard):
        result = compare_to_floors(
            {"bogus.metric": 0.5}, scorecard, BASELINE_PATH, "small"
        )
        assert not result.passed
        assert "MISSING" in result.render()

    def test_missing_baseline_raises(self, scorecard, tmp_path):
        with pytest.raises(ValueError, match="no accuracy baseline"):
            check_accuracy(tmp_path / "nope.json", scorecard=scorecard)

    def test_malformed_baseline_raises(self, scorecard, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
        with pytest.raises(ValueError, match="not an accuracy baseline"):
            check_accuracy(path, scorecard=scorecard)


def _compact_config(parallel: ParallelConfig) -> StudyConfig:
    """The compact full-pipeline study from tests/test_parallel_equivalence."""
    return StudyConfig(
        internet=InternetConfig(seed=5, n_access_isps=25, n_ixps=8),
        n_vantage_points=10,
        seed=5,
        parallel=parallel,
    )


def _compact_scorecard_json(parallel: ParallelConfig) -> str:
    study = run_study(_compact_config(parallel))
    return build_scorecard(study, scenario="compact", peering_regions=2).canonical_json()


class TestDifferentialScorecard:
    """Satellite: scorecards are byte-stable across backends and workers."""

    @pytest.fixture(scope="class")
    def serial_json(self):
        return _compact_scorecard_json(ParallelConfig())

    def test_serial_rerun_is_byte_identical(self, serial_json):
        assert _compact_scorecard_json(ParallelConfig()) == serial_json

    @pytest.mark.parallel
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_backend_matches_serial(self, serial_json, workers):
        process = _compact_scorecard_json(ParallelConfig(backend="process", workers=workers))
        assert process == serial_json
