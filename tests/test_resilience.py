"""Tests for :mod:`repro.resilience`: retry policy, supervision, budgets.

The executor-level cases drive :func:`repro.parallel.run_sharded` with a
deterministic :class:`~repro.faults.FaultPlan` and assert the supervision
behaviour directly: transient faults are retried to success, exhausted
shards are quarantined into :class:`ShardLoss` sentinels, budgets gate
whether a stage survives its losses, and — the regression that motivated
``ParallelConfig.shard_timeout_s`` — a hung worker cannot stall a study
forever.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.faults import (
    FatalFaultError,
    FaultPlan,
    FaultSpec,
    TransientFaultError,
    WorkerCrashError,
)
from repro.obs import Telemetry
from repro.parallel import ParallelConfig, Shard, ShardPlan, run_sharded
from repro.resilience import (
    CoverageReport,
    ErrorBudget,
    ResilienceConfig,
    RetryPolicy,
    ShardLoss,
    ShardQuarantinedError,
    ShardTimeoutError,
    call_with_retry,
    is_retryable,
    jitter_rng,
)


# Module-level so the process backend can pickle them.
def _sum_shard(shard: Shard, telemetry) -> int:
    return sum(shard.items)


def _slow_shard(shard: Shard, telemetry) -> int:
    time.sleep(30.0)
    return sum(shard.items)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.base_delay_s == 0.0

    def test_validation(self):
        for kwargs in (
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"backoff": 0.5},
            {"jitter": 1.5},
        ):
            with pytest.raises(ValueError):
                RetryPolicy(**kwargs)

    def test_retries_left(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.retries_left(0)
        assert policy.retries_left(1)
        assert not policy.retries_left(2)
        assert not RetryPolicy(max_attempts=1).retries_left(0)

    def test_exponential_backoff_with_ceiling(self):
        policy = RetryPolicy(base_delay_s=1.0, backoff=2.0, max_delay_s=3.0)
        assert policy.delay_s(0) == 1.0
        assert policy.delay_s(1) == 2.0
        assert policy.delay_s(2) == 3.0  # capped
        assert policy.delay_s(10) == 3.0

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.5)
        a = policy.delay_s(1, jitter_rng("stage", 3))
        b = policy.delay_s(1, jitter_rng("stage", 3))
        assert a == b
        assert policy.delay_s(1) <= a <= policy.delay_s(1) * 1.5


class TestClassification:
    def test_retryable_errors(self):
        for error in (
            TransientFaultError("x"),
            WorkerCrashError("x"),
            ShardTimeoutError("x"),
            TimeoutError("x"),
            ConnectionError("x"),
        ):
            assert is_retryable(error)

    def test_fatal_errors(self):
        for error in (FatalFaultError("x"), ValueError("x"), RuntimeError("x")):
            assert not is_retryable(error)


class TestCallWithRetry:
    def test_succeeds_after_transient_failures(self):
        attempts: list[int] = []

        def flaky(attempt: int) -> str:
            attempts.append(attempt)
            if attempt < 2:
                raise TransientFaultError("not yet")
            return "ok"

        assert call_with_retry(flaky, RetryPolicy(max_attempts=3)) == "ok"
        assert attempts == [0, 1, 2]

    def test_exhaustion_raises_last_error(self):
        def always(attempt: int) -> None:
            raise TransientFaultError(f"attempt {attempt}")

        with pytest.raises(TransientFaultError, match="attempt 1"):
            call_with_retry(always, RetryPolicy(max_attempts=2))

    def test_fatal_error_propagates_immediately(self):
        calls: list[int] = []

        def fatal(attempt: int) -> None:
            calls.append(attempt)
            raise FatalFaultError("permanent")

        with pytest.raises(FatalFaultError):
            call_with_retry(fatal, RetryPolicy(max_attempts=5))
        assert calls == [0]

    def test_on_retry_hook_and_sleep(self):
        seen: list[tuple[int, str]] = []
        slept: list[float] = []

        def flaky(attempt: int) -> int:
            if attempt == 0:
                raise TransientFaultError("once")
            return attempt

        result = call_with_retry(
            flaky,
            RetryPolicy(max_attempts=2, base_delay_s=0.25),
            on_retry=lambda attempt, error: seen.append((attempt, type(error).__name__)),
            sleep=slept.append,
        )
        assert result == 1
        assert seen == [(0, "TransientFaultError")]
        assert slept == [0.25]


class TestErrorBudget:
    def test_zero_budget_rejects_any_loss(self):
        budget = ErrorBudget()
        assert budget.allows(0, 10)
        assert not budget.allows(1, 10)

    def test_fractional_budget(self):
        budget = ErrorBudget(shard_loss_fraction=0.2)
        assert budget.allows(2, 10)
        assert not budget.allows(3, 10)
        assert not budget.allows(1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorBudget(shard_loss_fraction=1.5)


class TestCoverageReport:
    def test_accumulates_and_totals(self):
        report = CoverageReport()
        report.record("mlab.pings", 3, 100)
        report.record("mlab.pings", 2, 50)
        report.record("scan.records", 0, 10)
        assert report.entries["mlab.pings"] == (5, 150)
        assert report.lost("mlab.pings") == 5
        assert report.total("mlab.pings") == 150
        assert report.fraction_lost("mlab.pings") == pytest.approx(5 / 150)
        assert not report.complete

    def test_shards_lost_counts_only_shard_sites(self):
        report = CoverageReport()
        report.record("mlab.pings", 7, 100)
        assert report.shards_lost == 0
        report.record("campaign.shards", 2, 10)
        report.record("clustering.shards", 1, 5)
        assert report.shards_lost == 3

    def test_json_round_trip(self):
        report = CoverageReport()
        report.record("rdns.lookups", 1, 9)
        clone = CoverageReport.from_json(report.to_json())
        assert clone.entries == report.entries

    def test_render_mentions_verdict(self):
        report = CoverageReport()
        report.record("scan.records", 0, 10)
        assert "complete" in report.render()
        report.record("scan.records", 1, 0)
        assert "DEGRADED" in report.render()


def _plan(n: int = 12, chunk: int = 3) -> ShardPlan:
    return ShardPlan.of(list(range(n)), chunk_size=chunk)


class TestSerialSupervision:
    def test_transient_fault_is_retried_to_success(self):
        faults = FaultPlan(
            seed=1,
            specs=(FaultSpec(site="parallel.shard", kind="error", rate=1.0, fail_attempts=1),),
        )
        telemetry = Telemetry.capture()
        results = run_sharded(
            _sum_shard,
            _plan(),
            telemetry=telemetry,
            faults=faults,
            resilience=ResilienceConfig(),
        )
        assert results == [sum(s.items) for s in _plan().shards()]
        assert telemetry.metrics.counter("resilience.retries") == 4

    def test_without_resilience_the_fault_propagates(self):
        faults = FaultPlan(
            seed=1, specs=(FaultSpec(site="parallel.shard", kind="error", rate=1.0),)
        )
        with pytest.raises(TransientFaultError):
            run_sharded(_sum_shard, _plan(), faults=faults)

    def test_permanent_fault_exhausts_and_quarantines(self):
        faults = FaultPlan(
            seed=1, specs=(FaultSpec(site="parallel.shard", kind="crash", rate=1.0),)
        )
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2), budget=ErrorBudget(shard_loss_fraction=1.0)
        )
        telemetry = Telemetry.capture()
        results = run_sharded(
            _sum_shard, _plan(), telemetry=telemetry, faults=faults, resilience=resilience
        )
        assert all(isinstance(result, ShardLoss) for result in results)
        assert results[0].attempts == 2
        assert "WorkerCrashError" in results[0].error
        assert telemetry.metrics.counter("resilience.quarantined_shards") == 4

    def test_budget_zero_aborts_on_any_loss(self):
        faults = FaultPlan(
            seed=1, specs=(FaultSpec(site="parallel.shard", kind="error", rate=1.0, fatal=True),)
        )
        with pytest.raises(ShardQuarantinedError, match="over its error budget"):
            run_sharded(_sum_shard, _plan(), faults=faults, resilience=ResilienceConfig())

    def test_stage_alias_targets_one_label_only(self):
        faults = FaultPlan(
            seed=1, specs=(FaultSpec(site="campaign.shard", kind="error", rate=1.0, fatal=True),)
        )
        # The clustering label never consults campaign.shard: no faults.
        assert run_sharded(_sum_shard, _plan(), label="clustering", faults=faults) == [
            sum(s.items) for s in _plan().shards()
        ]
        with pytest.raises(FatalFaultError):
            run_sharded(_sum_shard, _plan(), label="campaign", faults=faults)

    def test_serial_hang_respects_timeout_emulation(self):
        faults = FaultPlan(
            seed=1,
            specs=(FaultSpec(site="parallel.shard", kind="hang", rate=1.0, hang_s=60.0),),
        )
        config = ParallelConfig(shard_timeout_s=0.2)
        start = time.monotonic()
        with pytest.raises(ShardTimeoutError):
            run_sharded(_sum_shard, _plan(), config, faults=faults)
        # The serial emulation raises instead of actually sleeping 60s.
        assert time.monotonic() - start < 5.0

    def test_disabled_injection_is_inert(self):
        plain = run_sharded(_sum_shard, _plan())
        supervised = run_sharded(_sum_shard, _plan(), resilience=ResilienceConfig())
        assert plain == supervised == [sum(s.items) for s in _plan().shards()]


@pytest.mark.parallel
class TestProcessSupervision:
    CONFIG = ParallelConfig(backend="process", workers=2)

    def test_worker_crash_is_requeued_to_success(self):
        faults = FaultPlan(
            seed=3,
            specs=(FaultSpec(site="parallel.shard", kind="crash", rate=0.6, fail_attempts=1),),
        )
        telemetry = Telemetry.capture()
        results = run_sharded(
            _sum_shard,
            _plan(),
            self.CONFIG,
            telemetry=telemetry,
            faults=faults,
            resilience=ResilienceConfig(),
        )
        assert results == [sum(s.items) for s in _plan().shards()]
        assert telemetry.metrics.counter("resilience.worker_crashes") >= 1

    def test_process_results_match_serial_under_faults(self):
        faults = FaultPlan(
            seed=5,
            specs=(FaultSpec(site="parallel.shard", kind="error", rate=0.5, fail_attempts=1),),
        )
        resilience = ResilienceConfig()
        serial = run_sharded(_sum_shard, _plan(), faults=faults, resilience=resilience)
        process = run_sharded(
            _sum_shard, _plan(), self.CONFIG, faults=faults, resilience=resilience
        )
        assert serial == process

    def test_hung_worker_cannot_stall_the_stage(self):
        """Satellite regression: a shard that hangs is detected by the
        per-shard timeout, its pool is abandoned, and the stage completes
        via requeue/fallback instead of blocking forever."""
        faults = FaultPlan(
            seed=7,
            specs=(
                FaultSpec(site="parallel.shard", kind="hang", rate=0.4, hang_s=120.0, fail_attempts=1),
            ),
        )
        config = ParallelConfig(backend="process", workers=2, shard_timeout_s=1.0)
        telemetry = Telemetry.capture()
        start = time.monotonic()
        results = run_sharded(
            _sum_shard,
            _plan(8, 2),
            config,
            telemetry=telemetry,
            faults=faults,
            resilience=ResilienceConfig(),
        )
        elapsed = time.monotonic() - start
        assert results == [sum(s.items) for s in _plan(8, 2).shards()]
        assert elapsed < 60.0  # far below the 120s injected hang
        assert telemetry.metrics.counter("resilience.timeouts") >= 1

    def test_genuinely_hung_task_times_out_via_fallback_quarantine(self):
        """A task that hangs for real (no fault plan) is caught by the
        timeout and quarantined once its attempts and the in-process
        fallback are exhausted — the study-level stall guard."""
        config = ParallelConfig(backend="process", workers=1, shard_timeout_s=0.5)
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1),
            fallback_in_process=False,
            budget=ErrorBudget(shard_loss_fraction=1.0),
        )
        start = time.monotonic()
        results = run_sharded(
            _slow_shard, ShardPlan.of([1, 2], chunk_size=2), config, resilience=resilience
        )
        assert time.monotonic() - start < 20.0
        assert len(results) == 1 and isinstance(results[0], ShardLoss)
