"""Tests for the facility-uplink flash-crowd model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.capacity.flashcrowd import (
    FacilityUplink,
    FlashCrowdEvent,
    colocated_vs_dispersed,
    simulate_flash_crowd,
)


@pytest.fixture()
def event():
    return FlashCrowdEvent("Netflix", peak_multiplier=4.0, ramp_minutes=5, plateau_minutes=10, decay_minutes=10)


@pytest.fixture()
def facility():
    return FacilityUplink(
        capacity_gbps=130.0,
        steady_demand_gbps={"Google": 40.0, "Netflix": 30.0, "Meta": 30.0},
    )


class TestEventProfile:
    def test_ramp_reaches_peak(self, event):
        assert event.multiplier_at(event.ramp_minutes - 1) == pytest.approx(4.0)

    def test_plateau_holds(self, event):
        assert event.multiplier_at(event.ramp_minutes + 3) == 4.0

    def test_decays_back_to_one(self, event):
        assert event.multiplier_at(event.duration_minutes - 1) == pytest.approx(1.0, abs=0.31)
        assert event.multiplier_at(event.duration_minutes + 5) == 1.0

    def test_outside_event_is_one(self, event):
        assert event.multiplier_at(-1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdEvent("X", peak_multiplier=0.0)


class TestSimulation:
    def test_no_loss_below_capacity(self, facility):
        quiet = FlashCrowdEvent("Netflix", peak_multiplier=1.0)
        outcome = simulate_flash_crowd(facility, quiet)
        for name in facility.steady_demand_gbps:
            np.testing.assert_allclose(outcome.served[name], outcome.offered[name])

    def test_surge_throttles_bystanders(self, facility, event):
        outcome = simulate_flash_crowd(facility, event)
        assert outcome.peak_utilization > 1.0
        for bystander in ("Google", "Meta"):
            assert outcome.bystander_loss_fraction(bystander) > 0.0
            assert outcome.degraded_minutes(bystander) > 0

    def test_served_never_exceeds_offered_or_capacity(self, facility, event):
        outcome = simulate_flash_crowd(facility, event)
        total_served = sum(outcome.served.values())
        assert (total_served <= facility.capacity_gbps + 1e-9).all()
        for name in facility.steady_demand_gbps:
            assert (outcome.served[name] <= outcome.offered[name] + 1e-9).all()

    def test_target_must_be_hosted(self, facility):
        with pytest.raises(ValueError):
            simulate_flash_crowd(facility, FlashCrowdEvent("Akamai", 2.0))

    def test_bystander_query_rejects_target(self, facility, event):
        outcome = simulate_flash_crowd(facility, event)
        with pytest.raises(ValueError):
            outcome.bystander_loss_fraction("Netflix")

    @given(st.floats(1.0, 10.0), st.floats(1.05, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_property_bigger_surges_hurt_bystanders_more(self, small_peak, extra):
        steady = {"A": 50.0, "B": 50.0}
        uplink = FacilityUplink(capacity_gbps=120.0, steady_demand_gbps=steady)
        low = simulate_flash_crowd(uplink, FlashCrowdEvent("A", small_peak))
        high = simulate_flash_crowd(uplink, FlashCrowdEvent("A", small_peak * extra))
        assert high.bystander_loss_fraction("B") >= low.bystander_loss_fraction("B") - 1e-9


class TestColocatedVsDispersed:
    def test_dispersal_protects_bystanders(self, event):
        steady = {"Google": 40.0, "Netflix": 30.0, "Meta": 30.0}
        colocated, dispersed = colocated_vs_dispersed(steady, event)
        for bystander in ("Google", "Meta"):
            assert colocated.bystander_loss_fraction(bystander) > 0.0
            # Dispersed: the bystander's own uplink never saturates.
            own = dispersed[bystander]
            np.testing.assert_allclose(own.served[bystander], own.offered[bystander])

    def test_target_still_throttled_when_dispersed(self, event):
        steady = {"Google": 40.0, "Netflix": 30.0, "Meta": 30.0}
        _, dispersed = colocated_vs_dispersed(steady, event, headroom=1.3)
        target = dispersed["Netflix"]
        assert target.degraded_minutes("Netflix") > 0
