"""Kill-and-resume guarantees for timeline campaigns.

Mirrors ``tests/test_sweep_resume.py`` for the longitudinal engine: kill
a campaign mid-epoch (serial and process backends), resume it against
the same stage store, and (a) only the remaining epochs are computed
(visible through the report's hit/miss provenance and the store status),
(b) the final series report is **byte-identical** to an uninterrupted
campaign's — including the written report file.
"""

import json
from dataclasses import replace

import pytest

from repro.faults import FaultPlan, FaultSpec, WorkerCrashError
from repro.parallel import ParallelConfig, process_backend_available
from repro.resilience import ErrorBudget, ResilienceConfig, RetryPolicy
from repro.store import StageStore
from repro.timeline import TimelineConfig, TimelineSpec, run_timeline, timeline_status
from repro.topology.generator import InternetConfig

pytestmark = [pytest.mark.timeline, pytest.mark.store]

N_EPOCHS = 3


def _config(parallel: ParallelConfig | None = None) -> TimelineConfig:
    return TimelineConfig(
        internet=InternetConfig(seed=5, n_access_isps=30, n_ixps=12),
        spec=TimelineSpec(start="2022Q1", end="2022Q3", seed=3),
        n_vantage_points=20,
        parallel=parallel if parallel is not None else ParallelConfig(),
        seed=7,
    )


def _report_bytes(report) -> bytes:
    return json.dumps(report.to_json(), sort_keys=True).encode()


class _AbortAfter:
    """Serial epoch hook that kills the campaign after ``n`` epochs."""

    def __init__(self, n: int):
        self.n = n
        self.seen = 0

    def __call__(self, result) -> None:
        self.seen += 1
        if self.seen >= self.n:
            raise KeyboardInterrupt("simulated operator abort")


def _resume_roundtrip(parallel: ParallelConfig | None, tmp_path, k: int = 1) -> None:
    config = _config(parallel)

    # Interrupted campaign: only the first k epochs complete.
    store = StageStore(tmp_path / "store")
    partial = run_timeline(config, store=store, max_epochs=k)
    assert partial.cache_misses == k
    assert timeline_status(config, store).n_done == k

    # Resume: the k stored epochs are hits, the rest run exactly once.
    resumed = run_timeline(config, store=store)
    assert resumed.cache_hits == k
    assert resumed.cache_misses == N_EPOCHS - k
    assert timeline_status(config, store).n_pending == 0

    # Replay: everything is durable, nothing recomputes.
    replay = run_timeline(config, store=store)
    assert replay.cache_hits == N_EPOCHS
    assert replay.cache_misses == 0

    # Uninterrupted reference in a pristine store: identical report bytes.
    reference = run_timeline(config, store=StageStore(tmp_path / "fresh-store"))
    assert _report_bytes(resumed) == _report_bytes(reference)
    assert _report_bytes(replay) == _report_bytes(reference)
    resumed_path = resumed.write(tmp_path / "resumed.json")
    reference_path = reference.write(tmp_path / "reference.json")
    assert resumed_path.read_bytes() == reference_path.read_bytes()


class TestResumeSerial:
    def test_interrupt_resume_replay(self, tmp_path):
        _resume_roundtrip(None, tmp_path, k=1)

    def test_abort_mid_campaign_via_hook(self, tmp_path):
        """A hard abort (exception mid-dispatch) still leaves completed
        epochs durable, and the resume recomputes only the remainder."""
        config = _config()
        store = StageStore(tmp_path / "store")
        with pytest.raises(KeyboardInterrupt):
            run_timeline(config, store=store, epoch_hook=_AbortAfter(2))
        assert timeline_status(config, store).n_done == 2

        resumed = run_timeline(config, store=store)
        assert resumed.cache_hits == 2
        assert resumed.cache_misses == 1

        reference = run_timeline(config, store=StageStore(tmp_path / "fresh-store"))
        assert _report_bytes(resumed) == _report_bytes(reference)

    def test_storeless_campaign_never_reports_hits(self, tmp_path):
        report = run_timeline(_config(), store=None)
        assert report.cache_hits == 0
        assert report.cache_misses == N_EPOCHS

    def test_status_without_runs_is_all_pending(self, tmp_path):
        config = _config()
        status = timeline_status(config, StageStore(tmp_path / "store"))
        assert status.n_done == 0
        assert status.n_pending == N_EPOCHS
        assert "pending: 2022Q1" in status.render()


def _crash_plan(n_epochs: int) -> FaultPlan:
    """A plan whose timeline.shard crash spares epoch 0 but kills a later one.

    Searched deterministically over seeds, so the test never depends on a
    magic constant staying lucky across hash changes.
    """
    spec = FaultSpec(site="timeline.shard", kind="crash", rate=0.5)
    for seed in range(200):
        plan = FaultPlan(seed=seed, specs=(spec,))
        fires = [plan.fires_ever("timeline.shard", i) for i in range(n_epochs)]
        if not fires[0] and any(fires[1:]):
            return plan
    raise AssertionError("no seed under 200 produced the wanted fire pattern")


class TestCrashResume:
    def test_worker_crash_mid_campaign_then_clean_resume(self, tmp_path):
        """An epoch's shard crashes mid-campaign (injected via repro.faults,
        no resilience layer), the campaign dies, but every completed epoch
        is durable — and the resumed, fault-free campaign's report is
        byte-identical to an uninterrupted reference."""
        config = _config()
        plan = _crash_plan(N_EPOCHS)
        store = StageStore(tmp_path / "store")
        with pytest.raises(WorkerCrashError):
            run_timeline(replace(config, faults=plan), store=store)
        survived = timeline_status(config, store).n_done
        assert 1 <= survived < N_EPOCHS  # epoch 0 landed, the crash epoch did not

        resumed = run_timeline(config, store=store)
        assert resumed.cache_hits == survived
        assert resumed.cache_misses == N_EPOCHS - survived
        assert resumed.n_lost == 0

        reference = run_timeline(config, store=StageStore(tmp_path / "fresh-store"))
        assert _report_bytes(resumed) == _report_bytes(reference)

    def test_lost_epoch_degrades_then_resume_heals(self, tmp_path):
        """With the resilience layer and a permissive budget, a permanently
        crashing epoch becomes a ``status="lost"`` row instead of killing
        the campaign; lost epochs are never persisted, so a later clean
        run computes them and restores the reference report."""
        config = _config()
        plan = _crash_plan(N_EPOCHS)
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2),
            fallback_in_process=False,
            budget=ErrorBudget(shard_loss_fraction=1.0),
        )
        store = StageStore(tmp_path / "store")
        degraded = run_timeline(
            replace(config, faults=plan, resilience=resilience), store=store
        )
        assert degraded.n_lost >= 1
        assert len(degraded.epochs) == N_EPOCHS
        lost = [epoch for epoch in degraded.epochs if epoch.status == "lost"]
        assert all(epoch.row == {} for epoch in lost)
        assert "LOST" in degraded.render()
        assert timeline_status(config, store).n_done == N_EPOCHS - len(lost)

        healed = run_timeline(config, store=store)
        assert healed.n_lost == 0
        assert healed.cache_misses == len(lost)
        reference = run_timeline(config, store=StageStore(tmp_path / "fresh-store"))
        assert _report_bytes(healed) == _report_bytes(reference)


@pytest.mark.parallel
class TestResumeProcess:
    def test_interrupt_resume_replay(self, tmp_path):
        if not process_backend_available():
            pytest.skip("process executor backend unavailable")
        _resume_roundtrip(ParallelConfig(backend="process", workers=2), tmp_path, k=1)

    def test_serial_and_process_resumes_interchange(self, tmp_path):
        """A store written by a serial run must be readable by a process
        resume (and vice versa): the content address normalises the
        execution backend away."""
        if not process_backend_available():
            pytest.skip("process executor backend unavailable")
        config = _config()
        store = StageStore(tmp_path / "store")
        run_timeline(config, store=store, max_epochs=1)  # serial
        resumed = run_timeline(
            replace(config, parallel=ParallelConfig(backend="process", workers=2)), store=store
        )
        assert resumed.cache_hits == 1
        assert resumed.cache_misses == N_EPOCHS - 1
