"""Tests for the traceroute engine, IXP mapping, and peering inference."""

import pytest

from repro.traceroute.engine import TracerouteConfig, TracerouteEngine
from repro.traceroute.ixp_mapping import build_ixp_address_map
from repro.traceroute.peering import (
    CampaignConfig,
    PeeringEvidence,
    run_peering_campaign,
    score_peering_inference,
)


@pytest.fixture(scope="module")
def engine(small_internet):
    return TracerouteEngine(small_internet, seed=1)


@pytest.fixture(scope="module")
def ixp_map(small_internet):
    return build_ixp_address_map(small_internet, seed=2)


@pytest.fixture(scope="module")
def google_inference(small_internet, state23):
    hosting = state23.isps_hosting("Google")
    return run_peering_campaign(
        small_internet,
        "Google",
        hosting,
        CampaignConfig(n_regions=4, targets_per_isp=2),
        seed=9,
    )


class TestEngine:
    def test_trace_reaches_destination_as(self, small_internet, engine):
        isp = small_internet.access_isps[0]
        destination = small_internet.plan.prefixes_of(isp)[0].base + 7
        path = engine.trace(small_internet.hypergiant_as("Google"), destination)
        assert path.routable
        assert path.hops[-1].true_asn == isp.asn

    def test_hop_true_asns_follow_as_path(self, small_internet, engine):
        google = small_internet.hypergiant_as("Google")
        isp = small_internet.access_isps[3]
        destination = small_internet.plan.prefixes_of(isp)[0].base + 7
        as_path = small_internet.graph.as_path(google, isp)
        path = engine.trace(google, destination)
        seen = []
        for hop in path.hops:
            if not seen or seen[-1] != hop.true_asn:
                seen.append(hop.true_asn)
        assert seen == [a.asn for a in as_path]

    def test_responsive_addresses_owned_by_true_asn(self, small_internet, engine):
        google = small_internet.hypergiant_as("Google")
        ixp_prefixes = [ixp.fabric_prefix for ixp in small_internet.ixps]
        for isp in small_internet.access_isps[:10]:
            destination = small_internet.plan.prefixes_of(isp)[0].base + 7
            path = engine.trace(google, destination)
            for hop in path.hops:
                if hop.address is None:
                    continue
                if any(hop.address in p for p in ixp_prefixes):
                    continue  # fabric addresses belong to the IXP's plan
                owner = small_internet.plan.owner_of(hop.address)
                assert owner is not None and owner.asn == hop.true_asn

    def test_filtered_as_is_all_stars(self, small_internet):
        engine = TracerouteEngine(small_internet, TracerouteConfig(icmp_filter_rate=1.0), seed=1)
        google = small_internet.hypergiant_as("Google")
        isp = small_internet.access_isps[0]
        destination = small_internet.plan.prefixes_of(isp)[0].base + 7
        path = engine.trace(google, destination)
        # Every router hop beyond the (hypergiant, unfiltered) source is a
        # star; the final hop is the destination *host*, which may answer
        # even when the ISP's routers filter ICMP.
        for hop in path.hops[:-1]:
            if hop.true_asn != google.asn:
                assert hop.address is None

    def test_hypergiants_never_filter(self, small_internet, engine):
        for hypergiant in small_internet.hypergiant_ases.values():
            assert not engine.filters_icmp(hypergiant)

    def test_unroutable_destination(self, small_internet, engine):
        path = engine.trace(small_internet.hypergiant_as("Google"), 1)
        assert not path.routable and path.hops == []

    def test_deterministic_per_region(self, small_internet):
        google = small_internet.hypergiant_as("Google")
        isp = small_internet.access_isps[1]
        destination = small_internet.plan.prefixes_of(isp)[0].base + 7
        a = TracerouteEngine(small_internet, seed=5).trace(google, destination, "r1")
        b = TracerouteEngine(small_internet, seed=5).trace(google, destination, "r1")
        assert [h.address for h in a.hops] == [h.address for h in b.hops]


class TestIxpMapping:
    def test_fabric_addresses_recognised(self, small_internet, ixp_map):
        ixp = small_internet.ixps[0]
        member = ixp.members[0]
        assert ixp_map.is_fabric_address(ixp.address_of(member))

    def test_non_fabric_addresses_rejected(self, small_internet, ixp_map):
        isp = small_internet.access_isps[0]
        assert not ixp_map.is_fabric_address(small_internet.plan.prefixes_of(isp)[0].base)

    def test_coverage_below_one_leaves_gaps(self, small_internet):
        sparse = build_ixp_address_map(small_internet, coverage=0.5, seed=3)
        total = sum(len(ixp.members) for ixp in small_internet.ixps)
        assert len(sparse.member_by_address) < total

    def test_full_coverage_maps_everyone(self, small_internet):
        full = build_ixp_address_map(small_internet, coverage=1.0)
        for ixp in small_internet.ixps:
            for member in ixp.members:
                assert full.member_of(ixp.address_of(member)) == member.asn


class TestPeeringInference:
    def test_high_precision(self, small_internet, google_inference):
        score = score_peering_inference(small_internet, "Google", google_inference)
        assert score.precision == 1.0

    def test_decent_recall(self, small_internet, google_inference):
        score = score_peering_inference(small_internet, "Google", google_inference)
        assert score.recall > 0.7

    def test_possible_class_exists(self, google_inference):
        evidence = set(google_inference.evidence.values())
        assert PeeringEvidence.POSSIBLE_PEER in evidence

    def test_counts_sum(self, state23, google_inference):
        hosting = [i.asn for i in state23.isps_hosting("Google")]
        counts = google_inference.counts_for(hosting)
        assert sum(counts.values()) == len(hosting)

    def test_media_sets_subset_of_peers(self, google_inference):
        peers = set(google_inference.peer_asns)
        assert google_inference.seen_via_ixp <= peers | google_inference.seen_via_ixp
        for asn in google_inference.seen_via_ixp | google_inference.seen_via_pni:
            assert google_inference.classify(asn) is PeeringEvidence.PEER

    def test_ixp_fraction_bounds(self, google_inference):
        assert 0.0 <= google_inference.ixp_only_fraction() <= google_inference.ixp_at_least_once_fraction() <= 1.0

    def test_non_peer_isps_not_detected(self, small_internet, state23, google_inference):
        google = small_internet.hypergiant_as("Google")
        for isp in state23.isps_hosting("Google"):
            if google_inference.classify(isp.asn) is PeeringEvidence.PEER:
                assert small_internet.graph.are_peers(isp, google)

    def test_works_from_other_hypergiants(self, small_internet, state23):
        # The simulator can do what the paper could not: run the campaign
        # from Netflix's vantage.
        hosting = state23.isps_hosting("Netflix")[:10]
        inference = run_peering_campaign(
            small_internet, "Netflix", hosting, CampaignConfig(n_regions=2, targets_per_isp=1), seed=3
        )
        score = score_peering_inference(small_internet, "Netflix", inference)
        assert score.precision == 1.0
