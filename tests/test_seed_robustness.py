"""Seed-robustness: the reproduced shapes must not depend on one lucky seed.

Runs compact studies on seeds the calibration never saw and asserts the
paper-shape invariants hold on each.
"""

import pytest

from repro.core.pipeline import StudyConfig, run_study
from repro.experiments.figure2 import run_figure2
from repro.experiments.section41_capacity import run_covid_experiment
from repro.experiments.table1 import run_table1
from repro.topology.generator import InternetConfig


@pytest.fixture(scope="module", params=[101, 202, 303])
def study(request):
    seed = request.param
    return run_study(
        StudyConfig(
            internet=InternetConfig(seed=seed, n_access_isps=70, n_ixps=22),
            n_vantage_points=40,
            seed=seed,
        )
    )


class TestShapeInvariants:
    def test_growth_ordering(self, study):
        result = run_table1(study)
        assert result.growth_ranking() == ["Netflix", "Google", "Meta", "Akamai"]

    def test_footprint_ordering(self, study):
        result = run_table1(study)
        counts = {hg: result.counts[hg]["2023"] for hg in result.counts}
        assert counts["Google"] > counts["Netflix"]
        assert counts["Google"] > counts["Meta"]

    def test_cohosting_majority(self, study):
        inventory = study.latest_inventory
        counts = [len(inventory.hypergiants_in_isp(asn)) for asn in inventory.hosting_isp_asns()]
        assert sum(1 for c in counts if c >= 2) / len(counts) > 0.5

    def test_coverage_gap(self, study):
        result = run_figure2(study)
        assert 0.45 < result.coverage["hosting"] < 0.95
        assert result.coverage["analyzable"] < result.coverage["hosting"]

    def test_quarter_share_facilities(self, study):
        assert run_figure2(study).share25_range()[1] > 0.5

    def test_covid_signature(self, study):
        covid = run_covid_experiment(study, sample=20)
        assert covid.offnet_change < 0.45
        assert covid.interdomain_ratio > 1.8

    def test_detection_quality(self, study):
        from repro.scan.detection import score_detection

        score = score_detection(study.latest_inventory, study.history.state("2023"))
        assert score.precision > 0.999 and score.recall > 0.95
