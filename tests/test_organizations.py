"""Tests for the AS2Org-style organisation layer."""

import pytest

from repro.topology.organizations import (
    OrgDataset,
    Organization,
    build_organizations,
    organization_footprint,
)


@pytest.fixture(scope="module")
def dataset(small_internet):
    # A generous sibling fraction so the small world yields enough members
    # for the statistical checks.
    return build_organizations(small_internet, multi_as_fraction=0.4, seed=5)


class TestDatasetConstruction:
    def test_multi_as_groups_exist(self, dataset):
        assert dataset.multi_as_organizations

    def test_groups_are_same_country(self, small_internet, dataset):
        by_asn = {isp.asn: isp.country_code for isp in small_internet.access_isps}
        for organization in dataset.organizations:
            countries = {by_asn[asn] for asn in organization.asns}
            assert len(countries) == 1

    def test_asn_in_one_org_only(self, dataset):
        seen = set()
        for organization in dataset.organizations:
            for asn in organization.asns:
                assert asn not in seen
                seen.add(asn)

    def test_published_coverage_near_target(self, dataset):
        # Binomial with the small world's member count: allow slack.
        assert 0.85 <= dataset.coverage() <= 1.0

    def test_unmapped_asn_is_singleton(self, dataset):
        assert dataset.org_of(999_999) == "as-999999"
        assert dataset.true_org_of(999_999) == "as-999999"

    def test_published_subset_of_truth(self, dataset):
        for asn, org_id in dataset.published.items():
            assert dataset.true_org_of(asn) == org_id

    def test_duplicate_org_rejected(self):
        org = Organization("o1", "x", (1, 2))
        with pytest.raises(ValueError):
            OrgDataset(organizations=[org, org], published={})

    def test_shared_asn_rejected(self):
        with pytest.raises(ValueError):
            OrgDataset(
                organizations=[Organization("o1", "x", (1,)), Organization("o2", "y", (1,))],
                published={},
            )

    def test_deterministic(self, small_internet):
        a = build_organizations(small_internet, seed=5)
        b = build_organizations(small_internet, seed=5)
        assert [o.asns for o in a.organizations] == [o.asns for o in b.organizations]


class TestFootprintAggregation:
    def test_org_counts_at_most_asn_counts(self, small_study, dataset):
        footprint = organization_footprint(small_study.latest_inventory, dataset)
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            assert footprint.org_counts[hypergiant] <= footprint.asn_counts[hypergiant]

    def test_naive_count_overcounts_when_siblings_host(self, small_study, small_internet):
        # Force heavy sibling structure so overcounting is visible.
        heavy = build_organizations(small_internet, multi_as_fraction=0.6, seed=6)
        footprint = organization_footprint(small_study.latest_inventory, heavy, use_truth=True)
        assert any(
            footprint.overcount_factor(hypergiant) > 1.0
            for hypergiant in ("Google", "Netflix", "Meta", "Akamai")
        )

    def test_published_close_to_truth(self, small_study, dataset):
        published = organization_footprint(small_study.latest_inventory, dataset)
        truth = organization_footprint(small_study.latest_inventory, dataset, use_truth=True)
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            if truth.org_counts[hypergiant]:
                error = abs(
                    published.org_counts[hypergiant] - truth.org_counts[hypergiant]
                ) / truth.org_counts[hypergiant]
                assert error < 0.1

    def test_overcount_factor_unity_without_siblings(self, small_study, small_internet):
        empty = OrgDataset(organizations=[], published={})
        footprint = organization_footprint(small_study.latest_inventory, empty)
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            assert footprint.overcount_factor(hypergiant) == 1.0
