"""Tests for the benchmark-baseline smoke gate (repro.bench)."""

import json

import pytest

from repro.bench import (
    DEFAULT_TOLERANCE,
    MIN_STAGE_MS,
    StageCheck,
    check_bench,
    compare_snapshots,
)


def _snapshot(stages: dict, counters: dict | None = None) -> dict:
    return {
        "bench": "observability-small",
        "format": "repro-bench-v1",
        "schema": "compact-aggregates-v1",
        "stages": {name: {"count": 1, "total_ms": ms} for name, ms in stages.items()},
        "counters": counters or {},
        "gauges": {},
        "histograms": {},
    }


class TestStageCheck:
    def test_ratio_and_ok(self):
        check = StageCheck(name="scan", baseline_ms=100.0, fresh_ms=150.0, tolerance=2.0)
        assert check.ratio == pytest.approx(1.5)
        assert check.ok

    def test_regression(self):
        check = StageCheck(name="scan", baseline_ms=100.0, fresh_ms=300.0, tolerance=2.0)
        assert not check.ok

    def test_skipped_always_passes(self):
        check = StageCheck(
            name="tiny", baseline_ms=1.0, fresh_ms=50.0, tolerance=2.0, skipped=True
        )
        assert check.ok

    def test_zero_baseline(self):
        assert StageCheck(name="x", baseline_ms=0.0, fresh_ms=5.0, tolerance=2.0).ratio == 0.0


class TestCompareSnapshots:
    def test_within_tolerance_passes(self, tmp_path):
        baseline = _snapshot({"scan": 100.0}, {"scan.hosts": 50})
        fresh = _snapshot({"scan": 180.0}, {"scan.hosts": 50})
        result = compare_snapshots(baseline, fresh, tmp_path / "b.json", tolerance=2.0)
        assert result.passed
        assert [c.name for c in result.checks] == ["scan"]

    def test_stage_regression_fails(self, tmp_path):
        baseline = _snapshot({"scan": 100.0, "detect": 100.0})
        fresh = _snapshot({"scan": 500.0, "detect": 100.0})
        result = compare_snapshots(baseline, fresh, tmp_path / "b.json", tolerance=2.0)
        assert not result.passed
        assert [c.name for c in result.regressions] == ["scan"]

    def test_noise_stages_skipped(self, tmp_path):
        baseline = _snapshot({"blink": MIN_STAGE_MS / 2})
        fresh = _snapshot({"blink": 100.0})  # 40x, but under the noise floor
        result = compare_snapshots(baseline, fresh, tmp_path / "b.json")
        assert result.passed
        assert result.checks[0].skipped

    def test_disappeared_stage_is_structural_not_perf(self, tmp_path):
        baseline = _snapshot({"scan": 100.0, "gone": 100.0})
        fresh = _snapshot({"scan": 100.0})
        result = compare_snapshots(baseline, fresh, tmp_path / "b.json")
        assert result.passed
        assert [c.name for c in result.checks] == ["scan"]

    def test_counter_drift_fails(self, tmp_path):
        baseline = _snapshot({"scan": 100.0}, {"filters.ips_kept": 120})
        fresh = _snapshot({"scan": 100.0}, {"filters.ips_kept": 119})
        result = compare_snapshots(baseline, fresh, tmp_path / "b.json")
        assert not result.passed
        assert result.counter_mismatches["filters.ips_kept"] == (120.0, 119.0)

    def test_missing_counter_is_a_drift(self, tmp_path):
        baseline = _snapshot({}, {"filters.ips_kept": 120})
        fresh = _snapshot({}, {})
        result = compare_snapshots(baseline, fresh, tmp_path / "b.json")
        assert "filters.ips_kept" in result.counter_mismatches

    def test_nondeterministic_counters_excluded(self, tmp_path):
        baseline = _snapshot({}, {"resilience.retries": 3})
        fresh = _snapshot({}, {"resilience.retries": 7})
        result = compare_snapshots(baseline, fresh, tmp_path / "b.json")
        assert result.passed

    def test_bad_tolerance_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            compare_snapshots(_snapshot({}), _snapshot({}), tmp_path / "b.json", tolerance=0.5)

    def test_render_verdicts(self, tmp_path):
        baseline = _snapshot({"scan": 100.0, "blink": 1.0}, {"c": 1})
        fresh = _snapshot({"scan": 500.0, "blink": 9.0}, {"c": 2})
        result = compare_snapshots(baseline, fresh, tmp_path / "b.json", tolerance=2.0)
        text = result.render()
        assert "REGRESSION" in text
        assert "skip (noise)" in text
        assert "COUNTER DRIFT c" in text
        assert "bench check FAILED" in text
        good = compare_snapshots(_snapshot({"scan": 10.0}), _snapshot({"scan": 10.0}), tmp_path / "b.json")
        assert "bench check passed" in good.render()


class TestCheckBench:
    def test_missing_baseline_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            check_bench(tmp_path / "nope.json", fresh=_snapshot({}))

    def test_full_dump_baseline_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"bench": "x", "spans": []}), encoding="utf-8")
        with pytest.raises(ValueError, match="compact"):
            check_bench(path, fresh=_snapshot({}))

    def test_injected_fresh_snapshot(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(_snapshot({"scan": 100.0}, {"c": 1})), encoding="utf-8")
        result = check_bench(path, fresh=_snapshot({"scan": 120.0}, {"c": 1}))
        assert result.passed
        assert result.tolerance == DEFAULT_TOLERANCE
