"""Tests for the APNIC-style population dataset."""

import pytest

from repro.population.users import build_population_dataset


@pytest.fixture(scope="module")
def population(small_internet):
    return build_population_dataset(small_internet)


class TestPopulationDataset:
    def test_exact_without_noise(self, small_internet, population):
        for isp in small_internet.access_isps[:20]:
            assert population.users_of(isp.asn) == isp.users

    def test_unknown_asn_zero(self, population):
        assert population.users_of(999_999) == 0

    def test_total_matches_world(self, small_internet, population):
        assert population.total_users == small_internet.world.total_internet_users

    def test_country_fraction_all_isps_is_one(self, small_internet, population):
        asns = {i.asn for i in small_internet.access_isps if i.country_code == "US"}
        assert population.country_fraction("US", asns) == pytest.approx(1.0, abs=0.03)

    def test_country_fraction_empty_set(self, population):
        assert population.country_fraction("US", set()) == 0.0

    def test_country_fraction_unknown_country(self, population):
        assert population.country_fraction("ZZ", {1}) == 0.0

    def test_world_fraction_monotone(self, small_internet, population):
        asns = [i.asn for i in small_internet.access_isps]
        small = population.world_fraction(set(asns[:5]))
        large = population.world_fraction(set(asns[:50]))
        assert large >= small

    def test_noise_perturbs_but_preserves_scale(self, small_internet):
        noisy = build_population_dataset(small_internet, estimation_noise_sigma=0.3, seed=2)
        exact = build_population_dataset(small_internet)
        ratios = [
            noisy.users_of(i.asn) / exact.users_of(i.asn)
            for i in small_internet.access_isps
            if exact.users_of(i.asn) > 0
        ]
        assert any(r != 1.0 for r in ratios)
        assert 0.5 < sum(ratios) / len(ratios) < 2.0

    def test_noise_deterministic(self, small_internet):
        a = build_population_dataset(small_internet, estimation_noise_sigma=0.3, seed=2)
        b = build_population_dataset(small_internet, estimation_noise_sigma=0.3, seed=2)
        assert a.users_by_asn == b.users_by_asn

    def test_rejects_negative_sigma(self, small_internet):
        with pytest.raises(ValueError):
            build_population_dataset(small_internet, estimation_noise_sigma=-0.1)
