"""Adversarial certificate evasion (:mod:`repro.scan.evasion`).

The contract under test: every evasion knob strictly lowers detection
recall and never raises it (the evading set grows monotonically in each
fraction), evasion never adds false positives, and the machinery is
artifact-inert when off — a zeroed :class:`EvasionConfig` produces a scan
byte-identical to no config at all, and honest servers' records are
untouched even when others around them evade.
"""

import pytest

from repro.scan.detection import detect_offnets, score_detection
from repro.scan.evasion import (
    CERTLESS_QUIC,
    EvasionConfig,
    rotating_san_certificate,
    shared_wildcard_certificate,
)
from repro.scan.fingerprints import fingerprint_rules
from repro.scan.scanner import ScanConfig, run_scan

#: One knob per adversarial scenario variant.
KNOBS = ("rotating_san_fraction", "shared_wildcard_fraction", "certless_quic_fraction")


def _scan(internet, state, evasion):
    return run_scan(internet, state, ScanConfig(evasion=evasion), seed=2)


def _score(internet, state, evasion):
    inventory = detect_offnets(internet, _scan(internet, state, evasion))
    return score_detection(inventory, state)


def _detected_ips(internet, state, evasion):
    inventory = detect_offnets(internet, _scan(internet, state, evasion))
    return {d.ip for d in inventory.detections}


class TestRecallMonotonicity:
    @pytest.mark.parametrize("knob", KNOBS)
    def test_each_knob_strictly_lowers_recall(self, small_internet, state23, knob):
        honest = _score(small_internet, state23, None)
        mid = _score(small_internet, state23, EvasionConfig(**{knob: 0.3}))
        high = _score(small_internet, state23, EvasionConfig(**{knob: 0.6}))
        assert mid.recall < honest.recall
        assert high.recall < mid.recall
        # Never *raises* recall, and never manufactures false positives.
        assert mid.precision >= honest.precision
        assert high.precision >= honest.precision
        assert mid.false_positives <= honest.false_positives
        assert high.false_positives <= honest.false_positives

    @pytest.mark.parametrize("knob", KNOBS)
    def test_detected_sets_shrink_monotonically(self, small_internet, state23, knob):
        """Raising a fraction only grows the evading set: detections nest."""
        honest = _detected_ips(small_internet, state23, None)
        mid = _detected_ips(small_internet, state23, EvasionConfig(**{knob: 0.3}))
        high = _detected_ips(small_internet, state23, EvasionConfig(**{knob: 0.6}))
        assert high <= mid <= honest
        assert high < honest  # 60 % of ~500 servers: some must vanish


class TestArtifactInertness:
    def test_zeroed_config_is_byte_identical_to_none(self, small_internet, state23):
        honest = run_scan(small_internet, state23, ScanConfig(), seed=2)
        zeroed = run_scan(small_internet, state23, ScanConfig(evasion=EvasionConfig()), seed=2)
        assert honest.records == zeroed.records

    def test_honest_records_unshifted_under_evasion(self, small_internet, state23):
        """Evasion is applied after the RNG draws: non-evading servers (and
        all noise records) present exactly the certificate they would have
        presented in an honest scan."""
        evasion = EvasionConfig(
            rotating_san_fraction=0.3, shared_wildcard_fraction=0.2, certless_quic_fraction=0.1
        )
        honest = run_scan(small_internet, state23, ScanConfig(), seed=2)
        evaded = run_scan(small_internet, state23, ScanConfig(evasion=evasion), seed=2)
        assert len(evaded.records) < len(honest.records)  # certless endpoints vanished
        for record in evaded.records:
            if evasion.mode_for(record.ip) is None:
                assert record == honest.record_at(record.ip)

    def test_certless_servers_have_no_record(self, small_internet, state23):
        evasion = EvasionConfig(certless_quic_fraction=0.5)
        scan = _scan(small_internet, state23, evasion)
        for server in state23.servers:
            if evasion.mode_for(server.ip) == CERTLESS_QUIC:
                assert scan.record_at(server.ip) is None


class TestEvadedCertificates:
    @pytest.mark.parametrize("edition", ["2021", "2023"])
    def test_shared_wildcard_matches_no_rule(self, edition):
        certificate = shared_wildcard_certificate()
        for rule in fingerprint_rules(edition):
            assert not rule.matches(certificate), rule.hypergiant

    @pytest.mark.parametrize("edition", ["2021", "2023"])
    def test_rotating_san_matches_no_rule(self, state23, edition):
        seen = set()
        for server in state23.servers:
            if server.hypergiant in seen:
                continue
            seen.add(server.hypergiant)
            certificate = rotating_san_certificate(server, seed=0)
            for rule in fingerprint_rules(edition):
                assert not rule.matches(certificate), (server.hypergiant, rule.hypergiant)
        assert len(seen) == 4  # all four hypergiants exercised

    def test_rotating_san_names_rotate_per_server(self, state23):
        a, b = state23.servers[0], state23.servers[1]
        assert (
            rotating_san_certificate(a, seed=0).subject_common_name
            != rotating_san_certificate(b, seed=0).subject_common_name
        )


class TestEvasionConfig:
    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            EvasionConfig(rotating_san_fraction=1.5)

    def test_zeroed_config_is_disabled(self):
        assert not EvasionConfig().enabled
        assert EvasionConfig(certless_quic_fraction=0.1).enabled

    def test_mode_is_deterministic_and_seeded(self):
        config = EvasionConfig(rotating_san_fraction=0.5, seed=3)
        modes = [config.mode_for(ip) for ip in range(1000, 1100)]
        assert modes == [config.mode_for(ip) for ip in range(1000, 1100)]
        reseeded = EvasionConfig(rotating_san_fraction=0.5, seed=4)
        assert modes != [reseeded.mode_for(ip) for ip in range(1000, 1100)]

    def test_certless_takes_precedence(self):
        config = EvasionConfig(
            rotating_san_fraction=1.0, shared_wildcard_fraction=1.0, certless_quic_fraction=1.0
        )
        assert all(config.mode_for(ip) == CERTLESS_QUIC for ip in range(50))
