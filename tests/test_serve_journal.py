"""The serve write-ahead journal and crash recovery (unit level).

Covers the satellite guarantees directly: torn final lines are tolerated
(the signature of a SIGKILLed writer), bit-flipped mid-file entries are
skipped and counted, the ``serve.journal`` fault site injects exactly
those damage shapes, and :func:`repro.serve.recover_state` is a pure,
idempotent fold — recovering twice from the same wreckage yields
identical state.
"""

import json

import pytest

from repro.faults import FaultPlan, FaultSpec, TransientFaultError
from repro.serve import (
    Journal,
    read_journal,
    record_crc,
    recover_state,
    replay_journal,
)

pytestmark = [pytest.mark.serve]


class TestJournalRoundTrip:
    def test_append_then_read(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        assert journal.append("submitted", campaign="abc") == 0
        assert journal.append("started", campaign="abc") == 1
        journal.close()
        view = read_journal(tmp_path / "journal.jsonl")
        assert [entry["event"] for entry in view.entries] == ["submitted", "started"]
        assert view.n_corrupt == 0 and not view.torn_tail
        # crc is verified then stripped from the returned entries.
        assert all("crc" not in entry for entry in view.entries)

    def test_reopen_continues_sequence(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append("submitted", campaign="abc")
        journal.close()
        journal = Journal(tmp_path / "journal.jsonl")
        assert journal.append("started", campaign="abc") == 1
        journal.close()
        seqs = [entry["seq"] for entry in read_journal(tmp_path / "journal.jsonl").entries]
        assert seqs == [0, 1]

    def test_missing_file_reads_empty(self, tmp_path):
        view = read_journal(tmp_path / "nope.jsonl")
        assert view.entries == [] and view.n_corrupt == 0 and not view.torn_tail

    def test_crc_detects_any_field_change(self):
        record = {"seq": 0, "event": "submitted", "campaign": "abc"}
        crc = record_crc(record)
        assert record_crc({**record, "campaign": "abd"}) != crc
        assert record_crc({**record, "seq": 1}) != crc


class TestJournalDamage:
    def _journal(self, tmp_path, n=3):
        journal = Journal(tmp_path / "journal.jsonl")
        for i in range(n):
            journal.append("submitted", campaign=f"c{i}")
        journal.close()
        return tmp_path / "journal.jsonl"

    def test_torn_tail_is_tolerated_not_counted_corrupt(self, tmp_path):
        path = self._journal(tmp_path)
        text = path.read_text()
        lines = text.splitlines()
        # Re-create the exact damage a killed writer leaves: the final
        # record's write was cut short, no trailing newline.
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        view = read_journal(path)
        assert len(view.entries) == 2
        assert view.torn_tail and view.n_corrupt == 0

    def test_bit_flip_mid_file_is_skipped_and_counted(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace("c1", "cX")  # payload no longer matches crc
        path.write_text("\n".join(lines) + "\n")
        view = read_journal(path)
        assert [entry["campaign"] for entry in view.entries] == ["c0", "c2"]
        assert view.n_corrupt == 1 and not view.torn_tail

    def test_reopen_after_torn_tail_keeps_sequence_monotonic(self, tmp_path):
        path = self._journal(tmp_path)
        text = path.read_text()
        path.write_text(text + '{"seq": 99, "ev')  # torn append at the end
        journal = Journal(path)
        seq = journal.append("started", campaign="c0")
        journal.close()
        assert seq == 3  # continues from the last *readable* record


class TestJournalFaults:
    def _plan(self, kind, seed=0, **kw):
        return FaultPlan(
            seed=seed, specs=(FaultSpec(site="serve.journal", kind=kind, rate=0.5, **kw),)
        )

    def test_error_raises_and_writes_nothing(self, tmp_path):
        plan = self._plan("error", fail_attempts=1)
        fire = next(i for i in range(50) if plan.fires_ever("serve.journal", i))
        journal = Journal(tmp_path / "journal.jsonl", faults=plan)
        written = 0
        for i in range(fire + 1):
            if i == fire:
                with pytest.raises(TransientFaultError):
                    journal.append("submitted", campaign=f"c{i}")
            else:
                journal.append("submitted", campaign=f"c{i}")
                written += 1
        journal.close()
        assert len(read_journal(tmp_path / "journal.jsonl").entries) == written

    def test_drop_skips_the_write_silently(self, tmp_path):
        plan = self._plan("drop")
        journal = Journal(tmp_path / "journal.jsonl", faults=plan)
        n = 20
        for i in range(n):
            journal.append("submitted", campaign=f"c{i}")
        journal.close()
        dropped = sum(1 for i in range(n) if plan.fires_ever("serve.journal", i))
        view = read_journal(tmp_path / "journal.jsonl")
        assert 0 < dropped < n
        assert len(view.entries) == n - dropped
        assert view.n_corrupt == 0

    def test_corrupt_writes_a_torn_half_line(self, tmp_path):
        plan = self._plan("corrupt")
        fire = next(i for i in range(50) if plan.fires_ever("serve.journal", i))
        journal = Journal(tmp_path / "journal.jsonl", faults=plan)
        for i in range(fire + 1):
            journal.append("submitted", campaign=f"c{i}")
        journal.close()
        view = read_journal(tmp_path / "journal.jsonl")
        # The torn half-line is the file's tail (no newline followed it).
        assert view.torn_tail
        assert all(entry["campaign"] != f"c{fire}" for entry in view.entries)


def _entries(*records):
    return [dict(record) for record in records]


class TestReplay:
    def test_lifecycle_fold(self):
        campaigns = replay_journal(
            _entries(
                {"seq": 0, "event": "submitted", "campaign": "a", "spec": {"kind": "study"}},
                {"seq": 1, "event": "started", "campaign": "a"},
                {"seq": 2, "event": "finished", "campaign": "a", "status": "DONE", "result_sha256": "x"},
                {"seq": 3, "event": "submitted", "campaign": "b", "spec": {"kind": "sweep"}},
            )
        )
        assert campaigns["a"]["status"] == "DONE"
        assert campaigns["a"]["result_sha256"] == "x"
        assert campaigns["b"]["status"] == "QUEUED"

    def test_first_submission_wins_the_spec(self):
        campaigns = replay_journal(
            _entries(
                {"seq": 0, "event": "submitted", "campaign": "a", "spec": {"kind": "study"}},
                {"seq": 1, "event": "submitted", "campaign": "a", "spec": {"kind": "sweep"}},
            )
        )
        assert campaigns["a"]["spec"] == {"kind": "study"}

    def test_resubmission_requeues_a_lost_campaign(self):
        campaigns = replay_journal(
            _entries(
                {"seq": 0, "event": "submitted", "campaign": "a", "spec": {}},
                {"seq": 1, "event": "started", "campaign": "a"},
                {"seq": 2, "event": "lost", "campaign": "a", "error": "boom"},
                {"seq": 3, "event": "submitted", "campaign": "a", "spec": {}},
            )
        )
        assert campaigns["a"]["status"] == "QUEUED"
        assert campaigns["a"]["error"] is None

    def test_orphaned_transition_is_ignored(self):
        campaigns = replay_journal(_entries({"seq": 0, "event": "started", "campaign": "ghost"}))
        assert campaigns == {}

    def test_drained_goes_back_to_queued(self):
        campaigns = replay_journal(
            _entries(
                {"seq": 0, "event": "submitted", "campaign": "a", "spec": {}},
                {"seq": 1, "event": "started", "campaign": "a"},
                {"seq": 2, "event": "drained", "campaign": "a"},
            )
        )
        assert campaigns["a"]["status"] == "QUEUED"


class TestRecoverState:
    def _write(self, tmp_path, *records):
        journal = Journal(tmp_path / "journal.jsonl")
        for record in records:
            journal.append(record.pop("event"), **record)
        journal.close()
        return tmp_path / "journal.jsonl"

    def test_running_campaign_is_requeued(self, tmp_path):
        path = self._write(
            tmp_path,
            {"event": "submitted", "campaign": "a", "spec": {}},
            {"event": "started", "campaign": "a"},
        )
        state = recover_state(path, tmp_path / "results")
        assert state.campaigns["a"]["status"] == "QUEUED"
        assert state.pending == ["a"] and state.requeued == ["a"]

    def test_finished_with_verified_result_stays_done(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        payload = json.dumps({"report": 1}) + "\n"
        (results / "a.json").write_text(payload)
        import hashlib

        digest = hashlib.sha256(payload.encode()).hexdigest()
        path = self._write(
            tmp_path,
            {"event": "submitted", "campaign": "a", "spec": {}},
            {"event": "started", "campaign": "a"},
            {"event": "finished", "campaign": "a", "status": "DONE", "result_sha256": digest},
        )
        state = recover_state(path, results)
        assert state.campaigns["a"]["status"] == "DONE"
        assert state.pending == [] and state.requeued == []

    def test_finished_with_missing_or_tampered_result_requeues(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "b.json").write_text("{tampered}")
        path = self._write(
            tmp_path,
            {"event": "submitted", "campaign": "a", "spec": {}},
            {"event": "finished", "campaign": "a", "status": "DONE", "result_sha256": "x"},
            {"event": "submitted", "campaign": "b", "spec": {}},
            {"event": "finished", "campaign": "b", "status": "DEGRADED", "result_sha256": "y"},
        )
        state = recover_state(path, results)
        assert state.campaigns["a"]["status"] == "QUEUED"  # file missing
        assert state.campaigns["b"]["status"] == "QUEUED"  # digest mismatch
        assert state.pending == ["a", "b"]

    def test_lost_stays_lost(self, tmp_path):
        path = self._write(
            tmp_path,
            {"event": "submitted", "campaign": "a", "spec": {}},
            {"event": "started", "campaign": "a"},
            {"event": "lost", "campaign": "a", "error": "boom"},
        )
        state = recover_state(path, tmp_path / "results")
        assert state.campaigns["a"]["status"] == "LOST"
        assert state.pending == []

    def test_pending_preserves_submission_order(self, tmp_path):
        path = self._write(
            tmp_path,
            {"event": "submitted", "campaign": "b", "spec": {}},
            {"event": "submitted", "campaign": "a", "spec": {}},
        )
        assert recover_state(path, tmp_path / "results").pending == ["b", "a"]

    def test_double_recovery_is_idempotent(self, tmp_path):
        """Recovery is a pure read: recovering twice — or crashing during
        recovery and recovering again — yields identical state."""
        path = self._write(
            tmp_path,
            {"event": "submitted", "campaign": "a", "spec": {}},
            {"event": "started", "campaign": "a"},
            {"event": "submitted", "campaign": "b", "spec": {}},
            {"event": "finished", "campaign": "b", "status": "DONE", "result_sha256": "x"},
        )
        # Torn tail on top, for good measure.
        with path.open("a") as file:
            file.write('{"seq": 99, "torn')
        first = recover_state(path, tmp_path / "results")
        second = recover_state(path, tmp_path / "results")
        assert first == second
        assert first.torn_tail and first.pending == ["a", "b"]
