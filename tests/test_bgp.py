"""Tests for BGP announcements, route collection, and IP-to-AS mapping."""

import pytest

from repro.bgp.announcements import announced_prefixes
from repro.bgp.collector import CollectorConfig, build_route_collector
from repro.bgp.ip2as import Ip2AsDataset, build_ip2as
from repro.scan.detection import detect_offnets, score_detection
from repro.scan.scanner import run_scan
from repro.topology.prefixes import Prefix


@pytest.fixture(scope="module")
def collector(small_internet):
    return build_route_collector(small_internet, seed=3)


@pytest.fixture(scope="module")
def ip2as(collector):
    return build_ip2as(collector)


class TestAnnouncements:
    def test_every_registered_as_announces(self, small_internet):
        announcements = announced_prefixes(small_internet, moas_rate=0.0)
        origins = {a.origin_asn for a in announcements}
        assert origins == {x.asn for x in small_internet.registry}

    def test_ixp_fabrics_not_announced(self, small_internet):
        announcements = announced_prefixes(small_internet, moas_rate=0.0)
        fabric_bases = {ixp.fabric_prefix.base for ixp in small_internet.ixps}
        assert not any(a.prefix.base in fabric_bases for a in announcements)

    def test_moas_injects_spurious_origins(self, small_internet):
        announcements = announced_prefixes(small_internet, moas_rate=0.5, seed=4)
        assert any(a.spurious for a in announcements)

    def test_no_moas_when_rate_zero(self, small_internet):
        announcements = announced_prefixes(small_internet, moas_rate=0.0)
        assert not any(a.spurious for a in announcements)

    def test_deterministic(self, small_internet):
        a = announced_prefixes(small_internet, seed=9)
        b = announced_prefixes(small_internet, seed=9)
        assert a == b


class TestCollector:
    def test_tier1s_are_peers(self, small_internet, collector):
        from repro.topology.asn import ASRole

        tier1_asns = {a.asn for a in small_internet.registry.with_role(ASRole.TIER1)}
        assert tier1_asns <= {p.asn for p in collector.peers}

    def test_paths_start_at_peer_end_at_origin(self, collector):
        for entry in collector.entries[:200]:
            assert entry.as_path[0] == entry.peer_asn
            assert entry.origin_asn == entry.as_path[-1]

    def test_most_prefixes_visible(self, small_internet, collector):
        announced = {
            (a.prefix.base, a.prefix.length)
            for a in announced_prefixes(small_internet, moas_rate=0.0)
        }
        visible = {(p.base, p.length) for p in collector.visible_prefixes()}
        assert len(visible & announced) / len(announced) > 0.95

    def test_origin_votes(self, collector):
        prefix = collector.visible_prefixes()[0]
        votes = collector.origins_of(prefix)
        assert votes and all(count >= 1 for count in votes.values())


class TestIp2As:
    def test_lookup_matches_plan_mostly(self, small_internet, ip2as):
        hits = total = 0
        for isp in small_internet.isps[:40]:
            prefix = small_internet.plan.prefixes_of(isp)[0]
            total += 1
            if ip2as.lookup(prefix.base + 100) == isp.asn:
                hits += 1
        assert hits / total > 0.9

    def test_unannounced_space_unmapped(self, ip2as):
        assert ip2as.lookup(0) is None

    def test_ixp_fabric_unmapped(self, small_internet, ip2as):
        ixp = small_internet.ixps[0]
        member = ixp.members[0]
        assert ip2as.lookup(ixp.address_of(member)) is None

    def test_moas_conflicts_dropped(self, small_internet):
        # With heavy MOAS and a strict threshold, conflicts appear.
        collector = build_route_collector(
            small_internet, CollectorConfig(moas_rate=0.6), seed=5
        )
        dataset = build_ip2as(collector, vote_threshold=0.95)
        assert dataset.conflicted

    def test_overlapping_mappings_rejected(self):
        with pytest.raises(ValueError):
            Ip2AsDataset(mappings=[(Prefix(0, 24), 1), (Prefix(128, 25), 2)])


class TestDetectionWithBgpIp2As:
    def test_detection_still_precise(self, small_internet, state23, ip2as):
        scan = run_scan(small_internet, state23, seed=2)
        inventory = detect_offnets(small_internet, scan, ip2as=ip2as)
        score = score_detection(inventory, state23)
        assert score.precision > 0.999
        assert score.recall > 0.9

    def test_bgp_attribution_weaker_than_oracle(self, small_internet, state23, ip2as):
        scan = run_scan(small_internet, state23, seed=2)
        oracle = score_detection(detect_offnets(small_internet, scan), state23)
        derived = score_detection(detect_offnets(small_internet, scan, ip2as=ip2as), state23)
        assert derived.recall <= oracle.recall
