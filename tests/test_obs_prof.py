"""Tests for per-stage resource profiling (repro.obs.prof)."""

import pytest

from repro.obs import Telemetry
from repro.obs.prof import (
    StageProfile,
    StageProfiler,
    peak_rss_kb,
    profile_stages,
    record_throughput_gauges,
    render_profile,
)
from repro.obs.trace import Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeRss:
    """A monotone high-water mark, like ru_maxrss."""

    def __init__(self) -> None:
        self.peak_kb = 1000.0

    def __call__(self) -> float:
        return self.peak_kb

    def grow(self, kb: float) -> None:
        self.peak_kb += kb


def _profiled_telemetry() -> tuple[Telemetry, FakeClock, FakeClock, FakeRss]:
    wall = FakeClock()
    cpu = FakeClock()
    rss = FakeRss()
    profiler = StageProfiler(cpu_clock=cpu, rss_reader=rss)
    telemetry = Telemetry(tracer=Tracer(clock=wall, profiler=profiler))
    return telemetry, wall, cpu, rss


class TestStageProfiler:
    def test_span_attributes_from_injected_clocks(self):
        telemetry, wall, cpu, rss = _profiled_telemetry()
        with telemetry.span("stage"):
            wall.advance(2.0)
            cpu.advance(1.5)
            rss.grow(512.0)
        span = telemetry.tracer.find("stage")
        assert span.attributes["cpu_ms"] == pytest.approx(1500.0)
        assert span.attributes["rss_peak_kb"] == pytest.approx(1512.0)
        assert span.attributes["rss_delta_kb"] == pytest.approx(512.0)
        assert "py_delta_kb" not in span.attributes  # tracemalloc off by default

    def test_nested_spans_each_profiled(self):
        telemetry, wall, cpu, rss = _profiled_telemetry()
        with telemetry.span("outer"):
            cpu.advance(1.0)
            with telemetry.span("inner"):
                cpu.advance(0.25)
        assert telemetry.tracer.find("inner").attributes["cpu_ms"] == pytest.approx(250.0)
        assert telemetry.tracer.find("outer").attributes["cpu_ms"] == pytest.approx(1250.0)

    def test_tracemalloc_session_owned_and_closed(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        profiler = StageProfiler(trace_python_alloc=True)
        try:
            assert tracemalloc.is_tracing()
            tracer = Tracer(profiler=profiler)
            with tracer.span("alloc"):
                _ = [0] * 50_000
            attrs = tracer.find("alloc").attributes
            assert "py_delta_kb" in attrs and "py_peak_kb" in attrs
            assert attrs["py_peak_kb"] > 0
        finally:
            profiler.close()
        assert not tracemalloc.is_tracing()
        profiler.close()  # idempotent

    def test_peak_rss_positive_on_posix(self):
        assert peak_rss_kb() > 0


class TestProfileAggregation:
    def _telemetry(self) -> Telemetry:
        telemetry, wall, cpu, rss = _profiled_telemetry()
        with telemetry.span("study"):
            for _ in range(3):
                with telemetry.span("shard") as span:
                    span.set(n_items=100)
                    wall.advance(1.0)
                    cpu.advance(0.5)
        return telemetry

    def test_grouped_by_name_in_recording_order(self):
        profiles = profile_stages(self._telemetry())
        assert [p.name for p in profiles] == ["study", "shard"]
        shard = profiles[1]
        assert shard.count == 3
        assert shard.wall_ms == pytest.approx(3000.0)
        assert shard.cpu_ms == pytest.approx(1500.0)
        assert shard.n_items == 300

    def test_derived_rates(self):
        profile = StageProfile(
            name="x", count=1, wall_ms=2000.0, cpu_ms=1000.0, rss_peak_kb=1.0, n_items=500
        )
        assert profile.cpu_utilization == pytest.approx(0.5)
        assert profile.rows_per_s == pytest.approx(250.0)
        empty = StageProfile(name="y", count=0, wall_ms=0.0, cpu_ms=0.0, rss_peak_kb=0.0, n_items=0)
        assert empty.cpu_utilization == 0.0 and empty.rows_per_s == 0.0

    def test_unprofiled_trace_yields_nothing(self):
        telemetry = Telemetry(tracer=Tracer())
        with telemetry.span("bare"):
            pass
        assert profile_stages(telemetry) == []
        assert "no resource profile" in render_profile(telemetry)

    def test_render_profile_table(self):
        text = render_profile(self._telemetry())
        assert "stage" in text and "cpu util" in text and "rows/s" in text
        assert "shard" in text

    def test_record_throughput_gauges(self):
        telemetry = self._telemetry()
        record_throughput_gauges(telemetry)
        gauges = telemetry.metrics.gauges
        assert gauges["prof.shard.rows_per_s"] == pytest.approx(100.0)
        assert gauges["prof.shard.cpu_utilization"] == pytest.approx(0.5)
        assert "prof.study.cpu_utilization" in gauges
        # The study span recorded no n_items: utilization lands, throughput doesn't.
        assert "prof.study.rows_per_s" not in gauges
