"""Tests for parameter grids and sweep campaigns (``repro.sweep``)."""

import json

import pytest

from repro.core.pipeline import StudyConfig
from repro.sweep import (
    CampaignReport,
    MetricSpec,
    ParameterGrid,
    apply_override,
    campaign_status,
    load_grid,
    run_campaign,
)
from repro.topology.generator import InternetConfig

pytestmark = pytest.mark.store


def _base_config() -> StudyConfig:
    return StudyConfig(
        internet=InternetConfig(seed=3, n_access_isps=40, n_ixps=20),
        n_vantage_points=24,
        seed=3,
    )


# Cheap, picklable metric extractors for campaign tests.
def _n_detections(study) -> float:
    return float(len(study.latest_inventory))


def _n_analyzable(study) -> float:
    return float(len(study.campaign.analyzable_isp_asns))


TEST_METRICS = (
    MetricSpec("detections", _n_detections, 1.0, 1e9, "n/a"),
    MetricSpec("analyzable ISPs", _n_analyzable, 1.0, 1e9, "n/a"),
)


class TestOverrides:
    def test_top_level(self):
        config = apply_override(_base_config(), "seed", 9)
        assert config.seed == 9

    def test_nested(self):
        config = apply_override(_base_config(), "internet.n_access_isps", 55)
        assert config.internet.n_access_isps == 55
        assert config.seed == 3  # untouched

    def test_deeply_nested(self):
        config = apply_override(_base_config(), "campaign.ping.pings_per_target", 4)
        assert config.campaign.ping.pings_per_target == 4

    def test_list_coerced_to_tuple(self):
        config = apply_override(_base_config(), "xis", [0.5])
        assert config.xis == (0.5,)

    def test_unknown_field_names_the_path(self):
        with pytest.raises(ValueError, match="internet.bogus"):
            apply_override(_base_config(), "internet.bogus", 1)


class TestGridExpansion:
    def test_cartesian_product_order(self):
        grid = ParameterGrid.of(
            _base_config(), {"seed": [1, 2], "internet.n_access_isps": [40, 50]}
        )
        assert grid.n_cells == 4
        cells = grid.cells()
        assert [cell.cell_id for cell in cells] == [
            "seed=1,internet.n_access_isps=40",
            "seed=1,internet.n_access_isps=50",
            "seed=2,internet.n_access_isps=40",
            "seed=2,internet.n_access_isps=50",
        ]
        assert cells[2].config.seed == 2
        assert cells[2].config.internet.n_access_isps == 40
        assert [cell.index for cell in cells] == [0, 1, 2, 3]

    def test_linked_axis_sets_every_path(self):
        grid = ParameterGrid.of(_base_config(), {"seed,internet.seed": [5, 6]})
        cells = grid.cells()
        assert all(cell.config.seed == cell.config.internet.seed for cell in cells)
        assert [cell.config.seed for cell in cells] == [5, 6]

    def test_axis_free_grid_is_one_base_cell(self):
        grid = ParameterGrid.of(_base_config(), {})
        cells = grid.cells()
        assert len(cells) == 1
        assert cells[0].cell_id == "base"
        assert cells[0].config == _base_config()

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ParameterGrid.of(_base_config(), {"seed": []})

    def test_expansion_is_deterministic(self):
        grid = ParameterGrid.of(_base_config(), {"seed": [1, 2], "xis": [[0.1], [0.9]]})
        assert [c.cell_id for c in grid.cells()] == [c.cell_id for c in grid.cells()]


class TestSpecFiles:
    def test_json_spec_round_trip(self, tmp_path):
        spec = {
            "scenario": "small",
            "overrides": {"n_vantage_points": 32},
            "axes": {"seed,internet.seed": [1, 2], "xis": [[0.1, 0.9]]},
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        grid = load_grid(path)
        assert grid.n_cells == 2
        cell = grid.cells()[0]
        assert cell.config.n_vantage_points == 32
        assert cell.config.xis == (0.1, 0.9)
        assert cell.config.seed == 1

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown spec keys"):
            ParameterGrid.from_spec({"cells": []})


class TestCampaign:
    @pytest.fixture(scope="class")
    def grid(self):
        return ParameterGrid.of(_base_config(), {"seed,internet.seed": [3, 4]})

    @pytest.fixture(scope="class")
    def report(self, grid) -> CampaignReport:
        return run_campaign(grid, metrics=TEST_METRICS)

    def test_one_result_per_cell(self, grid, report):
        assert [cell.cell_id for cell in report.cells] == [c.cell_id for c in grid.cells()]
        for cell in report.cells:
            assert set(cell.values) == {"detections", "analyzable ISPs"}
            assert not cell.from_store  # no store configured

    def test_series_and_summary(self, report):
        series = report.series("detections")
        assert len(series) == 2 and all(value > 0 for value in series)
        summary = report.summary()
        assert summary["detections"]["min"] <= summary["detections"]["mean"]
        assert summary["detections"]["violations"] == 0
        assert report.all_within_bands

    def test_render_mentions_cells_and_bands(self, report):
        text = report.render()
        assert "seed,internet.seed=3" in text
        assert "violations" in text

    def test_report_json_is_deterministic_and_provenance_free(self, report, tmp_path):
        data = report.to_json()
        assert data["format"] == "repro-sweep-v2"
        assert data["n_cells"] == 2
        text = json.dumps(data, sort_keys=True)
        assert "cache" not in text and "from_store" not in text
        path = report.write(tmp_path / "report.json")
        assert json.loads(path.read_text()) == data

    def test_max_cells_prefix(self, grid):
        partial = run_campaign(grid, metrics=TEST_METRICS, max_cells=1)
        assert len(partial.cells) == 1
        assert partial.cells[0].cell_id == grid.cells()[0].cell_id

    def test_needs_metrics(self, grid):
        with pytest.raises(ValueError, match="metric"):
            run_campaign(grid, metrics=())


class TestStatus:
    def test_status_tracks_store_contents(self, tmp_path):
        from repro.store import StudyStore

        grid = ParameterGrid.of(_base_config(), {"seed,internet.seed": [3, 4]})
        store = StudyStore(tmp_path / "store")
        status = campaign_status(grid, store)
        assert (status.n_cells, status.n_done, status.n_pending) == (2, 0, 2)
        run_campaign(grid, metrics=TEST_METRICS, store=store, max_cells=1)
        status = campaign_status(grid, store)
        assert status.n_done == 1
        assert status.done == (grid.cells()[0].cell_id,)
        assert "pending" in status.render()


class TestSensitivityEquivalence:
    def test_campaign_matches_historic_serial_loop(self):
        """run_sensitivity's campaign must build exactly the configs the old
        per-seed loop did (values proven equal via a direct run_study)."""
        from repro.core.pipeline import run_study
        from repro.sensitivity import sensitivity_grid

        grid = sensitivity_grid((7,), n_access_isps=40, n_vantage_points=24)
        cell = grid.cells()[0]
        assert cell.config.seed == 7
        assert cell.config.internet.seed == 7
        assert cell.config.internet.n_ixps == 22
        report = run_campaign(grid, metrics=TEST_METRICS)
        study = run_study(cell.config)
        assert report.cells[0].values["detections"] == float(len(study.latest_inventory))
