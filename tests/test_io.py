"""Tests for study archives: save, load, and third-party reanalysis."""

import numpy as np
import pytest

from repro.core.colocation import build_colocation_table
from repro.io.archive import load_archive, save_archive


@pytest.fixture(scope="module")
def archive_dir(small_study, tmp_path_factory):
    directory = tmp_path_factory.mktemp("archive")
    save_archive(small_study, directory)
    return directory


@pytest.fixture(scope="module")
def loaded(archive_dir):
    return load_archive(archive_dir)


class TestRoundTrip:
    def test_manifest(self, loaded, small_study):
        assert loaded.manifest.epochs == ("2021", "2023")
        assert loaded.manifest.xis == small_study.config.xis
        assert loaded.manifest.n_detections == len(small_study.latest_inventory)

    def test_inventories_match(self, loaded, small_study):
        for epoch, inventory in small_study.inventories.items():
            rows = loaded.inventories[epoch]
            assert len(rows) == len(inventory.detections)
            assert rows[0] == (
                inventory.detections[0].ip,
                inventory.detections[0].hypergiant,
                inventory.detections[0].isp_asn,
            )

    def test_latency_matrix_exact(self, loaded, small_study):
        np.testing.assert_array_equal(loaded.rtt_ms, small_study.matrix.rtt_ms)
        assert loaded.target_ips == small_study.matrix.ips

    def test_clusterings_match(self, loaded, small_study):
        for xi, per_isp in small_study.clusterings.items():
            for asn, clustering in per_isp.items():
                restored = loaded.clusterings[xi][asn]
                assert restored.ips == clustering.ips
                np.testing.assert_array_equal(restored.labels, clustering.labels)

    def test_isps_and_population(self, loaded, small_study):
        for isp in small_study.internet.isps[:20]:
            name, country, users = loaded.isps[isp.asn]
            assert name == isp.name
            assert country == isp.country_code
            assert users == small_study.population.users_of(isp.asn)

    def test_ptr_round_trip(self, loaded, small_study):
        assert loaded.ptr == small_study.ptr.records

    def test_load_rejects_non_archive(self, tmp_path):
        with pytest.raises(ValueError):
            load_archive(tmp_path)


class TestThirdPartyReanalysis:
    def test_table2_recomputable_from_archive_alone(self, loaded, small_study):
        """A third party holding only the archive reproduces Table 2."""
        for xi in loaded.manifest.xis:
            rebuilt = build_colocation_table(
                xi,
                loaded.clusterings[xi],
                loaded.hypergiant_of_ip("2023"),
                loaded.hypergiants_by_isp("2023"),
            )
            original = small_study.colocation_table(xi)
            for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
                assert rebuilt.row_percentages(hypergiant) == original.row_percentages(hypergiant)

    def test_footprint_counts_from_inventory(self, loaded, small_study):
        by_isp = loaded.hypergiants_by_isp("2023")
        google_count = sum(1 for hgs in by_isp.values() if "Google" in hgs)
        assert google_count == small_study.latest_inventory.isp_count("Google")

    def test_results_json_contains_table1(self, loaded):
        assert "table1" in loaded.results
        assert loaded.results["table1"]["Google"]["2023"] > 0
