"""Tests for study archives: save, load, and third-party reanalysis."""

import json
import shutil

import numpy as np
import pytest

from repro.core.colocation import build_colocation_table
from repro.io.archive import (
    ArchiveCorruptError,
    file_sha256,
    load_archive,
    save_archive,
    verify_archive,
)


@pytest.fixture(scope="module")
def archive_dir(small_study, tmp_path_factory):
    directory = tmp_path_factory.mktemp("archive")
    save_archive(small_study, directory)
    return directory


@pytest.fixture(scope="module")
def loaded(archive_dir):
    return load_archive(archive_dir)


class TestRoundTrip:
    def test_manifest(self, loaded, small_study):
        assert loaded.manifest.epochs == ("2021", "2023")
        assert loaded.manifest.xis == small_study.config.xis
        assert loaded.manifest.n_detections == len(small_study.latest_inventory)

    def test_inventories_match(self, loaded, small_study):
        for epoch, inventory in small_study.inventories.items():
            rows = loaded.inventories[epoch]
            assert len(rows) == len(inventory.detections)
            assert rows[0] == (
                inventory.detections[0].ip,
                inventory.detections[0].hypergiant,
                inventory.detections[0].isp_asn,
            )

    def test_latency_matrix_exact(self, loaded, small_study):
        np.testing.assert_array_equal(loaded.rtt_ms, small_study.matrix.rtt_ms)
        assert loaded.target_ips == small_study.matrix.ips

    def test_clusterings_match(self, loaded, small_study):
        for xi, per_isp in small_study.clusterings.items():
            for asn, clustering in per_isp.items():
                restored = loaded.clusterings[xi][asn]
                assert restored.ips == clustering.ips
                np.testing.assert_array_equal(restored.labels, clustering.labels)

    def test_isps_and_population(self, loaded, small_study):
        for isp in small_study.internet.isps[:20]:
            name, country, users = loaded.isps[isp.asn]
            assert name == isp.name
            assert country == isp.country_code
            assert users == small_study.population.users_of(isp.asn)

    def test_ptr_round_trip(self, loaded, small_study):
        assert loaded.ptr == small_study.ptr.records

    def test_load_rejects_non_archive(self, tmp_path):
        with pytest.raises(ValueError):
            load_archive(tmp_path)


class TestThirdPartyReanalysis:
    def test_table2_recomputable_from_archive_alone(self, loaded, small_study):
        """A third party holding only the archive reproduces Table 2."""
        for xi in loaded.manifest.xis:
            rebuilt = build_colocation_table(
                xi,
                loaded.clusterings[xi],
                loaded.hypergiant_of_ip("2023"),
                loaded.hypergiants_by_isp("2023"),
            )
            original = small_study.colocation_table(xi)
            for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
                assert rebuilt.row_percentages(hypergiant) == original.row_percentages(hypergiant)

    def test_footprint_counts_from_inventory(self, loaded, small_study):
        by_isp = loaded.hypergiants_by_isp("2023")
        google_count = sum(1 for hgs in by_isp.values() if "Google" in hgs)
        assert google_count == small_study.latest_inventory.isp_count("Google")

    def test_results_json_contains_table1(self, loaded):
        assert "table1" in loaded.results
        assert loaded.results["table1"]["Google"]["2023"] > 0


class TestIntegrity:
    @pytest.fixture()
    def copy_dir(self, archive_dir, tmp_path):
        destination = tmp_path / "copy"
        shutil.copytree(archive_dir, destination)
        return destination

    def test_manifest_digests_every_data_file(self, archive_dir, loaded):
        recorded = dict(loaded.manifest.digests)
        data_files = {p.name for p in archive_dir.iterdir() if p.name != "manifest.json"}
        assert set(recorded) == data_files
        for name, digest in recorded.items():
            assert file_sha256(archive_dir / name) == digest

    def test_clean_archive_verifies(self, archive_dir):
        verify_archive(archive_dir)

    def test_truncated_file_raises_corrupt_error(self, copy_dir):
        """Regression: a truncated latency.npz used to surface as an opaque
        zipfile/KeyError deep inside numpy; it must fail fast and by name."""
        victim = copy_dir / "latency.npz"
        victim.write_bytes(victim.read_bytes()[:64])
        with pytest.raises(ArchiveCorruptError, match="latency.npz"):
            load_archive(copy_dir)

    def test_bit_flip_raises_corrupt_error(self, copy_dir):
        victim = copy_dir / "clusterings.json"
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(ArchiveCorruptError, match="clusterings.json"):
            load_archive(copy_dir)

    def test_corrupt_error_names_file_and_both_digests(self, copy_dir, loaded):
        """The error must carry everything a post-mortem needs: the path,
        the digest the bytes actually hash to, and the manifest's claim."""
        victim = copy_dir / "clusterings.json"
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))
        expected = dict(loaded.manifest.digests)["clusterings.json"]
        actual = file_sha256(victim)
        with pytest.raises(ArchiveCorruptError) as excinfo:
            load_archive(copy_dir)
        message = str(excinfo.value)
        assert str(victim) in message
        assert f"actual sha256 {actual}" in message
        assert f"manifest says {expected}" in message

    def test_missing_file_raises_corrupt_error(self, copy_dir):
        (copy_dir / "ptr.csv").unlink()
        with pytest.raises(ArchiveCorruptError, match="ptr.csv"):
            load_archive(copy_dir)

    def test_missing_file_error_names_path_and_expected_digest(self, copy_dir, loaded):
        expected = dict(loaded.manifest.digests)["ptr.csv"]
        (copy_dir / "ptr.csv").unlink()
        with pytest.raises(ArchiveCorruptError) as excinfo:
            load_archive(copy_dir)
        message = str(excinfo.value)
        assert "archive file missing" in message
        assert str(copy_dir / "ptr.csv") in message
        assert f"expects sha256 {expected}" in message

    def test_verify_false_skips_digest_check(self, copy_dir, small_study):
        # Reformat results.json: same content, different bytes -> digest
        # mismatch that verify=False must tolerate.
        victim = copy_dir / "results.json"
        victim.write_text(json.dumps(json.loads(victim.read_text()), indent=4))
        with pytest.raises(ArchiveCorruptError):
            load_archive(copy_dir)
        loaded = load_archive(copy_dir, verify=False)
        assert loaded.manifest.n_detections == len(small_study.latest_inventory)

    def test_pre_digest_archives_pass_vacuously(self, copy_dir):
        manifest_path = copy_dir / "manifest.json"
        data = json.loads(manifest_path.read_text())
        del data["digests"]
        manifest_path.write_text(json.dumps(data))
        loaded = load_archive(copy_dir)
        assert loaded.manifest.digests == ()
