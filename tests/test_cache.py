"""Tests for catalogs, cache policies, and the emergent-hit-ratio sims."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.catalog import DEFAULT_CATALOGS, CatalogSpec, build_catalog
from repro.cache.policies import FifoCache, LfuCache, LruCache, make_cache
from repro.cache.simulate import capacity_for_target_ratio, simulate_cache


class TestCatalog:
    def test_popularity_normalised(self):
        catalog = build_catalog(DEFAULT_CATALOGS["Netflix"], seed=1)
        assert catalog.popularity.sum() == pytest.approx(1.0)
        assert (catalog.sizes_gb > 0).all()

    def test_netflix_catalog_smaller_than_google(self):
        netflix = build_catalog(DEFAULT_CATALOGS["Netflix"], seed=1)
        google = build_catalog(DEFAULT_CATALOGS["Google"], seed=1)
        assert netflix.spec.n_objects < google.spec.n_objects

    def test_byte_popularity_normalised(self):
        catalog = build_catalog(DEFAULT_CATALOGS["Meta"], seed=1)
        assert catalog.byte_popularity().sum() == pytest.approx(1.0)

    def test_working_set_monotone(self):
        catalog = build_catalog(DEFAULT_CATALOGS["Meta"], seed=1)
        assert catalog.working_set_gb(0.5) <= catalog.working_set_gb(0.9)
        assert catalog.working_set_gb(0.99) <= catalog.total_gb

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CatalogSpec("X", 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            CatalogSpec("X", 10, -1.0, 1.0)

    def test_deterministic(self):
        a = build_catalog(DEFAULT_CATALOGS["Netflix"], seed=4)
        b = build_catalog(DEFAULT_CATALOGS["Netflix"], seed=4)
        np.testing.assert_array_equal(a.sizes_gb, b.sizes_gb)


class TestPolicies:
    @pytest.mark.parametrize("policy", ["lru", "lfu", "fifo"])
    def test_capacity_respected(self, policy):
        cache = make_cache(policy, capacity_gb=10.0)
        for object_id in range(100):
            cache.access(object_id, 3.0)
            assert cache.used_gb <= 10.0

    def test_lru_evicts_least_recent(self):
        cache = LruCache(capacity_gb=2.0)
        cache.access(1, 1.0)
        cache.access(2, 1.0)
        cache.access(1, 1.0)  # refresh 1
        cache.access(3, 1.0)  # evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_fifo_ignores_recency(self):
        cache = FifoCache(capacity_gb=2.0)
        cache.access(1, 1.0)
        cache.access(2, 1.0)
        cache.access(1, 1.0)  # hit, but no refresh
        cache.access(3, 1.0)  # evicts 1 (oldest insertion)
        assert 1 not in cache and 2 in cache and 3 in cache

    def test_lfu_keeps_hot_objects(self):
        cache = LfuCache(capacity_gb=2.0)
        cache.access(1, 1.0)
        for _ in range(5):
            cache.access(1, 1.0)
        cache.access(2, 1.0)
        cache.access(3, 1.0)  # must evict 2 (count 1), never 1 (count 6)
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_oversized_object_bypasses(self):
        cache = LruCache(capacity_gb=1.0)
        assert cache.access(1, 5.0) is False
        assert 1 not in cache and cache.used_gb == 0.0

    def test_byte_hit_ratio_accounting(self):
        cache = LruCache(capacity_gb=10.0)
        cache.access(1, 4.0)  # miss, 4 GB
        cache.access(1, 4.0)  # hit, 4 GB
        assert cache.byte_hit_ratio == pytest.approx(0.5)
        assert cache.request_hit_ratio == pytest.approx(0.5)

    def test_reset_counters(self):
        cache = LruCache(capacity_gb=10.0)
        cache.access(1, 1.0)
        cache.reset_counters()
        assert cache.hits == cache.misses == 0
        assert 1 in cache  # contents survive the reset

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_cache("arc", 10.0)

    @given(st.integers(0, 2**31 - 1), st.sampled_from(["lru", "lfu", "fifo"]))
    @settings(max_examples=25, deadline=None)
    def test_property_used_never_exceeds_capacity(self, seed, policy):
        rng = np.random.default_rng(seed)
        cache = make_cache(policy, capacity_gb=8.0)
        for _ in range(300):
            cache.access(int(rng.integers(0, 40)), float(rng.uniform(0.1, 3.0)))
            assert cache.used_gb <= 8.0 + 1e-9


class TestSimulation:
    def test_hit_ratio_monotone_in_capacity(self):
        spec = DEFAULT_CATALOGS["Meta"]
        small = simulate_cache(spec, capacity_gb=50.0, seed=2)
        large = simulate_cache(spec, capacity_gb=1500.0, seed=2)
        assert large.byte_hit_ratio > small.byte_hit_ratio

    def test_paper_fractions_reachable(self):
        from repro.deployment.hypergiants import profile_by_name

        for hypergiant, spec in DEFAULT_CATALOGS.items():
            target = profile_by_name(hypergiant).offnet_serve_fraction
            _, result = capacity_for_target_ratio(spec, target, tolerance=0.03)
            assert result.byte_hit_ratio == pytest.approx(target, abs=0.05), hypergiant

    def test_netflix_easiest_to_cache(self):
        # At the same capacity-to-catalog fraction, Netflix's head-heavy
        # catalog yields the best byte hit ratio.
        ratios = {}
        for hypergiant, spec in DEFAULT_CATALOGS.items():
            catalog_gb = build_catalog(spec, seed=2).total_gb
            result = simulate_cache(spec, capacity_gb=0.2 * catalog_gb, seed=2)
            ratios[hypergiant] = result.byte_hit_ratio
        assert ratios["Netflix"] == max(ratios.values())

    def test_lfu_at_least_fifo_on_zipf(self):
        spec = DEFAULT_CATALOGS["Netflix"]
        lfu = simulate_cache(spec, capacity_gb=2000.0, policy="lfu", seed=3)
        fifo = simulate_cache(spec, capacity_gb=2000.0, policy="fifo", seed=3)
        assert lfu.byte_hit_ratio >= fifo.byte_hit_ratio - 0.01

    def test_deterministic(self):
        spec = DEFAULT_CATALOGS["Meta"]
        a = simulate_cache(spec, 500.0, seed=7)
        b = simulate_cache(spec, 500.0, seed=7)
        assert a.byte_hit_ratio == b.byte_hit_ratio

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_cache(DEFAULT_CATALOGS["Meta"], 500.0, n_requests=5)
