"""Tests for the CLI and the report generator."""

import json

import pytest

from repro.cli import build_parser, main
from repro.report import available_sections, build_report


class TestReport:
    def test_all_sections_render(self, small_study):
        text = build_report(small_study)
        for section_id in available_sections():
            assert section_id  # ids exist
        assert "Table 1" in text
        assert "Figure 2" in text
        assert "Section 6" in text

    def test_subset(self, small_study):
        text = build_report(small_study, sections=("t1",))
        assert "Table 1" in text
        assert "Figure 2" not in text

    def test_unknown_section_rejected(self, small_study):
        with pytest.raises(ValueError):
            build_report(small_study, sections=("nope",))

    def test_section_order_preserved(self, small_study):
        text = build_report(small_study, sections=("t2", "t1"))
        assert text.index("Table 2") < text.index("Table 1")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.scenario == "small" and args.sections == "all"

    def test_peering_arguments(self):
        args = build_parser().parse_args(["peering", "--hypergiant", "Meta", "--regions", "2"])
        assert args.hypergiant == "Meta" and args.regions == 2

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--scenario", "gigantic"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "scenarios" in out

    def test_study_sections(self, capsys, small_study):
        # The small study is already cached by the fixture, so this is fast.
        assert main(["study", "--scenario", "small", "--sections", "t1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_mapping(self, capsys, small_study):
        assert main(["mapping", "--scenario", "small"]) == 0
        out = capsys.readouterr().out
        assert "mapping coverage" in out

    def test_peering(self, capsys, small_study):
        assert main(["peering", "--scenario", "small", "--regions", "2"]) == 0
        out = capsys.readouterr().out
        assert "peer" in out

    def test_cascade_auto(self, capsys, small_study):
        assert main(["cascade", "--scenario", "small"]) == 0
        out = capsys.readouterr().out
        assert "affected users" in out

    def test_cascade_bad_facility(self, capsys, small_study):
        assert main(["cascade", "--scenario", "small", "--facility", "999999"]) == 1


def _span_names(spans: list[dict]) -> set[str]:
    names: set[str] = set()
    for span in spans:
        names.add(span["name"])
        names.update(_span_names(span["children"]))
    return names


class TestTelemetryFlags:
    def test_parser_accepts_flags(self):
        args = build_parser().parse_args(
            ["study", "--trace", "--log-json", "--metrics-out", "m.json"]
        )
        assert args.trace and args.log_json and args.metrics_out == "m.json"

    def test_flags_default_off(self):
        args = build_parser().parse_args(["study"])
        assert not args.trace and not args.log_json and args.metrics_out is None

    def test_study_trace_and_metrics_out(self, capsys, tmp_path):
        out = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "study",
                    "--scenario",
                    "small",
                    "--sections",
                    "t1",
                    "--trace",
                    "--log-json",
                    "--metrics-out",
                    str(out),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        # The report still lands on stdout; diagnostics go to stderr.
        assert "Table 1" in captured.out
        assert "stage timings" in captured.err
        assert "filter funnel" in captured.err
        assert f"wrote telemetry to {out}" in captured.err
        # --log-json: structured events are JSON lines on stderr.
        json_events = [
            json.loads(line) for line in captured.err.splitlines() if line.startswith("{")
        ]
        assert any(event.get("event") == "scan complete" for event in json_events)

        data = json.loads(out.read_text())
        assert data["format"] == "repro-bench-v1"
        names = _span_names(data["spans"])
        for stage in (
            "topology",
            "deployment",
            "scan",
            "detect",
            "ping_campaign",
            "filters",
            "clustering",
        ):
            assert stage in names, f"stage {stage!r} missing from exported spans"
        for counter in (
            "filters.ips_considered",
            "filters.ips_dropped_unresponsive",
            "filters.ips_dropped_implausible",
            "filters.ips_kept",
            "filters.ips_analyzable",
        ):
            assert counter in data["counters"], f"funnel counter {counter!r} missing"

    def test_cascade_metrics_out(self, capsys, tmp_path):
        out = tmp_path / "cascade.json"
        assert main(["cascade", "--scenario", "small", "--metrics-out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert "cascade" in _span_names(data["spans"])
        assert data["counters"]["cascade.rounds"] > 0
        assert "cascade.overloaded_links_per_round" in data["histograms"]


class TestExport:
    def test_export_writes_archive(self, capsys, tmp_path, small_study):
        from repro.io.archive import load_archive

        target = tmp_path / "archive"
        assert main(["export", "--scenario", "small", "--output", str(target)]) == 0
        out = capsys.readouterr().out
        assert "manifest.json" in out
        loaded = load_archive(target)
        assert loaded.manifest.n_detections == len(small_study.latest_inventory)


class TestObservabilityFlags:
    def test_parser_accepts_new_flags(self):
        args = build_parser().parse_args(
            [
                "study",
                "--profile",
                "--events-out",
                "ev.jsonl",
                "--trace-out",
                "trace.json",
            ]
        )
        assert args.profile and args.events_out == "ev.jsonl" and args.trace_out == "trace.json"

    def test_study_profile_events_trace(self, capsys, tmp_path, small_study):
        events = tmp_path / "events.jsonl"
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "study",
                    "--scenario",
                    "small",
                    "--sections",
                    "t1",
                    "--profile",
                    "--events-out",
                    str(events),
                    "--trace-out",
                    str(trace),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "resource profile" in captured.err
        assert "executor flights" in captured.err
        assert f"event stream written to {events}" in captured.err

        from repro.obs import read_events

        stream_events = read_events(events)
        assert stream_events[0]["event"] == "stream_start"
        assert stream_events[-1]["event"] == "stream_end"
        kinds = {e["event"] for e in stream_events}
        assert {"stage_start", "stage_end", "progress"} <= kinds

        trace_data = json.loads(trace.read_text())
        span_events = [e for e in trace_data["traceEvents"] if e.get("ph") == "X"]
        assert any(e["name"] == "study" for e in span_events)
        assert all({"ts", "dur", "pid", "tid"} <= set(e) for e in span_events)


class TestTailCommand:
    def _write_events(self, tmp_path):
        import io

        from repro.obs.stream import EventStream

        buffer = io.StringIO()
        stream = EventStream(buffer)
        stream.progress("campaign", 3, 12)
        stream.close()
        path = tmp_path / "events.jsonl"
        path.write_text(buffer.getvalue(), encoding="utf-8")
        return path

    def test_tail_snapshot(self, capsys, tmp_path):
        path = self._write_events(tmp_path)
        assert main(["tail", str(path)]) == 0
        out = capsys.readouterr().out
        assert "campaign: 3/12 (25.0%)" in out
        assert "run complete" in out

    def test_tail_directory_target(self, capsys, tmp_path):
        self._write_events(tmp_path)
        assert main(["tail", str(tmp_path)]) == 0
        assert "run complete" in capsys.readouterr().out

    def test_tail_follow_terminates_on_stream_end(self, capsys, tmp_path):
        path = self._write_events(tmp_path)
        assert main(["tail", str(path), "--follow", "--timeout", "2"]) == 0
        out = capsys.readouterr().out
        assert "stream_start" in out
        assert "campaign: 3/12" in out

    def test_tail_missing_file(self, capsys, tmp_path):
        assert main(["tail", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such events file" in capsys.readouterr().err


class TestBenchCheckCommand:
    def _baseline(self, tmp_path, stages, counters=None):
        path = tmp_path / "BENCH_observability.json"
        path.write_text(
            json.dumps(
                {
                    "bench": "observability-small",
                    "format": "repro-bench-v1",
                    "schema": "compact-aggregates-v1",
                    "stages": {name: {"count": 1, "total_ms": ms} for name, ms in stages.items()},
                    "counters": counters or {},
                }
            ),
            encoding="utf-8",
        )
        return path

    def test_check_passes_against_committed_style_baseline(self, capsys, tmp_path, small_study):
        # A generous baseline: the fresh small-scenario run must fit well
        # inside 100x of these stage times on any machine.
        path = self._baseline(tmp_path, {"study": 50.0, "clustering": 10.0})
        assert main(["bench", "check", "--baseline", str(path), "--tolerance", "100"]) == 0
        out = capsys.readouterr().out
        assert "bench check passed" in out

    def test_check_missing_baseline(self, capsys, tmp_path):
        assert main(["bench", "check", "--baseline", str(tmp_path / "nope.json")]) == 1
        assert "no benchmark baseline" in capsys.readouterr().err

    def test_check_counter_drift_fails(self, capsys, tmp_path, small_study):
        path = self._baseline(
            tmp_path, {"study": 50.0}, {"filters.ips_considered": -1}
        )
        assert main(["bench", "check", "--baseline", str(path), "--tolerance", "100"]) == 1
        assert "COUNTER DRIFT" in capsys.readouterr().out


class TestTimelineGcCommand:
    def test_gc_evicts_and_reports(self, capsys, tmp_path):
        import os
        import time

        from repro.store import StageStore
        from repro.store.stages import stage_key

        store = StageStore(tmp_path / "stages")
        base = time.time() - 100
        for i in range(4):
            key = stage_key("epoch", {"i": i})
            store.put("epoch", key, {"row": i})
            os.utime(store.entry_path(key), (base + i, base + i))

        assert main(
            ["timeline", "gc", "--store-dir", str(tmp_path / "stages"), "--max-entries", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted 3 of 4 entries" in out
        assert StageStore(tmp_path / "stages").stats()["entries"] == 1

    def test_gc_without_bounds_is_a_noop(self, capsys, tmp_path):
        from repro.store import StageStore
        from repro.store.stages import stage_key

        store = StageStore(tmp_path / "stages")
        store.put("epoch", stage_key("epoch", {"i": 0}), {"row": 0})
        assert main(["timeline", "gc", "--store-dir", str(tmp_path / "stages")]) == 0
        assert "evicted 0 of 1 entries" in capsys.readouterr().out

    def test_timeline_run_still_parses_without_subcommand(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["timeline", "--scenario", "small", "--start", "2022Q1"])
        assert getattr(args, "timeline_command", None) is None
        assert args.start == "2022Q1"


class TestServeParser:
    def test_parser_accepts_serve_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--state-dir", "/tmp/state", "--max-queue", "3",
             "--tenant-quota", "2", "--backend", "process", "--workers", "2"]
        )
        assert args.handler.__name__ == "_cmd_serve"
        assert args.max_queue == 3 and args.tenant_quota == 2
        assert args.port == 0  # default: pick a free port

    def test_state_dir_is_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve"])
