"""Tests for the trimmed distance, OPTICS, xi extraction, and site driver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.distance import (
    pairwise_trimmed_manhattan,
    pairwise_trimmed_manhattan_reference,
    trimmed_manhattan,
)
from repro.clustering.optics import optics_order
from repro.clustering.sites import (
    ClusteringConfig,
    ClusteringMemo,
    cluster_isp_offnets,
    pair_confusion_counts,
    pair_confusion_counts_reference,
    rand_index,
)
from repro.obs import Telemetry
from repro.clustering.xi import XiCluster, extract_xi_clusters, xi_labels


def two_blob_columns(n_a=6, n_b=6, separation=10.0, noise=0.05, n_vps=30, seed=0):
    """Latency columns for two well-separated facilities."""
    rng = np.random.default_rng(seed)
    base_a = rng.uniform(10, 100, size=n_vps)
    base_b = base_a + separation
    columns = np.empty((n_vps, n_a + n_b))
    for j in range(n_a):
        columns[:, j] = base_a + rng.normal(0, noise, n_vps)
    for j in range(n_b):
        columns[:, n_a + j] = base_b + rng.normal(0, noise, n_vps)
    return columns


class TestTrimmedManhattan:
    def test_identical_vectors_zero(self):
        a = np.arange(10.0)
        assert trimmed_manhattan(a, a) == 0.0

    def test_constant_offset(self):
        a = np.zeros(10)
        b = np.full(10, 3.0)
        assert trimmed_manhattan(a, b, trim_fraction=0.0) == pytest.approx(3.0)

    def test_trimming_drops_outliers(self):
        a = np.zeros(10)
        b = np.zeros(10)
        b[0] = 100.0  # one detoured vantage point
        assert trimmed_manhattan(a, b, trim_fraction=0.2) == 0.0
        assert trimmed_manhattan(a, b, trim_fraction=0.0) == pytest.approx(10.0)

    def test_nan_entries_skipped(self):
        a = np.array([1.0, np.nan, 3.0, 4.0])
        b = np.array([1.0, 2.0, np.nan, 5.0])
        assert trimmed_manhattan(a, b, trim_fraction=0.0) == pytest.approx(0.5)

    def test_too_few_common_vps_is_nan(self):
        a = np.array([1.0, np.nan])
        b = np.array([np.nan, 2.0])
        assert np.isnan(trimmed_manhattan(a, b))

    def test_pairwise_symmetric_zero_diagonal(self):
        columns = two_blob_columns()
        matrix = pairwise_trimmed_manhattan(columns)
        np.testing.assert_array_equal(matrix, matrix.T)
        np.testing.assert_array_equal(np.diag(matrix), np.zeros(columns.shape[1]))

    @given(
        st.integers(0, 2**31 - 1),
        st.floats(0.0, 0.4),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_metric_like(self, seed, trim):
        rng = np.random.default_rng(seed)
        a, b = rng.uniform(0, 50, 20), rng.uniform(0, 50, 20)
        d_ab = trimmed_manhattan(a, b, trim)
        assert d_ab >= 0
        assert d_ab == pytest.approx(trimmed_manhattan(b, a, trim))


class TestOptics:
    def test_ordering_is_permutation(self):
        columns = two_blob_columns()
        distances = pairwise_trimmed_manhattan(columns)
        result = optics_order(distances)
        assert sorted(result.ordering.tolist()) == list(range(columns.shape[1]))

    def test_core_distance_min_pts_2_is_nearest_neighbor(self):
        distances = np.array(
            [
                [0.0, 1.0, 5.0],
                [1.0, 0.0, 4.0],
                [5.0, 4.0, 0.0],
            ]
        )
        result = optics_order(distances, min_pts=2)
        np.testing.assert_allclose(result.core_distance, [1.0, 1.0, 4.0])

    def test_two_blobs_stay_contiguous_in_ordering(self):
        columns = two_blob_columns(n_a=5, n_b=5)
        distances = pairwise_trimmed_manhattan(columns)
        result = optics_order(distances)
        groups = [0 if p < 5 else 1 for p in result.ordering]
        # One switch between groups: ordering visits one blob then the other.
        switches = sum(1 for a, b in zip(groups, groups[1:]) if a != b)
        assert switches == 1

    def test_reachability_jump_between_blobs(self):
        columns = two_blob_columns(separation=20.0)
        distances = pairwise_trimmed_manhattan(columns)
        result = optics_order(distances)
        finite = result.reachability[np.isfinite(result.reachability)]
        assert finite.max() > 10 * np.median(finite)

    def test_rejects_min_pts_1(self):
        with pytest.raises(ValueError):
            optics_order(np.zeros((3, 3)), min_pts=1)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            optics_order(np.zeros((2, 3)))

    def test_nan_treated_as_disconnected(self):
        distances = np.array(
            [
                [0.0, 0.1, np.nan],
                [0.1, 0.0, np.nan],
                [np.nan, np.nan, 0.0],
            ]
        )
        result = optics_order(distances)
        # Point 2 is unreachable: its reachability stays inf at its position.
        position = list(result.ordering).index(2)
        assert not np.isfinite(result.reachability[position])


class TestXiExtraction:
    def test_single_valley(self):
        # High - low plateau - high: one cluster over the valley.
        reachability = np.array([np.inf, 10.0, 0.1, 0.1, 0.1, 0.1, 10.0, 10.0])
        clusters = extract_xi_clusters(reachability, xi=0.5)
        assert clusters
        widest = max(clusters, key=lambda c: c.size)
        assert widest.start <= 2 and widest.end >= 5

    def test_flat_plot_is_one_cluster(self):
        # All points mutually close: one facility, one cluster.
        reachability = np.array([np.inf] + [1.0] * 10)
        clusters = extract_xi_clusters(reachability, xi=0.5)
        labels = xi_labels(len(reachability), clusters)
        assert (labels == labels[0]).all() and labels[0] >= 0

    def test_two_valleys_two_clusters(self):
        reachability = np.array(
            [np.inf, 0.1, 0.1, 0.1, 20.0, 0.1, 0.1, 0.1]
        )
        clusters = extract_xi_clusters(reachability, xi=0.5)
        labels = xi_labels(len(reachability), clusters)
        # Both halves get (different) labels.
        assert labels[1] >= 0 and labels[6] >= 0
        assert labels[1] != labels[6]

    def test_higher_xi_needs_steeper_cliffs(self):
        # A moderate (2.5x) interior bump splits the set at xi=0.4 but is
        # invisible at xi=0.9 (which demands 10x cliffs).
        reachability = np.array([np.inf, 1.0, 1.0, 1.0, 2.5, 1.0, 1.0, 1.0])

        def n_clusters(xi):
            clusters = extract_xi_clusters(reachability, xi=xi)
            labels = xi_labels(len(reachability), clusters)
            return len({label for label in labels if label >= 0})

        assert n_clusters(0.4) > n_clusters(0.9) == 1

    def test_min_cluster_size_respected(self):
        reachability = np.array([np.inf, 10.0, 0.1, 10.0, 10.0])
        clusters = extract_xi_clusters(reachability, xi=0.5, min_cluster_size=3)
        assert all(c.size >= 3 for c in clusters)

    def test_xi_validation(self):
        with pytest.raises(ValueError):
            extract_xi_clusters(np.array([1.0]), xi=0.0)

    def test_labels_nested_clusters_keep_first(self):
        clusters = [XiCluster(2, 4), XiCluster(0, 9)]
        labels = xi_labels(10, clusters)
        assert labels[3] == 0
        assert labels[0] == -1  # outer cluster overlaps, skipped


class TestSiteDriver:
    def test_two_facilities_recovered(self):
        columns = two_blob_columns(n_a=6, n_b=6, separation=10.0)
        ips = list(range(12))
        clustering = cluster_isp_offnets(columns, ips, ClusteringConfig(xi=0.5))
        truth = np.array([0] * 6 + [1] * 6)
        assert rand_index(clustering.labels, truth) > 0.9

    def test_single_ip_is_noise(self):
        clustering = cluster_isp_offnets(np.zeros((5, 1)), [99])
        assert clustering.noise_ips == [99]
        assert clustering.site_count == 1

    def test_empty(self):
        clustering = cluster_isp_offnets(np.zeros((5, 0)), [])
        assert clustering.clusters == []
        assert clustering.site_count == 0

    def test_site_count_counts_noise_as_sites(self):
        columns = two_blob_columns(n_a=6, n_b=1, separation=50.0)
        clustering = cluster_isp_offnets(columns, list(range(7)), ClusteringConfig(xi=0.5))
        # The lone far IP cannot form a cluster of 2: it is its own site.
        assert clustering.site_count >= 2

    def test_label_of(self):
        columns = two_blob_columns(n_a=4, n_b=4)
        clustering = cluster_isp_offnets(columns, list(range(8)), ClusteringConfig(xi=0.5))
        for ip in range(8):
            assert clustering.label_of(ip) == clustering.labels[ip]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusteringConfig(xi=1.0)
        with pytest.raises(ValueError):
            ClusteringConfig(min_pts=1)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            cluster_isp_offnets(np.zeros((5, 3)), [1, 2])

    def test_label_of_unknown_ip_names_the_ip(self):
        columns = two_blob_columns(n_a=4, n_b=4)
        clustering = cluster_isp_offnets(columns, list(range(8)), ClusteringConfig(xi=0.5))
        with pytest.raises(KeyError, match="IP 404 is not a target"):
            clustering.label_of(404)


class TestClusteringMemo:
    def test_memo_requires_a_key(self):
        with pytest.raises(ValueError, match="memo_key"):
            cluster_isp_offnets(
                two_blob_columns(), list(range(12)), memo=ClusteringMemo()
            )

    def test_memoized_runs_match_unshared_runs(self):
        """The memo changes only *when* work happens, never the labels."""
        columns = two_blob_columns(n_a=6, n_b=6)
        ips = list(range(12))
        memo = ClusteringMemo()
        for xi in (0.1, 0.5, 0.9):
            config = ClusteringConfig(xi=xi)
            shared = cluster_isp_offnets(columns, ips, config, memo=memo, memo_key="isp")
            unshared = cluster_isp_offnets(columns, ips, config)
            assert np.array_equal(shared.labels, unshared.labels)

    def test_intermediates_computed_once_per_key(self):
        columns = two_blob_columns(n_a=5, n_b=5)
        ips = list(range(10))
        memo = ClusteringMemo()
        telemetry = Telemetry.capture()
        for xi in (0.1, 0.9):
            cluster_isp_offnets(
                columns, ips, ClusteringConfig(xi=xi), telemetry=telemetry,
                memo=memo, memo_key="isp",
            )
        metrics = telemetry.metrics
        assert metrics.counter("cluster.distance_matrices_computed") == 1
        assert metrics.counter("cluster.distance_matrices_reused") == 1
        assert metrics.counter("cluster.optics_runs") == 1
        assert metrics.counter("cluster.optics_reused") == 1

    def test_different_trim_fractions_do_not_collide(self):
        columns = two_blob_columns(n_a=4, n_b=4)
        memo = ClusteringMemo()
        a = memo.distances("isp", columns, 0.0)
        b = memo.distances("isp", columns, 0.4)
        assert a is not b
        assert memo.distances("isp", columns, 0.0) is a


class TestPairConfusionVectorized:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_on_random_labelings(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        a = rng.integers(-1, 4, size=n)
        b = rng.integers(-1, 4, size=n)
        assert pair_confusion_counts(a, b) == pair_confusion_counts_reference(a, b)

    def test_all_noise(self):
        labels = np.array([-1, -1, -1])
        assert pair_confusion_counts(labels, labels) == pair_confusion_counts_reference(
            labels, labels
        )

    def test_counts_cover_every_pair(self):
        rng = np.random.default_rng(7)
        a = rng.integers(-1, 3, size=25)
        b = rng.integers(-1, 3, size=25)
        assert sum(pair_confusion_counts(a, b)) == 25 * 24 // 2


class TestRandIndex:
    def test_identical_labelings(self):
        labels = np.array([0, 0, 1, 1])
        assert rand_index(labels, labels) == 1.0

    def test_disjoint_labelings(self):
        a = np.array([0, 0, 0, 0])
        b = np.array([0, 1, 2, 3])
        assert rand_index(a, b) == 0.0

    def test_noise_points_are_singletons(self):
        a = np.array([-1, -1])
        b = np.array([0, 0])
        together, a_only, b_only, apart = pair_confusion_counts(a, b)
        assert (together, a_only, b_only, apart) == (0, 0, 1, 0)

    @given(st.lists(st.integers(-1, 3), min_size=2, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_property_bounded_and_reflexive(self, raw):
        labels = np.array(raw)
        assert rand_index(labels, labels) == 1.0
        other = np.roll(labels, 1)
        assert 0.0 <= rand_index(labels, other) <= 1.0
