"""Chaos harness for ``repro serve``: crashes, drains, damage, degradation.

The headline guarantee, proven differentially: SIGKILL the server
mid-campaign, restart it against the same state directory, and the
recovered campaign's result is **byte-identical** to an uninterrupted
run's — on the serial and process backends.  Alongside it: SIGTERM
drains gracefully (checkpoint, exit 0, the re-queued campaign resumes on
restart), a corrupt journal tail degrades recovery honestly instead of
wedging it, injected ``serve.request`` faults surface as the documented
HTTP failure modes, and a campaign whose cells permanently fail reports
``DEGRADED`` with a coverage report matching the injected fire set
exactly.

The SIGTERM-mid-campaign regression test for the ``repro sweep run`` CLI
(checkpoint-before-exit, resume to a byte-identical report) lives here
too — same subprocess toolkit.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.parallel import process_backend_available
from repro.serve import ReproServer, Scheduler, ServeConfig, read_journal, recover_state

pytestmark = [pytest.mark.serve, pytest.mark.chaos]

SRC = Path(__file__).resolve().parents[1] / "src"

#: A 12-epoch timeline: long enough (~10s) to reliably kill mid-campaign.
LONG_TIMELINE = {
    "kind": "timeline",
    "spec": {
        "timeline": {"start": "2021Q1", "end": "2023Q4", "seed": 3},
        "overrides": {
            "internet.seed": 5,
            "internet.n_access_isps": 30,
            "internet.n_ixps": 12,
            "n_vantage_points": 20,
            "seed": 7,
        },
    },
}


def _cli(*args: str) -> list[str]:
    return [sys.executable, "-c", "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))", *args]


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def _post_json(url: str, payload) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


class _Server:
    """A ``repro serve`` subprocess bound to a state directory."""

    def __init__(self, state_dir: Path, *extra: str):
        self.state_dir = state_dir
        endpoint = state_dir / "endpoint.json"
        endpoint.unlink(missing_ok=True)
        self.process = subprocess.Popen(
            _cli("serve", "--state-dir", str(state_dir), *extra),
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.time() + 60
        self.url = None
        while time.time() < deadline and self.url is None:
            if self.process.poll() is not None:
                raise AssertionError(f"server died on startup (exit {self.process.returncode})")
            try:
                address = json.loads(endpoint.read_text())
                _get_json(f"http://{address['host']}:{address['port']}/healthz")
                self.url = f"http://{address['host']}:{address['port']}"
            except (OSError, json.JSONDecodeError, urllib.error.URLError):
                time.sleep(0.05)
        assert self.url is not None, "server did not come up within 60s"

    def status(self, cid: str) -> dict:
        return _get_json(f"{self.url}/campaigns/{cid}/status")

    def wait_for(self, cid: str, statuses: tuple[str, ...], timeout_s: float = 180) -> str:
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            status = self.status(cid)["status"]
            if status in statuses:
                return status
            time.sleep(0.1)
        raise AssertionError(f"campaign {cid} never reached {statuses}")

    def wait_for_partial_progress(self, timeout_s: float = 120) -> None:
        """Block until some stage entries are checkpointed (campaign mid-flight)."""
        stages = self.state_dir / "stages" / "objects"
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            if stages.exists() and sum(1 for _ in stages.rglob("*.json")) >= 5:
                return
            time.sleep(0.05)
        raise AssertionError("campaign made no store progress within the timeout")

    def kill9(self) -> None:
        self.process.kill()
        self.process.wait(timeout=30)

    def terminate(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=60)

    def cleanup(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=30)


def _reference_result(tmp_path: Path, spec: dict) -> bytes:
    """The uninterrupted result bytes for ``spec`` from a pristine state dir."""
    scheduler = Scheduler(ServeConfig(state_dir=tmp_path / "reference-state"))
    scheduler.start()
    cid, _, _ = scheduler.submit(spec)
    assert scheduler.wait(cid, timeout_s=300) == "DONE"
    body = scheduler.result_bytes(cid)
    scheduler.drain()
    return body


def _kill9_roundtrip(tmp_path: Path, *server_args: str) -> None:
    state = tmp_path / "state"
    state.mkdir()
    server = _Server(state, *server_args)
    try:
        submitted = _post_json(server.url + "/campaigns", LONG_TIMELINE)
        cid = submitted["campaign"]
        server.wait_for(cid, ("RUNNING",), timeout_s=60)
        server.wait_for_partial_progress()
        server.kill9()
    finally:
        server.cleanup()

    # The journal saw the start but (with overwhelming likelihood at this
    # campaign size) no finish: recovery must re-queue.
    recovered = recover_state(state / "journal.jsonl", state / "results")
    assert recovered.campaigns[cid]["status"] in ("QUEUED", "DONE")

    restarted = _Server(state, *server_args)
    try:
        assert restarted.wait_for(cid, ("DONE", "DEGRADED", "LOST"), timeout_s=300) == "DONE"
        with urllib.request.urlopen(f"{restarted.url}/campaigns/{cid}/result", timeout=10) as r:
            recovered_bytes = r.read()
    finally:
        restarted.cleanup()

    assert recovered_bytes == _reference_result(tmp_path, LONG_TIMELINE)


class TestKillDashNine:
    def test_sigkill_mid_campaign_recovers_byte_identical(self, tmp_path):
        _kill9_roundtrip(tmp_path)

    @pytest.mark.parallel
    def test_sigkill_recovery_on_process_backend(self, tmp_path):
        if not process_backend_available():
            pytest.skip("process executor backend unavailable")
        _kill9_roundtrip(tmp_path, "--backend", "process", "--workers", "2")

    def test_double_kill_double_recovery(self, tmp_path):
        """Killing the server during *recovery's re-run* and recovering
        again still converges to the same byte-identical result."""
        state = tmp_path / "state"
        state.mkdir()
        server = _Server(state)
        try:
            cid = _post_json(server.url + "/campaigns", LONG_TIMELINE)["campaign"]
            server.wait_for(cid, ("RUNNING",), timeout_s=60)
            server.wait_for_partial_progress()
            server.kill9()
        finally:
            server.cleanup()
        second = _Server(state)
        try:
            second.wait_for(cid, ("RUNNING", "DONE"), timeout_s=60)
            second.kill9()
        finally:
            second.cleanup()
        third = _Server(state)
        try:
            assert third.wait_for(cid, ("DONE", "DEGRADED", "LOST"), timeout_s=300) == "DONE"
            with urllib.request.urlopen(f"{third.url}/campaigns/{cid}/result", timeout=10) as r:
                body = r.read()
        finally:
            third.cleanup()
        assert body == _reference_result(tmp_path, LONG_TIMELINE)


class TestGracefulDrain:
    def test_sigterm_checkpoints_requeues_and_exits_zero(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        server = _Server(state)
        try:
            cid = _post_json(server.url + "/campaigns", LONG_TIMELINE)["campaign"]
            server.wait_for(cid, ("RUNNING",), timeout_s=60)
            server.wait_for_partial_progress()
            assert server.terminate() == 0
        finally:
            server.cleanup()

        events = [entry["event"] for entry in read_journal(state / "journal.jsonl").entries]
        assert "server_stop" in events
        recovered = recover_state(state / "journal.jsonl", state / "results")
        # Either the drain caught the campaign mid-flight (journaled
        # "drained", re-queued) or the campaign finished just before the
        # signal landed; both are clean exits.
        assert recovered.campaigns[cid]["status"] in ("QUEUED", "DONE")

        restarted = _Server(state)
        try:
            assert restarted.wait_for(cid, ("DONE", "DEGRADED", "LOST"), timeout_s=300) == "DONE"
            with urllib.request.urlopen(f"{restarted.url}/campaigns/{cid}/result", timeout=10) as r:
                body = r.read()
        finally:
            restarted.cleanup()
        assert body == _reference_result(tmp_path, LONG_TIMELINE)


class TestJournalDamageAtServerLevel:
    def test_corrupt_journal_tail_recovery(self, tmp_path):
        """A torn tail (SIGKILL mid-append) is absorbed: recovery reports
        it, the queued campaign survives, and the re-run completes."""
        state = tmp_path / "state"
        scheduler = Scheduler(ServeConfig(state_dir=state))
        cid, _, _ = scheduler.submit(
            {"kind": "study", "spec": {"scenario": "small", "overrides": {
                "internet.seed": 3, "internet.n_access_isps": 40,
                "internet.n_ixps": 20, "n_vantage_points": 24, "seed": 3}}}
        )
        scheduler.journal.close()
        with (state / "journal.jsonl").open("a") as file:
            file.write('{"seq": 999, "event": "fini')  # torn mid-append

        revived = Scheduler(ServeConfig(state_dir=state))
        assert revived.recovered.torn_tail
        assert revived.recovered.pending == [cid]
        revived.start()
        assert revived.wait(cid, timeout_s=300) == "DONE"
        revived.drain()

    def test_bit_flip_mid_journal_is_skipped_and_counted(self, tmp_path):
        state = tmp_path / "state"
        scheduler = Scheduler(ServeConfig(state_dir=state))
        scheduler.submit(
            {"kind": "study", "spec": {"scenario": "small", "overrides": {"seed": 11}}}
        )
        cid, _, _ = scheduler.submit(
            {"kind": "study", "spec": {"scenario": "small", "overrides": {"seed": 12}}}
        )
        scheduler.journal.close()
        path = state / "journal.jsonl"
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-4] + 'xx"}'  # flip bytes inside the first submit
        path.write_text("\n".join(lines) + "\n")

        revived = Scheduler(ServeConfig(state_dir=state))
        assert revived.recovered.n_corrupt == 1
        # The damaged submission is forgotten (conservative); the intact
        # one survives with its FIFO position.
        assert revived.recovered.pending == [cid]
        revived.journal.close()


class TestServeRequestFaults:
    def _server(self, tmp_path, spec: FaultSpec) -> ReproServer:
        config = ServeConfig(
            state_dir=tmp_path / "state", faults=FaultPlan(seed=0, specs=(spec,))
        )
        server = ReproServer(config)
        server.start()
        return server

    def test_transient_error_maps_to_503_with_retry_after(self, tmp_path):
        server = self._server(
            tmp_path, FaultSpec(site="serve.request", kind="error", rate=1.0, fail_attempts=1)
        )
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get_json(server.url + "/healthz")
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] is not None
        finally:
            server.shutdown()

    def test_fatal_error_maps_to_500(self, tmp_path):
        server = self._server(
            tmp_path, FaultSpec(site="serve.request", kind="error", rate=1.0, fatal=True)
        )
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get_json(server.url + "/healthz")
            assert excinfo.value.code == 500
        finally:
            server.shutdown()

    def test_drop_closes_the_connection_without_a_response(self, tmp_path):
        import http.client

        server = self._server(tmp_path, FaultSpec(site="serve.request", kind="drop", rate=1.0))
        try:
            # Depending on timing the stdlib surfaces the dropped
            # connection as URLError (an OSError) or RemoteDisconnected.
            with pytest.raises((OSError, http.client.HTTPException)):
                _get_json(server.url + "/healthz")
        finally:
            server.shutdown()


def _degraded_plan(n_cells: int) -> FaultPlan:
    """A permanent ``sweep.cell`` error plan firing on some but not all cells.

    Seed-searched like the resume tests' crash plans, so the expected
    fire set is computed, never hard-coded.
    """
    spec = FaultSpec(site="sweep.cell", kind="error", rate=0.5, fatal=True)
    for seed in range(200):
        plan = FaultPlan(seed=seed, specs=(spec,))
        fires = [plan.fires_ever("sweep.cell", index) for index in range(n_cells)]
        if any(fires) and not all(fires):
            return plan
    raise AssertionError("no seed under 200 produced a partial fire set")


class TestHonestDegradation:
    def test_degraded_coverage_matches_the_injected_fire_set_exactly(self, tmp_path):
        plan = _degraded_plan(3)
        spec = {
            "kind": "sweep",
            "spec": {
                "scenario": "small",
                "overrides": {
                    "internet.n_access_isps": 40, "internet.n_ixps": 20,
                    "n_vantage_points": 24,
                },
                "axes": {"seed,internet.seed": [3, 4, 5]},
            },
            "faults": plan.to_json(),
            "resilience": {"retry": 2, "shard_loss_budget": 1.0},
        }
        scheduler = Scheduler(ServeConfig(state_dir=tmp_path / "state"))
        scheduler.start()
        cid, _, _ = scheduler.submit(spec)
        assert scheduler.wait(cid, timeout_s=300) == "DEGRADED"
        result = json.loads(scheduler.result_bytes(cid))
        scheduler.drain()

        expected_lost = [
            cell["cell_id"]
            for index, cell in enumerate(result["report"]["cells"])
            if plan.fires_ever("sweep.cell", index)
        ]
        assert 1 <= len(expected_lost) < 3
        assert result["lost"] == expected_lost
        assert result["coverage"] == {
            "sweep.cells": {"lost": len(expected_lost), "total": 3}
        }
        failed = [cell for cell in result["report"]["cells"] if cell["status"] == "failed"]
        assert [cell["cell_id"] for cell in failed] == expected_lost


class TestCLISigterm:
    def test_sweep_run_sigterm_checkpoints_then_resumes_byte_identical(self, tmp_path):
        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps({
            "scenario": "small",
            "overrides": {
                "internet.n_access_isps": 40, "internet.n_ixps": 20,
                "n_vantage_points": 24,
            },
            "axes": {"seed,internet.seed": [3, 4, 5]},
        }))
        store = tmp_path / "store"
        command = _cli(
            "sweep", "run", "--spec", str(spec_path), "--store-dir", str(store),
            "--report-out", str(tmp_path / "interrupted.json"),
        )
        process = subprocess.Popen(
            command, env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.PIPE
        )
        # Wait for the first checkpoint to land, then SIGTERM mid-campaign.
        deadline = time.time() + 120
        while time.time() < deadline:
            if store.exists() and any(store.rglob("*.json")):
                break
            if process.poll() is not None:
                raise AssertionError("campaign finished before the signal could land")
            time.sleep(0.05)
        process.send_signal(signal.SIGTERM)
        _, stderr = process.communicate(timeout=60)
        assert process.returncode == 130
        assert b"interrupted" in stderr and b"resume" in stderr

        # Resume against the same store: exit 0, report written.
        resumed = subprocess.run(
            _cli("sweep", "run", "--spec", str(spec_path), "--store-dir", str(store),
                 "--report-out", str(tmp_path / "resumed.json")),
            env=_env(), capture_output=True, timeout=300,
        )
        assert resumed.returncode == 0

        # Uninterrupted reference in a pristine store: identical bytes.
        reference = subprocess.run(
            _cli("sweep", "run", "--spec", str(spec_path), "--store-dir",
                 str(tmp_path / "fresh-store"), "--report-out", str(tmp_path / "reference.json")),
            env=_env(), capture_output=True, timeout=300,
        )
        assert reference.returncode == 0
        assert (tmp_path / "resumed.json").read_bytes() == (tmp_path / "reference.json").read_bytes()
