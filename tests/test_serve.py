"""The serve management and data planes, in-process.

Spec validation and content-addressed campaign ids, admission control
(bounded queue → :class:`QueueFullError`, per-tenant quotas →
:class:`QuotaExceededError`), the scheduler's end-to-end lifecycle for
sweep and timeline campaigns (including dedup: an identical
re-submission is served from the store without recomputation), and the
HTTP surface via ``urllib`` — status codes, Retry-After headers, the
telemetry bridge, and graceful shutdown.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    QueueFullError,
    QuotaExceededError,
    ReproServer,
    Scheduler,
    ServeConfig,
    campaign_id,
    normalize_spec,
)

pytestmark = [pytest.mark.serve]

#: A study small enough for CI, matching the resume-test scenario size.
STUDY = {
    "kind": "study",
    "spec": {
        "scenario": "small",
        "overrides": {
            "internet.seed": 3,
            "internet.n_access_isps": 40,
            "internet.n_ixps": 20,
            "n_vantage_points": 24,
            "seed": 3,
        },
    },
}

#: A two-epoch timeline, matching tests/test_timeline_resume.py sizing.
TIMELINE = {
    "kind": "timeline",
    "spec": {
        "timeline": {"start": "2022Q1", "end": "2022Q2", "seed": 3},
        "overrides": {
            "internet.seed": 5,
            "internet.n_access_isps": 30,
            "internet.n_ixps": 12,
            "n_vantage_points": 20,
            "seed": 7,
        },
    },
}


class TestNormalizeSpec:
    def test_canonical_form_and_defaults(self):
        normalized = normalize_spec(STUDY)
        assert normalized["tenant"] == "default"
        assert normalized["faults"] is None and normalized["resilience"] is None

    def test_id_is_content_addressed(self):
        a = campaign_id(normalize_spec(STUDY))
        b = campaign_id(normalize_spec(json.loads(json.dumps(STUDY))))
        assert a == b
        different = campaign_id(normalize_spec({**STUDY, "tenant": "alice"}))
        assert different != a

    @pytest.mark.parametrize(
        "bad",
        [
            "not a dict",
            {"kind": "nope"},
            {"kind": "study", "tenant": ""},
            {"kind": "study", "unknown": 1},
            {"kind": "study", "spec": {"scenario": "nope"}},
            {"kind": "study", "spec": {"axes": {"seed": [1, 2]}}},
            {"kind": "study", "spec": {"max_cells": 3}},
            {"kind": "sweep", "spec": {"overrides": {"internet.bogus": 1}}},
            {"kind": "timeline", "spec": {"bogus": 1}},
            {"kind": "timeline", "spec": {"timeline": {"bogus": 1}}},
            {"kind": "timeline", "spec": {"timeline": {"start": "2024Q4", "end": "2022Q1"}}},
            {"kind": "sweep", "resilience": {"bogus": 1}},
            {"kind": "sweep", "faults": {"specs": [{"site": "nope", "kind": "error"}]}},
        ],
    )
    def test_invalid_specs_raise(self, bad):
        with pytest.raises((ValueError, TypeError)):
            normalize_spec(bad)

    def test_sweep_accepts_axes_and_max_cells(self):
        normalized = normalize_spec(
            {"kind": "sweep", "spec": {"scenario": "small", "axes": {"seed": [1, 2]}, "max_cells": 1}}
        )
        assert normalized["kind"] == "sweep"


class TestAdmission:
    def _scheduler(self, tmp_path, **kw):
        # Never started: submissions stay QUEUED, so admission limits are
        # deterministic.
        return Scheduler(ServeConfig(state_dir=tmp_path / "state", **kw))

    def _spec(self, seed, tenant="default"):
        spec = json.loads(json.dumps(STUDY))
        spec["spec"]["overrides"]["seed"] = seed
        spec["tenant"] = tenant
        return spec

    def test_queue_full_rejects(self, tmp_path):
        scheduler = self._scheduler(tmp_path, max_queue=2, tenant_quota=99)
        scheduler.submit(self._spec(1))
        scheduler.submit(self._spec(2))
        with pytest.raises(QueueFullError):
            scheduler.submit(self._spec(3))
        scheduler.journal.close()

    def test_tenant_quota_rejects_but_other_tenants_proceed(self, tmp_path):
        scheduler = self._scheduler(tmp_path, max_queue=99, tenant_quota=1)
        scheduler.submit(self._spec(1, tenant="alice"))
        with pytest.raises(QuotaExceededError):
            scheduler.submit(self._spec(2, tenant="alice"))
        cid, _, created = scheduler.submit(self._spec(2, tenant="bob"))
        assert created
        scheduler.journal.close()

    def test_dedup_bypasses_admission(self, tmp_path):
        """A re-submission of a queued campaign is free — it never counts
        against the queue bound."""
        scheduler = self._scheduler(tmp_path, max_queue=1, tenant_quota=99)
        cid, _, created = scheduler.submit(self._spec(1))
        assert created
        again, _, created = scheduler.submit(self._spec(1))
        assert again == cid and not created
        scheduler.journal.close()


class TestSchedulerLifecycle:
    def test_study_runs_to_done_and_dedups_from_store(self, tmp_path):
        scheduler = Scheduler(ServeConfig(state_dir=tmp_path / "state"))
        scheduler.start()
        cid, view, created = scheduler.submit(STUDY)
        assert created and view["status"] == "QUEUED"
        assert scheduler.wait(cid, timeout_s=300) == "DONE"
        result = json.loads(scheduler.result_bytes(cid))
        assert result["format"] == "repro-serve-result-v1"
        assert result["status"] == "DONE" and result["lost"] == []
        first_provenance = scheduler.campaigns[cid]["provenance"]
        assert first_provenance["cache_misses"] >= 1

        # Identical re-submission: answered instantly, no recomputation.
        again, view, created = scheduler.submit(STUDY)
        assert again == cid and not created and view["status"] == "DONE"
        scheduler.drain()

    def test_timeline_runs_to_done_with_coverage(self, tmp_path):
        scheduler = Scheduler(ServeConfig(state_dir=tmp_path / "state"))
        scheduler.start()
        cid, _, _ = scheduler.submit(TIMELINE)
        assert scheduler.wait(cid, timeout_s=300) == "DONE"
        result = json.loads(scheduler.result_bytes(cid))
        assert result["coverage"] == {"timeline.epochs": {"lost": 0, "total": 2}}
        assert result["report"]["format"] == "repro-timeline-v1"
        scheduler.drain()

    def test_invalid_campaign_goes_lost_never_crashes_the_loop(self, tmp_path):
        """An execution-time failure marks the campaign LOST; the
        scheduler thread survives to run the next campaign."""
        scheduler = Scheduler(ServeConfig(state_dir=tmp_path / "state"))
        # Sneak a spec past validation, then break it for execution.
        cid, _, _ = scheduler.submit(STUDY)
        scheduler.campaigns[cid]["spec"] = {"kind": "study", "tenant": "default",
                                            "spec": {"scenario": "vanished"},
                                            "faults": None, "resilience": None}
        scheduler.start()
        assert scheduler.wait(cid, timeout_s=60) == "LOST"
        assert "vanished" in scheduler.campaigns[cid]["error"]
        # Re-submitting the (valid) spec re-queues the lost campaign.
        again, view, created = scheduler.submit(STUDY)
        assert again == cid and created
        assert scheduler.wait(cid, timeout_s=300) == "DONE"
        scheduler.drain()


def _get(url):
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


class TestHTTPSurface:
    @pytest.fixture()
    def server(self, tmp_path):
        server = ReproServer(ServeConfig(state_dir=tmp_path / "state"))
        server.start()
        yield server
        server.shutdown()

    def test_full_lifecycle_over_http(self, server):
        code, _, body = _get(server.url + "/healthz")
        assert code == 200 and body["status"] == "ok"

        code, _, body = _post(server.url + "/campaigns", STUDY)
        assert code == 202 and body["created"] and body["status"] == "QUEUED"
        cid = body["campaign"]

        # The result endpoint backpressures while the campaign runs.
        code, headers, _ = _get(f"{server.url}/campaigns/{cid}/result")
        if code == 409:
            assert "Retry-After" in headers
        server.scheduler.wait(cid, timeout_s=300)

        code, _, body = _get(f"{server.url}/campaigns/{cid}/status")
        assert code == 200 and body["status"] == "DONE"
        assert body["coverage"] == {"sweep.cells": {"lost": 0, "total": 1}}

        code, _, body = _get(f"{server.url}/campaigns/{cid}/result")
        assert code == 200 and body["campaign"] == cid

        # Dedup over HTTP: 200, not 202.
        code, _, body = _post(server.url + "/campaigns", STUDY)
        assert code == 200 and not body["created"] and body["status"] == "DONE"

        code, _, body = _get(server.url + "/campaigns")
        assert code == 200 and [c["campaign"] for c in body["campaigns"]] == [cid]

        code, _, body = _get(server.url + "/telemetry?limit=10")
        assert code == 200 and body["total_lines"] >= 1
        events = {event["event"] for event in body["events"]}
        assert "serve.finished" in events or body["total_lines"] > 10

    def test_error_codes(self, server):
        assert _post(server.url + "/campaigns", {"kind": "nope"})[0] == 400
        assert _get(server.url + "/campaigns/zzz/status")[0] == 404
        assert _get(server.url + "/campaigns/zzz/result")[0] == 404
        assert _get(server.url + "/nope")[0] == 404
        code, _, _ = _get(server.url + "/telemetry?limit=abc")
        assert code == 400

    def test_queue_full_maps_to_429_with_retry_after(self, tmp_path):
        server = ReproServer(ServeConfig(state_dir=tmp_path / "state", max_queue=1))
        # Scheduler deliberately not started: the queue cannot drain.
        server._serve_thread = threading.Thread(
            target=server.httpd.serve_forever, daemon=True
        )
        server._serve_thread.start()
        try:
            assert _post(server.url + "/campaigns", STUDY)[0] == 202
            code, headers, _ = _post(
                server.url + "/campaigns",
                {**STUDY, "tenant": "other"},
            )
            assert code == 429 and "Retry-After" in headers
        finally:
            server.httpd.shutdown()
            server.httpd.server_close()
            server.scheduler.journal.close()

    def test_endpoint_file_records_the_bound_address(self, tmp_path):
        server = ReproServer(ServeConfig(state_dir=tmp_path / "state"))
        endpoint = json.loads((tmp_path / "state" / "endpoint.json").read_text())
        assert endpoint["port"] == server.port
        server.httpd.server_close()
        server.scheduler.journal.close()
