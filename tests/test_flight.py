"""Tests for the executor flight recorder (repro.parallel.flight)."""

import pytest

from repro.parallel.flight import (
    MIN_SHARDS_FOR_STRAGGLERS,
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
    ShardFlight,
)


def _record_uniform(recorder: FlightRecorder, label: str, n: int, execute_s: float = 0.1) -> None:
    for i in range(n):
        recorder.record(
            label,
            shard=i,
            worker=f"pid-{i % 2}",
            queue_wait_s=0.01,
            execute_s=execute_s,
            started_s=i * execute_s,
        )


class TestShardFlight:
    def test_finished_and_json(self):
        flight = ShardFlight(
            label="campaign",
            shard=3,
            worker="pid-7",
            queue_wait_s=0.05,
            execute_s=0.2,
            attempt=1,
            started_s=1.0,
        )
        assert flight.finished_s == pytest.approx(1.2)
        data = flight.to_json()
        assert data == {
            "label": "campaign",
            "shard": 3,
            "worker": "pid-7",
            "queue_wait_ms": 50.0,
            "execute_ms": 200.0,
            "attempt": 1,
            "payload_bytes": 0,
            "shm": False,
        }


class TestFlightRecorder:
    def test_record_clamps_negative_times(self):
        recorder = FlightRecorder()
        recorder.record("x", 0, "w", queue_wait_s=-0.5, execute_s=-1.0)
        assert recorder.records[0].queue_wait_s == 0.0
        assert recorder.records[0].execute_s == 0.0

    def test_labels_first_seen_order(self):
        recorder = FlightRecorder()
        recorder.record("b", 0, "w", 0.0, 0.1)
        recorder.record("a", 0, "w", 0.0, 0.1)
        recorder.record("b", 1, "w", 0.0, 0.1)
        assert recorder.labels() == ["b", "a"]

    def test_makespan_from_timeline(self):
        recorder = FlightRecorder()
        recorder.record("x", 0, "w", 0.0, execute_s=0.3, started_s=1.0)
        recorder.record("x", 1, "w", 0.0, execute_s=0.5, started_s=1.2)
        assert recorder.makespan_s() == pytest.approx(0.7)  # 1.0 .. 1.7
        assert FlightRecorder().makespan_s() == 0.0

    def test_worker_utilization(self):
        recorder = FlightRecorder()
        # Two workers over a 1 s makespan: one busy 0.8 s, one 0.4 s.
        recorder.record("x", 0, "pid-1", 0.0, execute_s=0.8, started_s=0.0)
        recorder.record("x", 1, "pid-2", 0.0, execute_s=0.4, started_s=0.6)
        stats = recorder.worker_utilization()
        assert set(stats) == {"pid-1", "pid-2"}
        assert stats["pid-1"]["utilization"] == pytest.approx(0.8)
        assert stats["pid-2"]["utilization"] == pytest.approx(0.4)
        assert stats["pid-1"]["shards"] == 1

    def test_stragglers_flagged_over_factor_times_median(self):
        recorder = FlightRecorder(straggler_factor=3.0)
        _record_uniform(recorder, "campaign", 6, execute_s=0.1)
        recorder.record("campaign", 6, "pid-0", 0.0, execute_s=0.5)
        flagged = recorder.stragglers()
        assert [f.shard for f in flagged] == [6]

    def test_small_stages_never_flagged(self):
        recorder = FlightRecorder()
        _record_uniform(recorder, "tiny", MIN_SHARDS_FOR_STRAGGLERS - 2, execute_s=0.01)
        recorder.record("tiny", 99, "w", 0.0, execute_s=10.0)
        # 3 shards total: below the minimum, so even a 1000x outlier stays unflagged.
        assert recorder.stragglers() == []

    def test_zero_median_stage_skipped(self):
        recorder = FlightRecorder()
        _record_uniform(recorder, "instant", 5, execute_s=0.0)
        assert recorder.stragglers() == []

    def test_queue_wait_fraction(self):
        recorder = FlightRecorder()
        recorder.record("x", 0, "w", queue_wait_s=1.0, execute_s=3.0)
        assert recorder.queue_wait_fraction() == pytest.approx(0.25)
        assert FlightRecorder().queue_wait_fraction() == 0.0

    def test_to_json_summary_shape(self):
        recorder = FlightRecorder()
        _record_uniform(recorder, "campaign", 5)
        data = recorder.to_json()
        assert data["shards"] == 5
        assert set(data) == {
            "shards",
            "makespan_s",
            "queue_wait_fraction",
            "workers",
            "payload",
            "pools",
            "stragglers",
        }
        assert set(data["workers"]) == {"pid-0", "pid-1"}

    def test_payload_stats_rollup(self):
        recorder = FlightRecorder()
        recorder.record("x", 0, "w", 0.0, 0.1, payload_bytes=100, shm=True)
        recorder.record("x", 1, "w", 0.0, 0.1, payload_bytes=300, shm=True)
        recorder.record("x", 2, "w", 0.0, 0.1)  # unmeasured (serial fallback)
        stats = recorder.payload_stats()
        assert stats == {
            "measured_shards": 2,
            "total_bytes": 400,
            "max_bytes": 300,
            "shm_shards": 2,
        }
        assert "via shared memory" in recorder.render()

    def test_set_pool_lands_in_json_and_render(self):
        recorder = FlightRecorder()
        recorder.record("campaign", 0, "w", 0.0, 0.1)
        recorder.set_pool(
            "campaign",
            {"pool": "pool-1-0", "workers": 2, "restarts": 0, "persistent": True, "stages_served": 1},
        )
        recorder.set_pool("clustering", {"pool": "ephemeral", "workers": 2, "restarts": 1, "persistent": False})
        assert recorder.to_json()["pools"]["campaign"]["pool"] == "pool-1-0"
        text = recorder.render()
        assert "pool campaign: pool-1-0" in text
        assert "ephemeral" in text

    def test_render(self):
        recorder = FlightRecorder()
        _record_uniform(recorder, "campaign", 6, execute_s=0.1)
        recorder.record("campaign", 6, "pid-0", 0.0, execute_s=0.9, started_s=0.0)
        text = recorder.render()
        assert "worker" in text and "utilization" in text
        assert "STRAGGLER campaign[6] on pid-0" in text
        assert "queue-wait share" in text
        assert FlightRecorder().render() == "no shard flights recorded"

    def test_render_without_stragglers(self):
        recorder = FlightRecorder()
        recorder.record("x", 0, "w", 0.0, 0.1)
        assert "stragglers: none" in recorder.render()


class TestNullFlightRecorder:
    def test_inert(self):
        assert isinstance(NULL_FLIGHT, NullFlightRecorder)
        assert not NULL_FLIGHT.enabled
        NULL_FLIGHT.record("x", 0, "w", 0.0, 0.1)
        assert NULL_FLIGHT.records == ()
        assert NULL_FLIGHT.labels() == []
        assert NULL_FLIGHT.worker_utilization() == {}
        assert NULL_FLIGHT.stragglers() == []
        assert NULL_FLIGHT.to_json()["shards"] == 0
        assert NULL_FLIGHT.render() == "no shard flights recorded"


def _double_shard(shard, telemetry):
    return sum(shard.items) * 2


class TestExecutorIntegration:
    def test_serial_executor_records_flights(self):
        import io

        from repro.obs import Telemetry
        from repro.parallel import SerialExecutor, Shard

        telemetry = Telemetry.capture(stream=io.StringIO())
        shards = [Shard(index=i, items=(i,)) for i in range(5)]
        results = SerialExecutor().map_shards(_double_shard, shards, telemetry, "double")
        assert results == [0, 2, 4, 6, 8]
        assert len(telemetry.flight.records) == 5
        assert all(r.worker == "serial" for r in telemetry.flight.records)
        assert telemetry.flight.labels() == ["double"]
        assert telemetry.metrics.histogram("flight.execute_ms").count == 5

    def test_disabled_telemetry_records_nothing(self):
        from repro.obs import NULL_TELEMETRY
        from repro.parallel import SerialExecutor, Shard

        SerialExecutor().map_shards(
            _double_shard, [Shard(index=0, items=(1,))], NULL_TELEMETRY, "noop"
        )
        assert NULL_TELEMETRY.flight.records == ()
