"""Tests for whole-Internet generation (and asn/ixp/facility pieces)."""

import pytest

from repro.topology.asn import AS, ASRegistry, ASRole
from repro.topology.facilities import jittered_coordinates
from repro.topology.generator import Internet, InternetConfig, generate_internet
from repro.topology.geo import default_world
from repro._util import great_circle_m, make_rng


@pytest.fixture(scope="module")
def net() -> Internet:
    return generate_internet(InternetConfig(seed=3, n_access_isps=50, n_ixps=20))


class TestRegistry:
    def test_duplicate_asn_rejected(self):
        registry = ASRegistry()
        world = default_world()
        a = AS(asn=1, name="a", role=ASRole.ACCESS, country_code="US", cities=world.cities_in("US")[:1])
        registry.add(a)
        with pytest.raises(ValueError):
            registry.add(AS(asn=1, name="b", role=ASRole.ACCESS, country_code="US", cities=a.cities))

    def test_role_queries(self, net):
        assert all(a.role is ASRole.ACCESS for a in net.registry.with_role(ASRole.ACCESS))
        assert all(a.is_isp for a in net.registry.isps)

    def test_iteration_sorted_by_asn(self, net):
        asns = [a.asn for a in net.registry]
        assert asns == sorted(asns)


class TestGeneratedInternet:
    def test_deterministic(self):
        config = InternetConfig(seed=9, n_access_isps=20)
        a = generate_internet(config)
        b = generate_internet(config)
        assert [x.asn for x in a.registry] == [x.asn for x in b.registry]
        assert [x.users for x in a.access_isps] == [x.users for x in b.access_isps]

    def test_different_seeds_differ(self):
        # User counts are rank-deterministic; what varies with the seed is
        # the drawn structure (city presence, peering).
        a = generate_internet(InternetConfig(seed=1, n_access_isps=20))
        b = generate_internet(InternetConfig(seed=2, n_access_isps=20))
        cities_a = [tuple(c.iata for c in isp.cities) for isp in a.access_isps]
        cities_b = [tuple(c.iata for c in isp.cities) for isp in b.access_isps]
        assert cities_a != cities_b

    def test_hypergiants_present_with_real_asns(self, net):
        assert net.hypergiant_as("Google").asn == 15169
        assert net.hypergiant_as("Netflix").asn == 2906
        assert net.hypergiant_as("Meta").asn == 32934
        assert net.hypergiant_as("Akamai").asn == 20940

    def test_every_access_isp_reaches_every_hypergiant(self, net):
        for hypergiant in net.hypergiant_ases.values():
            routes = net.graph.routes_to(hypergiant)
            for isp in net.access_isps:
                assert isp in routes

    def test_every_country_has_isps(self, net):
        covered = {isp.country_code for isp in net.access_isps}
        assert covered == {c.code for c in net.world.countries}

    def test_users_distributed_zipf_like(self, net):
        us_isps = sorted(
            (isp for isp in net.access_isps if isp.country_code == "US"),
            key=lambda a: -a.users,
        )
        assert us_isps[0].users > 2 * us_isps[-1].users

    def test_country_users_roughly_conserved(self, net):
        for country in net.world.countries:
            total = sum(i.users for i in net.access_isps if i.country_code == country.code)
            assert total == pytest.approx(country.internet_users, rel=0.02)

    def test_every_isp_has_address_space(self, net):
        for isp in net.isps:
            assert net.plan.prefixes_of(isp)

    def test_every_isp_has_facility_per_city(self, net):
        for isp in net.isps:
            facilities = net.facilities_of(isp)
            assert len(facilities) >= len(isp.cities)
            assert {f.city for f in facilities} == set(isp.cities)

    def test_facility_ids_unique(self, net):
        ids = [f.facility_id for f in net.all_facilities]
        assert len(ids) == len(set(ids))

    def test_ixps_have_hypergiant_members(self, net):
        for ixp in net.ixps:
            for hypergiant in net.hypergiant_ases.values():
                assert ixp.is_member(hypergiant)

    def test_ixp_fabric_addresses_resolve_to_members(self, net):
        ixp = net.ixps[0]
        member = ixp.members[0]
        address = ixp.address_of(member)
        assert address in ixp.fabric_prefix
        assert ixp.owner_of_address(address) is member

    def test_ixp_peering_edges_reference_real_ixps(self, net):
        ids = {ixp.ixp_id for ixp in net.ixps}
        for isp in net.access_isps:
            for hypergiant in net.hypergiant_ases.values():
                if net.graph.are_peers(isp, hypergiant):
                    edge = net.graph.peer_edge(isp, hypergiant)
                    if edge.has_ixp:
                        assert edge.ixp_id in ids

    def test_config_validation(self):
        with pytest.raises(ValueError):
            InternetConfig(n_access_isps=1)
        with pytest.raises(ValueError):
            InternetConfig(n_tier1=1)


class TestJitteredCoordinates:
    def test_within_radius(self, net):
        city = net.world.city_by_iata("lhr")
        rng = make_rng(4)
        for _ in range(50):
            lat, lon = jittered_coordinates(city, rng, max_offset_km=15.0)
            assert great_circle_m(city.lat, city.lon, lat, lon) <= 16_000

    def test_zero_offset(self, net):
        city = net.world.city_by_iata("lhr")
        lat, lon = jittered_coordinates(city, make_rng(1), max_offset_km=0.0)
        assert (lat, lon) == pytest.approx((city.lat, city.lon))
