"""Tests for the text-mode figure rendering."""

import numpy as np
import pytest

from repro.topology.geo import default_world
from repro.viz import render_ccdf, render_world_map
from repro.viz.ccdf import SERIES_GLYPHS
from repro.viz.worldmap import SHADE_RAMP, shade_for


class TestCcdf:
    def test_basic_plot_structure(self):
        x = np.linspace(0, 1, 20)
        y = 1.0 - x
        text = render_ccdf({"s": (x, y)}, x_range=(0, 1))
        lines = text.splitlines()
        assert any("legend" in line for line in lines)
        assert any("1.00" in line for line in lines)
        assert any("0.00" in line for line in lines)

    def test_two_series_distinct_glyphs(self):
        x = np.linspace(0, 1, 10)
        text = render_ccdf({"a": (x, 1 - x), "b": (x, (1 - x) ** 2)}, x_range=(0, 1))
        assert SERIES_GLYPHS[0] in text and SERIES_GLYPHS[1] in text
        assert f"{SERIES_GLYPHS[0]} a" in text and f"{SERIES_GLYPHS[1]} b" in text

    def test_too_many_series_rejected(self):
        x = np.array([0.0, 1.0])
        y = np.array([1.0, 0.0])
        series = {f"s{i}": (x, y) for i in range(5)}
        with pytest.raises(ValueError):
            render_ccdf(series)

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            render_ccdf({"s": (np.array([1.0]), np.array([1.0, 0.5]))})

    def test_degenerate_x_range_handled(self):
        text = render_ccdf({"s": (np.array([3.0]), np.array([1.0]))})
        assert "legend" in text

    def test_study_figure2_renders(self, small_study):
        from repro.experiments.figure2 import run_figure2

        result = run_figure2(small_study)
        series = {f"xi={xi}": result.ccdf(xi) for xi in sorted(result.concentrations)}
        text = render_ccdf(series, x_range=(0.0, 1.0))
        assert "xi=0.1" in text and "xi=0.9" in text


class TestWorldMap:
    def test_shade_ramp_monotone(self):
        indices = [SHADE_RAMP.index(shade_for(v)) for v in (0.0, 0.3, 0.6, 1.0)]
        assert indices == sorted(indices)
        assert shade_for(0.0) == " " and shade_for(1.0) == "@"

    def test_map_contains_land_and_ocean(self):
        world = default_world()
        values = {c.code: 1.0 for c in world.countries}
        text = render_world_map(world, values)
        lines = text.splitlines()
        assert any("@" in line for line in lines)
        assert any(line.strip() == "" or " " in line for line in lines)

    def test_values_control_shading(self):
        world = default_world()
        dark = render_world_map(world, {c.code: 1.0 for c in world.countries})
        light = render_world_map(world, {c.code: 0.05 for c in world.countries})
        assert dark.count("@") > light.count("@")

    def test_missing_countries_default_light(self):
        world = default_world()
        text = render_world_map(world, {})
        map_lines = [line for line in text.splitlines() if not line.startswith("legend")]
        assert "@" not in "\n".join(map_lines)

    def test_title_and_legend(self):
        world = default_world()
        text = render_world_map(world, {}, title="Figure 1a")
        assert text.splitlines()[0] == "Figure 1a"
        assert "legend" in text

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            render_world_map(default_world(), {}, width=5)


class TestSparkline:
    def test_shape_and_bounds(self):
        from repro.viz import render_sparkline

        text = render_sparkline([1.0, 2.0, 3.0, 2.0, 1.0], label="demand")
        assert text.startswith("demand: ")
        assert "[1.00..3.00]" in text

    def test_flat_series_midline(self):
        from repro.viz import render_sparkline
        from repro.viz.sparkline import SPARK_CHARS

        text = render_sparkline([5.0, 5.0, 5.0])
        midline = SPARK_CHARS[round(0.5 * (len(SPARK_CHARS) - 1))]
        assert midline * 3 in text

    def test_empty_rejected(self):
        from repro.viz import render_sparkline

        with pytest.raises(ValueError):
            render_sparkline([])
