"""Kill-and-resume guarantees for sweep campaigns.

The acceptance property of this subsystem: interrupt a campaign after k
of n cells, resume it against the same store, and (a) only the n-k
remaining cells are computed (visible through store hit/miss counters),
(b) the final report is byte-identical to an uninterrupted campaign's.
"""

import json

import pytest

from repro.core.pipeline import StudyConfig
from repro.faults import FaultPlan, FaultSpec, WorkerCrashError
from repro.parallel import ParallelConfig, process_backend_available
from repro.resilience import ErrorBudget, ResilienceConfig, RetryPolicy
from repro.store import StudyStore
from repro.sweep import MetricSpec, ParameterGrid, run_campaign
from repro.topology.generator import InternetConfig

pytestmark = pytest.mark.store


def _n_detections(study) -> float:
    return float(len(study.latest_inventory))


METRICS = (MetricSpec("detections", _n_detections, 1.0, 1e9, "n/a"),)


def _grid(n_cells: int = 3) -> ParameterGrid:
    base = StudyConfig(
        internet=InternetConfig(seed=3, n_access_isps=40, n_ixps=20),
        n_vantage_points=24,
        seed=3,
    )
    return ParameterGrid.of(base, {"seed,internet.seed": list(range(3, 3 + n_cells))})


def _report_bytes(report) -> bytes:
    return json.dumps(report.to_json(), sort_keys=True).encode()


class _AbortAfter:
    """Serial cell hook that kills the campaign after ``n`` cells."""

    def __init__(self, n: int):
        self.n = n
        self.seen = 0

    def __call__(self, result) -> None:
        self.seen += 1
        if self.seen >= self.n:
            raise KeyboardInterrupt("simulated operator abort")


def _resume_roundtrip(parallel: ParallelConfig | None, tmp_path, k: int = 1) -> None:
    grid = _grid(3)

    # Interrupted campaign: only the first k cells complete.
    store = StudyStore(tmp_path / "store")
    partial_report = run_campaign(grid, METRICS, store=store, parallel=parallel, max_cells=k)
    assert partial_report.cache_misses == k
    assert store.stats().entries == k

    # Resume: the k stored cells are hits, the n-k rest run exactly once.
    resumed = run_campaign(grid, METRICS, store=store, parallel=parallel)
    assert resumed.cache_hits == k
    assert resumed.cache_misses == grid.n_cells - k
    assert store.stats().entries == grid.n_cells

    # Replay: everything is now durable, nothing recomputes.
    replay = run_campaign(grid, METRICS, store=store, parallel=parallel)
    assert replay.cache_hits == grid.n_cells
    assert replay.cache_misses == 0

    # Uninterrupted reference in a pristine store: identical report bytes.
    reference = run_campaign(
        grid, METRICS, store=StudyStore(tmp_path / "fresh-store"), parallel=parallel
    )
    assert _report_bytes(resumed) == _report_bytes(reference)
    assert _report_bytes(replay) == _report_bytes(reference)
    resumed_path = resumed.write(tmp_path / "resumed.json")
    reference_path = reference.write(tmp_path / "reference.json")
    assert resumed_path.read_bytes() == reference_path.read_bytes()


class TestResumeSerial:
    def test_interrupt_resume_replay(self, tmp_path):
        _resume_roundtrip(None, tmp_path, k=1)

    def test_abort_mid_campaign_via_hook(self, tmp_path):
        """A hard abort (exception mid-dispatch) still leaves completed
        cells durable, and the resume recomputes only the remainder."""
        grid = _grid(3)
        store = StudyStore(tmp_path / "store")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(grid, METRICS, store=store, cell_hook=_AbortAfter(2))
        assert store.stats().entries == 2

        resumed = run_campaign(grid, METRICS, store=store)
        assert resumed.cache_hits == 2
        assert resumed.cache_misses == 1

        reference = run_campaign(grid, METRICS, store=StudyStore(tmp_path / "fresh-store"))
        assert _report_bytes(resumed) == _report_bytes(reference)

    def test_storeless_campaign_never_reports_hits(self, tmp_path):
        grid = _grid(2)
        report = run_campaign(grid, METRICS)
        assert report.cache_hits == 0
        assert report.cache_misses == 2


def _crash_plan(n_cells: int) -> FaultPlan:
    """A plan whose sweep.shard crash spares cell 0 but kills a later one.

    Searched deterministically over seeds, so the test never depends on a
    magic constant staying lucky across hash changes.
    """
    spec = FaultSpec(site="sweep.shard", kind="crash", rate=0.5)
    for seed in range(200):
        plan = FaultPlan(seed=seed, specs=(spec,))
        fires = [plan.fires_ever("sweep.shard", i) for i in range(n_cells)]
        if not fires[0] and any(fires[1:]):
            return plan
    raise AssertionError("no seed under 200 produced the wanted fire pattern")


class TestCrashResume:
    def test_worker_crash_mid_campaign_then_clean_resume(self, tmp_path):
        """Satellite case: a cell's worker crashes mid-shard (injected via
        repro.faults, no resilience layer), the campaign dies, but every
        completed cell is durable — and the resumed, fault-free campaign's
        report is byte-identical to an uninterrupted reference."""
        grid = _grid(3)
        plan = _crash_plan(grid.n_cells)
        store = StudyStore(tmp_path / "store")
        with pytest.raises(WorkerCrashError):
            run_campaign(grid, METRICS, store=store, faults=plan)
        survived = store.stats().entries
        assert 1 <= survived < grid.n_cells  # cell 0 landed, the crash cell did not

        resumed = run_campaign(grid, METRICS, store=store)
        assert resumed.cache_hits == survived
        assert resumed.cache_misses == grid.n_cells - survived
        assert resumed.n_failed == 0

        reference = run_campaign(grid, METRICS, store=StudyStore(tmp_path / "fresh-store"))
        assert _report_bytes(resumed) == _report_bytes(reference)

    def test_permanent_cell_fault_degrades_then_resume_heals(self, tmp_path):
        """With the resilience layer and a permissive budget, a permanently
        crashing cell becomes a ``status="failed"`` row instead of killing
        the campaign; failed cells are never persisted, so a later clean
        run computes them and restores the reference report."""
        grid = _grid(3)
        plan = _crash_plan(grid.n_cells)
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2),
            fallback_in_process=False,
            budget=ErrorBudget(shard_loss_fraction=1.0),
        )
        store = StudyStore(tmp_path / "store")
        degraded = run_campaign(grid, METRICS, store=store, faults=plan, resilience=resilience)
        assert degraded.n_failed >= 1
        assert len(degraded.cells) == grid.n_cells
        failed = [cell for cell in degraded.cells if cell.status == "failed"]
        assert all(cell.values == {} for cell in failed)
        assert "FAILED" in degraded.render()
        assert store.stats().entries == grid.n_cells - len(failed)

        healed = run_campaign(grid, METRICS, store=store)
        assert healed.n_failed == 0
        assert healed.cache_misses == len(failed)
        reference = run_campaign(grid, METRICS, store=StudyStore(tmp_path / "fresh-store"))
        assert _report_bytes(healed) == _report_bytes(reference)


@pytest.mark.parallel
class TestResumeProcess:
    def test_interrupt_resume_replay(self, tmp_path):
        if not process_backend_available():
            pytest.skip("process executor backend unavailable")
        parallel = ParallelConfig(backend="process", workers=2)
        _resume_roundtrip(parallel, tmp_path, k=1)

    def test_serial_and_process_resumes_interchange(self, tmp_path):
        """A store written by a serial run must be readable by a process
        resume (and vice versa): the content address normalises the
        execution backend away."""
        if not process_backend_available():
            pytest.skip("process executor backend unavailable")
        grid = _grid(2)
        store = StudyStore(tmp_path / "store")
        run_campaign(grid, METRICS, store=store, max_cells=1)  # serial
        resumed = run_campaign(
            grid, METRICS, store=store, parallel=ParallelConfig(backend="process", workers=2)
        )
        assert resumed.cache_hits == 1
        assert resumed.cache_misses == 1
