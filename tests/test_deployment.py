"""Tests for hypergiant profiles, eligibility, placement, and growth."""

import numpy as np
import pytest

from repro._util import make_rng
from repro.deployment.eligibility import adoption_probability, meets_demand_threshold, select_hosting_isps
from repro.deployment.growth import build_deployment_history, derive_earlier_state, growth_percent
from repro.deployment.hypergiants import (
    DEFAULT_HYPERGIANT_PROFILES,
    HypergiantProfile,
    profile_by_name,
)
from repro.deployment.placement import DeploymentState, PlacementConfig, place_offnets


class TestProfiles:
    def test_four_defaults(self):
        assert {p.name for p in DEFAULT_HYPERGIANT_PROFILES} == {"Google", "Netflix", "Meta", "Akamai"}

    def test_lookup(self):
        assert profile_by_name("Google").traffic_share == pytest.approx(0.21)

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            profile_by_name("Cloudflare")

    def test_servable_share_arithmetic(self):
        # The paper's §3.2 sums: Google 21% x 80% = ~17%, Netflix 9% x 95% = ~9%.
        assert profile_by_name("Google").servable_traffic_share == pytest.approx(0.168, abs=0.001)
        assert profile_by_name("Netflix").servable_traffic_share == pytest.approx(0.0855, abs=0.001)

    def test_paper_growth_ratios(self):
        assert profile_by_name("Google").footprint_2021_ratio == pytest.approx(3810 / 4697)
        assert profile_by_name("Akamai").footprint_2021_ratio == 1.0

    def test_only_akamai_is_legacy(self):
        legacy = [p.name for p in DEFAULT_HYPERGIANT_PROFILES if p.legacy_deployment]
        assert legacy == ["Akamai"]

    def test_validation(self):
        with pytest.raises(ValueError):
            HypergiantProfile("X", 1.5, 0.5, 0.5, 1.0, 1000)


class TestEligibility:
    def test_threshold(self, small_internet):
        profile = profile_by_name("Akamai")
        small = next(i for i in small_internet.isps if i.users < profile.min_isp_users)
        assert not meets_demand_threshold(small, profile)
        assert adoption_probability(small, profile) == 0.0

    def test_restricted_market_blocks(self, small_internet):
        profile = profile_by_name("Google")
        cn_isps = [i for i in small_internet.access_isps if i.country_code == "CN"]
        assert cn_isps, "world model must include Chinese ISPs"
        for isp in cn_isps:
            assert adoption_probability(isp, profile) == 0.0

    def test_probability_grows_with_size(self, small_internet):
        profile = profile_by_name("Netflix")
        eligible = [i for i in small_internet.access_isps if meets_demand_threshold(i, profile)]
        eligible.sort(key=lambda i: i.users)
        assert adoption_probability(eligible[-1], profile) >= adoption_probability(eligible[0], profile)

    def test_probability_capped(self, small_internet):
        profile = profile_by_name("Google")
        assert all(
            adoption_probability(isp, profile) <= 0.97 for isp in small_internet.access_isps
        )

    def test_selection_deterministic(self, small_internet):
        profile = profile_by_name("Meta")
        a = select_hosting_isps(small_internet.isps, profile, make_rng(5))
        b = select_hosting_isps(small_internet.isps, profile, make_rng(5))
        assert [x.asn for x in a] == [x.asn for x in b]


class TestPlacement:
    def test_servers_have_unique_ips(self, state23):
        ips = [s.ip for s in state23.servers]
        assert len(ips) == len(set(ips))

    def test_server_ips_inside_hosting_isp(self, small_internet, state23):
        for server in state23.servers[:500]:
            assert small_internet.plan.owner_of(server.ip) is server.isp

    def test_facility_belongs_to_isp(self, state23):
        for server in state23.servers[:500]:
            assert server.facility.operator is server.isp

    def test_rack_in_facility(self, state23):
        for server in state23.servers[:500]:
            assert server.rack.facility is server.facility

    def test_rack_sharing_across_hypergiants_exists(self, state23):
        # The operator anecdote: same-rack colocation is "super common".
        shared = set()
        by_rack = {}
        for server in state23.servers:
            by_rack.setdefault(server.rack, set()).add(server.hypergiant)
        shared = [hgs for hgs in by_rack.values() if len(hgs) >= 2]
        assert shared

    def test_colocation_is_common(self, state23):
        multi = 0
        coloc = 0
        for isp in state23.hosting_isps():
            if len(state23.hypergiants_in(isp)) < 2:
                continue
            multi += 1
            facilities = {}
            for server in state23.servers_in(isp):
                facilities.setdefault(server.facility, set()).add(server.hypergiant)
            if any(len(hgs) >= 2 for hgs in facilities.values()):
                coloc += 1
        assert multi > 0
        # The paper: 81-95% of multi-HG ISPs colocate.
        assert coloc / multi > 0.8

    def test_deployment_lookup(self, state23):
        isp = state23.isps_hosting("Google")[0]
        deployment = state23.deployment_of("Google", isp)
        assert deployment is not None
        assert deployment.site_count >= 1
        assert deployment.facilities

    def test_server_at(self, state23):
        server = state23.servers[0]
        assert state23.server_at(server.ip) is server
        assert state23.server_at(1) is None

    def test_duplicate_deployment_rejected(self, state23):
        deployment = state23.deployments[0]
        with pytest.raises(ValueError):
            DeploymentState(epoch="x", deployments=[deployment, deployment])

    def test_placement_config_validation(self):
        with pytest.raises(ValueError):
            PlacementConfig(colocation_preference=1.5)
        with pytest.raises(ValueError):
            PlacementConfig(max_sites=0)

    def test_reserved_low_addresses(self, small_internet, state23):
        config = PlacementConfig()
        for server in state23.servers[:300]:
            prefix = small_internet.plan.prefixes_of(server.isp)[0]
            assert server.ip >= prefix.base + config.reserved_low_addresses

    def test_legacy_placed_first_colocates_less(self, small_internet):
        # Akamai (legacy) should have a lower fully-colocated rate than
        # Meta/Netflix at ground truth level across several seeds.
        def full_coloc_rate(state, hypergiant):
            full = total = 0
            for isp in state.isps_hosting(hypergiant):
                if len(state.hypergiants_in(isp)) < 2:
                    continue
                facility_hgs = {}
                for server in state.servers_in(isp):
                    facility_hgs.setdefault(server.facility, set()).add(server.hypergiant)
                own = [s.facility for s in state.servers_in(isp) if s.hypergiant == hypergiant]
                colocated = sum(1 for f in own if len(facility_hgs[f] - {hypergiant}) > 0)
                total += 1
                full += colocated == len(own)
            return full / total if total else 0.0

        rates_akamai = []
        rates_meta = []
        for seed in (1, 2, 3):
            state = place_offnets(small_internet, seed=seed)
            rates_akamai.append(full_coloc_rate(state, "Akamai"))
            rates_meta.append(full_coloc_rate(state, "Meta"))
        assert np.mean(rates_akamai) < np.mean(rates_meta)


class TestGrowth:
    def test_epochs_present(self, history):
        assert set(history.epochs) == {"2021", "2023"}
        assert history.latest.epoch == "2023"

    def test_monotone_growth(self, history):
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            before = {i.asn for i in history.state("2021").isps_hosting(hypergiant)}
            after = {i.asn for i in history.state("2023").isps_hosting(hypergiant)}
            assert before <= after

    def test_growth_percent_matches_ratios(self, history):
        # Growth is ratio-driven by construction; allow rounding slack.
        assert growth_percent(history, "Google") == pytest.approx(23.2, abs=2.0)
        assert growth_percent(history, "Netflix") == pytest.approx(37.4, abs=2.5)
        assert growth_percent(history, "Meta") == pytest.approx(16.9, abs=2.0)
        assert growth_percent(history, "Akamai") == pytest.approx(0.0, abs=0.01)

    def test_early_adopters_skew_large(self, small_internet):
        # The 2021 subset samples large ISPs preferentially; assert the
        # tendency across seeds and hypergiants (a single draw is noisy).
        wins = trials = 0
        for seed in (11, 12, 13):
            history = build_deployment_history(small_internet, seed=seed)
            for hypergiant in ("Google", "Netflix", "Meta"):
                kept = history.state("2021").isps_hosting(hypergiant)
                all_hosts = history.state("2023").isps_hosting(hypergiant)
                dropped = [i for i in all_hosts if i not in kept]
                if not kept or not dropped:
                    continue
                trials += 1
                wins += np.mean([i.users for i in kept]) > np.mean([i.users for i in dropped])
        assert trials >= 5
        assert wins / trials > 0.5

    def test_derive_earlier_state_full_ratio(self, state23):
        profile = profile_by_name("Akamai")
        earlier = derive_earlier_state(state23, (profile,), seed=0)
        assert len(earlier.isps_hosting("Akamai")) == len(state23.isps_hosting("Akamai"))

    def test_history_deterministic(self, small_internet):
        a = build_deployment_history(small_internet, seed=4)
        b = build_deployment_history(small_internet, seed=4)
        assert [d.isp.asn for d in a.state("2021").deployments] == [
            d.isp.asn for d in b.state("2021").deployments
        ]


class TestEpochSeries:
    def test_monotone_nested_footprints(self, small_internet):
        from repro.deployment.growth import build_epoch_series

        series = build_epoch_series(small_internet, seed=3)
        epochs = sorted(series.epochs)
        assert epochs == ["2017", "2019", "2021", "2023"]
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            previous: set[int] = set()
            for epoch in epochs:
                asns = {i.asn for i in series.state(epoch).isps_hosting(hypergiant)}
                assert previous <= asns
                previous = asns

    def test_cohosting_rises_through_time(self, small_internet):
        from repro.deployment.growth import build_epoch_series

        series = build_epoch_series(small_internet, seed=3)
        counts = []
        for epoch in sorted(series.epochs):
            state = series.state(epoch)
            counts.append(
                sum(1 for isp in state.hosting_isps() if len(state.hypergiants_in(isp)) >= 2)
            )
        assert counts == sorted(counts)

    def test_akamai_flat_others_ramp(self, small_internet):
        from repro.deployment.growth import build_epoch_series

        series = build_epoch_series(small_internet, seed=3)
        def count(hg, epoch):
            return len(series.state(epoch).isps_hosting(hg))

        akamai_growth = count("Akamai", "2023") / max(1, count("Akamai", "2017"))
        meta_growth = count("Meta", "2023") / max(1, count("Meta", "2017"))
        assert akamai_growth < 1.2
        assert meta_growth > 2.0


class TestEpochOrdering:
    """Satellite regression: calendar-aware epoch labels (not lexicographic)."""

    def test_parse_yearly_and_quarterly(self):
        from repro.deployment.growth import parse_epoch_label

        assert parse_epoch_label("2021") == (2021, 0)
        assert parse_epoch_label("2024Q3") == (2024, 3)
        assert parse_epoch_label("2024Q1") == (2024, 1)

    @pytest.mark.parametrize("label", ["", "21Q1", "2024Q5", "2024Q0", "2024q3", "someday", "2024-Q3"])
    def test_unparseable_labels_rejected(self, label):
        from repro.deployment.growth import parse_epoch_label

        with pytest.raises(ValueError, match="unparseable epoch label"):
            parse_epoch_label(label)

    def test_epoch_key_orders_mixed_labels(self):
        from repro.deployment.growth import epoch_key

        labels = ["2024Q3", "2023", "2024", "2023Q4", "2025Q1"]
        assert sorted(labels, key=epoch_key) == ["2023", "2023Q4", "2024", "2024Q3", "2025Q1"]

    def test_history_latest_is_calendar_greatest(self):
        from repro.deployment.growth import DeploymentHistory

        def snap(epoch):
            return DeploymentState(epoch=epoch, deployments=[])

        history = DeploymentHistory(
            epochs={label: snap(label) for label in ("2023", "2024Q3", "2024", "2023Q2")}
        )
        assert history.latest.epoch == "2024Q3"
        later = DeploymentHistory(
            epochs={label: snap(label) for label in ("2024Q4", "2025")}
        )
        assert later.latest.epoch == "2025"

    def test_history_latest_rejects_unparseable(self):
        from repro.deployment.growth import DeploymentHistory

        history = DeploymentHistory(
            epochs={"2023": DeploymentState(epoch="2023", deployments=[]),
                    "latest": DeploymentState(epoch="latest", deployments=[])}
        )
        with pytest.raises(ValueError, match="unparseable epoch label"):
            _ = history.latest

    def test_build_epoch_series_sorts_by_calendar(self, small_internet):
        from repro.deployment.growth import build_epoch_series

        series = build_epoch_series(
            small_internet,
            trajectories={"Google": {"2021": 0.6, "2022Q2": 0.8, "2023": 1.0}},
            seed=3,
        )
        nested = [
            {i.asn for i in series.state(epoch).isps_hosting("Google")}
            for epoch in ("2021", "2022Q2", "2023")
        ]
        assert nested[0] <= nested[1] <= nested[2]
