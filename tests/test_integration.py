"""Cross-module integration tests: the full pipeline, checked stage by
stage against ground truth, on a freshly built (non-fixture) scenario."""

import numpy as np
import pytest

from repro.clustering.sites import rand_index
from repro.core.pipeline import StudyConfig, run_study
from repro.mlab.matrix import LatencyCampaignConfig
from repro.topology.generator import InternetConfig


@pytest.fixture(scope="module")
def study():
    # A distinct seed from the shared small fixture, to catch anything
    # accidentally tuned to one realisation.
    return run_study(
        StudyConfig(
            internet=InternetConfig(seed=23, n_access_isps=45, n_ixps=20),
            n_vantage_points=30,
            seed=23,
        )
    )


class TestScanToDetection:
    def test_detection_agrees_with_ground_truth(self, study):
        state = study.history.state("2023")
        detected_ips = {d.ip for d in study.latest_inventory.detections}
        truth_ips = {s.ip for s in state.servers}
        assert detected_ips <= truth_ips
        assert len(detected_ips) > 0.9 * len(truth_ips)

    def test_epoch_counts_grow(self, study):
        for hypergiant in ("Google", "Netflix", "Meta"):
            assert study.inventories["2023"].isp_count(hypergiant) > study.inventories[
                "2021"
            ].isp_count(hypergiant)


class TestMeasurementToClustering:
    def test_matrix_targets_are_detected_ips(self, study):
        detected = {d.ip for d in study.latest_inventory.detections}
        assert set(study.matrix.ips) <= detected

    def test_clusters_respect_isp_boundaries(self, study):
        state = study.history.state("2023")
        for asn, clustering in study.clusterings[0.9].items():
            for cluster in clustering.clusters:
                owners = {state.server_at(ip).isp.asn for ip in cluster}
                assert owners == {asn}

    def test_clusters_are_geo_coherent(self, study):
        state = study.history.state("2023")
        for clustering in study.clusterings[0.9].values():
            for cluster in clustering.clusters:
                cities = {state.server_at(ip).facility.city.name for ip in cluster}
                countries = {state.server_at(ip).facility.city.country_code for ip in cluster}
                # Latency clustering can merge nearby cities but must not
                # merge continents.
                assert len(countries) <= 2

    def test_mean_rand_index_reflects_xi_bounds(self, study):
        # xi=0.9 (conservative) recovers true facilities well; xi=0.1
        # fragments noisy plateaus at low vantage counts — the paper treats
        # the two settings as bounds on the truth, so we assert the
        # conservative bound is accurate and the permissive one at least
        # respects the ordering.
        state = study.history.state("2023")
        means = {}
        for xi in study.config.xis:
            scores = []
            for clustering in study.clusterings[xi].values():
                mapping = {}
                truth = np.array(
                    [
                        mapping.setdefault(state.server_at(ip).facility.facility_id, len(mapping))
                        for ip in clustering.ips
                    ]
                )
                scores.append(rand_index(clustering.labels, truth))
            means[xi] = np.mean(scores)
        assert means[0.9] > 0.8
        assert means[0.1] > 0.15
        assert means[0.9] >= means[0.1]


class TestEndToEndArtifacts:
    def test_all_tables_and_figures_computable(self, study):
        from repro.experiments.figure1 import run_figure1
        from repro.experiments.figure2 import run_figure2
        from repro.experiments.section32 import run_section32
        from repro.experiments.section41_capacity import run_section41
        from repro.experiments.section42_peering import run_section42
        from repro.experiments.section43_collateral import run_section43
        from repro.experiments.table1 import run_table1
        from repro.experiments.table2 import run_table2

        renders = [
            run_table1(study).render(),
            run_figure1(study).render(),
            run_table2(study).render(),
            run_figure2(study).render(),
            run_section32(study).render(),
            run_section41(study, covid_sample=10).render(),
            run_section42(study, n_regions=2).render(),
            run_section43(study, sample=10).render(),
        ]
        for text in renders:
            assert text.strip()

    def test_lossy_isps_reduce_analyzable_coverage(self, study):
        hosting = study.population.world_fraction(study.latest_inventory.hosting_isp_asns())
        analyzable = study.population.world_fraction(set(study.campaign.analyzable_isp_asns))
        assert analyzable < hosting

    def test_coverage_filter_scales_with_vantage_points(self):
        # With a tiny VP count the effective min_vps threshold adapts
        # (the paper's 100-of-163 is ~61%).
        study = run_study(
            StudyConfig(
                internet=InternetConfig(seed=5, n_access_isps=25),
                n_vantage_points=12,
                campaign=LatencyCampaignConfig(min_vps_per_isp=100),
                seed=5,
            )
        )
        assert study.campaign.analyzable_isp_asns
