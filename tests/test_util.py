"""Unit and property tests for :mod:`repro._util`."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util import (
    atomic_write_text,
    ccdf,
    format_percent,
    format_table,
    great_circle_m,
    make_rng,
    propagation_rtt_ms,
    require,
    require_fraction,
    require_non_negative,
    require_positive,
    spawn_rng,
    weighted_choice_without_replacement,
    zipf_weights,
)


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        assert make_rng(42).integers(0, 1_000_000) == make_rng(42).integers(0, 1_000_000)

    def test_make_rng_passes_through_generator(self):
        generator = np.random.default_rng(7)
        assert make_rng(generator) is generator

    def test_spawn_rng_differs_by_label(self):
        root = make_rng(1)
        a = spawn_rng(root, "a")
        root = make_rng(1)
        b = spawn_rng(root, "b")
        assert a.integers(0, 2**31) != b.integers(0, 2**31)

    def test_spawn_rng_same_label_same_parent_state_matches(self):
        a = spawn_rng(make_rng(1), "x")
        b = spawn_rng(make_rng(1), "x")
        assert a.integers(0, 2**31) == b.integers(0, 2**31)


class TestValidators:
    def test_require_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_require_passes(self):
        require(True, "never")

    @pytest.mark.parametrize("value", [-0.1, 1.1, 2.0])
    def test_require_fraction_rejects(self, value):
        with pytest.raises(ValueError):
            require_fraction(value, "v")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_require_fraction_accepts(self, value):
        assert require_fraction(value, "v") == value

    def test_require_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive(0, "v")

    def test_require_non_negative_accepts_zero(self):
        assert require_non_negative(0, "v") == 0.0


class TestZipf:
    def test_weights_sum_to_one(self):
        assert math.isclose(zipf_weights(10).sum(), 1.0)

    def test_weights_decrease(self):
        weights = zipf_weights(20, exponent=1.1)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_single_element(self):
        assert zipf_weights(1)[0] == 1.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            zipf_weights(0)

    @given(st.integers(1, 200), st.floats(0.1, 3.0))
    def test_property_normalised_and_positive(self, n, exponent):
        weights = zipf_weights(n, exponent)
        assert math.isclose(weights.sum(), 1.0, rel_tol=1e-9)
        assert (weights > 0).all()


class TestWeightedChoice:
    def test_without_replacement_distinct(self):
        rng = make_rng(3)
        items = list(range(20))
        chosen = weighted_choice_without_replacement(rng, items, [1.0] * 20, 10)
        assert len(set(chosen)) == 10

    def test_k_zero(self):
        assert weighted_choice_without_replacement(make_rng(0), [1, 2], [1, 1], 0) == []

    def test_heavy_weight_dominates(self):
        rng = make_rng(5)
        counts = 0
        for _ in range(200):
            chosen = weighted_choice_without_replacement(rng, ["a", "b"], [100.0, 1.0], 1)
            counts += chosen[0] == "a"
        assert counts > 150

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice_without_replacement(make_rng(0), [1], [1, 2], 1)


class TestGeodesy:
    def test_zero_distance(self):
        assert great_circle_m(10, 20, 10, 20) == pytest.approx(0.0)

    def test_known_distance_london_paris(self):
        distance = great_circle_m(51.51, -0.13, 48.86, 2.35)
        assert 330_000 < distance < 360_000

    def test_symmetry(self):
        assert great_circle_m(1, 2, 3, 4) == pytest.approx(great_circle_m(3, 4, 1, 2))

    def test_antipodal_half_circumference(self):
        distance = great_circle_m(0, 0, 0, 180)
        assert distance == pytest.approx(math.pi * 6_371_000, rel=1e-6)

    @given(
        st.floats(-90, 90), st.floats(-180, 180), st.floats(-90, 90), st.floats(-180, 180)
    )
    def test_property_non_negative_and_bounded(self, lat1, lon1, lat2, lon2):
        distance = great_circle_m(lat1, lon1, lat2, lon2)
        assert 0 <= distance <= math.pi * 6_371_000 * 1.0001

    def test_propagation_rtt_scales_with_distance(self):
        assert propagation_rtt_ms(2_000_000) == pytest.approx(2 * propagation_rtt_ms(1_000_000))

    def test_propagation_rtt_inflation(self):
        assert propagation_rtt_ms(1_000_000, 2.0) == pytest.approx(2 * propagation_rtt_ms(1_000_000))

    def test_propagation_rejects_deflation(self):
        with pytest.raises(ValueError):
            propagation_rtt_ms(1000, 0.9)

    def test_light_speed_sanity(self):
        # 1000 km of fibre: ~5 ms one way, ~10 ms RTT.
        assert propagation_rtt_ms(1_000_000) == pytest.approx(10.0)


class TestCcdf:
    def test_simple_unweighted(self):
        values, tail = ccdf([1.0, 2.0, 3.0])
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert tail.tolist() == pytest.approx([1.0, 2 / 3, 1 / 3])

    def test_weighted(self):
        values, tail = ccdf([1.0, 2.0], weights=[1.0, 3.0])
        assert tail.tolist() == pytest.approx([1.0, 0.75])

    def test_empty(self):
        values, tail = ccdf([])
        assert values.size == 0 and tail.size == 0

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            ccdf([1.0], weights=[-1.0])

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50))
    def test_property_monotone_nonincreasing(self, raw):
        values, tail = ccdf(raw)
        assert (np.diff(tail) <= 1e-12).all()
        assert tail[0] == pytest.approx(1.0)


class TestFormatting:
    def test_format_percent(self):
        assert format_percent(0.425) == "42.5%"

    def test_format_percent_digits(self):
        assert format_percent(0.5, digits=0) == "50%"

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["x", "y"], ["longer", "z"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "longer" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])


class TestAtomicWriteText:
    def test_writes_content_and_returns_path(self, tmp_path):
        target = tmp_path / "out.json"
        assert atomic_write_text(target, "hello\n") == target
        assert target.read_text(encoding="utf-8") == "hello\n"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "deep")
        assert target.read_text(encoding="utf-8") == "deep"

    def test_overwrite_is_atomic_no_staging_left(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text(encoding="utf-8") == "two"
        # No .tmp staging files survive a successful publish.
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_write_leaves_no_staging(self, tmp_path):
        class Exploding:
            def __str__(self):
                raise RuntimeError("cannot serialise")

        target = tmp_path / "out.txt"
        with pytest.raises(TypeError):
            atomic_write_text(target, Exploding())  # type: ignore[arg-type]
        assert list(tmp_path.iterdir()) == []
