"""The serial≡parallel differential harness.

Runs the *same* :class:`StudyConfig` under the serial backend and under the
process and persistent-pool backends at 1, 2, 4, and 8 workers, exports
each run with :func:`repro.io.archive.save_archive`, and asserts the
archives are **byte-identical** file by file.  This is the strongest
equivalence claim the executor makes: not "statistically close", but the
same artifact bytes a third party would download — and it holds through
the zero-copy shared-memory payload path and the largest-cost-first
work-stealing dispatch, both of which are execution details the merge
provably erases.

A second axis checks that execution knobs that *should* be inert (backend,
workers) are, while knobs documented to shape the artifact (chunk size,
which pins the shard RNG stream layout) are allowed to change it.
Equivalence *under injected transient faults* lives in
``tests/test_chaos.py``.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import Study, StudyConfig, run_study
from repro.io.archive import save_archive
from repro.parallel import ParallelConfig
from repro.topology.generator import InternetConfig


def _study_config(parallel: ParallelConfig) -> StudyConfig:
    """A compact but full-pipeline study: every stage and filter exercised."""
    return StudyConfig(
        internet=InternetConfig(seed=5, n_access_isps=25, n_ixps=8),
        n_vantage_points=10,
        seed=5,
        parallel=parallel,
    )


def _archive_digests(study: Study, directory: Path) -> dict[str, str]:
    """Export ``study`` and hash every produced file."""
    save_archive(study, directory)
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(directory.iterdir())
    }


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory) -> tuple[Study, dict[str, str]]:
    """The reference run: serial backend, default chunking."""
    study = run_study(_study_config(ParallelConfig()))
    digests = _archive_digests(study, tmp_path_factory.mktemp("serial"))
    return study, digests


class TestSerialReference:
    def test_archive_has_all_artifacts(self, serial_run):
        _, digests = serial_run
        assert {
            "manifest.json",
            "latency.npz",
            "clusterings.json",
            "results.json",
            "isps.csv",
            "ptr.csv",
        } <= set(digests)

    def test_serial_is_self_reproducible(self, serial_run, tmp_path):
        """Two serial runs of the same config export identical bytes."""
        _, reference = serial_run
        study = run_study(_study_config(ParallelConfig()))
        assert _archive_digests(study, tmp_path / "again") == reference

    def test_serial_worker_count_is_inert(self, serial_run, tmp_path):
        """workers=N is meaningless for the serial backend: same bytes."""
        _, reference = serial_run
        study = run_study(_study_config(ParallelConfig(workers=4)))
        assert _archive_digests(study, tmp_path / "w4") == reference


@pytest.mark.parallel
class TestProcessEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_process_backend_bytes_identical(self, serial_run, tmp_path, workers):
        """The headline differential: serial ≡ process at 1/2/4/8 workers."""
        _, reference = serial_run
        study = run_study(
            _study_config(ParallelConfig(backend="process", workers=workers))
        )
        digests = _archive_digests(study, tmp_path / f"process-{workers}")
        assert digests == reference, (
            f"process backend at {workers} workers diverged from serial on: "
            f"{sorted(name for name in reference if digests.get(name) != reference[name])}"
        )

    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_pool_backend_bytes_identical(self, serial_run, tmp_path, workers):
        """The persistent pool joins the differential: serial ≡ pool at
        1/2/4/8 workers, with every stage reusing one pool."""
        from repro.parallel import shutdown_pools

        _, reference = serial_run
        try:
            study = run_study(
                _study_config(ParallelConfig(backend="pool", workers=workers))
            )
        finally:
            shutdown_pools()
        digests = _archive_digests(study, tmp_path / f"pool-{workers}")
        assert digests == reference, (
            f"pool backend at {workers} workers diverged from serial on: "
            f"{sorted(name for name in reference if digests.get(name) != reference[name])}"
        )

    def test_pool_reused_across_both_stages(self, tmp_path):
        """One pool identity serves the campaign *and* clustering fan-outs."""
        import io

        from repro.obs import Telemetry
        from repro.parallel import shutdown_pools

        try:
            with Telemetry.capture(stream=io.StringIO()) as telemetry:
                run_study(
                    _study_config(ParallelConfig(backend="pool", workers=2)),
                    telemetry=telemetry,
                )
            pools = telemetry.flight.pools
        finally:
            shutdown_pools()
        assert {"campaign", "clustering"} <= set(pools)
        assert pools["campaign"]["pool"] == pools["clustering"]["pool"]
        assert pools["campaign"]["persistent"] and pools["clustering"]["persistent"]
        # And the campaign payloads rode shared memory, not the pickle path.
        campaign_records = [r for r in telemetry.flight.records if r.label == "campaign"]
        assert campaign_records and all(r.shm for r in campaign_records)

    def test_in_memory_artifacts_equal(self, serial_run):
        """Beyond the export: the live Study objects agree field by field."""
        serial_study, _ = serial_run
        process_study = run_study(
            _study_config(ParallelConfig(backend="process", workers=2))
        )
        assert np.array_equal(
            serial_study.matrix.rtt_ms, process_study.matrix.rtt_ms, equal_nan=True
        )
        assert serial_study.matrix.ips == process_study.matrix.ips
        assert serial_study.campaign.ips_by_isp == process_study.campaign.ips_by_isp
        assert serial_study.campaign.unresponsive_ips == process_study.campaign.unresponsive_ips
        assert serial_study.campaign.implausible_ips == process_study.campaign.implausible_ips
        assert set(serial_study.clusterings) == set(process_study.clusterings)
        for xi, per_isp in serial_study.clusterings.items():
            assert set(per_isp) == set(process_study.clusterings[xi])
            for asn, clustering in per_isp.items():
                assert np.array_equal(
                    clustering.labels, process_study.clusterings[xi][asn].labels
                )


#: Composite digest of the reference export, captured on the *unoptimized*
#: clustering/filter implementations (pre heap-OPTICS, pre memoization, pre
#: batched filters).  Any bit the optimizations change in any exported file
#: changes this value — the strongest "fast path didn't touch the science"
#: claim the harness can make.  Float bit-patterns depend on the BLAS/SIMD
#: build, so the pin is guarded to the numpy line it was captured under.
GOLDEN_EXPORT_SHA256 = "41da77a76b4ce02bac6074e4ab3f9f7bcd59ac64ec8c727a5f4e4517e095cd51"
GOLDEN_NUMPY_PREFIX = "2.4"


def _composite_digest(directory: Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(directory.iterdir()):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


class TestGoldenExport:
    """Byte-identity against the pre-optimization reference export."""

    @pytest.fixture(autouse=True)
    def _pin_numpy(self):
        if not np.__version__.startswith(GOLDEN_NUMPY_PREFIX):
            pytest.skip(
                f"golden digest captured under numpy {GOLDEN_NUMPY_PREFIX}.x "
                f"(running {np.__version__}); float bit-patterns may differ"
            )

    def test_serial_export_matches_golden_digest(self, tmp_path):
        study = run_study(_study_config(ParallelConfig()))
        save_archive(study, tmp_path / "serial")
        assert _composite_digest(tmp_path / "serial") == GOLDEN_EXPORT_SHA256

    @pytest.mark.parallel
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_export_matches_golden_digest(self, tmp_path, workers):
        study = run_study(_study_config(ParallelConfig(backend="process", workers=workers)))
        save_archive(study, tmp_path / "proc")
        assert _composite_digest(tmp_path / "proc") == GOLDEN_EXPORT_SHA256

    @pytest.mark.parallel
    @pytest.mark.parametrize("workers", [2, 8])
    def test_pool_export_matches_golden_digest(self, tmp_path, workers):
        from repro.parallel import shutdown_pools

        try:
            study = run_study(_study_config(ParallelConfig(backend="pool", workers=workers)))
        finally:
            shutdown_pools()
        save_archive(study, tmp_path / "pool")
        assert _composite_digest(tmp_path / "pool") == GOLDEN_EXPORT_SHA256

    def test_reference_implementations_reproduce_golden_digest(self, tmp_path, monkeypatch):
        """The kept reference OPTICS loop exports the same bytes — the
        heap/reference choice is provably presentation-free end to end."""
        from repro.clustering.optics import REFERENCE_ENV_VAR

        monkeypatch.setenv(REFERENCE_ENV_VAR, "1")
        study = run_study(_study_config(ParallelConfig()))
        save_archive(study, tmp_path / "ref")
        assert _composite_digest(tmp_path / "ref") == GOLDEN_EXPORT_SHA256


@pytest.mark.slow
@pytest.mark.parallel
class TestProcessEquivalenceAtScale:
    """The same differential at small-scenario scale (excluded from tier-1).

    Run with ``pytest -m slow tests/test_parallel_equivalence.py``.
    """

    def test_small_scenario_bytes_identical(self, tmp_path):
        from repro.experiments.scenarios import SMALL_SCENARIO

        serial = SMALL_SCENARIO.run()
        process = SMALL_SCENARIO.run(
            parallel=ParallelConfig(backend="process", workers=4)
        )
        assert _archive_digests(serial, tmp_path / "serial") == _archive_digests(
            process, tmp_path / "process"
        )


class TestChunkSizeSemantics:
    def test_chunk_size_may_change_measurements(self, serial_run):
        """Chunk size pins the RNG stream layout, so it is an artifact knob.

        This documents (rather than forbids) the behaviour: equivalence is
        promised across backends and worker counts *at a fixed plan*, and
        the plan is part of the configuration.
        """
        serial_study, _ = serial_run
        other = run_study(_study_config(ParallelConfig(campaign_chunk=16)))
        assert other.matrix.rtt_ms.shape == serial_study.matrix.rtt_ms.shape
        # Same campaign geometry, different noise stream layout.
        assert not np.array_equal(
            serial_study.matrix.rtt_ms, other.matrix.rtt_ms, equal_nan=True
        )

    def test_clustering_chunk_is_inert_given_matrix(self, serial_run):
        """Clustering draws no randomness: its chunk size cannot change labels."""
        serial_study, _ = serial_run
        other = run_study(_study_config(ParallelConfig(clustering_chunk=1)))
        for xi, per_isp in serial_study.clusterings.items():
            for asn, clustering in per_isp.items():
                assert np.array_equal(
                    clustering.labels, other.clusterings[xi][asn].labels
                )


class TestObservabilityByteIdentity:
    """The observability layer's headline claim: a fully-instrumented run
    (profiling + event streaming + flight recording) exports byte-identical
    artifacts to a bare run.  Telemetry reads clocks, never RNG streams."""

    def _instrumented(self, parallel: ParallelConfig, tmp_path: Path, tag: str):
        import io

        from repro.obs import Telemetry

        with Telemetry.capture(
            profile=True, stream=io.StringIO(), events=tmp_path / f"{tag}-events.jsonl"
        ) as telemetry:
            study = run_study(_study_config(parallel), telemetry=telemetry)
        return study, telemetry

    def test_serial_instrumented_matches_bare(self, serial_run, tmp_path):
        _, reference = serial_run
        study, telemetry = self._instrumented(ParallelConfig(), tmp_path, "serial")
        assert _archive_digests(study, tmp_path / "instrumented") == reference
        # And the instrumentation actually recorded: this was not a no-op run.
        assert "cpu_ms" in telemetry.tracer.find("study").attributes
        assert telemetry.flight.records

    @pytest.mark.parallel
    def test_process_instrumented_matches_bare(self, serial_run, tmp_path):
        _, reference = serial_run
        study, telemetry = self._instrumented(
            ParallelConfig(backend="process", workers=2), tmp_path, "process"
        )
        assert _archive_digests(study, tmp_path / "instrumented-proc") == reference
        workers = {r.worker for r in telemetry.flight.records}
        assert any(w.startswith("pid-") for w in workers)

    def test_serial_instrumented_matches_golden_digest(self, tmp_path):
        if not np.__version__.startswith(GOLDEN_NUMPY_PREFIX):
            pytest.skip("golden digest pinned to numpy " + GOLDEN_NUMPY_PREFIX)
        study, _ = self._instrumented(ParallelConfig(), tmp_path, "golden")
        save_archive(study, tmp_path / "export")
        assert _composite_digest(tmp_path / "export") == GOLDEN_EXPORT_SHA256
