"""Tests for the service-aware demand extension."""

import pytest

from repro.capacity.demand import DemandModel, DiurnalProfile
from repro.capacity.links import build_capacity_plan
from repro.capacity.services import (
    DEFAULT_SERVICE_MIXES,
    ServiceAwareDemandModel,
    ServiceClass,
)
from repro.capacity.spillover import SpilloverModel


@pytest.fixture(scope="module")
def model():
    return ServiceAwareDemandModel()


@pytest.fixture(scope="module")
def flat():
    return DemandModel()


class TestMixes:
    def test_shares_sum_to_one(self):
        for mix in DEFAULT_SERVICE_MIXES.values():
            assert sum(s.share for s in mix) == pytest.approx(1.0)

    def test_weighted_cacheability_matches_profiles(self, model):
        # The mix-weighted cacheability reproduces §2.1's offnet fractions.
        for hypergiant, mix in DEFAULT_SERVICE_MIXES.items():
            weighted = sum(s.share * s.cacheability for s in mix)
            expected = model.traffic.offnet_traffic_fraction(hypergiant)
            assert weighted == pytest.approx(expected, abs=0.01)

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            ServiceAwareDemandModel(
                mixes={"Google": (ServiceClass("video", 0.5, DiurnalProfile(), 0.9),)}
            )


class TestShapes:
    def test_peak_totals_match_flat_model(self, model, flat, small_internet):
        isp = small_internet.access_isps[0]
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            assert model.hypergiant_peak_gbps(isp, hypergiant) == pytest.approx(
                flat.hypergiant_peak_gbps(isp, hypergiant)
            )

    def test_netflix_peaks_in_evening(self, model, small_internet):
        isp = small_internet.access_isps[0]
        by_hour = [model.hypergiant_demand_gbps(isp, "Netflix", h) for h in range(24)]
        assert by_hour.index(max(by_hour)) in (19, 20, 21)

    def test_akamai_updates_shift_load_overnight(self, model, flat, small_internet):
        isp = small_internet.access_isps[0]
        # Akamai's overnight update pushes raise its 02:00 share relative
        # to the flat residential curve.
        service_night = model.hypergiant_demand_gbps(isp, "Akamai", 2)
        flat_night = flat.hypergiant_demand_gbps(isp, "Akamai", 2)
        assert service_night > flat_night

    def test_eligible_below_demand_every_hour(self, model, small_internet):
        isp = small_internet.access_isps[0]
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            for hour in range(24):
                assert model.offnet_eligible_gbps(isp, hypergiant, hour) <= (
                    model.hypergiant_demand_gbps(isp, hypergiant, hour) + 1e-9
                )

    def test_service_demand_lookup(self, model, small_internet):
        isp = small_internet.access_isps[0]
        video = model.service_demand_gbps(isp, "Google", "video", 20)
        web = model.service_demand_gbps(isp, "Google", "web", 20)
        assert video + web == pytest.approx(model.hypergiant_demand_gbps(isp, "Google", 20))
        with pytest.raises(KeyError):
            model.service_demand_gbps(isp, "Google", "updates", 20)


class TestIntegrationWithSpillover:
    def test_spillover_runs_with_service_model(self, small_internet, state23, model):
        plans = build_capacity_plan(small_internet, state23, model, seed=11)
        spillover = SpilloverModel(small_internet, model, plans)
        asn = sorted(plans)[0]
        report = spillover.report(asn, 20)
        for flow in report.flows.values():
            assert flow.served_gbps <= flow.demand_gbps * (1 + 1e-9)

    def test_akamai_overnight_load_relatively_high(self, small_internet, state23, model):
        """Update pushes keep Akamai's overnight load far closer to its
        peak than Netflix's pure-video curve."""
        isp = next(i for i in state23.hosting_isps() if "Akamai" in state23.hypergiants_in(i))

        def night_to_peak(hypergiant):
            series = [model.hypergiant_demand_gbps(isp, hypergiant, h) for h in range(24)]
            return series[2] / max(series)

        assert night_to_peak("Akamai") > night_to_peak("Netflix") + 0.15
