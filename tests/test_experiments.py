"""Shape tests for every experiment (paper-artifact) module.

These are the reproduction assertions: the synthetic Internet will not hit
the paper's absolute numbers, but who-wins / roughly-what-factor / where the
crossovers fall must hold.  All run on the shared small-scenario study.
"""

import pytest

from repro.experiments.figure1 import PAPER_FULL_K4_COUNTRIES, run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.scenarios import SMALL_SCENARIO, cached_study, scenario_by_name
from repro.experiments.section32 import run_section32
from repro.experiments.section41_capacity import (
    PAPER_COVID_DEMAND_MULTIPLIER,
    run_covid_experiment,
    run_section41,
)
from repro.experiments.section42_peering import run_pni_headroom, run_section42
from repro.experiments.section43_collateral import most_shared_facility, run_section43
from repro.experiments.table1 import PAPER_GROWTH_PERCENT, run_table1
from repro.experiments.table2 import run_table2
from repro.core.colocation import ColocationBucket
from repro.traceroute.peering import PeeringEvidence


@pytest.fixture(scope="module")
def study(small_study):
    return small_study


class TestTable1:
    def test_growth_ordering_matches_paper(self, study):
        result = run_table1(study)
        assert result.growth_ranking() == ["Netflix", "Google", "Meta", "Akamai"]

    def test_growth_percentages_close(self, study):
        result = run_table1(study)
        for hypergiant, paper_value in PAPER_GROWTH_PERCENT.items():
            assert result.growth_percent(hypergiant) == pytest.approx(paper_value, abs=5.0)

    def test_google_largest_footprint(self, study):
        result = run_table1(study)
        counts = {hg: result.counts[hg]["2023"] for hg in result.counts}
        assert counts["Google"] == max(counts.values())

    def test_akamai_static(self, study):
        result = run_table1(study)
        assert result.counts["Akamai"]["2021"] == result.counts["Akamai"]["2023"]

    def test_render(self, study):
        assert "paper growth" in run_table1(study).render()


class TestFigure1:
    def test_panels_nested(self, study):
        result = run_figure1(study)
        assert (
            result.majority_country_count(2)
            >= result.majority_country_count(3)
            >= result.majority_country_count(4)
        )

    def test_many_countries_majority_at_k2(self, study):
        result = run_figure1(study)
        assert result.majority_country_count(2) > 20

    def test_k4_countries_exist_in_world(self, study):
        for code in PAPER_FULL_K4_COUNTRIES:
            assert study.internet.world.country(code)

    def test_render_has_all_countries(self, study):
        result = run_figure1(study)
        text = result.render()
        assert "US" in text and "MN" in text


class TestTable2:
    def test_colocation_widespread_at_every_setting(self, study):
        result = run_table2(study)
        for xi in study.config.xis:
            for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
                # Most multi-HG ISPs colocate at least some offnets (paper:
                # the 0% column never exceeds 25%).
                table = result.tables[xi]
                none = table.percentage(hypergiant, ColocationBucket.NONE)
                assert none < 0.45

    def test_conservative_clustering_reports_more_full_colocation(self, study):
        result = run_table2(study)
        fuller = sum(
            result.full_colocation(hg, 0.9) >= result.full_colocation(hg, 0.1)
            for hg in ("Google", "Netflix", "Meta", "Akamai")
        )
        assert fuller >= 3

    def test_majority_colocation_common(self, study):
        result = run_table2(study)
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            assert result.majority_colocation(hypergiant, 0.9) > 0.4


class TestFigure2:
    def test_coverage_headlines_shape(self, study):
        result = run_figure2(study)
        assert 0.5 < result.coverage["hosting"] < 0.95  # paper: 76%
        assert result.coverage["analyzable"] <= result.coverage["hosting"]

    def test_quarter_share_facilities_common(self, study):
        low, high = run_figure2(study).share25_range()
        assert high > 0.5  # paper: 71-82%
        assert low <= high

    def test_four_hg_facilities_exist(self, study):
        low, high = run_figure2(study).four_hg_range()
        assert high > 0.0

    def test_ccdf_starts_at_one(self, study):
        result = run_figure2(study)
        _, tail = result.ccdf(0.9)
        assert tail[0] == pytest.approx(1.0)


class TestSection32:
    def test_cohosting_majority(self, study):
        result = run_section32(study)
        assert result.cohosting_fraction(2) > 0.5  # paper: 61%

    def test_cohosting_monotone(self, study):
        result = run_section32(study)
        assert result.cohosting[1] >= result.cohosting[2] >= result.cohosting[3] >= result.cohosting[4]

    def test_validation_mostly_single_city(self, study):
        result = run_section32(study)
        for summary in result.validations.values():
            assert summary.consistent_fraction > 0.6


class TestSection41:
    def test_single_site_fractions_substantial(self, study):
        result = run_section41(study, covid_sample=15)
        # §4.1: for every hypergiant a large share of ISPs have only one
        # site, so spillover must cross interdomain boundaries.
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            low, high = result.single_site_range(hypergiant)
            assert high > 0.3

    def test_netflix_most_single_sited(self, study):
        result = run_section41(study, covid_sample=15)
        netflix_high = result.single_site_range("Netflix")[1]
        for other in ("Google", "Meta", "Akamai"):
            assert netflix_high >= result.single_site_range(other)[1] - 0.05

    def test_covid_experiment_shape(self, study):
        covid = run_covid_experiment(study, sample=25)
        # Demand +58% but offnets bounded: growth far below the surge.
        assert 0.05 < covid.offnet_change < 0.40
        assert covid.offnet_change < PAPER_COVID_DEMAND_MULTIPLIER - 1.0
        # Interdomain more than doubles.
        assert covid.interdomain_ratio > 2.0
        # Offnets were the majority path before the surge.
        assert 0.5 < covid.baseline_offnet_share < 0.9


class TestSection42:
    @pytest.fixture(scope="class")
    def result(self, study):
        return run_section42(study, n_regions=4)

    def test_no_evidence_class_largest_or_close(self, result):
        # Paper: 48.4% no evidence, 38.2% peer, 13.3% possible.
        peer = result.fraction(PeeringEvidence.PEER)
        none = result.fraction(PeeringEvidence.NO_EVIDENCE)
        possible = result.fraction(PeeringEvidence.POSSIBLE_PEER)
        assert possible < peer
        assert possible < none
        assert 0.2 < peer < 0.65
        assert 0.25 < none < 0.7

    def test_ixp_fractions_shape(self, result):
        # Paper: 62.2% via IXP at least once, 42.5% IXP-only.
        assert result.inference.ixp_at_least_once_fraction() > 0.3
        assert result.inference.ixp_only_fraction() > 0.15

    def test_inference_reliable(self, result):
        assert result.precision > 0.99
        assert result.recall > 0.7

    def test_pni_headroom_shape(self, study):
        headroom = run_pni_headroom(study)
        # §4.2.2: a substantial minority of PNIs overloaded at normal peak;
        # ~10% see demand at 2x capacity.
        google = headroom["Google"]
        assert google.n_pnis > 5
        assert 0.1 < google.overloaded_fraction < 0.65
        meta = headroom["Meta"]
        assert 0.0 <= meta.twice_overloaded_fraction < 0.35


class TestSection43:
    @pytest.fixture(scope="class")
    def result(self, study):
        return run_section43(study, sample=15)

    def test_outage_facility_is_multi_hypergiant(self, result):
        assert len(result.outage_hypergiants) >= 2

    def test_outage_causes_congestion_and_collateral(self, result):
        assert result.facility_outage.congested_isp_asns
        assert result.facility_outage.total_collateral_gbph > 0
        assert result.facility_outage.affected_users() > 0

    def test_bad_update_causes_spillover(self, result):
        assert result.bad_update.aggregate_interdomain_ratio() > 1.0

    def test_most_shared_facility_truth(self, study):
        facility_id, hypergiants = most_shared_facility(study)
        state = study.history.state("2023")
        truth = {
            s.hypergiant for s in state.servers if s.facility.facility_id == facility_id
        }
        assert truth == set(hypergiants)


class TestScenarios:
    def test_lookup(self):
        assert scenario_by_name("small") is SMALL_SCENARIO

    def test_cached_study_is_cached(self):
        assert cached_study("small") is cached_study("small")


class TestSection21:
    def test_anecdote_shape(self, study):
        from repro.experiments.section21_anecdote import (
            PAPER_OFFNET_FRACTIONS,
            run_section21,
        )

        result = run_section21(study)
        assert result.split
        for hypergiant in result.split:
            assert result.offnet_fraction(hypergiant) == pytest.approx(
                PAPER_OFFNET_FRACTIONS[hypergiant], abs=0.15
            )
        assert result.offnet_total > 2 * result.interdomain_total
        assert "interdomain Gbps" in result.render()


class TestSection32Longitudinal:
    def test_cohosting_increased_since_2021(self, study):
        from repro.experiments.section32 import run_section32

        result = run_section32(study)
        # §3.1: "This change ... suggest[s] that multi-hypergiant hosting
        # will continue to increase over time."
        for k in (2, 3, 4):
            assert result.cohosting_increased(k)

    def test_2021_counts_below_2023(self, study):
        from repro.experiments.section32 import run_section32

        result = run_section32(study)
        for k in (1, 2, 3, 4):
            assert result.cohosting_2021[k] <= result.cohosting[k]


class TestDispersalCounterfactual:
    def test_dispersal_reduces_concentration_but_not_sharing(self, study):
        from repro.experiments.counterfactual_dispersal import run_dispersal_counterfactual

        result = run_dispersal_counterfactual(study)
        assert (
            result.dispersed.mean_best_facility_share
            <= result.status_quo.mean_best_facility_share
        )
        # The pigeonhole effect: most multi-HG ISPs still share a facility.
        assert result.dispersed.shared_facility_fraction > 0.5
        assert "pigeonhole" in result.render()

    def test_outcome_fields_populated(self, study):
        from repro.experiments.counterfactual_dispersal import run_dispersal_counterfactual

        result = run_dispersal_counterfactual(study)
        for outcome in (result.status_quo, result.dispersed):
            assert outcome.outage_hypergiants >= 2
            assert outcome.outage_interdomain_ratio > 1.0


class TestEpochListExperiments:
    """Satellite regression: section32/figure1 accept arbitrary epoch lists,
    and the default two-epoch output is byte-identical to the explicit one."""

    def test_section32_default_matches_explicit_pair(self, study):
        default = run_section32(study)
        explicit = run_section32(study, epochs=("2021", "2023"))
        assert default.render() == explicit.render()
        assert default.cohosting == explicit.cohosting
        assert default.cohosting_2021 == explicit.cohosting_2021

    def test_section32_single_epoch(self, study):
        result = run_section32(study, epochs=("2023",))
        assert set(result.cohosting_by_epoch) == {"2023"}
        assert result.cohosting_2021 == {}
        assert result.cohosting == result.cohosting_by_epoch["2023"]

    def test_section32_unknown_epoch_rejected(self, study):
        with pytest.raises(ValueError, match="no inventory"):
            run_section32(study, epochs=("2021", "2030Q1"))

    def test_section32_latest_is_calendar_not_positional(self, study):
        reversed_order = run_section32(study, epochs=("2023", "2021"))
        assert reversed_order.cohosting == run_section32(study).cohosting
        assert reversed_order.cohosting_2021 == run_section32(study).cohosting_2021

    def test_figure1_default_matches_explicit_pair(self, study):
        default = run_figure1(study)
        explicit = run_figure1(study, epochs=("2021", "2023"))
        assert default.render() == explicit.render()
        assert default.summary() == explicit.summary()

    def test_figure1_panels_per_epoch(self, study):
        result = run_figure1(study)
        assert set(result.panels_by_epoch) == {"2021", "2023"}
        # Monotone growth: every country's >=2-HG user fraction is
        # no smaller in 2023 than in 2021.
        for code, frac in result.panels_by_epoch["2021"][2].fraction_by_country.items():
            assert result.panels_by_epoch["2023"][2].fraction(code) >= frac - 1e-12

    def test_figure1_single_epoch(self, study):
        result = run_figure1(study, epochs=("2021",))
        assert set(result.panels_by_epoch) == {"2021"}
        assert result.panels == result.panels_by_epoch["2021"]
