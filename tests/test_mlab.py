"""Tests for vantage points, the latency model, pings, and campaign filters."""

import numpy as np
import pytest

from repro._util import make_rng
from repro.mlab.latency import (
    MAX_INFLATION,
    MIN_INFLATION,
    base_rtt_ms,
    base_rtt_matrix,
    path_inflation,
    vp_pair_floor_rtt_ms,
)
from repro.mlab.matrix import (
    LatencyCampaignConfig,
    apply_quality_filters,
    measure_offnets,
)
from repro.mlab.pings import PingConfig, ping_rtts
from repro.mlab.vantage import build_vantage_points


@pytest.fixture(scope="module")
def vps(small_internet):
    return build_vantage_points(small_internet.world, 40, seed=3)


@pytest.fixture(scope="module")
def campaign(small_internet, state23, vps):
    ips = [s.ip for s in state23.servers]
    matrix = measure_offnets(small_internet, state23, ips, vps, seed=4)
    ip_to_isp = {s.ip: s.isp.asn for s in state23.servers}
    config = LatencyCampaignConfig(min_vps_per_isp=25)
    return matrix, apply_quality_filters(matrix, ip_to_isp, config)


class TestVantagePoints:
    def test_count(self, vps):
        assert len(vps) == 40

    def test_unique_site_codes(self, vps):
        codes = [vp.site_code for vp in vps]
        assert len(codes) == len(set(codes))

    def test_site_code_style(self, vps):
        for vp in vps:
            assert vp.site_code[:3] == vp.city.iata

    def test_deterministic(self, small_internet):
        a = build_vantage_points(small_internet.world, 10, seed=5)
        b = build_vantage_points(small_internet.world, 10, seed=5)
        assert [vp.site_code for vp in a] == [vp.site_code for vp in b]

    def test_global_spread(self, vps):
        continents = {vp.city.country_code for vp in vps}
        assert len(continents) > 5


class TestLatencyModel:
    def test_inflation_bounds_and_symmetry(self):
        value = path_inflation("lhr", "cdg", seed=7)
        assert MIN_INFLATION <= value <= MAX_INFLATION
        assert value == path_inflation("cdg", "lhr", seed=7)

    def test_inflation_varies_by_pair(self):
        values = {path_inflation("lhr", other, 7) for other in ("cdg", "fra", "nyc", "hnd")}
        assert len(values) > 1

    def test_same_facility_same_base_rtt(self, small_internet, vps, state23):
        servers = state23.servers
        facility = servers[0].facility
        rtt_a = base_rtt_ms(vps[0], facility, seed=7)
        rtt_b = base_rtt_ms(vps[0], facility, seed=7)
        assert rtt_a == rtt_b

    def test_base_rtt_includes_uplink_delay(self, small_internet, vps):
        facility = small_internet.all_facilities[0]
        rtt = base_rtt_ms(vps[0], facility, seed=7)
        assert rtt >= facility.uplink_delay_ms

    def test_matrix_shape(self, small_internet, vps):
        facilities = small_internet.all_facilities[:5]
        matrix = base_rtt_matrix(vps, facilities, seed=7)
        assert matrix.shape == (len(vps), 5)
        assert (matrix > 0).all()

    def test_vp_floor_rtt_zero_for_same_point(self, vps):
        assert vp_pair_floor_rtt_ms(vps[0], vps[0]) == pytest.approx(0.0)

    def test_intercontinental_rtt_realistic(self, small_internet, vps):
        # Any VP to any facility must be within plausible Internet RTTs.
        facilities = small_internet.all_facilities[:50]
        matrix = base_rtt_matrix(vps, facilities, seed=7)
        assert matrix.max() < 600.0  # ms


class TestPings:
    def test_second_smallest_at_least_base(self):
        base = np.full(100, 10.0)
        measured = ping_rtts(base, PingConfig(), make_rng(1))
        valid = measured[~np.isnan(measured)]
        assert (valid >= 10.0).all()

    def test_nan_base_stays_nan(self):
        base = np.array([np.nan, 5.0])
        measured = ping_rtts(base, PingConfig(), make_rng(1))
        assert np.isnan(measured[0]) and not np.isnan(measured[1])

    def test_high_loss_yields_nan(self):
        base = np.full(200, 10.0)
        config = PingConfig(loss_probability=0.95)
        measured = ping_rtts(base, config, make_rng(1))
        assert np.isnan(measured).mean() > 0.8

    def test_second_smallest_close_to_base(self):
        base = np.full(500, 20.0)
        measured = ping_rtts(base, PingConfig(), make_rng(2))
        valid = measured[~np.isnan(measured)]
        # The second order statistic of 8 sheds most queueing noise.
        assert valid.mean() - 20.0 < 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PingConfig(pings_per_target=1)
        with pytest.raises(ValueError):
            PingConfig(min_responses=9)


class TestCampaign:
    def test_matrix_shape(self, campaign, state23, vps):
        matrix, _ = campaign
        assert matrix.rtt_ms.shape == (len(vps), len(state23.servers))

    def test_unresponsive_ips_all_nan(self, campaign):
        matrix, filtered = campaign
        for ip in filtered.unresponsive_ips:
            assert np.isnan(matrix.column(ip)).all()

    def test_unresponsive_rate_near_config(self, campaign, state23):
        _, filtered = campaign
        rate = len(filtered.unresponsive_ips) / len(state23.servers)
        assert 0.02 < rate < 0.07

    def test_split_location_ips_mostly_caught(self, campaign):
        matrix, filtered = campaign
        if matrix.split_location_ips:
            # Splits between nearby facilities are physically explainable by
            # one midpoint location, so the filter cannot catch everything;
            # the paper likewise only discards the blatant cases.
            caught = set(filtered.implausible_ips) & matrix.split_location_ips
            assert len(caught) / len(matrix.split_location_ips) > 0.35

    def test_plausibility_no_false_positives_on_clean_ips(self, campaign, state23):
        matrix, filtered = campaign
        clean = set(ip for ip in matrix.ips) - matrix.split_location_ips
        false_positives = set(filtered.implausible_ips) & clean
        assert len(false_positives) <= 0.01 * len(clean)

    def test_kept_ips_grouped_by_isp(self, campaign, state23):
        _, filtered = campaign
        for asn, ips in filtered.ips_by_isp.items():
            for ip in ips:
                assert state23.server_at(ip).isp.asn == asn

    def test_lossy_isps_discarded(self, campaign):
        _, filtered = campaign
        assert filtered.discarded_isp_asns  # lossy_isp_fraction > 0

    def test_submatrix_columns_align(self, campaign):
        matrix, filtered = campaign
        asn = filtered.analyzable_isp_asns[0]
        ips = filtered.ips_by_isp[asn]
        sub = matrix.submatrix(ips)
        assert sub.shape[1] == len(ips)
        np.testing.assert_array_equal(sub[:, 0], matrix.column(ips[0]))

    def test_measure_rejects_unknown_ip(self, small_internet, state23, vps):
        with pytest.raises(ValueError):
            measure_offnets(small_internet, state23, [123], vps)

    def test_column_unknown_ip_raises_keyerror_naming_ip(self, campaign):
        matrix, _ = campaign
        missing = max(matrix.ips) + 1
        with pytest.raises(KeyError, match=f"IP {missing} is not a target"):
            matrix.column(missing)

    def test_submatrix_unknown_ip_raises_keyerror_naming_ip(self, campaign):
        matrix, _ = campaign
        missing = max(matrix.ips) + 1
        with pytest.raises(KeyError, match=f"IP {missing} is not a target"):
            matrix.submatrix([matrix.ips[0], missing])
        assert not matrix.has_ip(missing)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LatencyCampaignConfig(lossy_isp_fraction=2.0)
