"""Tests for vantage points, the latency model, pings, and campaign filters."""

import numpy as np
import pytest

from repro._util import make_rng
from repro.mlab.latency import (
    MAX_INFLATION,
    MIN_INFLATION,
    base_rtt_ms,
    base_rtt_matrix,
    path_inflation,
    vp_pair_floor_matrix,
    vp_pair_floor_rtt_ms,
)
from repro.mlab.matrix import (
    LatencyCampaignConfig,
    _implausible_for_single_location,
    _implausible_mask,
    apply_quality_filters,
    measure_offnets,
)
from repro.obs import Telemetry
from repro.mlab.pings import PingConfig, ping_rtts
from repro.mlab.vantage import build_vantage_points


@pytest.fixture(scope="module")
def vps(small_internet):
    return build_vantage_points(small_internet.world, 40, seed=3)


@pytest.fixture(scope="module")
def campaign(small_internet, state23, vps):
    ips = [s.ip for s in state23.servers]
    matrix = measure_offnets(small_internet, state23, ips, vps, seed=4)
    ip_to_isp = {s.ip: s.isp.asn for s in state23.servers}
    config = LatencyCampaignConfig(min_vps_per_isp=25)
    return matrix, apply_quality_filters(matrix, ip_to_isp, config)


class TestVantagePoints:
    def test_count(self, vps):
        assert len(vps) == 40

    def test_unique_site_codes(self, vps):
        codes = [vp.site_code for vp in vps]
        assert len(codes) == len(set(codes))

    def test_site_code_style(self, vps):
        for vp in vps:
            assert vp.site_code[:3] == vp.city.iata

    def test_deterministic(self, small_internet):
        a = build_vantage_points(small_internet.world, 10, seed=5)
        b = build_vantage_points(small_internet.world, 10, seed=5)
        assert [vp.site_code for vp in a] == [vp.site_code for vp in b]

    def test_global_spread(self, vps):
        continents = {vp.city.country_code for vp in vps}
        assert len(continents) > 5


class TestLatencyModel:
    def test_inflation_bounds_and_symmetry(self):
        value = path_inflation("lhr", "cdg", seed=7)
        assert MIN_INFLATION <= value <= MAX_INFLATION
        assert value == path_inflation("cdg", "lhr", seed=7)

    def test_inflation_varies_by_pair(self):
        values = {path_inflation("lhr", other, 7) for other in ("cdg", "fra", "nyc", "hnd")}
        assert len(values) > 1

    def test_same_facility_same_base_rtt(self, small_internet, vps, state23):
        servers = state23.servers
        facility = servers[0].facility
        rtt_a = base_rtt_ms(vps[0], facility, seed=7)
        rtt_b = base_rtt_ms(vps[0], facility, seed=7)
        assert rtt_a == rtt_b

    def test_base_rtt_includes_uplink_delay(self, small_internet, vps):
        facility = small_internet.all_facilities[0]
        rtt = base_rtt_ms(vps[0], facility, seed=7)
        assert rtt >= facility.uplink_delay_ms

    def test_matrix_shape(self, small_internet, vps):
        facilities = small_internet.all_facilities[:5]
        matrix = base_rtt_matrix(vps, facilities, seed=7)
        assert matrix.shape == (len(vps), 5)
        assert (matrix > 0).all()

    def test_vp_floor_rtt_zero_for_same_point(self, vps):
        assert vp_pair_floor_rtt_ms(vps[0], vps[0]) == pytest.approx(0.0)

    def test_intercontinental_rtt_realistic(self, small_internet, vps):
        # Any VP to any facility must be within plausible Internet RTTs.
        facilities = small_internet.all_facilities[:50]
        matrix = base_rtt_matrix(vps, facilities, seed=7)
        assert matrix.max() < 600.0  # ms


class TestPings:
    def test_second_smallest_at_least_base(self):
        base = np.full(100, 10.0)
        measured = ping_rtts(base, PingConfig(), make_rng(1))
        valid = measured[~np.isnan(measured)]
        assert (valid >= 10.0).all()

    def test_nan_base_stays_nan(self):
        base = np.array([np.nan, 5.0])
        measured = ping_rtts(base, PingConfig(), make_rng(1))
        assert np.isnan(measured[0]) and not np.isnan(measured[1])

    def test_high_loss_yields_nan(self):
        base = np.full(200, 10.0)
        config = PingConfig(loss_probability=0.95)
        measured = ping_rtts(base, config, make_rng(1))
        assert np.isnan(measured).mean() > 0.8

    def test_second_smallest_close_to_base(self):
        base = np.full(500, 20.0)
        measured = ping_rtts(base, PingConfig(), make_rng(2))
        valid = measured[~np.isnan(measured)]
        # The second order statistic of 8 sheds most queueing noise.
        assert valid.mean() - 20.0 < 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PingConfig(pings_per_target=1)
        with pytest.raises(ValueError):
            PingConfig(min_responses=9)


class TestCampaign:
    def test_matrix_shape(self, campaign, state23, vps):
        matrix, _ = campaign
        assert matrix.rtt_ms.shape == (len(vps), len(state23.servers))

    def test_unresponsive_ips_all_nan(self, campaign):
        matrix, filtered = campaign
        for ip in filtered.unresponsive_ips:
            assert np.isnan(matrix.column(ip)).all()

    def test_unresponsive_rate_near_config(self, campaign, state23):
        _, filtered = campaign
        rate = len(filtered.unresponsive_ips) / len(state23.servers)
        assert 0.02 < rate < 0.07

    def test_split_location_ips_mostly_caught(self, campaign):
        matrix, filtered = campaign
        if matrix.split_location_ips:
            # Splits between nearby facilities are physically explainable by
            # one midpoint location, so the filter cannot catch everything;
            # the paper likewise only discards the blatant cases.
            caught = set(filtered.implausible_ips) & matrix.split_location_ips
            assert len(caught) / len(matrix.split_location_ips) > 0.35

    def test_plausibility_no_false_positives_on_clean_ips(self, campaign, state23):
        matrix, filtered = campaign
        clean = set(ip for ip in matrix.ips) - matrix.split_location_ips
        false_positives = set(filtered.implausible_ips) & clean
        assert len(false_positives) <= 0.01 * len(clean)

    def test_kept_ips_grouped_by_isp(self, campaign, state23):
        _, filtered = campaign
        for asn, ips in filtered.ips_by_isp.items():
            for ip in ips:
                assert state23.server_at(ip).isp.asn == asn

    def test_lossy_isps_discarded(self, campaign):
        _, filtered = campaign
        assert filtered.discarded_isp_asns  # lossy_isp_fraction > 0

    def test_submatrix_columns_align(self, campaign):
        matrix, filtered = campaign
        asn = filtered.analyzable_isp_asns[0]
        ips = filtered.ips_by_isp[asn]
        sub = matrix.submatrix(ips)
        assert sub.shape[1] == len(ips)
        np.testing.assert_array_equal(sub[:, 0], matrix.column(ips[0]))

    def test_measure_rejects_unknown_ip(self, small_internet, state23, vps):
        with pytest.raises(ValueError):
            measure_offnets(small_internet, state23, [123], vps)

    def test_column_unknown_ip_raises_keyerror_naming_ip(self, campaign):
        matrix, _ = campaign
        missing = max(matrix.ips) + 1
        with pytest.raises(KeyError, match=f"IP {missing} is not a target"):
            matrix.column(missing)

    def test_submatrix_unknown_ip_raises_keyerror_naming_ip(self, campaign):
        matrix, _ = campaign
        missing = max(matrix.ips) + 1
        with pytest.raises(KeyError, match=f"IP {missing} is not a target"):
            matrix.submatrix([matrix.ips[0], missing])
        assert not matrix.has_ip(missing)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LatencyCampaignConfig(lossy_isp_fraction=2.0)


class TestFloorMatrix:
    def test_matches_scalar_pairs(self, vps):
        """Vectorised haversine vs the scalar libm path: identical to well
        below the 0.5 ms plausibility slack (SIMD trig differs by ~1 ulp)."""
        floor = vp_pair_floor_matrix(vps)
        for i in range(0, len(vps), 7):
            for j in range(0, len(vps), 7):
                scalar = vp_pair_floor_rtt_ms(vps[i], vps[j])
                assert floor[i, j] == pytest.approx(scalar, rel=1e-12, abs=1e-9)

    def test_symmetric_with_zero_diagonal(self, vps):
        floor = vp_pair_floor_matrix(vps)
        assert np.array_equal(floor, floor.T)
        assert (np.diag(floor) == 0.0).all()

    def test_cached_per_vantage_set(self, vps):
        telemetry = Telemetry.capture()
        first = vp_pair_floor_matrix(vps, telemetry=telemetry)
        second = vp_pair_floor_matrix(vps, telemetry=telemetry)
        assert second is first
        assert telemetry.metrics.counter("filters.floor_cache_hits") >= 1
        assert not first.flags.writeable

    def test_distinct_vantage_sets_get_distinct_floors(self, vps):
        floor_all = vp_pair_floor_matrix(vps)
        floor_subset = vp_pair_floor_matrix(vps[:5])
        assert floor_subset.shape == (5, 5)
        assert floor_all.shape == (len(vps), len(vps))


class TestBatchedPlausibility:
    def test_mask_matches_per_ip_reference(self, campaign, vps):
        """The whole-matrix filter agrees with the per-column reference on
        every campaign column (which includes unresponsive, lossy, and
        split-location pathologies)."""
        matrix, _ = campaign
        floor = vp_pair_floor_matrix(vps)
        slack = LatencyCampaignConfig().plausibility_slack_ms
        valid = ~np.isnan(matrix.rtt_ms)
        mask = _implausible_mask(matrix.rtt_ms, valid, valid.sum(axis=0), floor, slack)
        for column_index, ip in enumerate(matrix.ips):
            expected = _implausible_for_single_location(matrix.column(ip), vps, floor, slack)
            assert mask[column_index] == expected

    def test_mask_flags_a_synthetic_violation(self, vps):
        """A column pretending to be 0 ms from two far-apart vantage points
        cannot come from one location."""
        floor = vp_pair_floor_matrix(vps)
        far = np.unravel_index(np.argmax(floor), floor.shape)
        rtts = np.full((len(vps), 1), np.nan)
        rtts[far[0], 0] = 0.1
        rtts[far[1], 0] = 0.1
        valid = ~np.isnan(rtts)
        mask = _implausible_mask(rtts, valid, valid.sum(axis=0), floor, slack_ms=0.5)
        assert mask[0]
        reference = _implausible_for_single_location(rtts[:, 0], vps, floor, 0.5)
        assert reference

    def test_single_valid_entry_is_never_implausible(self, vps):
        rtts = np.full((len(vps), 2), np.nan)
        rtts[0, 0] = 5.0
        valid = ~np.isnan(rtts)
        mask = _implausible_mask(rtts, valid, valid.sum(axis=0), floor=vp_pair_floor_matrix(vps), slack_ms=0.5)
        assert not mask.any()

    def test_empty_matrix(self, vps):
        rtts = np.empty((len(vps), 0))
        valid = ~np.isnan(rtts)
        mask = _implausible_mask(rtts, valid, valid.sum(axis=0), vp_pair_floor_matrix(vps), 0.5)
        assert mask.shape == (0,)
