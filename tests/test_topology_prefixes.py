"""Tests for the IPv4 address plan."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.asn import AS, ASRole
from repro.topology.geo import default_world
from repro.topology.prefixes import AddressPlan, Prefix, ip_from_str, ip_to_str


def make_as(asn: int) -> AS:
    world = default_world()
    return AS(asn=asn, name=f"AS{asn}", role=ASRole.ACCESS, country_code="US", cities=world.cities_in("US")[:1])


class TestIpConversion:
    @pytest.mark.parametrize(
        "text,value",
        [("0.0.0.0", 0), ("1.2.3.4", 0x01020304), ("255.255.255.255", 2**32 - 1)],
    )
    def test_roundtrip_known(self, text, value):
        assert ip_from_str(text) == value
        assert ip_to_str(value) == text

    def test_rejects_bad_octet(self):
        with pytest.raises(ValueError):
            ip_from_str("256.0.0.1")

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            ip_from_str("1.2.3")

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            ip_to_str(2**32)

    @given(st.integers(0, 2**32 - 1))
    def test_property_roundtrip(self, value):
        assert ip_from_str(ip_to_str(value)) == value


class TestPrefix:
    def test_size(self):
        assert Prefix(0, 24).size == 256

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            Prefix(1, 24)

    def test_contains(self):
        prefix = Prefix(256, 24)
        assert 256 in prefix and 511 in prefix and 512 not in prefix

    def test_str(self):
        assert str(Prefix(256, 24)) == "0.0.1.0/24"

    def test_slash24s_of_slash22(self):
        subs = Prefix(0, 22).slash24s()
        assert len(subs) == 4
        assert subs[1].base == 256

    def test_slash24s_of_slash24_is_self(self):
        prefix = Prefix(0, 24)
        assert prefix.slash24s() == [prefix]


class TestAddressPlan:
    def test_allocations_disjoint(self):
        plan = AddressPlan()
        a, b = make_as(1), make_as(2)
        pa = plan.allocate(a, 20)
        pb = plan.allocate(b, 22)
        assert pa.base + pa.size <= pb.base

    def test_owner_lookup(self):
        plan = AddressPlan()
        a, b = make_as(1), make_as(2)
        pa = plan.allocate(a, 20)
        pb = plan.allocate(b, 22)
        assert plan.owner_of(pa.base) is a
        assert plan.owner_of(pa.base + pa.size - 1) is a
        assert plan.owner_of(pb.base) is b

    def test_owner_of_unallocated(self):
        plan = AddressPlan()
        plan.allocate(make_as(1), 24)
        assert plan.owner_of(0) is None
        assert plan.owner_of(2**31) is None

    def test_prefixes_of(self):
        plan = AddressPlan()
        a = make_as(1)
        first = plan.allocate(a, 24)
        second = plan.allocate(a, 24)
        assert plan.prefixes_of(a) == [first, second]

    def test_announced_slash24s_cover_allocations(self):
        plan = AddressPlan()
        plan.allocate(make_as(1), 22)
        plan.allocate(make_as(2), 24)
        subs = plan.announced_slash24s()
        assert len(subs) == 5

    def test_alignment_of_mixed_lengths(self):
        plan = AddressPlan()
        plan.allocate(make_as(1), 24)
        big = plan.allocate(make_as(2), 16)
        assert big.base % big.size == 0
