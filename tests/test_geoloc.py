"""Tests for constraint-based geolocation."""

import numpy as np
import pytest

from repro._util import great_circle_m, propagation_rtt_ms
from repro.geoloc import estimate_position, geolocate_clusters
from repro.mlab.vantage import build_vantage_points


@pytest.fixture(scope="module")
def vps(small_internet):
    return build_vantage_points(small_internet.world, 40, seed=3)


def synthetic_rtts(vps, lat, lon, inflation=1.6, extra_ms=0.5):
    rtts = []
    for vp in vps:
        distance = great_circle_m(lat, lon, vp.lat, vp.lon)
        rtts.append(propagation_rtt_ms(distance, inflation) + extra_ms)
    return np.array(rtts)


class TestEstimatePosition:
    def test_localises_a_known_target(self, vps, small_internet):
        city = small_internet.world.city_by_iata("fra")
        rtts = synthetic_rtts(vps, city.lat, city.lon)
        estimate = estimate_position(rtts, vps)
        assert estimate is not None
        assert estimate.error_m(city.lat, city.lon) < 700_000

    def test_needs_three_constraints(self, vps):
        rtts = np.full(len(vps), np.nan)
        rtts[0] = rtts[1] = 10.0
        assert estimate_position(rtts, vps) is None

    def test_handles_partial_nan(self, vps, small_internet):
        city = small_internet.world.city_by_iata("hnd")
        rtts = synthetic_rtts(vps, city.lat, city.lon)
        rtts[::3] = np.nan
        estimate = estimate_position(rtts, vps)
        assert estimate is not None
        assert estimate.n_constraints == int((~np.isnan(rtts)).sum())

    def test_rejects_misaligned_input(self, vps):
        with pytest.raises(ValueError):
            estimate_position(np.array([1.0]), vps)

    def test_zero_violation_for_generous_bounds(self, vps, small_internet):
        city = small_internet.world.city_by_iata("nyc")
        rtts = synthetic_rtts(vps, city.lat, city.lon, inflation=2.2)
        estimate = estimate_position(rtts, vps)
        assert estimate is not None
        # With slack bounds the anchor already satisfies every disk.
        assert estimate.violation_m >= 0.0


class TestGeolocateClusters:
    def test_study_clusters_land_near_truth(self, small_study):
        state = small_study.history.state("2023")
        clusters, truths = [], []
        for clustering in list(small_study.clusterings[0.9].values())[:15]:
            for cluster in clustering.clusters:
                facility = state.server_at(cluster[0]).facility
                clusters.append(cluster)
                truths.append((facility.lat, facility.lon))
        estimates = geolocate_clusters(clusters, small_study.matrix, small_study.vantage_points)
        errors_km = [
            estimates[i].error_m(*truths[i]) / 1000.0
            for i in estimates
            if estimates[i] is not None
        ]
        assert errors_km
        assert float(np.median(errors_km)) < 500.0

    def test_empty_cluster_list(self, small_study):
        assert geolocate_clusters([], small_study.matrix, small_study.vantage_points) == {}
