"""Smoke tests: every example's main() runs to completion.

The examples share the session's cached small study, so running them all
inside the suite is cheap; their stdout is the product, so each test just
asserts clean completion and a recognisable headline.
"""

import pytest


@pytest.fixture(autouse=True)
def _quiet_output(capsys):
    yield
    capsys.readouterr()  # drain example output from the test log


def test_quickstart_runs(small_study, capsys):
    from examples.quickstart import main

    main()
    out = capsys.readouterr().out
    assert "Table 1" in out and "Figure 2" in out


def test_colocation_audit_runs(small_study, capsys):
    from examples.colocation_audit import main

    main("US")
    out = capsys.readouterr().out
    assert "choke points" in out


def test_spillover_cascade_runs(small_study, capsys):
    from examples.spillover_cascade import main

    main()
    out = capsys.readouterr().out
    assert "COVID comparison" in out


def test_peering_survey_runs(small_study, capsys):
    from examples.peering_survey import main

    main("Google")
    out = capsys.readouterr().out
    assert "sample traceroute" in out


def test_mitigation_what_if_runs(small_study, capsys):
    from examples.mitigation_what_if import main

    main()
    out = capsys.readouterr().out
    assert "upgrade lead time" in out.lower()


def test_dataset_reanalysis_runs(small_study, capsys):
    from examples.dataset_reanalysis import main

    main()
    out = capsys.readouterr().out
    assert "recomputed from the released files" in out


def test_cache_dimensioning_runs(small_study, capsys):
    from examples.cache_dimensioning import main

    main()
    out = capsys.readouterr().out
    assert "byte hit ratio" in out
