"""The chaos differential harness: fault injection meets the resilience layer.

Two headline claims, proven differentially against a fault-free reference
run of the same config:

1. **Transient faults are artifact-inert.**  A plan that crashes every
   campaign shard once and injects one retryable error per clustering
   shard produces *byte-identical* exports once the resilience layer has
   retried everything away — on the serial backend and on process pools
   at 1, 2, and 4 workers.  Retries must never consume measurement RNG
   draws, shift shard boundaries, or reorder merges.

2. **Permanent faults degrade gracefully and honestly.**  A plan that
   permanently drops measurements makes ``run_study`` *complete* (no
   crash), with a :class:`~repro.resilience.CoverageReport` whose per-site
   losses equal the injected losses exactly — the degradation is
   accounted, not silent.

Marked ``chaos`` so CI can run the harness as its own job
(``pytest -m chaos``); the cases also run in tier-1 because they share
the compact full-pipeline config of ``tests/test_parallel_equivalence.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import Study, StudyConfig, run_study
from repro.faults import FaultPlan, FaultSpec
from repro.io.archive import save_archive
from repro.obs import Telemetry
from repro.parallel import ParallelConfig
from repro.resilience import ErrorBudget, ResilienceConfig, RetryPolicy
from repro.topology.generator import InternetConfig

pytestmark = pytest.mark.chaos

#: Every campaign shard crashes its worker once; every clustering shard
#: raises one retryable error.  All transient: one retry clears each.
TRANSIENT_PLAN = FaultPlan(
    seed=99,
    specs=(
        FaultSpec(site="campaign.shard", kind="crash", rate=1.0, fail_attempts=1),
        FaultSpec(site="clustering.shard", kind="error", rate=1.0, fail_attempts=1),
    ),
)

#: Permanent data loss on every measurement surface (rates chosen so each
#: site loses a visible few percent on the compact config).
PERMANENT_PLAN = FaultPlan(
    seed=41,
    specs=(
        FaultSpec(site="mlab.ping", kind="drop", rate=0.08),
        FaultSpec(site="scan.record", kind="drop", rate=0.03),
        FaultSpec(site="rdns.lookup", kind="drop", rate=0.03),
    ),
)


def _config(
    faults: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    parallel: ParallelConfig | None = None,
) -> StudyConfig:
    """The compact full-pipeline config the equivalence harness uses."""
    return StudyConfig(
        internet=InternetConfig(seed=5, n_access_isps=25, n_ixps=8),
        n_vantage_points=10,
        seed=5,
        parallel=parallel or ParallelConfig(),
        faults=faults,
        resilience=resilience,
    )


def _archive_digests(study: Study, directory: Path) -> dict[str, str]:
    save_archive(study, directory)
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(directory.iterdir())
    }


@pytest.fixture(scope="module")
def clean_study() -> Study:
    """The fault-free reference run."""
    return run_study(_config())


@pytest.fixture(scope="module")
def clean_digests(clean_study, tmp_path_factory) -> dict[str, str]:
    """The fault-free reference export."""
    return _archive_digests(clean_study, tmp_path_factory.mktemp("clean"))


class TestTransientFaultsAreInert:
    def test_serial_retries_to_identical_bytes(self, clean_digests, tmp_path):
        telemetry = Telemetry.capture()
        study = run_study(
            _config(faults=TRANSIENT_PLAN, resilience=ResilienceConfig()),
            telemetry=telemetry,
        )
        assert study.coverage.complete
        assert _archive_digests(study, tmp_path / "chaos") == clean_digests
        # Every campaign + clustering shard was retried exactly once.
        assert telemetry.metrics.counter("resilience.retries") > 0
        assert telemetry.metrics.counter("resilience.quarantined_shards") == 0

    @pytest.mark.parallel
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_crash_requeue_is_identical(self, clean_digests, tmp_path, workers):
        """Real worker crashes (os._exit in the child), requeued on fresh
        pools, still export the same bytes at any worker count."""
        telemetry = Telemetry.capture()
        study = run_study(
            _config(
                faults=TRANSIENT_PLAN,
                resilience=ResilienceConfig(),
                parallel=ParallelConfig(backend="process", workers=workers),
            ),
            telemetry=telemetry,
        )
        assert study.coverage.complete
        assert _archive_digests(study, tmp_path / f"w{workers}") == clean_digests
        assert telemetry.metrics.counter("resilience.worker_crashes") >= 1

    @pytest.mark.parallel
    @pytest.mark.parametrize("workers", [2, 4])
    def test_pool_worker_kill_mid_campaign_recovers_identically(
        self, clean_digests, tmp_path, workers
    ):
        """Killing a persistent-pool worker mid-campaign (os._exit in the
        child via the injected crash) rebuilds the pool *in place*, requeues
        the dead worker's shards, and still exports byte-identical
        artifacts — and the flight recorder shows one pool identity with a
        non-zero restart count rather than a parade of fresh pools."""
        from repro.parallel import shutdown_pools

        telemetry = Telemetry.capture()
        try:
            study = run_study(
                _config(
                    faults=TRANSIENT_PLAN,
                    resilience=ResilienceConfig(),
                    parallel=ParallelConfig(backend="pool", workers=workers),
                ),
                telemetry=telemetry,
            )
        finally:
            shutdown_pools()
        assert study.coverage.complete
        assert _archive_digests(study, tmp_path / f"pool-w{workers}") == clean_digests
        assert telemetry.metrics.counter("resilience.worker_crashes") >= 1
        assert telemetry.metrics.counter("resilience.requeues") >= 1
        pools = telemetry.flight.pools
        assert pools["campaign"]["persistent"]
        # Same handle across stages, crash counted as a restart on it.
        assert pools["campaign"]["pool"] == pools["clustering"]["pool"]
        assert pools["clustering"]["restarts"] >= 1

    def test_transient_store_load_fault_is_retried(self, clean_digests, tmp_path):
        """A store entry whose first load fails rehydrates on retry, and the
        rehydrated study exports the clean bytes."""
        from repro.obs import MetricsRegistry
        from repro.store import StudyStore

        store = StudyStore(tmp_path / "store")
        key = store.put(run_study(_config()))
        faults = FaultPlan(
            seed=3, specs=(FaultSpec(site="store.load", kind="error", rate=1.0, fail_attempts=1),)
        )
        registry = MetricsRegistry()
        flaky = StudyStore(
            tmp_path / "store",
            faults=faults,
            retry=RetryPolicy(max_attempts=2),
            metrics=registry,
        )
        study = flaky.get(_config())
        assert study is not None
        assert registry.counter("store.retries") == 1
        assert _archive_digests(study, tmp_path / "rehydrated") == clean_digests
        assert key in flaky.keys()


class TestPermanentFaultsDegradeGracefully:
    @pytest.fixture(scope="class")
    def degraded(self) -> tuple[Study, Telemetry]:
        telemetry = Telemetry.capture()
        study = run_study(_config(faults=PERMANENT_PLAN), telemetry=telemetry)
        return study, telemetry

    def test_study_completes_with_degraded_coverage(self, degraded):
        study, _ = degraded
        assert not study.coverage.complete
        assert study.coverage.lost("mlab.pings") > 0
        assert study.coverage.lost("scan.records") > 0
        assert study.coverage.lost("rdns.lookups") > 0

    def test_ping_losses_match_the_fire_set_exactly(self, degraded):
        """Ping drops have no upstream filter, so the coverage row must
        equal the plan's recomputed fire-set to the unit."""
        study, _ = degraded
        n_ips = len(study.matrix.ips)
        expected = sum(PERMANENT_PLAN.fires_ever("mlab.ping", i) for i in range(n_ips))
        assert expected > 0
        assert study.coverage.entries["mlab.pings"] == (expected, n_ips)
        assert len(study.matrix.unmeasured_ips) == expected
        # Dropped IPs surface as all-NaN latency columns (the methodology's
        # own unresponsive IPs add more NaN columns, so subset not equality).
        all_nan = np.isnan(study.matrix.rtt_ms).all(axis=0)
        for i in range(n_ips):
            if PERMANENT_PLAN.fires_ever("mlab.ping", i):
                assert all_nan[i]

    def test_scan_losses_match_applied_injections_exactly(self, degraded):
        """Scan drops apply only to servers that responded, so the ledger
        must equal the injector's applied count (telemetry) and stay under
        the plan's per-epoch fire-set bound."""
        study, telemetry = degraded
        scan_lost, scan_total = study.coverage.entries["scan.records"]
        assert scan_lost == telemetry.metrics.counter("faults.scan_records_dropped")
        epochs = sorted(study.inventories)
        assert scan_total == sum(len(study.history.state(e).servers) for e in epochs)
        upper_bound = sum(
            PERMANENT_PLAN.fires_ever("scan.record", i)
            for e in epochs
            for i in range(len(study.history.state(e).servers))
        )
        assert 0 < scan_lost <= upper_bound

    def test_rdns_losses_match_a_clean_run_differentially(self, degraded, clean_study):
        """Exact differential: the chaos run's PTR records are the clean
        run's minus precisely the fire-set, and the ledger counts the
        difference."""
        study, _ = degraded
        servers = study.history.state("2023").servers
        fired_ips = {
            server.ip
            for index, server in enumerate(servers)
            if PERMANENT_PLAN.fires_ever("rdns.lookup", index)
        }
        clean_ips = set(clean_study.ptr.records)
        assert set(study.ptr.records) == clean_ips - fired_ips
        expected_lost = len(clean_ips & fired_ips)
        assert expected_lost > 0
        assert study.coverage.entries["rdns.lookups"] == (expected_lost, len(servers))

    def test_resilience_metrics_surface_in_snapshot(self, degraded):
        _, telemetry = degraded
        gauges = telemetry.metrics.gauges
        assert "resilience.coverage_lost_shards" in gauges

    def test_coverage_lands_in_report_and_manifest(self, degraded, tmp_path):
        from repro.io.archive import ArchiveManifest, load_archive
        from repro.report import build_report

        study, _ = degraded
        section = build_report(study, sections=("cov",))
        assert "DEGRADED" in section
        save_archive(study, tmp_path / "degraded")
        manifest = load_archive(tmp_path / "degraded").manifest
        losses = {site: lost for site, lost, _total in manifest.coverage}
        assert losses["mlab.pings"] == study.coverage.lost("mlab.pings")

    def test_permanent_shard_loss_respects_budget(self):
        """A permanently-crashing campaign shard quarantines under a
        permissive budget (coverage accounted) and aborts under the
        default zero budget."""
        from repro.resilience import ShardQuarantinedError

        faults = FaultPlan(
            seed=13, specs=(FaultSpec(site="campaign.shard", kind="crash", rate=0.2),)
        )
        telemetry = Telemetry.capture()
        tolerant = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2),
            fallback_in_process=False,
            budget=ErrorBudget(shard_loss_fraction=1.0),
        )
        study = run_study(_config(faults=faults, resilience=tolerant), telemetry=telemetry)
        lost, total = study.coverage.entries["campaign.shards"]
        assert lost == sum(faults.fires_ever("campaign.shard", i) for i in range(total))
        assert lost >= 1
        assert study.coverage.shards_lost == lost
        assert telemetry.metrics.counter("resilience.quarantined_shards") == lost
        # The lost shards' IPs are all-NaN but the study still renders.
        assert np.isnan(study.matrix.rtt_ms).any()
        with pytest.raises(ShardQuarantinedError):
            run_study(_config(faults=faults, resilience=ResilienceConfig()))


class TestDisabledInjectionIsFree:
    def test_no_faults_no_resilience_is_byte_identical(self, clean_digests, tmp_path):
        """The supervised code paths collapse to the plain fast path when
        disabled: a second clean run reproduces the reference bytes."""
        study = run_study(_config())
        assert study.coverage.complete
        assert _archive_digests(study, tmp_path / "again") == clean_digests

    def test_fault_config_with_empty_plan_is_inert(self, clean_digests, tmp_path):
        study = run_study(_config(faults=FaultPlan(seed=1, specs=())))
        assert _archive_digests(study, tmp_path / "empty") == clean_digests
