"""Cross-cutting property-based tests (hypothesis) on the core algorithms.

These complement the per-module unit tests with invariants that must hold
for *any* input: OPTICS permutation/scale invariance, distance-matrix
consistency between the reference and vectorised implementations, xi label
structure, and spike-split soundness.
"""

import numpy as np
import pytest
from hypothesis import example, given, settings, strategies as st

from repro.clustering.distance import (
    pairwise_trimmed_manhattan,
    pairwise_trimmed_manhattan_reference,
    trimmed_manhattan,
)
from repro.clustering.optics import optics_order
from repro.clustering.sites import (
    ClusteringConfig,
    cluster_isp_offnets,
    pair_confusion_counts,
    pair_confusion_counts_reference,
    rand_index,
)
from repro.clustering.xi import XiCluster, extract_xi_clusters, split_clusters_on_spikes, xi_labels


@st.composite
def latency_columns(draw):
    """Random (n_vps, n_ips) latency columns with optional NaN holes."""
    n_vps = draw(st.integers(3, 20))
    n_ips = draw(st.integers(2, 10))
    seed = draw(st.integers(0, 2**31 - 1))
    nan_rate = draw(st.floats(0.0, 0.2))
    rng = np.random.default_rng(seed)
    columns = rng.uniform(1.0, 200.0, size=(n_vps, n_ips))
    columns[rng.random((n_vps, n_ips)) < nan_rate] = np.nan
    return columns


class TestDistanceEquivalence:
    @given(latency_columns(), st.floats(0.0, 0.45))
    @settings(max_examples=60, deadline=None)
    def test_vectorised_matches_reference(self, columns, trim):
        fast = pairwise_trimmed_manhattan(columns, trim)
        n = columns.shape[1]
        for i in range(n):
            assert fast[i, i] == 0.0
            for j in range(i + 1, n):
                reference = trimmed_manhattan(columns[:, i], columns[:, j], trim)
                if np.isnan(reference):
                    assert np.isnan(fast[i, j])
                else:
                    assert fast[i, j] == pytest.approx(reference, abs=1e-9)
                assert fast[i, j] == fast[j, i] or (np.isnan(fast[i, j]) and np.isnan(fast[j, i]))


@st.composite
def symmetric_distances(draw):
    """Random symmetric distance matrices stressing the OPTICS edge cases.

    Quantized values force reachability *ties* (the heap's lexicographic
    pop must match the reference argmin's first-occurrence tie-break), NaN
    holes exercise unconnectable pairs, and zeroing whole off-diagonal
    blocks creates disconnected components (outer-loop restarts).
    """
    n = draw(st.integers(2, 16))
    seed = draw(st.integers(0, 2**31 - 1))
    n_values = draw(st.integers(1, 6))  # tiny value alphabet => many ties
    nan_rate = draw(st.floats(0.0, 0.5))
    split = draw(st.integers(0, n))  # NaN wall => disconnected components
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.5, 20.0, size=n_values)
    upper = values[rng.integers(0, n_values, size=(n, n))]
    upper[rng.random((n, n)) < nan_rate] = np.nan
    matrix = np.triu(upper, k=1)
    matrix = matrix + matrix.T
    if 0 < split < n:
        matrix[:split, split:] = np.nan
        matrix[split:, :split] = np.nan
    np.fill_diagonal(matrix, 0.0)
    return matrix


class TestOpticsImplementationEquivalence:
    """The heap frontier must be bit-equal to the reference scan — the
    determinism contract the clustering artifacts rest on."""

    @given(symmetric_distances(), st.integers(2, 4))
    @settings(max_examples=80, deadline=None)
    def test_heap_is_bit_equal_to_reference(self, distances, min_pts):
        heap = optics_order(distances, min_pts, implementation="heap")
        reference = optics_order(distances, min_pts, implementation="reference")
        assert np.array_equal(heap.ordering, reference.ordering)
        # Exact float equality, including the inf exploration starts.
        assert np.array_equal(heap.reachability, reference.reachability)
        assert np.array_equal(heap.core_distance, reference.core_distance)

    @given(latency_columns(), st.floats(0.05, 0.45))
    @settings(max_examples=40, deadline=None)
    def test_heap_is_bit_equal_on_real_distance_matrices(self, columns, trim):
        distances = pairwise_trimmed_manhattan(columns, trim)
        heap = optics_order(distances, implementation="heap")
        reference = optics_order(distances, implementation="reference")
        assert np.array_equal(heap.ordering, reference.ordering)
        assert np.array_equal(heap.reachability, reference.reachability)

    def test_env_kill_switch_selects_reference(self, monkeypatch):
        from repro.clustering.optics import REFERENCE_ENV_VAR, active_optics_implementation

        assert active_optics_implementation() == "heap"
        monkeypatch.setenv(REFERENCE_ENV_VAR, "1")
        assert active_optics_implementation() == "reference"


class TestPairConfusionEquivalence:
    @given(st.lists(st.integers(-1, 5), min_size=1, max_size=40), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_vectorised_matches_loop(self, raw, shuffle_seed):
        a = np.array(raw)
        b = np.random.default_rng(shuffle_seed).permutation(a)
        assert pair_confusion_counts(a, b) == pair_confusion_counts_reference(a, b)


class TestDistanceTriangleEquivalence:
    @given(latency_columns(), st.floats(0.0, 0.45))
    @settings(max_examples=30, deadline=None)
    def test_triangle_blocks_match_reference_loop(self, columns, trim):
        """The mirrored-triangle matrix against the per-pair loop, whole
        matrices at once (the element-wise case lives in
        TestDistanceEquivalence)."""
        fast = pairwise_trimmed_manhattan(columns, trim)
        reference = pairwise_trimmed_manhattan_reference(columns, trim)
        assert np.allclose(fast, reference, atol=1e-9, equal_nan=True)
        assert np.array_equal(fast, fast.T, equal_nan=True)


class TestOpticsInvariances:
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(0, 2**31 - 1),
        st.integers(3, 8),
        st.integers(3, 8),
    )
    # ROADMAP item 6: when a shuffled ordering *ends* on a tiny absolute
    # reachability rise, the ratio-based xi steep-up rule drops the tail
    # point to noise while the unshuffled ordering keeps it (Rand 0.857).
    # Inherent to Ankerst-style xi extraction, not an implementation bug;
    # pinned here so the flake cannot resurface silently.  The planned fix
    # (predecessor correction or an absolute-reachability floor on steep
    # detection) should restore exact invariance — tighten the floor back
    # to 1.0 in that PR.
    @example(data_seed=20455020, perm_seed=1, n_a=4, n_b=3)
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariance_on_separated_structure(self, data_seed, perm_seed, n_a, n_b):
        """Shuffling the input points must barely change a clear grouping.

        (On structureless data OPTICS orderings — ours and sklearn's —
        legitimately depend on input order, so the property is asserted
        where the paper needs it: well-separated facilities.  Exact
        invariance does not hold — see the pinned @example — so the claim
        is a documented Rand-index floor.)
        """
        rng = np.random.default_rng(data_seed)
        n_vps = 20
        base_a = rng.uniform(10, 100, n_vps)
        base_b = base_a + 25.0
        columns = np.empty((n_vps, n_a + n_b))
        for j in range(n_a):
            columns[:, j] = base_a + rng.normal(0, 0.05, n_vps)
        for j in range(n_b):
            columns[:, n_a + j] = base_b + rng.normal(0, 0.05, n_vps)
        n = n_a + n_b
        base = cluster_isp_offnets(columns, list(range(n)), ClusteringConfig(xi=0.5))

        permutation = np.random.default_rng(perm_seed).permutation(n)
        shuffled = cluster_isp_offnets(
            columns[:, permutation], [int(p) for p in permutation], ClusteringConfig(xi=0.5)
        )
        labels_shuffled = np.empty(n, dtype=int)
        for position, point in enumerate(permutation):
            labels_shuffled[point] = shuffled.labels[position]
        assert rand_index(base.labels, labels_shuffled) >= 0.85

    @given(latency_columns(), st.floats(0.5, 50.0))
    @settings(max_examples=40, deadline=None)
    def test_scale_invariance(self, columns, scale):
        """xi extraction is ratio-based: scaling all latencies is a no-op."""
        n = columns.shape[1]
        base = cluster_isp_offnets(columns, list(range(n)), ClusteringConfig(xi=0.5))
        scaled = cluster_isp_offnets(columns * scale, list(range(n)), ClusteringConfig(xi=0.5))
        assert rand_index(base.labels, scaled.labels) == pytest.approx(1.0)

    @given(latency_columns())
    @settings(max_examples=40, deadline=None)
    def test_ordering_is_permutation_and_reachability_non_negative(self, columns):
        distances = pairwise_trimmed_manhattan(columns)
        result = optics_order(distances)
        assert sorted(result.ordering.tolist()) == list(range(columns.shape[1]))
        finite = result.reachability[np.isfinite(result.reachability)]
        assert (finite >= 0).all()

    @given(latency_columns())
    @settings(max_examples=40, deadline=None)
    def test_first_position_has_infinite_reachability(self, columns):
        distances = pairwise_trimmed_manhattan(columns)
        result = optics_order(distances)
        assert not np.isfinite(result.reachability[0])


@st.composite
def reachability_plots(draw):
    n = draw(st.integers(2, 25))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    plot = rng.uniform(0.01, 10.0, size=n)
    plot[0] = np.inf
    return plot


class TestXiProperties:
    @given(reachability_plots(), st.floats(0.05, 0.95))
    @settings(max_examples=60, deadline=None)
    def test_clusters_within_bounds(self, plot, xi):
        clusters = extract_xi_clusters(plot, xi)
        for cluster in clusters:
            assert 0 <= cluster.start <= cluster.end < len(plot)
            assert cluster.size >= 2

    @given(reachability_plots(), st.floats(0.05, 0.95))
    @settings(max_examples=60, deadline=None)
    def test_labels_are_contiguous_intervals(self, plot, xi):
        clusters = extract_xi_clusters(plot, xi)
        labels = xi_labels(len(plot), clusters)
        for label in set(labels) - {-1}:
            positions = np.flatnonzero(labels == label)
            assert positions[-1] - positions[0] + 1 == len(positions)

    @given(reachability_plots(), st.floats(1.5, 20.0))
    @settings(max_examples=60, deadline=None)
    def test_spike_split_never_grows_clusters(self, plot, factor):
        clusters = extract_xi_clusters(plot, 0.3)
        split = split_clusters_on_spikes(plot, clusters, spike_factor=factor)
        covered_before = {p for c in clusters for p in range(c.start, c.end + 1)}
        covered_after = {p for c in split for p in range(c.start, c.end + 1)}
        assert covered_after <= covered_before

    def test_spike_split_idempotent_on_clean_plot(self):
        plot = np.array([np.inf, 1.0, 1.0, 1.0, 1.0])
        clusters = [XiCluster(0, 4)]
        once = split_clusters_on_spikes(plot, clusters)
        twice = split_clusters_on_spikes(plot, once)
        assert once == twice == clusters
