"""Tests for the AS graph and valley-free routing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.asn import AS, ASRole
from repro.topology.relationships import (
    ASGraph,
    PeerEdge,
    PeeringMedium,
    Route,
    RouteKind,
)
from repro.topology.geo import default_world


def make_as(asn: int, role: ASRole = ASRole.ACCESS) -> AS:
    world = default_world()
    return AS(asn=asn, name=f"AS{asn}", role=role, country_code="US", cities=world.cities_in("US")[:1])


@pytest.fixture()
def chain():
    """customer c -> provider m -> provider t; peer edge t <-> p; p's customer d."""
    c, m, t, p, d = (make_as(i) for i in (1, 2, 3, 4, 5))
    graph = ASGraph()
    graph.add_customer_provider(c, m)
    graph.add_customer_provider(m, t)
    graph.add_peering(t, p, PeerEdge.pni())
    graph.add_customer_provider(d, p)
    return graph, c, m, t, p, d


class TestPeerEdge:
    def test_pni_constructor(self):
        edge = PeerEdge.pni()
        assert edge.has_pni and not edge.has_ixp

    def test_ixp_constructor(self):
        edge = PeerEdge.ixp(3)
        assert edge.has_ixp and not edge.has_pni and edge.ixp_id == 3

    def test_both(self):
        edge = PeerEdge.both(1)
        assert edge.has_pni and edge.has_ixp

    def test_ixp_requires_id(self):
        with pytest.raises(ValueError):
            PeerEdge(media=frozenset({PeeringMedium.IXP}))

    def test_pni_rejects_id(self):
        with pytest.raises(ValueError):
            PeerEdge(media=frozenset({PeeringMedium.PNI}), ixp_id=1)

    def test_empty_media_rejected(self):
        with pytest.raises(ValueError):
            PeerEdge(media=frozenset())


class TestGraphConstruction:
    def test_duplicate_c2p_rejected(self, chain):
        graph, c, m, *_ = chain
        with pytest.raises(ValueError):
            graph.add_customer_provider(c, m)

    def test_bidirectional_c2p_rejected(self, chain):
        graph, c, m, *_ = chain
        with pytest.raises(ValueError):
            graph.add_customer_provider(m, c)

    def test_peering_over_transit_rejected(self, chain):
        graph, c, m, *_ = chain
        with pytest.raises(ValueError):
            graph.add_peering(c, m, PeerEdge.pni())

    def test_self_loop_rejected(self):
        a = make_as(1)
        with pytest.raises(ValueError):
            ASGraph().add_customer_provider(a, a)

    def test_accessors(self, chain):
        graph, c, m, t, p, d = chain
        assert graph.providers_of(c) == [m]
        assert graph.customers_of(m) == [c]
        assert graph.peers_of(t) == [p]
        assert graph.are_peers(t, p) and graph.are_peers(p, t)
        assert graph.has_any_relationship(c, m)
        assert not graph.has_any_relationship(c, t)
        assert set(graph.neighbors_of(m)) == {c, t}

    def test_all_ases(self, chain):
        graph, *ases = chain
        assert set(graph.all_ases()) == set(ases)


class TestRouting:
    def test_customer_route_preferred(self):
        # dst has a provider m; m also peers with x; x must use its customer
        # route if one exists.
        dst, m, x = make_as(1), make_as(2), make_as(3)
        graph = ASGraph()
        graph.add_customer_provider(dst, m)
        graph.add_customer_provider(dst, x)
        graph.add_peering(m, x, PeerEdge.pni())
        routes = graph.routes_to(dst)
        assert routes[x].kind is RouteKind.CUSTOMER

    def test_origin_route(self, chain):
        graph, c, *_ = chain
        assert graph.routes_to(c)[c].kind is RouteKind.ORIGIN

    def test_valley_free_path_up_peer_down(self, chain):
        graph, c, m, t, p, d = chain
        path = graph.as_path(c, d)
        assert path == [c, m, t, p, d]

    def test_no_route_without_connectivity(self):
        a, b = make_as(1), make_as(2)
        graph = ASGraph()
        graph.add_customer_provider(a, make_as(3))
        graph.add_customer_provider(b, make_as(4))
        assert graph.as_path(a, b) is None

    def test_no_valley_through_two_peers(self):
        # a - p1 peer, p1 - p2 peer, p2 is dst: a cannot use two peer hops.
        a, p1, p2 = make_as(1), make_as(2), make_as(3)
        graph = ASGraph()
        graph.add_peering(a, p1, PeerEdge.pni())
        graph.add_peering(p1, p2, PeerEdge.pni())
        routes = graph.routes_to(p2)
        assert p1 in routes
        assert a not in routes  # would need peer->peer: not valley-free

    def test_self_path(self, chain):
        graph, c, *_ = chain
        assert graph.as_path(c, c) == [c]

    def test_route_cache_invalidation(self):
        dst, a, b = make_as(1), make_as(2), make_as(3)
        graph = ASGraph()
        graph.add_customer_provider(dst, a)
        graph.add_customer_provider(a, b)
        assert graph.as_path(b, dst) == [b, a, dst]
        # Adding a direct edge must invalidate the cache.
        graph.add_customer_provider(dst, b)
        assert graph.as_path(b, dst) == [b, dst]

    def test_prefer_shorter_path_within_class(self):
        dst, mid, far, src = make_as(1), make_as(2), make_as(3), make_as(4)
        graph = ASGraph()
        # src can reach dst via mid (2 hops) or via far->mid (3 hops); both
        # are provider routes from src's perspective... build a clean case:
        graph.add_customer_provider(dst, mid)
        graph.add_customer_provider(mid, far)
        graph.add_customer_provider(src, mid)
        graph.add_customer_provider(src, far)
        routes = graph.routes_to(dst)
        assert routes[src].next_hop is mid
        assert routes[src].length == 2

    def test_preference_key_ordering(self):
        a = make_as(10)
        customer = Route(RouteKind.CUSTOMER, a, 5)
        peer = Route(RouteKind.PEER, a, 1)
        assert customer.preference_key < peer.preference_key


@st.composite
def random_hierarchy(draw):
    """A random 2-level provider hierarchy with optional peer links."""
    n_top = draw(st.integers(1, 3))
    n_leaf = draw(st.integers(1, 6))
    tops = [make_as(100 + i) for i in range(n_top)]
    leaves = [make_as(200 + i) for i in range(n_leaf)]
    graph = ASGraph()
    for i, top in enumerate(tops[1:], start=1):
        graph.add_peering(tops[0], top, PeerEdge.pni())
    for i, leaf in enumerate(leaves):
        graph.add_customer_provider(leaf, tops[draw(st.integers(0, n_top - 1))])
    return graph, tops, leaves


class TestRoutingProperties:
    @given(random_hierarchy())
    @settings(max_examples=40, deadline=None)
    def test_paths_are_loop_free_and_valley_free(self, data):
        graph, tops, leaves = data
        for src in leaves:
            for dst in leaves:
                path = graph.as_path(src, dst)
                if path is None:
                    continue
                assert len(set(path)) == len(path)  # loop-free
                # Valley-free: once we go down (p2c) or across (peer), we
                # never go up (c2p) again; at most one peer edge.
                went_down = False
                peer_edges = 0
                for a, b in zip(path, path[1:]):
                    if b in graph.providers_of(a):
                        assert not went_down
                    elif graph.are_peers(a, b):
                        peer_edges += 1
                        went_down = True
                    else:
                        assert b in graph.customers_of(a)
                        went_down = True
                assert peer_edges <= 1
