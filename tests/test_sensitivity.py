"""Tests for the seed-sensitivity harness."""

import pytest

from repro.sensitivity import DEFAULT_METRICS, MetricSpec, run_sensitivity


@pytest.fixture(scope="module")
def report():
    return run_sensitivity(seeds=(7, 77), n_access_isps=50, n_vantage_points=30)


class TestSensitivity:
    def test_collects_every_metric(self, report):
        assert set(report.values) == {spec.name for spec in DEFAULT_METRICS}
        for series in report.values.values():
            assert len(series) == 2

    def test_statistics(self, report):
        name = DEFAULT_METRICS[0].name
        assert report.mean(name) == pytest.approx(sum(report.values[name]) / 2)
        assert report.std(name) >= 0

    def test_bands_checked(self, report):
        for name in report.values:
            assert 0 <= report.out_of_band(name) <= 2

    def test_render(self, report):
        text = report.render()
        assert "violations" in text
        assert "Google growth" in text

    def test_metric_spec_band(self):
        spec = MetricSpec("m", lambda s: 0.0, 0.0, 1.0, "x")
        assert spec.within_band(0.5)
        assert not spec.within_band(1.5)

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_sensitivity(seeds=())
