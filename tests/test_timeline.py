"""Timeline engine tests: event model, stage store, and the differential harness.

The acceptance property of the incremental engine: for every epoch, the
cached (incremental) computation and a from-scratch (uncached) rerun
produce **byte-identical** series rows, and the stage-store counters
prove that cross-epoch reuse actually happened.
"""

import json

import pytest

from repro.store import STAGE_SCHEMA, StageStore, stage_key
from repro.timeline import (
    DEFAULT_TIMELINE_ANCHORS,
    DeploymentEvent,
    Timeline,
    TimelineConfig,
    TimelineSpec,
    build_substrate,
    build_timeline,
    compute_epoch,
    quarter_label,
    quarter_range,
    run_timeline,
    timeline_fingerprint,
)
from repro.timeline.events import _capacity_at, _quarter_index, _target_ratio
from repro.topology.generator import InternetConfig, generate_internet

pytestmark = pytest.mark.timeline


def _tiny_config(start="2022Q1", end="2022Q3", **kwargs) -> TimelineConfig:
    spec = kwargs.pop("spec", None) or TimelineSpec(start=start, end=end, seed=3)
    return TimelineConfig(
        internet=InternetConfig(seed=5, n_access_isps=30, n_ixps=12),
        spec=spec,
        n_vantage_points=20,
        seed=7,
        **kwargs,
    )


class TestQuarterMath:
    def test_range_inclusive(self):
        assert quarter_range("2021Q3", "2022Q2") == ("2021Q3", "2021Q4", "2022Q1", "2022Q2")

    def test_single_quarter(self):
        assert quarter_range("2023Q2", "2023Q2") == ("2023Q2",)

    def test_label_roundtrip(self):
        for label in ("2019Q1", "2024Q4", "2026Q2"):
            assert quarter_label(_quarter_index(label)) == label

    def test_yearly_bounds_rejected(self):
        with pytest.raises(ValueError, match="quarterly"):
            quarter_range("2021", "2023Q2")

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValueError, match="after"):
            quarter_range("2023Q2", "2021Q1")


class TestTimelineSpec:
    def test_defaults_span_32_quarters(self):
        assert len(TimelineSpec().quarters) == 32

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            TimelineSpec(policy="chaotic")

    def test_eviction_requires_churn(self):
        with pytest.raises(ValueError, match="churn"):
            TimelineSpec(policy="monotone", eviction_rate=0.1)

    def test_bad_anchor_ratio_rejected(self):
        with pytest.raises(ValueError, match="anchor"):
            TimelineSpec(anchors={"Google": {"2020Q1": 1.5}})

    def test_bad_anchor_label_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            TimelineSpec(anchors={"Google": {"someday": 0.5}})

    def test_bad_edition_rejected(self):
        with pytest.raises(ValueError, match="edition"):
            TimelineSpec(edition="2019")

    def test_to_json_fills_default_anchors(self):
        assert TimelineSpec().to_json()["anchors"] == DEFAULT_TIMELINE_ANCHORS


class TestTargetRatio:
    def test_interpolates_between_anchors(self):
        anchors = {"2020Q1": 0.0, "2021Q1": 1.0}
        assert _target_ratio(anchors, "2020Q3") == pytest.approx(0.5)

    def test_clamps_outside_anchors(self):
        anchors = {"2020Q1": 0.2, "2021Q1": 0.8}
        assert _target_ratio(anchors, "2019Q1") == pytest.approx(0.2)
        assert _target_ratio(anchors, "2025Q4") == pytest.approx(0.8)

    def test_empty_anchors_mean_full(self):
        assert _target_ratio({}, "2020Q1") == 1.0


class TestCapacityRamp:
    def test_no_ramp_is_full_immediately(self):
        assert _capacity_at(10, 0, 0) == 10

    def test_linear_ramp(self):
        assert [_capacity_at(8, age, 3) for age in range(5)] == [2, 4, 6, 8, 8]

    def test_never_below_one(self):
        assert _capacity_at(1, 0, 10) == 1


class TestBuildTimeline:
    @pytest.fixture(scope="class")
    def internet(self):
        return generate_internet(InternetConfig(seed=5, n_access_isps=30, n_ixps=12))

    def test_deterministic(self, internet):
        spec = TimelineSpec(start="2022Q1", end="2022Q4", seed=3)
        first, second = build_timeline(internet, spec), build_timeline(internet, spec)
        assert [e.to_json() for e in first.events] == [e.to_json() for e in second.events]
        assert first.active == second.active

    def test_monotone_quarters_nest(self, internet):
        spec = TimelineSpec(start="2021Q1", end="2022Q4", seed=3)
        timeline = build_timeline(internet, spec)
        previous: set[int] = set()
        for quarter in timeline.quarters:
            ips = {server.ip for server in timeline.state_at(quarter).servers}
            assert previous <= ips, f"{quarter} lost servers under monotone policy"
            previous = ips

    def test_monotone_never_evicts(self, internet):
        timeline = build_timeline(internet, TimelineSpec(start="2021Q1", end="2022Q4", seed=3))
        assert all(event.kind != "evict" for event in timeline.events)

    def test_final_quarter_reaches_final_placement(self, internet):
        # The default anchors hit ratio 1.0 at 2026Q4, so a timeline
        # ending there exposes the complete final footprint; one ending
        # earlier deliberately does not (anchors are calendar-pinned).
        spec = TimelineSpec(start="2026Q1", end="2026Q4", seed=3)
        timeline = build_timeline(internet, spec)
        final_ips = {server.ip for server in timeline.final_state.servers}
        assert {server.ip for server in timeline.state_at("2026Q4").servers} == final_ips
        early = build_timeline(internet, TimelineSpec(start="2022Q1", end="2022Q4", seed=3))
        early_final = {server.ip for server in early.state_at("2022Q4").servers}
        assert early_final < {server.ip for server in early.final_state.servers}

    def test_churn_evicts_and_stays_deterministic(self, internet):
        spec = TimelineSpec(
            start="2021Q1", end="2023Q4", policy="churn", eviction_rate=0.08, seed=3
        )
        first, second = build_timeline(internet, spec), build_timeline(internet, spec)
        assert [e.to_json() for e in first.events] == [e.to_json() for e in second.events]
        assert any(event.kind == "evict" for event in first.events)

    def test_capacity_ramp_emits_capacity_events(self, internet):
        spec = TimelineSpec(start="2022Q1", end="2022Q4", capacity_ramp_quarters=3, seed=3)
        timeline = build_timeline(internet, spec)
        assert any(event.kind == "capacity" for event in timeline.events)
        # Ramped deployments still converge on the full footprint by age.
        for quarter in timeline.quarters[1:]:
            before = timeline.active_counts(timeline.quarters[0])
            now = timeline.active_counts(quarter)
            for key, n in before.items():
                assert now.get(key, 0) >= n, "capacity shrank under monotone growth"

    def test_unchanged_deployment_has_identical_servers(self, internet):
        spec = TimelineSpec(start="2022Q1", end="2022Q4", seed=3)
        timeline = build_timeline(internet, spec)
        first = {
            (d.hypergiant, d.isp.asn): [s.ip for s in d.servers]
            for d in timeline.state_at("2022Q1").deployments
        }
        second = {
            (d.hypergiant, d.isp.asn): [s.ip for s in d.servers]
            for d in timeline.state_at("2022Q2").deployments
        }
        unchanged = [
            key
            for key, ips in first.items()
            if key in second and len(second[key]) == len(ips)
        ]
        assert unchanged, "expected at least one deployment unchanged between quarters"
        for key in unchanged:
            assert second[key] == first[key]


class TestStageStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = StageStore(tmp_path)
        key = stage_key("detect", {"x": 1})
        assert store.get("detect", key) is None
        store.put("detect", key, {"detections": [[1, "Google"]]})
        assert store.get("detect", key) == {"detections": [[1, "Google"]]}
        assert store.counter("detect", "misses") == 1
        assert store.counter("detect", "hits") == 1
        assert store.counter("detect", "writes") == 1

    def test_put_is_idempotent(self, tmp_path):
        store = StageStore(tmp_path)
        key = stage_key("epoch", {"q": "2022Q1"})
        store.put("epoch", key, {"a": 1})
        store.put("epoch", key, {"a": 1})
        assert store.counter("epoch", "writes") == 1

    def test_contains(self, tmp_path):
        store = StageStore(tmp_path)
        key = stage_key("cluster", {"k": 2})
        assert not store.contains(key)
        store.put("cluster", key, {"labels": []})
        assert store.contains(key)

    def test_corrupt_entry_is_quarantined_as_miss(self, tmp_path):
        store = StageStore(tmp_path)
        key = stage_key("measure", {"m": 3})
        store.put("measure", key, {"ips": [1, 2]})
        path = store.entry_path(key)
        path.write_text(path.read_text(encoding="utf-8").replace("1", "9"), encoding="utf-8")
        assert store.get("measure", key) is None
        assert store.counter("measure", "corruptions") == 1
        assert not path.exists(), "corrupt entry must be unlinked"

    def test_kind_mismatch_is_a_miss(self, tmp_path):
        store = StageStore(tmp_path)
        key = stage_key("detect", {"x": 1})
        store.put("detect", key, {"d": []})
        assert store.get("cluster", key) is None

    def test_keys_are_schema_versioned(self):
        assert STAGE_SCHEMA in ("repro-stage-v1",)
        assert stage_key("detect", {"x": 1}) != stage_key("measure", {"x": 1})

    def test_quarantined_entry_lands_in_quarantine_dir(self, tmp_path):
        store = StageStore(tmp_path)
        key = stage_key("measure", {"m": 3})
        store.put("measure", key, {"ips": [1, 2]})
        path = store.entry_path(key)
        path.write_text(path.read_text().replace("1", "9"))
        assert store.get("measure", key) is None
        parked = list(store.quarantine_dir.glob(f"{key}.*.json"))
        assert len(parked) == 1, "the bad bytes must survive for post-mortems"


class TestStageStoreGC:
    """Size/age-bounded GC + quarantine sweep (StudyStore.gc parity)."""

    def _seed(self, store, n):
        """Write n entries with strictly increasing mtimes; returns keys in age order."""
        import os
        import time

        keys = []
        base = time.time() - 1000
        for i in range(n):
            key = stage_key("epoch", {"i": i})
            store.put("epoch", key, {"row": i})
            os.utime(store.entry_path(key), (base + i, base + i))
            keys.append(key)
        return keys

    def test_evicts_oldest_beyond_max_entries(self, tmp_path):
        store = StageStore(tmp_path)
        keys = self._seed(store, 5)
        evicted = store.gc(max_entries=2)
        assert evicted == keys[:3]
        assert store.stats()["entries"] == 2
        assert not store.contains(keys[0]) and store.contains(keys[4])
        assert store.counter("gc", "evictions") == 3

    def test_evicts_oldest_beyond_max_bytes(self, tmp_path):
        store = StageStore(tmp_path)
        keys = self._seed(store, 4)
        per_entry = store.stats()["total_bytes"] // 4
        evicted = store.gc(max_bytes=2 * per_entry)
        assert evicted == keys[:2]
        assert store.stats()["total_bytes"] <= 2 * per_entry

    def test_evicts_entries_past_max_age(self, tmp_path):
        store = StageStore(tmp_path)
        keys = self._seed(store, 3)  # mtimes ~1000s in the past
        fresh = stage_key("epoch", {"i": "fresh"})
        store.put("epoch", fresh, {"row": "fresh"})
        evicted = store.gc(max_age_s=500.0)
        assert sorted(evicted) == sorted(keys)
        assert store.contains(fresh)

    def test_constructor_bounds_are_the_defaults(self, tmp_path):
        store = StageStore(tmp_path, max_entries=1)
        keys = self._seed(store, 3)
        assert store.gc() == keys[:2]

    def test_no_bounds_is_a_noop(self, tmp_path):
        store = StageStore(tmp_path)
        self._seed(store, 3)
        assert store.gc() == []
        assert store.stats()["entries"] == 3

    def test_quarantine_sweep_by_count_and_age(self, tmp_path):
        import os
        import time

        store = StageStore(tmp_path)
        for i in range(3):
            key = stage_key("epoch", {"i": i})
            store.put("epoch", key, {"row": i})
            path = store.entry_path(key)
            path.write_text(path.read_text().replace(":", ";", 1))
            assert store.get("epoch", key) is None  # quarantined
        parked = sorted(store.quarantine_dir.iterdir())
        assert len(parked) == 3
        base = time.time() - 1000
        for i, path in enumerate(parked):
            os.utime(path, (base + i, base + i))

        store.gc(max_quarantine_entries=2)
        assert len(list(store.quarantine_dir.iterdir())) == 2
        store.gc(max_quarantine_age_s=1.0)
        assert len(list(store.quarantine_dir.iterdir())) == 0
        assert store.counter("gc", "quarantine_pruned") == 3


class TestFingerprint:
    def test_execution_knobs_excluded(self):
        from dataclasses import replace

        from repro.parallel import ParallelConfig

        base = _tiny_config()
        tweaked = replace(base, parallel=ParallelConfig(backend="process", workers=4))
        assert timeline_fingerprint(base) == timeline_fingerprint(tweaked)

    def test_spec_changes_fingerprint(self):
        base = _tiny_config()
        other = _tiny_config(spec=TimelineSpec(start="2022Q1", end="2022Q3", seed=4))
        assert timeline_fingerprint(base) != timeline_fingerprint(other)


class TestDifferentialHarness:
    """Incremental (cached) epoch rows == full uncached reruns, byte for byte."""

    @pytest.fixture(scope="class")
    def config(self):
        return _tiny_config(start="2022Q1", end="2022Q3")

    def test_incremental_equals_full_per_epoch(self, config, tmp_path):
        substrate = build_substrate(config)
        store = StageStore(tmp_path / "stages")
        incremental = [
            compute_epoch(substrate, quarter, store) for quarter in config.spec.quarters
        ]
        full = [compute_epoch(substrate, quarter, None) for quarter in config.spec.quarters]
        for inc_row, full_row in zip(incremental, full):
            assert json.dumps(inc_row, sort_keys=True) == json.dumps(full_row, sort_keys=True)

        # The counters prove the reuse is real, not vacuous: later epochs
        # hit the detect cache for unchanged deployments and the cluster
        # cache for ISPs whose offnet sets did not change.
        assert store.counter("detect", "hits") > 0
        assert store.counter("cluster", "hits") > 0
        # A cluster hit short-circuits measurement entirely.
        assert store.counter("measure", "misses") <= store.counter("cluster", "misses")

    def test_cached_row_roundtrips_byte_identically(self, config, tmp_path):
        from repro.timeline import epoch_stage_key

        substrate = build_substrate(config)
        store = StageStore(tmp_path / "stages")
        quarter = config.spec.quarters[0]
        fresh = compute_epoch(substrate, quarter, store)
        key = epoch_stage_key(config, quarter)
        store.put("epoch", key, fresh)
        loaded = store.get("epoch", key)
        assert json.dumps(loaded, sort_keys=True) == json.dumps(fresh, sort_keys=True)

    def test_campaign_report_matches_differential_rows(self, config, tmp_path):
        report = run_timeline(config, store=StageStore(tmp_path / "stages"))
        substrate = build_substrate(config)
        rows = [compute_epoch(substrate, quarter, None) for quarter in config.spec.quarters]
        assert [epoch.row for epoch in report.epochs] == rows
        assert report.fingerprint == timeline_fingerprint(config)

    def test_series_accessor(self, config, tmp_path):
        report = run_timeline(config, store=None)
        google = report.series("table1", "Google")
        assert len(google) == len(config.spec.quarters)
        assert all(isinstance(v, int) for v in google)
        # Monotone growth: the Table-1 ISP counts never shrink.
        assert google == sorted(google)


class TestEventsInRows:
    def test_epoch_rows_report_event_counts(self, tmp_path):
        config = _tiny_config(start="2022Q1", end="2022Q2")
        substrate = build_substrate(config)
        row = compute_epoch(substrate, "2022Q1", None)
        assert row["events"] == len(substrate.timeline.events_at("2022Q1"))
        assert row["events"] > 0  # the first quarter deploys the initial footprint


class TestTimelineObjects:
    def test_event_json_shape(self):
        event = DeploymentEvent(
            quarter="2022Q1", kind="deploy", hypergiant="Google", isp_asn=64512, n_servers=9
        )
        assert event.to_json() == {
            "quarter": "2022Q1",
            "kind": "deploy",
            "hypergiant": "Google",
            "isp_asn": 64512,
            "n_servers": 9,
        }

    def test_timeline_quarters_property(self):
        internet = generate_internet(InternetConfig(seed=5, n_access_isps=30, n_ixps=12))
        timeline = build_timeline(internet, TimelineSpec(start="2022Q1", end="2022Q2", seed=1))
        assert isinstance(timeline, Timeline)
        assert timeline.quarters == ("2022Q1", "2022Q2")
