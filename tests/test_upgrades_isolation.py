"""Tests for the upgrade-cycle model and the isolation policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.capacity.demand import DemandModel
from repro.capacity.isolation import IsolationPolicy, allocate
from repro.capacity.links import build_capacity_plan
from repro.capacity.upgrades import (
    UpgradeConfig,
    pni_links_from_plans,
    simulate_upgrade_cycle,
)


class TestIsolationAllocate:
    def test_no_congestion_identical_across_policies(self):
        for policy in IsolationPolicy:
            granted, collateral, _ = allocate(policy, {"a": 3.0}, 2.0, 10.0)
            assert granted == {"a": 3.0} and collateral == 0.0

    def test_fair_share_throttles_background(self):
        _, collateral, _ = allocate(IsolationPolicy.FAIR_SHARE, {"a": 10.0}, 10.0, 10.0)
        assert collateral == pytest.approx(5.0)

    def test_protect_background_spares_background(self):
        granted, collateral, _ = allocate(IsolationPolicy.PROTECT_BACKGROUND, {"a": 10.0}, 6.0, 10.0)
        assert collateral == 0.0
        assert granted["a"] == pytest.approx(4.0)

    def test_protect_background_when_background_alone_overflows(self):
        granted, collateral, _ = allocate(IsolationPolicy.PROTECT_BACKGROUND, {"a": 1.0}, 12.0, 10.0)
        assert granted["a"] == 0.0
        assert collateral == pytest.approx(2.0)

    def test_reserved_slices_equalise_hypergiants(self):
        granted, collateral, _ = allocate(
            IsolationPolicy.RESERVED_SLICES, {"big": 100.0, "small": 1.0}, 4.0, 10.0
        )
        assert collateral == 0.0
        # Leftover 6 splits: small gets its 1, big gets the remaining 5.
        assert granted["small"] == pytest.approx(1.0)
        assert granted["big"] == pytest.approx(5.0)

    def test_unknown_policy_rejected(self):
        # The policy dispatch only runs under congestion.
        with pytest.raises(ValueError):
            allocate("bogus", {"a": 5.0}, 0.0, 1.0)  # type: ignore[arg-type]

    @given(
        st.dictionaries(st.sampled_from(["a", "b", "c"]), st.floats(0, 50), min_size=1),
        st.floats(0, 50),
        st.floats(0.1, 60),
        st.sampled_from(list(IsolationPolicy)),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_conservation_all_policies(self, wanted, background, capacity, policy):
        granted, collateral, _ = allocate(policy, wanted, background, capacity)
        served = sum(granted.values()) + (background - collateral)
        assert served <= capacity * (1 + 1e-6) or sum(wanted.values()) + background <= capacity
        for name, volume in granted.items():
            assert -1e-9 <= volume <= wanted[name] + 1e-9
        assert -1e-9 <= collateral <= background + 1e-9


class TestUpgradeCycle:
    def test_growth_without_upgrades_overloads(self):
        config = UpgradeConfig(months=48, never_upgrade_fraction=1.0, growth_noise=0.0)
        report = simulate_upgrade_cycle([(80.0, 100.0)] * 20, config, seed=1)
        assert report.final_overloaded_fraction() == 1.0
        assert report.mean_final_utilization() > 2.0

    def test_fast_upgrades_keep_pace(self):
        config = UpgradeConfig(
            months=48, never_upgrade_fraction=0.0, lead_time_months=(1, 1), growth_noise=0.0
        )
        report = simulate_upgrade_cycle([(70.0, 100.0)] * 20, config, seed=1)
        assert report.final_overloaded_fraction() < 0.2

    def test_longer_lead_times_mean_more_overload(self):
        links = [(75.0, 100.0)] * 60
        def overload(lead):
            config = UpgradeConfig(
                months=36, lead_time_months=(lead, lead), never_upgrade_fraction=0.0
            )
            return simulate_upgrade_cycle(links, config, seed=2).overloaded_link_month_fraction()

        assert overload(12) > overload(2)

    def test_upgrades_land_after_lead_time(self):
        config = UpgradeConfig(
            months=10,
            lead_time_months=(3, 3),
            never_upgrade_fraction=0.0,
            monthly_growth=0.2,
            growth_noise=0.0,
            trigger_utilization=0.8,
        )
        report = simulate_upgrade_cycle([(79.0, 100.0)], config, seed=3)
        trajectory = report.trajectories[0]
        assert trajectory.upgrades_landed >= 1
        # Capacity unchanged before the first delivery month.
        assert trajectory.capacity[0] == 100.0

    def test_deterministic(self):
        config = UpgradeConfig(months=12)
        a = simulate_upgrade_cycle([(50.0, 100.0)] * 5, config, seed=9)
        b = simulate_upgrade_cycle([(50.0, 100.0)] * 5, config, seed=9)
        assert [t.demand for t in a.trajectories] == [t.demand for t in b.trajectories]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            UpgradeConfig(months=0)
        with pytest.raises(ValueError):
            UpgradeConfig(lead_time_months=(5, 2))

    def test_links_from_plans(self, small_internet, state23):
        demand = DemandModel()
        plans = build_capacity_plan(small_internet, state23, demand, seed=11)
        links = pni_links_from_plans(plans, demand)
        assert links
        for demand_gbps, capacity_gbps in links:
            assert demand_gbps >= 0 and capacity_gbps > 0


class TestSection6Experiment:
    def test_isolation_reduces_collateral(self, small_study):
        from repro.experiments.section6_mitigations import run_section6

        result = run_section6(small_study)
        fair = result.outcome(IsolationPolicy.FAIR_SHARE)
        protected = result.outcome(IsolationPolicy.PROTECT_BACKGROUND)
        sliced = result.outcome(IsolationPolicy.RESERVED_SLICES)
        assert protected.collateral_gbph <= fair.collateral_gbph
        assert sliced.collateral_gbph <= fair.collateral_gbph
        # Isolation shifts the pain onto the hypergiant overflow.
        assert protected.unserved_gbph >= fair.unserved_gbph - 1e-6
        assert "isolation policy" in result.render()

    def test_upgrade_sweep_monotone_tendency(self, small_study):
        from repro.experiments.section6_mitigations import run_upgrade_sweep

        sweeps = run_upgrade_sweep(small_study, lead_times=(2, 12))
        assert (
            sweeps[12].overloaded_link_month_fraction()
            >= sweeps[2].overloaded_link_month_fraction()
        )
