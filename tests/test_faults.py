"""Unit tests for the deterministic fault-injection plan.

The load-bearing property is *purity*: whether a fault fires is a pure
function of ``(plan seed, site, invocation index, attempt)``, never of
process identity, live RNG state, or call ordering.  Everything the chaos
harness proves downstream rests on that.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    CRASH_EXIT_CODE,
    FatalFaultError,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    TransientFaultError,
    WorkerCrashError,
    load_fault_plan,
    raise_injected,
    stable_index,
)


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec(site="parallel.shard", kind="error")
        assert spec.rate == 1.0
        assert spec.fail_attempts is None
        assert not spec.fatal

    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown injection site"):
            FaultSpec(site="nonexistent.site", kind="error")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="parallel.shard", kind="meteor")

    def test_rejects_rate_out_of_range(self):
        for rate in (-0.1, 1.5):
            with pytest.raises(ValueError):
                FaultSpec(site="parallel.shard", kind="error", rate=rate)

    def test_rejects_nonpositive_fail_attempts(self):
        with pytest.raises(ValueError):
            FaultSpec(site="parallel.shard", kind="error", fail_attempts=0)

    def test_data_faults_must_be_permanent(self):
        """drop/corrupt are not retried, so a transient one is meaningless
        (and would break the store key's transient-faults-are-inert rule)."""
        for kind in ("drop", "corrupt"):
            site = "scan.record" if kind == "drop" else "store.load"
            with pytest.raises(ValueError, match="permanent by nature"):
                FaultSpec(site=site, kind=kind, fail_attempts=1)

    def test_serve_sites_are_known(self):
        """The serving layer's injection points validate like any other
        site — specs for them round-trip through plan JSON."""
        from repro.faults import KNOWN_SITES

        assert "serve.request" in KNOWN_SITES and "serve.journal" in KNOWN_SITES
        plan = FaultPlan(
            seed=3,
            specs=(
                FaultSpec(site="serve.request", kind="error", rate=0.5, fail_attempts=1),
                FaultSpec(site="serve.request", kind="hang", hang_s=0.1),
                FaultSpec(site="serve.request", kind="drop", rate=0.2),
                FaultSpec(site="serve.journal", kind="error"),
                FaultSpec(site="serve.journal", kind="corrupt", rate=0.1),
                FaultSpec(site="serve.journal", kind="drop", rate=0.1),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_serve_data_faults_must_be_permanent(self):
        with pytest.raises(ValueError, match="permanent by nature"):
            FaultSpec(site="serve.journal", kind="corrupt", fail_attempts=1)
        with pytest.raises(ValueError, match="permanent by nature"):
            FaultSpec(site="serve.request", kind="drop", fail_attempts=2)


class TestDecisionPurity:
    def test_decide_is_deterministic(self):
        plan = FaultPlan(seed=3, specs=(FaultSpec(site="mlab.ping", kind="drop", rate=0.3),))
        first = [plan.decide("mlab.ping", i) is not None for i in range(200)]
        second = [plan.decide("mlab.ping", i) is not None for i in range(200)]
        assert first == second

    def test_decide_ignores_call_order(self):
        plan = FaultPlan(seed=3, specs=(FaultSpec(site="mlab.ping", kind="drop", rate=0.3),))
        forward = {i: plan.decide("mlab.ping", i) is not None for i in range(50)}
        backward = {i: plan.decide("mlab.ping", i) is not None for i in reversed(range(50))}
        assert forward == backward

    def test_rate_controls_fire_fraction(self):
        plan = FaultPlan(seed=5, specs=(FaultSpec(site="scan.record", kind="drop", rate=0.2),))
        n = 5000
        fired = sum(plan.decide("scan.record", i) is not None for i in range(n))
        assert 0.15 < fired / n < 0.25

    def test_rate_one_always_fires_rate_zero_never(self):
        always = FaultPlan(seed=1, specs=(FaultSpec(site="rdns.lookup", kind="drop", rate=1.0),))
        never = FaultPlan(seed=1, specs=(FaultSpec(site="rdns.lookup", kind="drop", rate=0.0),))
        assert all(always.decide("rdns.lookup", i) for i in range(20))
        assert not any(never.decide("rdns.lookup", i) for i in range(20))

    def test_seed_changes_the_fire_set(self):
        spec = FaultSpec(site="mlab.ping", kind="drop", rate=0.5)
        a = {i for i in range(200) if FaultPlan(seed=1, specs=(spec,)).decide("mlab.ping", i)}
        b = {i for i in range(200) if FaultPlan(seed=2, specs=(spec,)).decide("mlab.ping", i)}
        assert a != b

    def test_sites_are_independent_streams(self):
        specs = (
            FaultSpec(site="mlab.ping", kind="drop", rate=0.5),
            FaultSpec(site="rdns.lookup", kind="drop", rate=0.5),
        )
        plan = FaultPlan(seed=9, specs=specs)
        pings = [plan.decide("mlab.ping", i) is not None for i in range(200)]
        lookups = [plan.decide("rdns.lookup", i) is not None for i in range(200)]
        assert pings != lookups


class TestAttemptGating:
    def test_transient_fires_only_early_attempts(self):
        plan = FaultPlan(
            seed=2,
            specs=(FaultSpec(site="parallel.shard", kind="error", rate=1.0, fail_attempts=2),),
        )
        assert plan.decide("parallel.shard", 0, attempt=0) is not None
        assert plan.decide("parallel.shard", 0, attempt=1) is not None
        assert plan.decide("parallel.shard", 0, attempt=2) is None

    def test_permanent_fires_every_attempt(self):
        plan = FaultPlan(
            seed=2, specs=(FaultSpec(site="parallel.shard", kind="error", rate=1.0),)
        )
        for attempt in range(5):
            assert plan.decide("parallel.shard", 0, attempt=attempt) is not None

    def test_fires_ever_matches_attempt_zero(self):
        plan = FaultPlan(seed=4, specs=(FaultSpec(site="scan.record", kind="drop", rate=0.4),))
        for i in range(100):
            assert plan.fires_ever("scan.record", i) == (
                plan.decide("scan.record", i, attempt=0) is not None
            )

    def test_transient_only(self):
        transient = FaultPlan(
            seed=1,
            specs=(FaultSpec(site="parallel.shard", kind="crash", rate=0.5, fail_attempts=1),),
        )
        permanent = FaultPlan(
            seed=1, specs=(FaultSpec(site="mlab.ping", kind="drop", rate=0.5),)
        )
        assert transient.transient_only
        assert not permanent.transient_only

    def test_decide_any_checks_aliases(self):
        plan = FaultPlan(
            seed=1, specs=(FaultSpec(site="campaign.shard", kind="crash", rate=1.0),)
        )
        assert plan.decide_any(("parallel.shard", "campaign.shard"), 0) is not None
        assert plan.decide_any(("parallel.shard", "clustering.shard"), 0) is None


class TestErrors:
    def test_raise_injected_transient_vs_fatal(self):
        transient = FaultSpec(site="store.load", kind="error", fail_attempts=1)
        fatal = FaultSpec(site="store.load", kind="error", fatal=True)
        with pytest.raises(TransientFaultError, match=r"store\.load\[3\]"):
            raise_injected(transient, "store.load", 3)
        with pytest.raises(FatalFaultError):
            raise_injected(fatal, "store.load", 3)

    def test_error_hierarchy(self):
        assert issubclass(TransientFaultError, InjectedFault)
        assert issubclass(FatalFaultError, InjectedFault)
        assert issubclass(WorkerCrashError, InjectedFault)
        assert CRASH_EXIT_CODE != 0


class TestSerialisation:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=42,
            specs=(
                FaultSpec(site="campaign.shard", kind="crash", rate=0.25, fail_attempts=1),
                FaultSpec(site="mlab.ping", kind="drop", rate=0.05),
                FaultSpec(site="parallel.shard", kind="hang", rate=0.1, hang_s=2.0),
            ),
        )
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_json()))
        loaded = load_fault_plan(path)
        assert loaded == plan

    def test_round_trip_preserves_decisions(self):
        plan = FaultPlan(
            seed=11, specs=(FaultSpec(site="rdns.lookup", kind="drop", rate=0.3),)
        )
        clone = FaultPlan.from_json(plan.to_json())
        decisions = [plan.fires_ever("rdns.lookup", i) for i in range(300)]
        assert decisions == [clone.fires_ever("rdns.lookup", i) for i in range(300)]

    def test_stable_index_is_stable(self):
        assert stable_index("some-key") == stable_index("some-key")
        assert stable_index("some-key") != stable_index("other-key")
