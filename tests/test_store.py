"""Tests for the content-addressed study store (``repro.store``)."""

import json
import shutil

import numpy as np
import pytest

from repro.core.pipeline import StudyConfig, run_study
from repro.io.archive import save_archive
from repro.obs import MetricsRegistry
from repro.parallel import ParallelConfig
from repro.store import StudyStore, config_fingerprint, study_key
from repro.topology.generator import InternetConfig

pytestmark = pytest.mark.store


def _tiny_config(seed: int = 3, **overrides) -> StudyConfig:
    return StudyConfig(
        internet=InternetConfig(seed=seed, n_access_isps=40, n_ixps=20),
        n_vantage_points=24,
        seed=seed,
        **overrides,
    )


@pytest.fixture(scope="module")
def tiny_study():
    return run_study(_tiny_config())


@pytest.fixture()
def store(tmp_path):
    return StudyStore(tmp_path / "store", metrics=MetricsRegistry())


def _archive_digest(directory):
    import hashlib

    digest = hashlib.sha256()
    for path in sorted(directory.iterdir()):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


class TestKeys:
    def test_fingerprint_is_stable(self):
        assert config_fingerprint(_tiny_config()) == config_fingerprint(_tiny_config())
        assert study_key(_tiny_config()) == study_key(_tiny_config())

    def test_fingerprint_sees_every_field(self):
        base = _tiny_config()
        assert config_fingerprint(base) != config_fingerprint(_tiny_config(seed=4))
        assert config_fingerprint(base) != config_fingerprint(_tiny_config(xis=(0.5,)))

    def test_backend_changes_fingerprint_but_not_study_key(self):
        """backend/workers never change artifacts, so the content address
        normalises them away — while the full fingerprint still differs."""
        serial = _tiny_config()
        process = _tiny_config(parallel=ParallelConfig(backend="process", workers=4))
        assert config_fingerprint(serial) != config_fingerprint(process)
        assert study_key(serial) == study_key(process)

    def test_chunk_sizes_stay_in_study_key(self):
        """Chunk sizes shape shard RNG streams, so they must key the store."""
        assert study_key(_tiny_config()) != study_key(
            _tiny_config(parallel=ParallelConfig(campaign_chunk=16))
        )


class TestStoreRoundTrip:
    def test_miss_then_hit(self, store, tiny_study):
        config = _tiny_config()
        assert store.get(config) is None
        store.put(tiny_study)
        assert store.contains(config)
        rehydrated = store.get(config)
        assert rehydrated is not None
        assert store.metrics.counter("store.hits") == 1
        assert store.metrics.counter("store.misses") == 1

    def test_rehydrated_study_exports_identical_archive(self, store, tiny_study, tmp_path):
        """The acceptance property: a store hit is indistinguishable from a
        fresh run at the artifact level."""
        store.put(tiny_study)
        rehydrated = store.get(_tiny_config())
        save_archive(tiny_study, tmp_path / "fresh")
        save_archive(rehydrated, tmp_path / "warm")
        assert _archive_digest(tmp_path / "fresh") == _archive_digest(tmp_path / "warm")

    def test_rehydrated_views_match(self, store, tiny_study):
        store.put(tiny_study)
        rehydrated = store.get(_tiny_config())
        np.testing.assert_array_equal(rehydrated.matrix.rtt_ms, tiny_study.matrix.rtt_ms)
        assert rehydrated.hypergiant_of_ip == tiny_study.hypergiant_of_ip
        assert rehydrated.campaign.analyzable_isp_asns == tiny_study.campaign.analyzable_isp_asns
        for xi in tiny_study.config.xis:
            assert rehydrated.colocation_table(xi).row_percentages(
                "Google"
            ) == tiny_study.colocation_table(xi).row_percentages("Google")

    def test_put_is_idempotent(self, store, tiny_study):
        key = store.put(tiny_study)
        assert store.put(tiny_study) == key
        assert store.stats().entries == 1
        assert store.metrics.counter("store.writes") == 1

    def test_different_config_misses(self, store, tiny_study):
        store.put(tiny_study)
        assert store.get(_tiny_config(seed=4)) is None


class TestCorruption:
    def test_truncated_file_quarantines_and_misses(self, store, tiny_study):
        key = store.put(tiny_study)
        victim = store.entry_path(key) / "latency.npz"
        victim.write_bytes(victim.read_bytes()[:100])
        assert store.get(_tiny_config()) is None
        assert store.metrics.counter("store.corruptions") == 1
        assert not store.contains_key(key)
        quarantined = list((store.root / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert (quarantined[0] / "quarantine_reason.txt").exists()

    def test_recompute_after_quarantine(self, store, tiny_study):
        key = store.put(tiny_study)
        (store.entry_path(key) / "isps.csv").write_text("garbage")
        assert store.get(_tiny_config()) is None
        store.put(tiny_study)
        assert store.get(_tiny_config()) is not None


class TestGcAndIndex:
    def test_lru_eviction_order(self, tmp_path, tiny_study):
        store = StudyStore(tmp_path / "store", metrics=MetricsRegistry())
        studies = [tiny_study, run_study(_tiny_config(seed=4)), run_study(_tiny_config(seed=5))]
        keys = [store.put(study) for study in studies]
        # Touch the oldest so it becomes most recently used.
        assert store.get(_tiny_config(seed=3)) is not None
        evicted = store.gc(max_entries=2)
        assert evicted == [keys[1]]
        assert store.contains_key(keys[0]) and store.contains_key(keys[2])
        assert store.metrics.counter("store.evictions") == 1

    def test_max_bytes_bound(self, tmp_path, tiny_study):
        store = StudyStore(tmp_path / "store", metrics=MetricsRegistry())
        store.put(tiny_study)
        store.put(run_study(_tiny_config(seed=4)))
        evicted = store.gc(max_bytes=store.stats().total_bytes - 1)
        assert len(evicted) == 1
        assert store.stats().entries == 1

    def test_put_enforces_configured_limits(self, tmp_path, tiny_study):
        store = StudyStore(tmp_path / "store", max_entries=1, metrics=MetricsRegistry())
        store.put(tiny_study)
        store.put(run_study(_tiny_config(seed=4)))
        assert store.stats().entries == 1

    def test_index_rebuilds_from_filesystem(self, store, tiny_study):
        key = store.put(tiny_study)
        (store.root / "index.json").unlink()
        assert store.contains_key(key)
        assert store.keys() == [key]
        assert store.stats().entries == 1

    def test_crash_debris_in_tmp_is_inert(self, store, tiny_study):
        key = store.put(tiny_study)
        debris = store.root / "tmp" / "deadbeef.1234.abcd"
        debris.mkdir(parents=True)
        (debris / "manifest.json").write_text("{}")
        assert store.keys() == [key]
        assert store.get(_tiny_config()) is not None


class TestCachedStudyKeying:
    def test_same_name_different_backend_does_not_collide(self):
        """Regression: the memo used to key on the scenario *name* alone, so
        a scenario variant differing only in execution config collided."""
        from repro.experiments.scenarios import SMALL_SCENARIO, cached_study

        variant = SMALL_SCENARIO.__class__(
            name=SMALL_SCENARIO.name,
            config=StudyConfig(
                internet=SMALL_SCENARIO.config.internet,
                n_vantage_points=SMALL_SCENARIO.config.n_vantage_points,
                seed=SMALL_SCENARIO.config.seed,
                parallel=ParallelConfig(backend="process", workers=2),
            ),
            n_traceroute_regions=SMALL_SCENARIO.n_traceroute_regions,
            capacity_sample=SMALL_SCENARIO.capacity_sample,
        )
        assert config_fingerprint(variant.config) != config_fingerprint(SMALL_SCENARIO.config)
        baseline = cached_study("small")
        from repro.parallel import process_backend_available

        if not process_backend_available():
            pytest.skip("process executor backend unavailable")
        other = cached_study(variant)
        assert other is not baseline
        assert other.config.parallel.backend == "process"
        assert baseline.config.parallel.backend == "serial"
        # Both now memoised independently.
        assert cached_study(variant) is other
        assert cached_study("small") is baseline

    def test_cached_study_delegates_to_store(self, tmp_path):
        """A fresh process-memory cache plus a warm store -> rehydration, no
        pipeline rerun (observable through the store hit counter)."""
        from repro.experiments import scenarios

        registry = MetricsRegistry()
        store = StudyStore(tmp_path / "store", metrics=registry)
        scenario = scenarios.StudyScenario(
            name="tiny-store-test",
            config=_tiny_config(),
            n_traceroute_regions=2,
            capacity_sample=10,
        )
        first = scenarios.cached_study(scenario, store=store)
        assert registry.counter("store.writes") == 1
        # Simulate a new process: drop only the memory layer.
        scenarios._STUDY_CACHE.pop(config_fingerprint(scenario.config))
        second = scenarios.cached_study(scenario, store=store)
        assert registry.counter("store.hits") == 1
        np.testing.assert_array_equal(first.matrix.rtt_ms, second.matrix.rtt_ms)
