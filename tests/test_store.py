"""Tests for the content-addressed study store (``repro.store``)."""

import json
import shutil

import numpy as np
import pytest

from repro.core.pipeline import StudyConfig, run_study
from repro.io.archive import save_archive
from repro.obs import MetricsRegistry
from repro.parallel import ParallelConfig
from repro.store import StudyStore, config_fingerprint, study_key
from repro.topology.generator import InternetConfig

pytestmark = pytest.mark.store


def _tiny_config(seed: int = 3, **overrides) -> StudyConfig:
    return StudyConfig(
        internet=InternetConfig(seed=seed, n_access_isps=40, n_ixps=20),
        n_vantage_points=24,
        seed=seed,
        **overrides,
    )


@pytest.fixture(scope="module")
def tiny_study():
    return run_study(_tiny_config())


@pytest.fixture()
def store(tmp_path):
    return StudyStore(tmp_path / "store", metrics=MetricsRegistry())


def _archive_digest(directory):
    import hashlib

    digest = hashlib.sha256()
    for path in sorted(directory.iterdir()):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


class TestKeys:
    def test_fingerprint_is_stable(self):
        assert config_fingerprint(_tiny_config()) == config_fingerprint(_tiny_config())
        assert study_key(_tiny_config()) == study_key(_tiny_config())

    def test_fingerprint_sees_every_field(self):
        base = _tiny_config()
        assert config_fingerprint(base) != config_fingerprint(_tiny_config(seed=4))
        assert config_fingerprint(base) != config_fingerprint(_tiny_config(xis=(0.5,)))

    def test_backend_changes_fingerprint_but_not_study_key(self):
        """backend/workers never change artifacts, so the content address
        normalises them away — while the full fingerprint still differs."""
        serial = _tiny_config()
        process = _tiny_config(parallel=ParallelConfig(backend="process", workers=4))
        assert config_fingerprint(serial) != config_fingerprint(process)
        assert study_key(serial) == study_key(process)

    def test_chunk_sizes_stay_in_study_key(self):
        """Chunk sizes shape shard RNG streams, so they must key the store."""
        assert study_key(_tiny_config()) != study_key(
            _tiny_config(parallel=ParallelConfig(campaign_chunk=16))
        )


class TestStoreRoundTrip:
    def test_miss_then_hit(self, store, tiny_study):
        config = _tiny_config()
        assert store.get(config) is None
        store.put(tiny_study)
        assert store.contains(config)
        rehydrated = store.get(config)
        assert rehydrated is not None
        assert store.metrics.counter("store.hits") == 1
        assert store.metrics.counter("store.misses") == 1

    def test_rehydrated_study_exports_identical_archive(self, store, tiny_study, tmp_path):
        """The acceptance property: a store hit is indistinguishable from a
        fresh run at the artifact level."""
        store.put(tiny_study)
        rehydrated = store.get(_tiny_config())
        save_archive(tiny_study, tmp_path / "fresh")
        save_archive(rehydrated, tmp_path / "warm")
        assert _archive_digest(tmp_path / "fresh") == _archive_digest(tmp_path / "warm")

    def test_rehydrated_views_match(self, store, tiny_study):
        store.put(tiny_study)
        rehydrated = store.get(_tiny_config())
        np.testing.assert_array_equal(rehydrated.matrix.rtt_ms, tiny_study.matrix.rtt_ms)
        assert rehydrated.hypergiant_of_ip == tiny_study.hypergiant_of_ip
        assert rehydrated.campaign.analyzable_isp_asns == tiny_study.campaign.analyzable_isp_asns
        for xi in tiny_study.config.xis:
            assert rehydrated.colocation_table(xi).row_percentages(
                "Google"
            ) == tiny_study.colocation_table(xi).row_percentages("Google")

    def test_put_is_idempotent(self, store, tiny_study):
        key = store.put(tiny_study)
        assert store.put(tiny_study) == key
        assert store.stats().entries == 1
        assert store.metrics.counter("store.writes") == 1

    def test_different_config_misses(self, store, tiny_study):
        store.put(tiny_study)
        assert store.get(_tiny_config(seed=4)) is None


class TestCorruption:
    def test_truncated_file_quarantines_and_misses(self, store, tiny_study):
        key = store.put(tiny_study)
        victim = store.entry_path(key) / "latency.npz"
        victim.write_bytes(victim.read_bytes()[:100])
        assert store.get(_tiny_config()) is None
        assert store.metrics.counter("store.corruptions") == 1
        assert not store.contains_key(key)
        quarantined = list((store.root / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert (quarantined[0] / "quarantine_reason.txt").exists()

    def test_recompute_after_quarantine(self, store, tiny_study):
        key = store.put(tiny_study)
        (store.entry_path(key) / "isps.csv").write_text("garbage")
        assert store.get(_tiny_config()) is None
        store.put(tiny_study)
        assert store.get(_tiny_config()) is not None

    def test_injected_corruption_trips_the_digest_check(self, tmp_path, tiny_study):
        """A ``store.load`` corrupt fault poisons the entry's bytes on disk,
        so the ordinary verify-quarantine-recompute path takes over."""
        from repro.faults import FaultPlan, FaultSpec

        faults = FaultPlan(
            seed=1, specs=(FaultSpec(site="store.load", kind="corrupt", rate=1.0),)
        )
        store = StudyStore(tmp_path / "store", metrics=MetricsRegistry(), faults=faults)
        key = store.put(tiny_study)
        assert store.get(_tiny_config()) is None
        assert store.metrics.counter("store.corruptions") == 1
        assert not store.contains_key(key)
        assert len(list((store.root / "quarantine").iterdir())) == 1

    def test_injected_transient_load_error_is_retried(self, tmp_path, tiny_study):
        from repro.faults import FaultPlan, FaultSpec
        from repro.resilience import RetryPolicy

        faults = FaultPlan(
            seed=1,
            specs=(FaultSpec(site="store.load", kind="error", rate=1.0, fail_attempts=1),),
        )
        store = StudyStore(
            tmp_path / "store",
            metrics=MetricsRegistry(),
            faults=faults,
            retry=RetryPolicy(max_attempts=2),
        )
        store.put(tiny_study)
        assert store.get(_tiny_config()) is not None
        assert store.metrics.counter("store.retries") == 1
        assert store.metrics.counter("store.corruptions") == 0

    def test_exhausted_load_error_degrades_to_miss_without_quarantine(
        self, tmp_path, tiny_study
    ):
        """An injected load error is an execution failure, not bad bytes:
        the entry must survive for the next (healthy) reader."""
        from repro.faults import FaultPlan, FaultSpec

        faults = FaultPlan(
            seed=1, specs=(FaultSpec(site="store.load", kind="error", rate=1.0),)
        )
        store = StudyStore(tmp_path / "store", metrics=MetricsRegistry(), faults=faults)
        key = store.put(tiny_study)
        assert store.get(_tiny_config()) is None
        assert store.metrics.counter("store.load_failures") == 1
        assert store.contains_key(key)  # not quarantined
        healthy = StudyStore(tmp_path / "store", metrics=MetricsRegistry())
        assert healthy.get(_tiny_config()) is not None


class TestDegradedStudies:
    def test_degraded_study_is_never_persisted(self, tmp_path):
        """A study that lost shards is an execution accident, not the
        config's artifact: put() must refuse it so rehydration never
        serves degraded data under a clean key."""
        from repro.faults import FaultPlan, FaultSpec
        from repro.resilience import ErrorBudget, ResilienceConfig, RetryPolicy

        faults = FaultPlan(
            seed=13, specs=(FaultSpec(site="campaign.shard", kind="crash", rate=0.2),)
        )
        degraded = run_study(
            _tiny_config(
                faults=faults,
                resilience=ResilienceConfig(
                    retry=RetryPolicy(max_attempts=2),
                    fallback_in_process=False,
                    budget=ErrorBudget(shard_loss_fraction=1.0),
                ),
            )
        )
        assert degraded.coverage.shards_lost > 0
        store = StudyStore(tmp_path / "store", metrics=MetricsRegistry())
        key = store.put(degraded)
        assert not store.contains_key(key)
        assert store.stats().entries == 0
        assert store.metrics.counter("store.degraded_skipped") == 1


class TestQuarantineGc:
    def _quarantine_n(self, store, tiny_study, n):
        for _ in range(n):
            key = store.put(tiny_study)
            (store.entry_path(key) / "isps.csv").write_text("garbage")
            assert store.get(_tiny_config()) is None

    def test_gc_prunes_quarantine_by_count(self, store, tiny_study):
        self._quarantine_n(store, tiny_study, 3)
        quarantine = store.root / "quarantine"
        assert len(list(quarantine.iterdir())) == 3
        store.gc(max_quarantine_entries=1)
        assert len(list(quarantine.iterdir())) == 1
        assert store.metrics.counter("store.quarantine_pruned") == 2

    def test_gc_prunes_quarantine_by_age(self, store, tiny_study):
        import os
        import time

        self._quarantine_n(store, tiny_study, 2)
        quarantine = store.root / "quarantine"
        entries = sorted(quarantine.iterdir())
        stale = time.time() - 3600
        os.utime(entries[0], (stale, stale))
        store.gc(max_quarantine_age_s=60.0)
        survivors = list(quarantine.iterdir())
        assert survivors == [entries[1]]

    def test_gc_prunes_oldest_first(self, store, tiny_study):
        import os
        import time

        self._quarantine_n(store, tiny_study, 3)
        quarantine = store.root / "quarantine"
        entries = sorted(quarantine.iterdir(), key=lambda e: e.name)
        # Pin distinct mtimes so the eviction order is unambiguous.
        base = time.time() - 100
        for offset, entry in enumerate(entries):
            os.utime(entry, (base + offset, base + offset))
        store.gc(max_quarantine_entries=2)
        survivors = set(quarantine.iterdir())
        assert survivors == set(entries[1:])

    def test_put_enforces_configured_quarantine_bound(self, tmp_path, tiny_study):
        store = StudyStore(
            tmp_path / "store", metrics=MetricsRegistry(), max_quarantine_entries=1
        )
        self._quarantine_n(store, tiny_study, 2)
        store.put(tiny_study)  # put() triggers gc() with the configured bound
        assert len(list((store.root / "quarantine").iterdir())) == 1

    def test_gc_without_quarantine_dir_is_a_noop(self, store, tiny_study):
        store.put(tiny_study)
        assert store.gc(max_quarantine_entries=1) == []
        assert store.stats().entries == 1


class TestFaultAwareKeys:
    def test_transient_faults_normalise_out_of_the_key(self):
        """Transient faults are retried away without an artifact trace, so
        a chaos-tested study may serve (and fill) the clean cache slot."""
        from repro.faults import FaultPlan, FaultSpec
        from repro.resilience import ResilienceConfig

        transient = FaultPlan(
            seed=9,
            specs=(FaultSpec(site="campaign.shard", kind="crash", rate=0.5, fail_attempts=1),),
        )
        chaotic = _tiny_config(faults=transient, resilience=ResilienceConfig())
        assert study_key(chaotic) == study_key(_tiny_config())
        assert config_fingerprint(chaotic) != config_fingerprint(_tiny_config())

    def test_store_load_faults_normalise_out_of_the_key(self):
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan(seed=9, specs=(FaultSpec(site="store.load", kind="error"),))
        assert study_key(_tiny_config(faults=plan)) == study_key(_tiny_config())

    def test_permanent_data_faults_stay_in_the_key(self):
        """Permanent drops genuinely change artifacts: a degraded-coverage
        study must never collide with the clean content address."""
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan(seed=9, specs=(FaultSpec(site="mlab.ping", kind="drop", rate=0.1),))
        assert study_key(_tiny_config(faults=plan)) != study_key(_tiny_config())

    def test_shard_timeout_and_resilience_are_execution_only(self):
        from repro.resilience import ResilienceConfig, RetryPolicy

        timed = _tiny_config(parallel=ParallelConfig(shard_timeout_s=30.0))
        hardened = _tiny_config(resilience=ResilienceConfig(retry=RetryPolicy(max_attempts=5)))
        assert study_key(timed) == study_key(_tiny_config())
        assert study_key(hardened) == study_key(_tiny_config())


class TestGcAndIndex:
    def test_lru_eviction_order(self, tmp_path, tiny_study):
        store = StudyStore(tmp_path / "store", metrics=MetricsRegistry())
        studies = [tiny_study, run_study(_tiny_config(seed=4)), run_study(_tiny_config(seed=5))]
        keys = [store.put(study) for study in studies]
        # Touch the oldest so it becomes most recently used.
        assert store.get(_tiny_config(seed=3)) is not None
        evicted = store.gc(max_entries=2)
        assert evicted == [keys[1]]
        assert store.contains_key(keys[0]) and store.contains_key(keys[2])
        assert store.metrics.counter("store.evictions") == 1

    def test_max_bytes_bound(self, tmp_path, tiny_study):
        store = StudyStore(tmp_path / "store", metrics=MetricsRegistry())
        store.put(tiny_study)
        store.put(run_study(_tiny_config(seed=4)))
        evicted = store.gc(max_bytes=store.stats().total_bytes - 1)
        assert len(evicted) == 1
        assert store.stats().entries == 1

    def test_put_enforces_configured_limits(self, tmp_path, tiny_study):
        store = StudyStore(tmp_path / "store", max_entries=1, metrics=MetricsRegistry())
        store.put(tiny_study)
        store.put(run_study(_tiny_config(seed=4)))
        assert store.stats().entries == 1

    def test_index_rebuilds_from_filesystem(self, store, tiny_study):
        key = store.put(tiny_study)
        (store.root / "index.json").unlink()
        assert store.contains_key(key)
        assert store.keys() == [key]
        assert store.stats().entries == 1

    def test_crash_debris_in_tmp_is_inert(self, store, tiny_study):
        key = store.put(tiny_study)
        debris = store.root / "tmp" / "deadbeef.1234.abcd"
        debris.mkdir(parents=True)
        (debris / "manifest.json").write_text("{}")
        assert store.keys() == [key]
        assert store.get(_tiny_config()) is not None


class TestCachedStudyKeying:
    def test_same_name_different_backend_does_not_collide(self):
        """Regression: the memo used to key on the scenario *name* alone, so
        a scenario variant differing only in execution config collided."""
        from repro.experiments.scenarios import SMALL_SCENARIO, cached_study

        variant = SMALL_SCENARIO.__class__(
            name=SMALL_SCENARIO.name,
            config=StudyConfig(
                internet=SMALL_SCENARIO.config.internet,
                n_vantage_points=SMALL_SCENARIO.config.n_vantage_points,
                seed=SMALL_SCENARIO.config.seed,
                parallel=ParallelConfig(backend="process", workers=2),
            ),
            n_traceroute_regions=SMALL_SCENARIO.n_traceroute_regions,
            capacity_sample=SMALL_SCENARIO.capacity_sample,
        )
        assert config_fingerprint(variant.config) != config_fingerprint(SMALL_SCENARIO.config)
        baseline = cached_study("small")
        from repro.parallel import process_backend_available

        if not process_backend_available():
            pytest.skip("process executor backend unavailable")
        other = cached_study(variant)
        assert other is not baseline
        assert other.config.parallel.backend == "process"
        assert baseline.config.parallel.backend == "serial"
        # Both now memoised independently.
        assert cached_study(variant) is other
        assert cached_study("small") is baseline

    def test_cached_study_delegates_to_store(self, tmp_path):
        """A fresh process-memory cache plus a warm store -> rehydration, no
        pipeline rerun (observable through the store hit counter)."""
        from repro.experiments import scenarios

        registry = MetricsRegistry()
        store = StudyStore(tmp_path / "store", metrics=registry)
        scenario = scenarios.StudyScenario(
            name="tiny-store-test",
            config=_tiny_config(),
            n_traceroute_regions=2,
            capacity_sample=10,
        )
        first = scenarios.cached_study(scenario, store=store)
        assert registry.counter("store.writes") == 1
        # Simulate a new process: drop only the memory layer.
        scenarios._STUDY_CACHE.pop(config_fingerprint(scenario.config))
        second = scenarios.cached_study(scenario, store=store)
        assert registry.counter("store.hits") == 1
        np.testing.assert_array_equal(first.matrix.rtt_ms, second.matrix.rtt_ms)
