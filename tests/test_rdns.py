"""Tests for PTR synthesis, geohint parsing, and cluster validation."""

import pytest

from repro.rdns.geohints import AMBIGUOUS_TOKENS, GeohintParser, build_default_parser
from repro.rdns.ptr import PtrConfig, build_ptr_dataset
from repro.rdns.validation import ConsistencyClass, validate_clusters


@pytest.fixture(scope="module")
def ptr(small_internet, state23):
    return build_ptr_dataset(state23, small_internet.world, seed=6)


@pytest.fixture(scope="module")
def parser(small_internet):
    return build_default_parser(small_internet.world)


class TestPtr:
    def test_coverage_near_config(self, ptr, state23):
        rate = len(ptr) / len(state23.servers)
        assert 0.5 < rate < 0.7

    def test_hostnames_reference_isp_domain(self, ptr, state23):
        for server in state23.servers[:200]:
            hostname = ptr.hostname_of(server.ip)
            if hostname is not None:
                assert hostname.endswith(".example")
                assert server.isp.name.lower().replace("_", "-") in hostname

    def test_role_token_per_hypergiant(self, ptr, state23):
        roles = {"Google": "ggc", "Netflix": "oca", "Meta": "fna", "Akamai": "aka"}
        for server in state23.servers[:300]:
            hostname = ptr.hostname_of(server.ip)
            if hostname is not None:
                assert hostname.startswith(roles[server.hypergiant])

    def test_stale_fraction_small(self, ptr):
        assert len(ptr.stale_ips) < 0.1 * len(ptr)

    def test_stale_records_mostly_name_isp_cities(self, small_internet, state23):
        dataset = build_ptr_dataset(
            state23, small_internet.world, PtrConfig(stale_fraction=0.5), seed=6
        )
        parser = build_default_parser(small_internet.world)
        same_footprint = 0
        located = 0
        for ip in sorted(dataset.stale_ips):
            server = state23.server_at(ip)
            if len(server.isp.cities) < 2:
                continue  # single-city ISPs fall back to a random city
            city = parser.city_of(dataset.hostname_of(ip))
            if city is None:
                continue
            located += 1
            if city in server.isp.cities:
                same_footprint += 1
        assert located > 0
        assert same_footprint / located > 0.9

    def test_deterministic(self, small_internet, state23):
        a = build_ptr_dataset(state23, small_internet.world, seed=6)
        b = build_ptr_dataset(state23, small_internet.world, seed=6)
        assert a.records == b.records

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PtrConfig(coverage=1.2)


class TestGeohints:
    def test_iata_token(self, parser, small_internet):
        assert parser.city_of("oca-lhr-3.isp.example").name == "London"

    def test_city_name_token(self, parser):
        assert parser.city_of("core1.frankfurt.isp.example").name == "Frankfurt"

    def test_no_hint(self, parser):
        assert parser.city_of("ggc-node7.isp.example") is None

    def test_ambiguous_token_suppressed(self, parser):
        # "man" is Manchester's IATA code but also a common word; the
        # default parser refuses it (HOIHO's Hostert-style trap).
        assert parser.city_of("man-agement.isp.example") is None

    def test_naive_parser_falls_into_trap(self, small_internet):
        naive = GeohintParser(world=small_internet.world, suppress_ambiguous=False)
        assert naive.city_of("man-agement.isp.example") is not None

    def test_tokens_split_on_dots_and_hyphens(self, parser):
        assert parser.tokens_of("a-b.c-d.e") == ["a", "b", "c", "d", "e"]

    def test_ambiguous_list_includes_known_traps(self):
        assert "host" in AMBIGUOUS_TOKENS
        assert "for" in AMBIGUOUS_TOKENS  # Fortaleza's IATA code

    def test_empty_hostname_rejected(self, parser):
        with pytest.raises(ValueError):
            parser.city_of("")


class TestValidation:
    def test_consistent_cluster(self, parser, ptr, state23):
        # Build a cluster from one real facility: must be single-city.
        facility = state23.servers[0].facility
        ips = [s.ip for s in state23.servers if s.facility is facility]
        summary = validate_clusters([ips], ptr, parser)
        if summary.checkable_clusters:
            assert summary.results[0].verdict in (
                ConsistencyClass.SINGLE_CITY,
                ConsistencyClass.SINGLE_METRO,
                # A stale hostname can surface as a same-country mismatch.
                ConsistencyClass.SINGLE_COUNTRY,
            )

    def test_cross_country_cluster_flagged(self, parser, ptr, state23):
        by_country = {}
        for server in state23.servers:
            if ptr.hostname_of(server.ip) and parser.city_of(ptr.hostname_of(server.ip)):
                by_country.setdefault(server.isp.country_code, []).append(server.ip)
        countries = [c for c, ips in by_country.items() if len(ips) >= 2]
        assert len(countries) >= 2
        mixed = by_country[countries[0]][:2] + by_country[countries[1]][:2]
        summary = validate_clusters([mixed], ptr, parser)
        assert summary.count(ConsistencyClass.MULTI_COUNTRY) == 1

    def test_unlocatable_clusters_skipped(self, parser, ptr):
        summary = validate_clusters([[1, 2, 3]], ptr, parser)
        assert summary.checkable_clusters == 0
        assert summary.consistent_fraction == 1.0

    def test_study_validation_mostly_consistent(self, small_study):
        for xi in small_study.config.xis:
            summary = small_study.validation(xi)
            assert summary.checkable_clusters > 0
            assert summary.consistent_fraction > 0.6
