"""Tests for :mod:`repro.parallel`: plans, executors, and telemetry merge.

The differential serial≡process study harness lives in
``tests/test_parallel_equivalence.py``; this module covers the building
blocks — partition invariants (hypothesis property tests), ordered merge,
per-shard RNG stability, and worker-telemetry accounting.
"""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import make_rng
from repro.obs import MetricsRegistry, Telemetry, Tracer
from repro.parallel import (
    ParallelConfig,
    PoolExecutor,
    ProcessExecutor,
    SHARD_DURATION_METRIC,
    SerialExecutor,
    Shard,
    ShardPlan,
    ShmRegistry,
    make_executor,
    measure_payload,
    resolve_workers,
    run_sharded,
    shared_memory_available,
    shutdown_pools,
    steal_order,
    sweep_orphan_segments,
    usable_cpu_count,
)


# Module-level so the process backend can pickle them.
def _sum_shard(shard: Shard, telemetry) -> int:
    if telemetry is not None:
        telemetry.count("test.items_seen", len(shard.items))
    return sum(shard.items)


def _echo_shard(shard: Shard, telemetry) -> tuple[int, tuple]:
    return shard.index, shard.items


def _boom_shard(shard: Shard, telemetry) -> None:
    raise RuntimeError(f"shard {shard.index} exploded")


class TestShardPlan:
    @given(n=st.integers(0, 500), chunk=st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_partition_exhaustive_disjoint_ordered(self, n, chunk):
        items = list(range(n))
        plan = ShardPlan.of(items, chunk_size=chunk)
        shards = plan.shards()
        # Exhaustive + order-stable: concatenation reproduces the input.
        flattened = [item for shard in shards for item in shard.items]
        assert flattened == items
        # Disjoint: no item lands in two shards.
        assert len(set(flattened)) == len(flattened)
        # Index order and sizes.
        assert [s.index for s in shards] == list(range(plan.n_shards))
        assert all(len(s) <= chunk for s in shards)
        assert all(len(s) == chunk for s in shards[:-1])

    @given(n=st.integers(0, 300), chunk_a=st.integers(1, 64), chunk_b=st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_coverage_stable_under_chunk_size_changes(self, n, chunk_a, chunk_b):
        items = tuple(range(n))
        flat_a = [x for s in ShardPlan.of(items, chunk_a).shards() for x in s.items]
        flat_b = [x for s in ShardPlan.of(items, chunk_b).shards() for x in s.items]
        assert flat_a == flat_b == list(items)

    def test_empty_plan(self):
        plan = ShardPlan.of([], chunk_size=8)
        assert plan.n_shards == 0 and plan.shards() == []
        assert run_sharded(_sum_shard, plan) == []

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            ShardPlan.of([1, 2], chunk_size=0)

    def test_shard_rngs_deterministic_and_distinct(self):
        plan = ShardPlan.of(range(40), chunk_size=10)
        rngs_a = plan.shard_rngs(make_rng(9), "stage")
        rngs_b = plan.shard_rngs(make_rng(9), "stage")
        assert len(rngs_a) == plan.n_shards == 4
        draws_a = [rng.random(5).tolist() for rng in rngs_a]
        draws_b = [rng.random(5).tolist() for rng in rngs_b]
        # Same root seed -> identical streams; different shards -> distinct.
        assert draws_a == draws_b
        assert len({tuple(d) for d in draws_a}) == len(draws_a)

    def test_shard_rngs_label_namespacing(self):
        plan = ShardPlan.of(range(10), chunk_size=5)
        a = plan.shard_rngs(make_rng(1), "campaign")[0].random(4).tolist()
        b = plan.shard_rngs(make_rng(1), "clustering")[0].random(4).tolist()
        assert a != b


class TestStealOrder:
    @given(
        costs=st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=0, max_size=50),
        chunk=st.integers(1, 7),
    )
    @settings(max_examples=200, deadline=None)
    def test_permutation_sorted_by_cost_index_stable(self, costs, chunk):
        plan = ShardPlan.of(range(len(costs)), chunk_size=chunk, costs=costs)
        shards = plan.shards()
        ordered = steal_order(shards)
        # A permutation: same shards, nothing dropped or duplicated.
        assert sorted(s.index for s in ordered) == [s.index for s in shards]
        # Non-increasing cost, and ties resolve in index order.
        keys = [(-s.cost_estimate, s.index) for s in ordered]
        assert keys == sorted(keys)

    @given(n=st.integers(0, 60), chunk=st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_default_costs_preserve_index_order(self, n, chunk):
        # Without estimates every full shard ties (and the tail shard is
        # smallest), so dispatch order degenerates to nearly index order —
        # crucially it is *deterministic* for any input.
        shards = ShardPlan.of(range(n), chunk_size=chunk).shards()
        ordered = steal_order(shards)
        full = [s.index for s in ordered if len(s) == chunk]
        assert full == sorted(full)

    def test_merge_unaffected_by_dispatch_order(self):
        # The executors key results by shard.index, so any dispatch
        # permutation yields identical output — spot-check via costs that
        # force reverse dispatch.
        items = list(range(20))
        plan_costed = ShardPlan.of(items, chunk_size=3, costs=list(range(20)))
        plan_plain = ShardPlan.of(items, chunk_size=3)
        assert run_sharded(_echo_shard, plan_costed) == run_sharded(_echo_shard, plan_plain)

    def test_costs_length_validated(self):
        with pytest.raises(ValueError):
            ShardPlan.of(range(4), chunk_size=2, costs=[1.0])


class TestShardSeeds:
    @given(n=st.integers(1, 80), chunk=st.integers(1, 16), seed=st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_seeds_reproduce_shard_rngs(self, n, chunk, seed):
        plan = ShardPlan.of(range(n), chunk_size=chunk)
        rngs = plan.shard_rngs(make_rng(seed), "campaign")
        seeds = plan.shard_seeds(make_rng(seed), "campaign")
        assert len(seeds) == len(rngs) == plan.n_shards
        for rng, seed_material in zip(rngs, seeds):
            rebuilt = np.random.default_rng(seed_material)
            assert rng.random(8).tolist() == rebuilt.random(8).tolist()

    def test_seeds_consume_root_identically_to_rngs(self):
        # Downstream draws from the root generator must not depend on
        # whether a stage asked for generators or seed material.
        root_a, root_b = make_rng(7), make_rng(7)
        plan = ShardPlan.of(range(30), chunk_size=4)
        plan.shard_rngs(root_a, "stage")
        plan.shard_seeds(root_b, "stage")
        assert root_a.random(4).tolist() == root_b.random(4).tolist()

    def test_seeds_label_namespacing(self):
        plan = ShardPlan.of(range(10), chunk_size=5)
        a = plan.shard_seeds(make_rng(1), "campaign")
        b = plan.shard_seeds(make_rng(1), "clustering")
        assert a != b


class TestParallelConfig:
    def test_defaults_are_serial(self):
        config = ParallelConfig()
        assert config.backend == "serial" and config.workers == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "threads"},
            {"workers": 0},
            {"campaign_chunk": 0},
            {"clustering_chunk": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ParallelConfig(**kwargs)

    def test_factory(self):
        assert isinstance(make_executor(ParallelConfig()), SerialExecutor)
        executor = make_executor(ParallelConfig(backend="process", workers=3))
        assert isinstance(executor, ProcessExecutor) and executor.workers == 3
        pooled = make_executor(ParallelConfig(backend="pool", workers=2))
        assert isinstance(pooled, PoolExecutor) and pooled.workers == 2

    def test_workers_auto_resolves_at_construction(self):
        config = ParallelConfig(backend="process", workers="auto")
        assert config.workers == max(1, usable_cpu_count() - 1)
        assert isinstance(config.workers, int)

    def test_resolve_workers(self):
        assert resolve_workers("auto") == max(1, usable_cpu_count() - 1)
        assert resolve_workers(5) == 5
        assert resolve_workers("3") == 3
        with pytest.raises(ValueError):
            resolve_workers("sideways")


class TestSerialExecution:
    def test_ordered_results(self):
        plan = ShardPlan.of(range(25), chunk_size=4)
        results = run_sharded(_echo_shard, plan)
        assert [index for index, _ in results] == list(range(plan.n_shards))
        assert [x for _, items in results for x in items] == list(range(25))

    def test_telemetry_spans_and_histogram(self):
        telemetry = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())
        plan = ShardPlan.of(range(10), chunk_size=3)
        run_sharded(_sum_shard, plan, telemetry=telemetry, label="stage")
        assert "stage.fanout" in telemetry.tracer.span_names()
        assert "stage.shard" in telemetry.tracer.span_names()
        assert telemetry.metrics.histogram(SHARD_DURATION_METRIC).count == plan.n_shards
        assert telemetry.metrics.counter("test.items_seen") == 10
        assert telemetry.metrics.counter("stage.shards_executed") == plan.n_shards

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError, match="exploded"):
            run_sharded(_boom_shard, ShardPlan.of(range(4), chunk_size=2))


@pytest.mark.parallel
class TestProcessExecution:
    def test_results_match_serial(self):
        plan = ShardPlan.of(range(57), chunk_size=5)
        config = ParallelConfig(backend="process", workers=4)
        assert run_sharded(_sum_shard, plan, config) == run_sharded(_sum_shard, plan)

    def test_ordered_despite_completion_order(self):
        plan = ShardPlan.of(range(30), chunk_size=2)
        config = ParallelConfig(backend="process", workers=4)
        results = run_sharded(_echo_shard, plan, config)
        assert [index for index, _ in results] == list(range(plan.n_shards))

    def test_worker_exceptions_propagate(self):
        config = ParallelConfig(backend="process", workers=2)
        with pytest.raises(RuntimeError, match="exploded"):
            run_sharded(_boom_shard, ShardPlan.of(range(4), chunk_size=2), config)

    def test_worker_telemetry_merges_without_double_counting(self):
        plan = ShardPlan.of(range(22), chunk_size=4)
        serial_telemetry = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())
        run_sharded(_sum_shard, plan, telemetry=serial_telemetry, label="stage")
        process_telemetry = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())
        run_sharded(
            _sum_shard,
            plan,
            ParallelConfig(backend="process", workers=3),
            telemetry=process_telemetry,
            label="stage",
        )
        # Worker-side counters and histograms arrive exactly once.
        for metrics in (serial_telemetry.metrics, process_telemetry.metrics):
            assert metrics.counter("test.items_seen") == 22
            assert metrics.histogram(SHARD_DURATION_METRIC).count == plan.n_shards
        # Worker spans appear under the fan-out span, in shard order.
        fanout = process_telemetry.tracer.find("stage.fanout")
        shard_spans = [span for span in fanout.children if span.name == "stage.shard"]
        assert [span.attributes["shard"] for span in shard_spans] == list(range(plan.n_shards))
        assert serial_telemetry.tracer.span_names() == process_telemetry.tracer.span_names()


class TestMetricsMerge:
    def test_merge_json_counters_gauges_histograms(self):
        parent = MetricsRegistry()
        parent.count("a", 2)
        parent.observe("h", 1.0)
        child = MetricsRegistry()
        child.count("a", 3)
        child.count("b", 1)
        child.gauge("g", 7.0)
        child.observe("h", 2.0)
        child.observe("h", 3.0)
        parent.merge_json(child.to_json(include_values=True))
        assert parent.counter("a") == 5 and parent.counter("b") == 1
        assert parent.gauges["g"] == 7.0
        assert parent.histogram_values("h") == [1.0, 2.0, 3.0]

    def test_merge_registry_and_summary_fallback(self):
        child = MetricsRegistry()
        child.observe("h", 4.0)
        child.observe("h", 6.0)
        parent = MetricsRegistry()
        parent.merge(child)
        assert parent.histogram("h").count == 2
        # Snapshots without raw values degrade to mean-replicated entries.
        lossy = MetricsRegistry()
        lossy.merge_json(child.to_json(include_values=False))
        assert lossy.histogram("h").count == 2
        assert lossy.histogram("h").mean == pytest.approx(5.0)

    def test_tracer_adopt_under_open_span(self):
        tracer = Tracer()
        orphan = Tracer().span("orphan")
        with orphan:
            pass
        with tracer.span("parent") as parent:
            tracer.adopt([orphan])
        assert parent.children == [orphan]
        # With no open span, adopted spans become roots.
        tracer.adopt([orphan])
        assert tracer.roots[-1] is orphan


class TestCampaignSharding:
    """measure_offnets-level determinism (study-level lives in the harness)."""

    @pytest.fixture(scope="class")
    def campaign_setup(self, small_internet, state23):
        from repro.mlab.vantage import build_vantage_points

        vps = build_vantage_points(small_internet.world, 12, seed=3)
        ips = [s.ip for s in state23.servers][:400]
        return small_internet, state23, ips, vps

    def test_serial_identical_across_worker_counts(self, campaign_setup):
        from repro.mlab.matrix import measure_offnets

        internet, state, ips, vps = campaign_setup
        matrices = [
            measure_offnets(
                internet, state, ips, vps, seed=4, parallel=ParallelConfig(workers=w)
            ).rtt_ms
            for w in (1, 3)
        ]
        assert np.array_equal(matrices[0], matrices[1], equal_nan=True)

    @pytest.mark.parallel
    def test_process_identical_to_serial(self, campaign_setup):
        from repro.mlab.matrix import measure_offnets

        internet, state, ips, vps = campaign_setup
        serial = measure_offnets(
            internet, state, ips, vps, seed=4, parallel=ParallelConfig(campaign_chunk=32)
        )
        process = measure_offnets(
            internet,
            state,
            ips,
            vps,
            seed=4,
            parallel=ParallelConfig(backend="process", workers=4, campaign_chunk=32),
        )
        assert np.array_equal(serial.rtt_ms, process.rtt_ms, equal_nan=True)
        assert serial.split_location_ips == process.split_location_ips

    def test_chunk_size_is_part_of_the_artifact(self, campaign_setup):
        # Chunk size shapes the shard RNG streams, so it is pinned in
        # ParallelConfig rather than derived from the worker count.
        from repro.mlab.matrix import measure_offnets

        internet, state, ips, vps = campaign_setup
        a = measure_offnets(internet, state, ips, vps, seed=4, parallel=ParallelConfig(campaign_chunk=32))
        b = measure_offnets(internet, state, ips, vps, seed=4, parallel=ParallelConfig(campaign_chunk=32))
        assert np.array_equal(a.rtt_ms, b.rtt_ms, equal_nan=True)


needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="shared memory unavailable on this host"
)


class TestSharedMemory:
    @needs_shm
    def test_share_roundtrip_is_byte_identical(self):
        import pickle

        rng = np.random.default_rng(3)
        array = rng.random((17, 23))
        array[0, 0] = np.nan
        with ShmRegistry() as registry:
            shared = registry.share(array)
            assert shared.shm_backed
            blob = pickle.dumps(shared)
            # Reference-shaped: a handful of bytes, not the 17*23 floats.
            assert len(blob) < 256
            back = pickle.loads(blob)
            assert back.array.tobytes() == array.tobytes()
            assert back.array.dtype == array.dtype and back.array.shape == array.shape

    def test_disabled_registry_carries_by_value(self):
        import pickle

        array = np.arange(6.0)
        with ShmRegistry(enabled=False) as registry:
            shared = registry.share(array)
            assert not shared.shm_backed
            back = pickle.loads(pickle.dumps(shared))
            assert back.array.tobytes() == array.tobytes()

    def test_share_none_passthrough(self):
        with ShmRegistry() as registry:
            assert registry.share(None) is None

    @needs_shm
    def test_close_unlinks_and_is_idempotent(self):
        import os

        registry = ShmRegistry()
        shared = registry.share(np.arange(10.0))
        path = f"/dev/shm/{shared.name}"
        assert os.path.exists(path)
        registry.close()
        assert not os.path.exists(path)
        registry.close()  # idempotent

    @needs_shm
    def test_measure_payload_marks_shm(self):
        with ShmRegistry() as registry:
            shared = registry.share(np.zeros((50, 50)))
            size, used_shm = measure_payload({"matrix": shared, "k": 1})
            assert used_shm and size < 512
        size, used_shm = measure_payload({"k": 1})
        assert not used_shm

    @needs_shm
    def test_orphan_sweep_reaps_dead_owner_segments_only(self):
        import os
        import subprocess
        import sys
        from multiprocessing import resource_tracker, shared_memory

        from repro.parallel.shm import SHM_PREFIX

        # A pid guaranteed dead: a subprocess that already exited.
        probe = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(probe.stdout)
        orphan_name = f"{SHM_PREFIX}_{dead_pid}_orphantest"
        orphan = shared_memory.SharedMemory(create=True, size=64, name=orphan_name)
        orphan.close()
        # This process created the simulated orphan, so detach it from our
        # resource tracker — the "owner" it is simulating is already dead.
        resource_tracker.unregister(f"/{orphan_name}", "shared_memory")
        with ShmRegistry() as registry:
            live = registry.share(np.arange(4.0))
            removed = sweep_orphan_segments()
            assert removed >= 1
            assert not os.path.exists(f"/dev/shm/{orphan_name}")
            # Live segments of a live process survive the sweep.
            assert os.path.exists(f"/dev/shm/{live.name}")


@pytest.mark.parallel
class TestPoolBackend:
    def test_results_match_serial(self):
        plan = ShardPlan.of(range(57), chunk_size=5)
        config = ParallelConfig(backend="pool", workers=2)
        try:
            assert run_sharded(_sum_shard, plan, config) == run_sharded(_sum_shard, plan)
        finally:
            shutdown_pools()

    def test_pool_persists_across_stages(self):
        from repro.parallel.flight import FlightRecorder

        config = ParallelConfig(backend="pool", workers=2)
        try:
            infos = []
            for stage in ("alpha", "beta"):
                telemetry = Telemetry(
                    tracer=Tracer(), metrics=MetricsRegistry(), flight=FlightRecorder()
                )
                run_sharded(
                    _sum_shard,
                    ShardPlan.of(range(12), chunk_size=3),
                    config,
                    telemetry=telemetry,
                    label=stage,
                )
                infos.append(telemetry.flight.pools[stage])
            # Same pool identity across both stages, reuse counted.
            assert infos[0]["pool"] == infos[1]["pool"]
            assert infos[0]["persistent"] and infos[1]["persistent"]
            assert infos[1]["stages_served"] > infos[0]["stages_served"]
        finally:
            shutdown_pools()

    def test_worker_exceptions_propagate(self):
        config = ParallelConfig(backend="pool", workers=2)
        try:
            with pytest.raises(RuntimeError, match="exploded"):
                run_sharded(_boom_shard, ShardPlan.of(range(4), chunk_size=2), config)
            # The pool survives a task exception and serves the next stage.
            assert run_sharded(_sum_shard, ShardPlan.of(range(9), chunk_size=3), config) == [
                3,
                12,
                21,
            ]
        finally:
            shutdown_pools()

    def test_payload_bytes_recorded(self):
        from repro.parallel.flight import FlightRecorder

        telemetry = Telemetry(tracer=Tracer(), metrics=MetricsRegistry(), flight=FlightRecorder())
        config = ParallelConfig(backend="pool", workers=2)
        try:
            run_sharded(
                _sum_shard,
                ShardPlan.of(range(8), chunk_size=2),
                config,
                telemetry=telemetry,
                label="stage",
            )
        finally:
            shutdown_pools()
        stats = telemetry.flight.payload_stats()
        assert stats["measured_shards"] == 4 and stats["total_bytes"] > 0


@pytest.mark.parallel
class TestProcessBackendCli:
    def test_trace_output_stable_across_backends(self, capsys):
        """`--trace` with the process backend reports the same stage set."""
        from repro.cli import main

        assert main(["study", "--scenario", "small", "--trace", "--sections", "t1"]) == 0
        serial_err = capsys.readouterr().err
        assert (
            main(
                [
                    "study",
                    "--scenario",
                    "small",
                    "--trace",
                    "--sections",
                    "t1",
                    "--backend",
                    "process",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        process_err = capsys.readouterr().err
        for stage in ("ping_campaign", "clustering", "campaign.fanout", "clustering.fanout"):
            assert stage in serial_err and stage in process_err
        assert "stage timings" in process_err and "filter funnel" in process_err
