"""Tests for the analysis layer: traffic model, colocation, concentration,
country aggregation, risk, and the pipeline driver."""

import numpy as np
import pytest

from repro.clustering.sites import ClusteringConfig, SiteClustering
from repro.core.colocation import (
    ColocationBucket,
    ColocationTable,
    bucket_of,
    build_colocation_table,
    colocated_fraction,
)
from repro.core.concentration import coverage_statistics, single_facility_concentration
from repro.core.country import country_hosting_fractions
from repro.core.risk import choke_point_count, rank_facility_risks
from repro.core.traffic_model import TrafficModel


@pytest.fixture(scope="module")
def traffic():
    return TrafficModel()


def make_clustering(ips, labels):
    return SiteClustering(ips=ips, labels=np.array(labels), config=ClusteringConfig())


class TestTrafficModel:
    def test_paper_servable_shares(self, traffic):
        # §3.2: Google 17%, Netflix 9%, Meta 13%, Akamai 13%.
        assert traffic.servable_share("Google") == pytest.approx(0.168, abs=0.003)
        assert traffic.servable_share("Netflix") == pytest.approx(0.0855, abs=0.003)
        assert traffic.servable_share("Meta") == pytest.approx(0.129, abs=0.003)
        assert traffic.servable_share("Akamai") == pytest.approx(0.131, abs=0.003)

    def test_four_hypergiant_facility_share(self, traffic):
        # The paper's headline: ~52% of a user's traffic from one facility.
        assert traffic.all_hypergiants_share == pytest.approx(0.52, abs=0.02)

    def test_facility_share_empty(self, traffic):
        assert traffic.facility_share(set()) == 0.0

    def test_interdomain_fraction(self, traffic):
        assert traffic.interdomain_fraction("Netflix") == pytest.approx(0.05)

    def test_unknown_hypergiant(self, traffic):
        with pytest.raises(KeyError):
            traffic.servable_share("Cloudflare")


class TestColocationBuckets:
    def test_bucket_boundaries(self):
        assert bucket_of(0.0) is ColocationBucket.NONE
        assert bucket_of(0.49) is ColocationBucket.UNDER_HALF
        assert bucket_of(0.5) is ColocationBucket.HALF_OR_MORE
        assert bucket_of(0.99) is ColocationBucket.HALF_OR_MORE
        assert bucket_of(1.0) is ColocationBucket.FULL

    def test_colocated_fraction_mixed_cluster(self):
        clustering = make_clustering([1, 2, 3, 4], [0, 0, 1, -1])
        hg_of = {1: "Google", 2: "Meta", 3: "Google", 4: "Google"}
        # IP1 shares cluster 0 with Meta; IP3's cluster is Google-only;
        # IP4 is unclustered.
        assert colocated_fraction(clustering, hg_of, "Google") == pytest.approx(1 / 3)
        assert colocated_fraction(clustering, hg_of, "Meta") == 1.0

    def test_colocated_fraction_absent_hypergiant(self):
        clustering = make_clustering([1], [-1])
        assert colocated_fraction(clustering, {1: "Google"}, "Netflix") is None

    def test_table_rows_sum_to_one(self, small_study):
        for xi in small_study.config.xis:
            table = small_study.colocation_table(xi)
            for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
                if table.total(hypergiant):
                    assert sum(table.row_percentages(hypergiant).values()) == pytest.approx(1.0)

    def test_sole_hg_column(self):
        clusterings = {}
        hg_by_isp = {10: ["Google"], 11: ["Google", "Meta"]}
        clusterings[11] = make_clustering([1, 2], [0, 0])
        table = build_colocation_table(0.5, clusterings, {1: "Google", 2: "Meta"}, hg_by_isp)
        assert table.counts["Google"][ColocationBucket.SOLE] == 1
        assert table.counts["Google"][ColocationBucket.FULL] == 1

    def test_unanalyzable_isp_skipped(self):
        hg_by_isp = {10: ["Google", "Meta"]}
        table = build_colocation_table(0.5, {}, {}, hg_by_isp)
        assert table.total("Google") == 0

    def test_render_contains_buckets(self, small_study):
        text = small_study.colocation_table(0.1).render()
        assert "Sole HG" in text and "100%" in text


class TestConcentration:
    def test_best_facility_prefers_more_hypergiants(self, traffic, small_study):
        population = small_study.population
        clusterings = {
            1: make_clustering([1, 2, 3, 4], [0, 0, 1, 1]),
        }
        hg_of = {1: "Google", 2: "Netflix", 3: "Akamai", 4: "Akamai"}
        population.users_by_asn[1] = 1000
        try:
            result = single_facility_concentration(0.5, clusterings, hg_of, population, traffic)
            assert result.best_facility_hypergiants[1] == 2
            expected = traffic.facility_share({"Google", "Netflix"})
            assert result.best_facility_share[1] == pytest.approx(expected)
        finally:
            population.users_by_asn.pop(1, None)

    def test_unclustered_ip_is_own_facility(self, traffic, small_study):
        population = small_study.population
        clusterings = {2: make_clustering([9], [-1])}
        population.users_by_asn[2] = 10
        try:
            result = single_facility_concentration(0.5, clusterings, {9: "Meta"}, population, traffic)
            assert result.best_facility_share[2] == pytest.approx(traffic.servable_share("Meta"))
        finally:
            population.users_by_asn.pop(2, None)

    def test_ccdf_weighted_by_users(self, small_study):
        concentration = small_study.concentration(0.9)
        values, tail = concentration.ccdf_points()
        assert tail[0] == pytest.approx(1.0)
        assert (np.diff(tail) <= 1e-12).all()

    def test_threshold_fractions_monotone(self, small_study):
        concentration = small_study.concentration(0.9)
        assert concentration.user_fraction_with_share_at_least(
            0.1
        ) >= concentration.user_fraction_with_share_at_least(0.4)

    def test_coverage_statistics(self, small_study):
        stats = coverage_statistics(
            small_study.latest_inventory,
            small_study.campaign.analyzable_isp_asns,
            small_study.population,
        )
        assert 0 < stats["analyzable"] <= stats["hosting"] <= 1.0


class TestCountry:
    def test_threshold_monotone(self, small_study):
        k2 = country_hosting_fractions(small_study.latest_inventory, small_study.population, 2)
        k4 = country_hosting_fractions(small_study.latest_inventory, small_study.population, 4)
        for code in k2.fraction_by_country:
            assert k4.fraction(code) <= k2.fraction(code) + 1e-12

    def test_restricted_market_has_no_coverage(self, small_study):
        result = country_hosting_fractions(small_study.latest_inventory, small_study.population, 1)
        assert result.fraction("CN") == 0.0

    def test_fractions_in_unit_interval(self, small_study):
        result = small_study.country_result(2)
        for fraction in result.fraction_by_country.values():
            assert 0.0 <= fraction <= 1.0

    def test_world_user_fraction_weighted(self, small_study):
        result = small_study.country_result(2)
        assert 0.0 <= result.world_user_fraction(small_study.population) <= 1.0

    def test_requires_positive_k(self, small_study):
        with pytest.raises(ValueError):
            country_hosting_fractions(small_study.latest_inventory, small_study.population, 0)


class TestRisk:
    def test_ranked_by_exposure(self, small_study):
        risks = rank_facility_risks(
            small_study.clusterings[0.9],
            small_study.hypergiant_of_ip,
            small_study.population,
            small_study.traffic,
        )
        exposures = [r.exposure for r in risks]
        assert exposures == sorted(exposures, reverse=True)

    def test_min_hypergiants_respected(self, small_study):
        risks = rank_facility_risks(
            small_study.clusterings[0.9],
            small_study.hypergiant_of_ip,
            small_study.population,
            small_study.traffic,
            min_hypergiants=3,
        )
        assert all(len(r.hypergiants) >= 3 for r in risks)

    def test_choke_point_count(self, small_study):
        risks = rank_facility_risks(
            small_study.clusterings[0.9],
            small_study.hypergiant_of_ip,
            small_study.population,
            small_study.traffic,
        )
        countries_with_risks = {
            small_study.population.country_by_asn.get(r.isp_asn) for r in risks
        }
        code = next(iter(countries_with_risks - {None}))
        count = choke_point_count(risks, small_study.population, code)
        assert count is not None and count >= 1

    def test_choke_point_none_for_empty_country(self, small_study):
        risks = rank_facility_risks(
            small_study.clusterings[0.9],
            small_study.hypergiant_of_ip,
            small_study.population,
            small_study.traffic,
        )
        assert choke_point_count(risks, small_study.population, "CN") is None


class TestPipeline:
    def test_two_epoch_inventories(self, small_study):
        assert set(small_study.inventories) == {"2021", "2023"}

    def test_clusterings_cover_analyzable_isps(self, small_study):
        for xi in small_study.config.xis:
            assert set(small_study.clusterings[xi]) == set(small_study.campaign.analyzable_isp_asns)

    def test_hypergiant_of_ip_consistent_with_truth(self, small_study):
        state = small_study.history.state("2023")
        for ip, hypergiant in list(small_study.hypergiant_of_ip.items())[:300]:
            assert state.server_at(ip).hypergiant == hypergiant

    def test_clustering_recovers_facilities(self, small_study):
        from repro.clustering.sites import rand_index

        state = small_study.history.state("2023")
        scores = []
        for asn, clustering in list(small_study.clusterings[0.9].items())[:25]:
            facility_ids = {}
            truth = np.array(
                [
                    facility_ids.setdefault(state.server_at(ip).facility.facility_id, len(facility_ids))
                    for ip in clustering.ips
                ]
            )
            scores.append(rand_index(clustering.labels, truth))
        assert np.mean(scores) > 0.85

    def test_single_site_fraction_bounds(self, small_study):
        for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
            for xi in small_study.config.xis:
                assert 0.0 <= small_study.single_site_fraction(hypergiant, xi) <= 1.0

    def test_study_deterministic(self):
        from repro.core.pipeline import StudyConfig, run_study
        from repro.topology.generator import InternetConfig

        config = StudyConfig(
            internet=InternetConfig(seed=2, n_access_isps=30), n_vantage_points=20, seed=2
        )
        a = run_study(config)
        b = run_study(config)
        assert [d.ip for d in a.latest_inventory.detections] == [
            d.ip for d in b.latest_inventory.detections
        ]
        np.testing.assert_array_equal(a.matrix.rtt_ms, b.matrix.rtt_ms)

    def test_config_validation(self):
        from repro.core.pipeline import StudyConfig

        with pytest.raises(ValueError):
            StudyConfig(xis=())
        with pytest.raises(ValueError):
            StudyConfig(n_vantage_points=1)


class TestCorrelation:
    def test_joint_probability_shared_equals_single(self):
        from repro.core.correlation import joint_outage_probability

        # Both services in the same single facility: joint = p.
        assert joint_outage_probability({1}, {1}, 0.01) == pytest.approx(0.01)

    def test_joint_probability_disjoint_is_product(self):
        from repro.core.correlation import joint_outage_probability

        assert joint_outage_probability({1}, {2}, 0.01) == pytest.approx(0.0001)

    def test_partial_overlap_vs_matched_disjoint_baseline(self):
        from repro.core.correlation import joint_outage_probability

        # Compare at equal facility counts: sharing one of two facilities
        # (joint = p^3) inflates the joint outage over fully disjoint
        # two-facility services (p^4), but both are far below the
        # single-facility shared-fate ceiling (p).
        p = 0.01
        ceiling = joint_outage_probability({1}, {1}, p)
        partial = joint_outage_probability({1, 2}, {2, 3}, p)
        disjoint = joint_outage_probability({1, 2}, {3, 4}, p)
        assert disjoint < partial < ceiling
        assert partial == pytest.approx(p**3)
        assert disjoint == pytest.approx(p**4)

    def test_report_shows_colocation_inflation(self, small_study):
        from repro.core.correlation import build_correlation_report

        report = build_correlation_report(
            small_study.history.state("2023"), small_study.population
        )
        assert report.exposures
        # The widespread colocation must show: the mean inflation factor is
        # far above the independent baseline for every pair.
        assert report.mean_correlation_factor() > 10.0
        assert "service pair" in report.render()

    def test_worst_pairs_sorted(self, small_study):
        from repro.core.correlation import build_correlation_report

        report = build_correlation_report(
            small_study.history.state("2023"), small_study.population
        )
        worst = report.worst_pairs(5)
        keys = [e.users * e.joint_outage_probability for e in worst]
        assert keys == sorted(keys, reverse=True)

    def test_fully_colocated_pair_hits_ceiling(self, small_study):
        from repro.core.correlation import build_correlation_report

        state = small_study.history.state("2023")
        report = build_correlation_report(state, small_study.population)
        ceiling = report.facility_outage_probability
        assert any(
            e.joint_outage_probability == pytest.approx(ceiling) for e in report.exposures
        )
