"""Tests for the geographic substrate."""

import pytest

from repro.topology.geo import City, Country, World, default_world


@pytest.fixture(scope="module")
def world() -> World:
    return default_world()


class TestCountry:
    def test_rejects_bad_code(self):
        with pytest.raises(ValueError):
            Country("usa", "United States", "NA", 1)

    def test_rejects_negative_users(self):
        with pytest.raises(ValueError):
            Country("US", "United States", "NA", -1)


class TestCity:
    def test_rejects_bad_latitude(self):
        with pytest.raises(ValueError):
            City("X", "US", 91.0, 0.0, "xxx")

    def test_rejects_bad_iata(self):
        with pytest.raises(ValueError):
            City("X", "US", 0.0, 0.0, "XXX")

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            City("X", "US", 0.0, 0.0, "xxx", weight=0.0)

    def test_distance_to_self_is_zero(self, world):
        city = world.cities[0]
        assert city.distance_m(city) == pytest.approx(0.0)


class TestDefaultWorld:
    def test_every_country_has_a_city(self, world):
        for country in world.countries:
            assert world.cities_in(country.code)

    def test_unique_iata_codes(self, world):
        codes = [c.iata for c in world.cities]
        assert len(codes) == len(set(codes))

    def test_total_users_is_billions(self, world):
        assert world.total_internet_users > 3_000_000_000

    def test_city_lookup_by_iata(self, world):
        city = world.city_by_iata("lhr")
        assert city.name == "London"

    def test_country_lookup(self, world):
        assert world.country("MN").name == "Mongolia"

    def test_paper_k4_countries_present(self, world):
        # The Figure-1c callout countries must exist in the world model.
        for code in ("MX", "BO", "UY", "NZ", "MN", "GL"):
            assert world.country(code)

    def test_heavy_tail(self, world):
        users = sorted((c.internet_users for c in world.countries), reverse=True)
        assert users[0] > 10 * users[len(users) // 2]

    def test_rejects_duplicate_country(self):
        country = Country("US", "United States", "NA", 1)
        city = City("X", "US", 0.0, 0.0, "xxx")
        with pytest.raises(ValueError):
            World(countries=[country, country], cities=[city])

    def test_rejects_city_in_unknown_country(self):
        country = Country("US", "United States", "NA", 1)
        city = City("X", "FR", 0.0, 0.0, "xxx")
        with pytest.raises(ValueError):
            World(countries=[country], cities=[city])

    def test_rejects_country_without_city(self):
        us = Country("US", "United States", "NA", 1)
        fr = Country("FR", "France", "EU", 1)
        city = City("X", "US", 0.0, 0.0, "xxx")
        with pytest.raises(ValueError):
            World(countries=[us, fr], cities=[city])
