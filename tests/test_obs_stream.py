"""Tests for the live JSONL event stream (repro.obs.stream)."""

import io
import json

import pytest

from repro.obs.stream import (
    NULL_STREAM,
    STREAM_FORMAT,
    EventStream,
    NullEventStream,
    follow_events,
    format_event,
    latest_progress,
    read_events,
    render_progress,
    resolve_events_path,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _events(buffer: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestEventStream:
    def test_opening_event_and_monotonic_seq(self):
        buffer = io.StringIO()
        stream = EventStream(buffer, clock=FakeClock())
        stream.emit("alpha")
        stream.emit("beta", key="value")
        events = _events(buffer)
        assert events[0]["event"] == "stream_start"
        assert events[0]["format"] == STREAM_FORMAT
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert events[2]["key"] == "value"

    def test_elapsed_times_from_clock(self):
        clock = FakeClock()
        buffer = io.StringIO()
        stream = EventStream(buffer, clock=clock)
        clock.advance(2.5)
        stream.emit("later")
        assert _events(buffer)[-1]["t_s"] == pytest.approx(2.5)

    def test_progress_percent_and_eta(self):
        clock = FakeClock()
        buffer = io.StringIO()
        stream = EventStream(buffer, clock=clock)
        clock.advance(10.0)
        stream.progress("campaign", 25, 100)
        event = _events(buffer)[-1]
        assert event["percent"] == 25.0
        # 10 s for 25 units -> 30 s for the remaining 75.
        assert event["eta_s"] == pytest.approx(30.0)

    def test_progress_eta_none_before_first_unit(self):
        buffer = io.StringIO()
        stream = EventStream(buffer, clock=FakeClock())
        stream.progress("campaign", 0, 10)
        event = _events(buffer)[-1]
        assert event["eta_s"] is None and event["percent"] == 0.0

    def test_progress_empty_total(self):
        buffer = io.StringIO()
        stream = EventStream(buffer, clock=FakeClock())
        stream.progress("empty", 0, 0)
        assert _events(buffer)[-1]["percent"] == 100.0

    def test_heartbeat_rate_limited(self):
        clock = FakeClock()
        buffer = io.StringIO()
        stream = EventStream(buffer, clock=clock, heartbeat_interval_s=1.0)
        stream.heartbeat()
        stream.heartbeat()  # same instant: suppressed
        clock.advance(0.5)
        stream.heartbeat()  # under the interval: suppressed
        clock.advance(0.6)
        stream.heartbeat()  # 1.1 s since the last kept one: emitted
        beats = [e for e in _events(buffer) if e["event"] == "heartbeat"]
        assert len(beats) == 2

    def test_close_emits_stream_end_and_is_idempotent(self):
        buffer = io.StringIO()
        stream = EventStream(buffer, clock=FakeClock())
        stream.close()
        stream.close()
        stream.emit("after")  # dropped: closed streams record nothing
        events = _events(buffer)
        assert events[-1]["event"] == "stream_end"
        assert sum(1 for e in events if e["event"] == "stream_end") == 1

    def test_path_target_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "events.jsonl"
        stream = EventStream(target, clock=FakeClock())
        stream.close()
        events = read_events(target)
        assert events[0]["event"] == "stream_start"
        assert events[-1]["event"] == "stream_end"

    def test_null_stream_is_inert(self):
        assert isinstance(NULL_STREAM, NullEventStream)
        assert not NULL_STREAM.enabled
        NULL_STREAM.emit("x")
        NULL_STREAM.progress("y", 1, 2)
        NULL_STREAM.heartbeat()
        NULL_STREAM.close()


class TestReaders:
    def _write(self, tmp_path, text: str):
        path = tmp_path / "events.jsonl"
        path.write_text(text, encoding="utf-8")
        return path

    def test_read_events_tolerates_torn_final_line(self, tmp_path):
        path = self._write(tmp_path, '{"seq": 0, "event": "stream_start"}\n{"seq": 1, "ev')
        events = read_events(path)
        assert len(events) == 1

    def test_read_events_rejects_torn_middle_line(self, tmp_path):
        path = self._write(tmp_path, '{"broken\n{"seq": 1, "event": "x"}\n')
        with pytest.raises(json.JSONDecodeError):
            read_events(path)

    def test_latest_progress_keeps_last_per_label(self):
        events = [
            {"event": "progress", "label": "a", "completed": 1, "total": 4},
            {"event": "progress", "label": "b", "completed": 2, "total": 9},
            {"event": "progress", "label": "a", "completed": 3, "total": 4},
        ]
        latest = latest_progress(events)
        assert list(latest) == ["a", "b"]
        assert latest["a"]["completed"] == 3

    def test_render_progress_live_and_complete(self):
        events = [
            {"seq": 0, "t_s": 0.0, "event": "stream_start"},
            {"seq": 1, "t_s": 0.1, "event": "stage_start", "stage": "scan"},
            {
                "seq": 2,
                "t_s": 1.0,
                "event": "progress",
                "label": "campaign",
                "completed": 3,
                "total": 12,
                "percent": 25.0,
                "eta_s": 3.0,
            },
        ]
        text = render_progress(events)
        assert "running scan" in text
        assert "campaign: 3/12 (25.0%) eta 3.0s" in text
        assert "run in progress" in text
        events.append({"seq": 3, "t_s": 2.0, "event": "stream_end", "events": 3})
        assert "run complete" in render_progress(events)

    def test_render_progress_empty(self):
        assert render_progress([]) == "no events recorded"

    def test_format_event_variants(self):
        progress = {
            "seq": 2,
            "t_s": 1.5,
            "event": "progress",
            "label": "campaign",
            "completed": 3,
            "total": 12,
            "percent": 25.0,
            "eta_s": 4.5,
        }
        assert "campaign: 3/12 (25.0%) eta 4.5s" in format_event(progress)
        start = {"seq": 0, "t_s": 0.0, "event": "stage_start", "stage": "scan"}
        assert "stage start scan" in format_event(start)
        end = {"seq": 1, "t_s": 0.2, "event": "stage_end", "stage": "scan", "duration_ms": 200.0}
        assert "stage end" in format_event(end) and "200.0 ms" in format_event(end)
        generic = {"seq": 3, "t_s": 0.3, "event": "campaign_start", "n_cells": 9}
        assert "campaign_start n_cells=9" in format_event(generic)

    def test_resolve_events_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("{}\n", encoding="utf-8")
        assert resolve_events_path(path) == path
        assert resolve_events_path(tmp_path) == path
        with pytest.raises(FileNotFoundError):
            resolve_events_path(tmp_path / "missing.jsonl")
        empty = tmp_path / "empty_dir"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            resolve_events_path(empty)

    def test_follow_events_reads_to_stream_end(self, tmp_path):
        buffer = io.StringIO()
        stream = EventStream(buffer, clock=FakeClock())
        stream.emit("alpha")
        stream.progress("campaign", 1, 2)
        stream.close()
        path = tmp_path / "events.jsonl"
        path.write_text(buffer.getvalue(), encoding="utf-8")
        events = list(follow_events(path, poll_interval_s=0.01, timeout_s=2.0))
        assert [e["event"] for e in events] == [
            "stream_start",
            "alpha",
            "progress",
            "stream_end",
        ]

    def test_follow_events_times_out_without_stream_end(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 0, "t_s": 0.0, "event": "stream_start"}\n', encoding="utf-8")
        events = list(follow_events(path, poll_interval_s=0.01, timeout_s=0.05))
        assert [e["event"] for e in events] == ["stream_start"]


class TestStreamThroughTracer:
    def test_stage_events_depth_gated(self):
        from repro.obs.trace import Tracer

        buffer = io.StringIO()
        stream = EventStream(buffer, clock=FakeClock(), stage_depth=2)
        tracer = Tracer(stream=stream)
        with tracer.span("study"):
            with tracer.span("scan"):
                with tracer.span("scan.epoch"):  # depth 3: not streamed
                    pass
        stages = [e["stage"] for e in _events(buffer) if e["event"] == "stage_start"]
        assert stages == ["study", "scan"]
        ends = [e for e in _events(buffer) if e["event"] == "stage_end"]
        assert all("duration_ms" in e for e in ends)
