"""Tests for the observability subsystem (repro.obs)."""

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    NULL_TELEMETRY,
    MetricsRegistry,
    NullMetrics,
    NullTracer,
    Span,
    StructuredLogger,
    Telemetry,
    Tracer,
    get_logger,
    global_metrics,
    render_filter_funnel,
    render_metrics_table,
    render_span_tree,
    summarize,
    telemetry_from_json,
    telemetry_to_json,
    write_metrics_json,
)
from repro.obs.logging import DEBUG, INFO, WARNING


class FakeClock:
    """A controllable clock for deterministic span durations."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTracer:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child_a"):
                pass
            with tracer.span("child_b"):
                with tracer.span("grandchild"):
                    pass
        assert len(tracer.roots) == 1
        parent = tracer.roots[0]
        assert [c.name for c in parent.children] == ["child_a", "child_b"]
        assert [c.name for c in parent.children[1].children] == ["grandchild"]

    def test_durations_from_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(2.0)
            clock.advance(0.5)
        outer = tracer.find("outer")
        inner = tracer.find("inner")
        assert inner.duration_s == pytest.approx(2.0)
        assert outer.duration_s == pytest.approx(3.5)

    def test_child_durations_bounded_by_parent(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("parent"):
            for _ in range(3):
                with tracer.span("child"):
                    clock.advance(0.25)
        parent = tracer.roots[0]
        assert sum(c.duration_s for c in parent.children) <= parent.duration_s
        assert all(c.duration_s >= 0 for c in parent.children)

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("stage", epoch="2023") as span:
            span.set(records=42)
        assert tracer.roots[0].attributes == {"epoch": "2023", "records": 42}

    def test_span_names_and_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.span_names() == {"a", "b"}
        assert tracer.find("b").name == "b"
        assert tracer.find("missing") is None

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("anything", key="value") as span:
            span.set(more=1)
        assert tracer.roots == ()
        assert tracer.span_names() == set()
        # Disabled mode hands out one shared span object: no per-use cost.
        assert tracer.span("x") is tracer.span("y")
        assert tracer.span("x").duration_ms == 0.0


class TestMetrics:
    def test_counter_aggregation(self):
        metrics = MetricsRegistry()
        metrics.count("scan.hosts_probed", 10)
        metrics.count("scan.hosts_probed", 5)
        metrics.count("detect.offnets_found")
        assert metrics.counter("scan.hosts_probed") == 15
        assert metrics.counter("detect.offnets_found") == 1
        assert metrics.counter("never.recorded") == 0

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.gauge("cluster.xi", 0.1)
        metrics.gauge("cluster.xi", 0.9)
        assert metrics.gauges["cluster.xi"] == 0.9

    def test_histogram_summary(self):
        metrics = MetricsRegistry()
        for value in [1.0, 2.0, 3.0, 4.0, 100.0]:
            metrics.observe("cluster.optics_reachability_ms", value)
        summary = metrics.histogram("cluster.optics_reachability_ms")
        assert summary.count == 5
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.mean == pytest.approx(22.0)
        assert summary.p50 == 3.0
        assert summary.total == pytest.approx(110.0)

    def test_empty_histogram(self):
        assert MetricsRegistry().histogram("nothing").count == 0
        assert summarize([]).mean == 0.0

    def test_percentiles_nearest_rank(self):
        summary = summarize([float(v) for v in range(1, 101)])
        assert summary.p50 == 50.0
        assert summary.p90 == 90.0
        assert summary.p99 == 99.0

    def test_null_metrics_noop(self):
        metrics = NullMetrics()
        metrics.count("a", 5)
        metrics.gauge("b", 1.0)
        metrics.observe("c", 2.0)
        assert metrics.counter("a") == 0
        assert metrics.histogram_names() == []
        assert metrics.to_json() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_global_registry_is_shared(self):
        assert global_metrics() is global_metrics()


class TestLogging:
    def test_text_mode(self):
        stream = io.StringIO()
        log = StructuredLogger("repro.test", level=INFO, stream=stream)
        log.info("scan complete", epoch="2023", records=7)
        assert stream.getvalue() == "[info] repro.test: scan complete epoch=2023 records=7\n"

    def test_json_mode(self):
        stream = io.StringIO()
        log = StructuredLogger("repro.test", level=INFO, json_mode=True, stream=stream)
        log.info("scan complete", epoch="2023", records=7)
        record = json.loads(stream.getvalue())
        assert record == {
            "level": "info",
            "logger": "repro.test",
            "event": "scan complete",
            "epoch": "2023",
            "records": 7,
        }

    def test_level_filtering(self):
        stream = io.StringIO()
        log = StructuredLogger("repro.test", level=WARNING, stream=stream)
        log.debug("dropped")
        log.info("dropped too")
        log.warning("kept")
        assert stream.getvalue().count("\n") == 1
        assert "kept" in stream.getvalue()

    def test_get_logger_is_shared(self):
        assert get_logger("repro.x") is get_logger("repro.x")
        assert get_logger("repro.x") is not get_logger("repro.y")

    def test_default_level_is_quiet(self):
        assert StructuredLogger("fresh").level == WARNING


class TestTelemetry:
    def test_capture_records_everything(self):
        telemetry = Telemetry.capture(stream=io.StringIO())
        with telemetry.span("stage"):
            telemetry.count("stage.things", 3)
            telemetry.observe("stage.sizes", 1.5)
        assert telemetry.enabled
        assert telemetry.tracer.find("stage") is not None
        assert telemetry.metrics.counter("stage.things") == 3

    def test_disabled_singleton(self):
        assert Telemetry.disabled() is NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled
        with NULL_TELEMETRY.span("stage"):
            NULL_TELEMETRY.count("x")
            NULL_TELEMETRY.observe("y", 1.0)
            NULL_TELEMETRY.log("z")
        assert NULL_TELEMETRY.tracer.roots == ()
        assert NULL_TELEMETRY.metrics.counter("x") == 0


class TestExport:
    def _sample_telemetry(self) -> Telemetry:
        clock = FakeClock()
        telemetry = Telemetry(tracer=Tracer(clock=clock))
        with telemetry.span("study", seed=0):
            with telemetry.span("scan", epoch="2023"):
                clock.advance(0.1)
            telemetry.count("scan.hosts_probed", 100)
            telemetry.gauge("campaign.vantage_points", 40)
            telemetry.observe("cluster.optics_reachability_ms", 3.5)
            telemetry.observe("cluster.optics_reachability_ms", 7.0)
        return telemetry

    def test_snapshot_shape(self):
        data = telemetry_to_json(self._sample_telemetry(), name="unit")
        assert data["bench"] == "unit"
        assert data["format"] == "repro-bench-v1"
        assert data["spans"][0]["name"] == "study"
        assert data["spans"][0]["children"][0]["name"] == "scan"
        assert data["counters"]["scan.hosts_probed"] == 100
        assert data["histograms"]["cluster.optics_reachability_ms"]["count"] == 2

    def test_json_round_trip(self, tmp_path):
        telemetry = self._sample_telemetry()
        path = write_metrics_json(telemetry, tmp_path / "m.json", name="unit", include_values=True)
        loaded = telemetry_from_json(json.loads(path.read_text()))
        assert loaded.tracer.span_names() == telemetry.tracer.span_names()
        assert loaded.tracer.find("scan").duration_ms == pytest.approx(
            telemetry.tracer.find("scan").duration_ms
        )
        assert loaded.tracer.find("scan").attributes == {"epoch": "2023"}
        assert loaded.metrics.counters == telemetry.metrics.counters
        assert loaded.metrics.gauges == telemetry.metrics.gauges
        assert loaded.metrics.histogram_values(
            "cluster.optics_reachability_ms"
        ) == telemetry.metrics.histogram_values("cluster.optics_reachability_ms")
        # And the re-export is identical: a true round trip.
        assert telemetry_to_json(loaded, "unit", include_values=True) == telemetry_to_json(
            telemetry, "unit", include_values=True
        )

    def test_renderings(self):
        telemetry = self._sample_telemetry()
        tree = render_span_tree(telemetry.tracer)
        assert "study" in tree and "scan" in tree and "ms" in tree
        table = render_metrics_table(telemetry.metrics)
        assert "scan.hosts_probed" in table and "counter" in table
        assert render_filter_funnel(telemetry.metrics) == "no filter metrics recorded"

    def test_empty_renderings(self):
        assert render_span_tree(Tracer()) == "no spans recorded"
        assert render_metrics_table(MetricsRegistry()) == "no metrics recorded"


class TestPipelineInstrumentation:
    @pytest.fixture(scope="class")
    def traced_pair(self):
        """One tiny study run traced, one untraced, same config."""
        from repro.core.pipeline import StudyConfig, run_study
        from repro.topology.generator import InternetConfig

        config = StudyConfig(
            internet=InternetConfig(seed=3, n_access_isps=25, n_ixps=8),
            n_vantage_points=10,
            seed=3,
        )
        telemetry = Telemetry.capture(stream=io.StringIO())
        return run_study(config, telemetry=telemetry), run_study(config), telemetry

    def test_all_stages_have_spans(self, traced_pair):
        _, _, telemetry = traced_pair
        names = telemetry.tracer.span_names()
        for stage in ("topology", "deployment", "scan", "detect", "ping_campaign", "filters", "clustering"):
            assert stage in names, f"missing span for stage {stage!r}"

    def test_funnel_counters_recorded(self, traced_pair):
        _, _, telemetry = traced_pair
        metrics = telemetry.metrics
        considered = metrics.counter("filters.ips_considered")
        assert considered > 0
        assert (
            metrics.counter("filters.ips_kept")
            + metrics.counter("filters.ips_dropped_unresponsive")
            + metrics.counter("filters.ips_dropped_implausible")
            == considered
        )
        assert metrics.counter("filters.ips_analyzable") == metrics.counter(
            "filters.ips_kept"
        ) - metrics.counter("filters.ips_dropped_low_coverage_isp")
        assert metrics.counter("scan.hosts_probed") > 0
        assert metrics.counter("detect.offnets_found") > 0
        assert metrics.counter("cluster.isps_analyzed") > 0

    def test_tracing_preserves_determinism(self, traced_pair):
        traced, untraced, _ = traced_pair
        assert np.array_equal(traced.matrix.rtt_ms, untraced.matrix.rtt_ms, equal_nan=True)
        assert traced.matrix.ips == untraced.matrix.ips
        assert traced.inventories["2023"].detections == untraced.inventories["2023"].detections
        assert traced.inventories["2021"].detections == untraced.inventories["2021"].detections
        assert traced.campaign.ips_by_isp == untraced.campaign.ips_by_isp
        assert traced.campaign.unresponsive_ips == untraced.campaign.unresponsive_ips
        assert traced.campaign.implausible_ips == untraced.campaign.implausible_ips
        for xi in traced.clusterings:
            for asn in traced.clusterings[xi]:
                assert np.array_equal(
                    traced.clusterings[xi][asn].labels, untraced.clusterings[xi][asn].labels
                )
        assert traced.ptr.records == untraced.ptr.records
        assert traced.telemetry is not None and untraced.telemetry is None

    def test_study_attaches_telemetry(self, traced_pair):
        traced, _, telemetry = traced_pair
        assert traced.telemetry is telemetry

    def test_span_tree_renders_for_study(self, traced_pair):
        _, _, telemetry = traced_pair
        tree = render_span_tree(telemetry.tracer)
        assert tree.startswith("study")
        funnel = render_filter_funnel(telemetry.metrics)
        assert "analyzable" in funnel

    def test_optics_reachability_histogram(self, traced_pair):
        _, _, telemetry = traced_pair
        summary = telemetry.metrics.histogram("cluster.optics_reachability_ms")
        assert summary.count > 0
        assert summary.minimum >= 0.0

    def test_per_isp_timings(self, traced_pair):
        """Every (isp, xi) cell lands one duration sample; OPTICS runs once
        per ISP (the memo serves the other xi settings from cache)."""
        _, _, telemetry = traced_pair
        metrics = telemetry.metrics
        durations = metrics.histogram("cluster.isp_duration_ms")
        assert durations.count == (
            metrics.counter("cluster.optics_runs")
            + metrics.counter("cluster.optics_reused")
            + int(metrics.counter("cluster.singleton_isps"))
        )

    def test_memoization_reuses_per_isp_intermediates(self, traced_pair):
        """With two xi settings, every multi-IP ISP computes its distance
        matrix and OPTICS ordering once and reuses both once."""
        _, _, telemetry = traced_pair
        metrics = telemetry.metrics
        computed = metrics.counter("cluster.distance_matrices_computed")
        assert computed > 0
        assert metrics.counter("cluster.distance_matrices_reused") == computed
        assert metrics.counter("cluster.optics_reused") == metrics.counter("cluster.optics_runs")
        assert metrics.counter("cluster.optics_reference_runs") == 0
        assert metrics.histogram("cluster.distance_ms").count == computed
        assert metrics.histogram("filters.plausibility_ms").count == 1


class TestCachedStudyMetrics:
    def test_cache_hit_and_miss_counters(self, small_study):
        from repro.experiments.scenarios import cached_study

        registry = global_metrics()
        hits_before = registry.counter("scenarios.cache_hits")
        # The small study is already cached (fixture): both calls are hits.
        assert cached_study("small") is cached_study("small")
        assert registry.counter("scenarios.cache_hits") == hits_before + 2
        # The session saw at least the fixture's initial miss.
        assert registry.counter("scenarios.cache_misses") >= 1

    def test_cache_logs_scenario(self, small_study, capsys):
        from repro.experiments.scenarios import cached_study
        from repro.obs import configure_logging

        configure_logging(level="info", json_mode=False)
        try:
            cached_study("small")
            err = capsys.readouterr().err
            assert "scenario cache hit" in err and "scenario=small" in err
        finally:
            configure_logging(level="warning", json_mode=False)


class TestCascadeInstrumentation:
    def test_cascade_metrics(self, small_study):
        from repro.capacity.cascade import simulate_cascade
        from repro.capacity.demand import DemandModel
        from repro.capacity.events import facility_outage_scenario
        from repro.capacity.links import build_capacity_plan
        from repro.experiments.section43_collateral import most_shared_facility

        facility_id, _ = most_shared_facility(small_study)
        state = small_study.history.state("2023")
        demand = DemandModel(traffic=small_study.traffic)
        plans = build_capacity_plan(small_study.internet, state, demand, seed=11)
        owner_asns = sorted(
            {s.isp.asn for s in state.servers if s.facility.facility_id == facility_id}
        )
        telemetry = Telemetry.capture(stream=io.StringIO())
        report = simulate_cascade(
            small_study.internet,
            demand,
            plans,
            facility_outage_scenario(facility_id),
            small_study.population,
            asns=owner_asns,
            telemetry=telemetry,
        )
        assert telemetry.metrics.counter("cascade.isps_simulated") == len(owner_asns)
        assert telemetry.metrics.counter("cascade.rounds") == 24 * len(owner_asns)
        assert telemetry.metrics.counter("cascade.congested_rounds") == sum(
            o.congested_hours for o in report.outcomes.values()
        )
        assert telemetry.metrics.histogram("cascade.overloaded_links_per_round").count == 24 * len(
            owner_asns
        )
        assert telemetry.tracer.find("cascade") is not None


class TestTracerouteLogging:
    def test_engine_counts_traces(self, small_internet):
        from repro.traceroute.engine import TracerouteEngine

        telemetry = Telemetry.capture(stream=io.StringIO())
        engine = TracerouteEngine(small_internet, seed=1, telemetry=telemetry)
        google = small_internet.hypergiant_as("Google")
        target = small_internet.plan.prefixes_of(small_internet.access_isps[0])[0].base + 7
        path = engine.trace(google, target)
        assert path.routable
        assert telemetry.metrics.counter("traceroute.traces") == 1

    def test_engine_logs_unattributable(self, small_internet, capsys):
        from repro.obs import configure_logging
        from repro.traceroute.engine import TracerouteEngine

        configure_logging(level="debug")
        try:
            engine = TracerouteEngine(small_internet, seed=1)
            google = small_internet.hypergiant_as("Google")
            path = engine.trace(google, 1)  # address owned by nobody
            assert not path.routable
            assert "destination unattributable" in capsys.readouterr().err
        finally:
            configure_logging(level="warning")


class TestTelemetryCaptureRestore:
    """Regression tests: ``capture`` flips process-global logging config and
    ``restore`` (or the context manager) must put back exactly what it
    displaced — including for loggers created *after* the capture."""

    def test_restore_puts_shared_logging_back(self):
        from repro.obs import logging_config

        before = logging_config()
        existing = get_logger("repro.restore_test.existing")
        telemetry = Telemetry.capture(log_level="debug", json_logs=True, stream=io.StringIO())
        try:
            assert existing.level == DEBUG and existing.json_mode
            late = get_logger("repro.restore_test.late")
            assert late.level == DEBUG and late.json_mode
        finally:
            telemetry.restore()
        assert logging_config() == before
        assert existing.level == before["level"] and not existing.json_mode
        assert get_logger("repro.restore_test.late").level == before["level"]

    def test_context_manager_restores_and_closes_stream(self):
        from repro.obs import logging_config
        from repro.obs.stream import EventStream

        before = logging_config()
        buffer = io.StringIO()
        with Telemetry.capture(log_level="debug", events=EventStream(buffer)) as telemetry:
            telemetry.emit("inside")
        assert logging_config() == before
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert lines[-1]["event"] == "stream_end"

    def test_restore_is_idempotent(self):
        from repro.obs import configure_logging, logging_config

        telemetry = Telemetry.capture(log_level="debug", stream=io.StringIO())
        telemetry.restore()
        # A second restore must not clobber config applied in between.
        configure_logging(level="error")
        try:
            telemetry.restore()
            assert logging_config()["level"] == 40
        finally:
            configure_logging(level="warning")

    def test_capture_carries_flight_recorder(self):
        telemetry = Telemetry.capture(stream=io.StringIO())
        assert telemetry.flight.enabled
        assert not NULL_TELEMETRY.flight.enabled

    def test_profile_capture_attaches_profiler(self):
        with Telemetry.capture(profile=True, stream=io.StringIO()) as telemetry:
            with telemetry.span("stage"):
                pass
        span = telemetry.tracer.find("stage")
        assert "cpu_ms" in span.attributes and "rss_peak_kb" in span.attributes


class TestCompactSnapshot:
    def _telemetry(self) -> Telemetry:
        clock = FakeClock()
        telemetry = Telemetry(tracer=Tracer(clock=clock))
        with telemetry.span("study"):
            for _ in range(3):
                with telemetry.span("shard"):
                    clock.advance(0.1)
            telemetry.count("filters.ips_kept", 42)
            telemetry.observe("cluster.optics_reachability_ms", 5.0)
        return telemetry

    def test_aggregates_by_stage_name(self):
        from repro.obs import aggregate_stages

        stages = aggregate_stages(self._telemetry())
        assert list(stages) == ["study", "shard"]
        assert stages["shard"]["count"] == 3
        assert stages["shard"]["total_ms"] == pytest.approx(300.0)
        assert stages["shard"]["mean_ms"] == pytest.approx(100.0)
        assert stages["shard"]["max_ms"] == pytest.approx(100.0)

    def test_compact_shape_has_no_raw_dumps(self):
        from repro.obs import COMPACT_SCHEMA, compact_snapshot

        snapshot = compact_snapshot(self._telemetry(), name="unit")
        assert snapshot["schema"] == COMPACT_SCHEMA
        assert snapshot["format"] == "repro-bench-v1"
        assert "spans" not in snapshot  # aggregated, not dumped
        assert "values" not in snapshot["histograms"]["cluster.optics_reachability_ms"]
        assert snapshot["counters"]["filters.ips_kept"] == 42

    def test_flight_summary_included_when_recorded(self):
        from repro.obs import compact_snapshot
        from repro.parallel.flight import FlightRecorder

        telemetry = Telemetry(flight=FlightRecorder())
        telemetry.flight.record("x", 0, "w", 0.0, 0.1)
        snapshot = compact_snapshot(telemetry)
        assert snapshot["flight"]["shards"] == 1
        assert "flight" not in compact_snapshot(self._telemetry())

    def test_extra_merges_into_top_level(self):
        from repro.obs import compact_snapshot

        snapshot = compact_snapshot(self._telemetry(), extra={"runs": {"total_s": 1.5}})
        assert snapshot["runs"] == {"total_s": 1.5}

    def test_write_compact_snapshot(self, tmp_path):
        from repro.obs import write_compact_snapshot

        path = write_compact_snapshot(self._telemetry(), tmp_path / "BENCH_x.json", name="x")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["bench"] == "x" and "stages" in data


class TestChromeTrace:
    def _telemetry(self) -> Telemetry:
        clock = FakeClock()
        telemetry = Telemetry(tracer=Tracer(clock=clock))
        with telemetry.span("study", seed=1):
            clock.advance(0.5)
            with telemetry.span("scan"):
                clock.advance(0.25)
        return telemetry

    def test_structurally_valid_trace(self):
        from repro.obs import chrome_trace_json

        trace = chrome_trace_json(self._telemetry())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M" and events[0]["name"] == "process_name"
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"study", "scan"}
        for event in spans:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}

    def test_absolute_start_offsets_microseconds(self):
        from repro.obs import chrome_trace_json

        spans = {
            e["name"]: e for e in chrome_trace_json(self._telemetry())["traceEvents"] if e["ph"] == "X"
        }
        assert spans["study"]["ts"] == pytest.approx(0.0)
        assert spans["scan"]["ts"] == pytest.approx(500_000.0)  # 0.5 s in us
        assert spans["scan"]["dur"] == pytest.approx(250_000.0)

    def test_worker_attribute_becomes_tid(self):
        from repro.obs import chrome_trace_json

        telemetry = Telemetry(tracer=Tracer(clock=FakeClock()))
        with telemetry.span("fanout"):
            with telemetry.span("shard", worker="pid-7"):
                with telemetry.span("inner"):  # inherits the worker row
                    pass
        spans = {e["name"]: e for e in chrome_trace_json(telemetry)["traceEvents"] if e["ph"] == "X"}
        assert spans["fanout"]["tid"] == "main"
        assert spans["shard"]["tid"] == "pid-7"
        assert spans["inner"]["tid"] == "pid-7"
        assert "worker" not in spans["shard"]["args"]

    def test_write_chrome_trace_is_json(self, tmp_path):
        from repro.obs import write_chrome_trace

        path = write_chrome_trace(self._telemetry(), tmp_path / "trace.json")
        assert json.loads(path.read_text(encoding="utf-8"))["traceEvents"]


class TestMergeProperties:
    """Hypothesis invariants for the worker->parent telemetry merge."""

    @given(
        snapshots=st.lists(
            st.dictionaries(
                st.sampled_from(["a.x", "b.y", "c.z"]),
                st.integers(0, 1000),
                max_size=3,
            ),
            max_size=5,
        ),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_counter_merge_is_order_insensitive(self, snapshots, seed):
        import random

        shuffled = list(snapshots)
        random.Random(seed).shuffle(shuffled)
        merged_a, merged_b = MetricsRegistry(), MetricsRegistry()
        for snapshot in snapshots:
            merged_a.merge_json({"counters": snapshot})
        for snapshot in shuffled:
            merged_b.merge_json({"counters": snapshot})
        assert merged_a.counters == merged_b.counters

    @given(
        values=st.lists(st.floats(0, 100, allow_nan=False), max_size=20),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_histogram_merge_summary_order_insensitive(self, values, seed):
        import random

        shuffled = list(values)
        random.Random(seed).shuffle(shuffled)
        merged_a, merged_b = MetricsRegistry(), MetricsRegistry()
        merged_a.merge_json({"histograms": {"h": {"values": values, "count": len(values), "mean": 0}}})
        merged_b.merge_json({"histograms": {"h": {"values": shuffled, "count": len(shuffled), "mean": 0}}})
        assert merged_a.histogram("h").to_json() == merged_b.histogram("h").to_json()

    @given(
        forests=st.lists(
            st.lists(st.sampled_from(["scan", "detect", "cluster"]), max_size=4),
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_adopt_is_order_stable(self, forests):
        """Consecutive adoptions append in call order: the merged root list
        is exactly the concatenation of the adopted forests."""
        tracer = Tracer()
        expected: list[str] = []
        for forest in forests:
            spans = []
            for name in forest:
                worker_tracer = Tracer()
                with worker_tracer.span(name):
                    pass
                spans.extend(worker_tracer.roots)
            tracer.adopt(spans)
            expected.extend(forest)
        assert [span.name for span in tracer.roots] == expected

    def test_adopt_under_open_span_attaches_as_children(self):
        tracer = Tracer()
        worker = Tracer()
        with worker.span("shard"):
            pass
        with tracer.span("fanout"):
            tracer.adopt(list(worker.roots))
        assert [c.name for c in tracer.roots[0].children] == ["shard"]

    def test_shift_spans_rebases_whole_trees(self):
        from repro.obs import shift_spans

        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("root"):
            clock.advance(0.2)
            with tracer.span("child"):
                clock.advance(0.1)
        shift_spans(tracer.roots, 1.5)
        assert tracer.find("root").start_s == pytest.approx(1.5)
        assert tracer.find("child").start_s == pytest.approx(1.7)
        # Durations untouched.
        assert tracer.find("child").duration_s == pytest.approx(0.1)
