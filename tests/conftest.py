"""Shared fixtures: one small Internet/study per session.

The full pipeline on the small scenario takes a few seconds; building it
once per session keeps the suite fast while letting many tests assert
against the same rich artifact.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import Study
from repro.deployment.growth import DeploymentHistory, build_deployment_history
from repro.deployment.placement import DeploymentState
from repro.experiments.scenarios import cached_study
from repro.topology.generator import Internet, InternetConfig, generate_internet


@pytest.fixture(scope="session")
def small_internet() -> Internet:
    """A compact generated Internet shared across tests."""
    return generate_internet(InternetConfig(seed=1, n_access_isps=60, n_ixps=25))


@pytest.fixture(scope="session")
def history(small_internet: Internet) -> DeploymentHistory:
    """Deployment history (2021 + 2023) on the small Internet."""
    return build_deployment_history(small_internet, seed=1)


@pytest.fixture(scope="session")
def state23(history: DeploymentHistory) -> DeploymentState:
    """The 2023 deployment snapshot."""
    return history.state("2023")


def pytest_collection_modifyitems(config, items):
    """Skip ``parallel``-marked tests where worker pools cannot run.

    Some sandboxes restrict multiprocessing start methods or semaphores;
    the probe (one trivial pool round-trip, cached) degrades those tests to
    skips instead of hard errors, keeping tier-1 green everywhere.
    """
    if not any(item.get_closest_marker("parallel") for item in items):
        return
    from repro.parallel import process_backend_available

    if process_backend_available():
        return
    skip = pytest.mark.skip(reason="process executor backend unavailable (multiprocessing restricted)")
    for item in items:
        if item.get_closest_marker("parallel"):
            item.add_marker(skip)


@pytest.fixture(scope="session", autouse=True)
def _shm_leak_sweep():
    """The zero-leak guarantee, enforced at session end.

    Any ``repro_shm_*`` segment created by this test process and still
    present in ``/dev/shm`` after the suite is a lifecycle bug (registry
    not closed); persistent pools are also torn down so worker processes
    never outlive the session.
    """
    import os

    yield
    from repro.parallel import shutdown_pools

    shutdown_pools()
    from repro.parallel.shm import SHM_PREFIX

    if os.path.isdir("/dev/shm"):
        prefix = f"{SHM_PREFIX}_{os.getpid()}_"
        leaked = [entry for entry in os.listdir("/dev/shm") if entry.startswith(prefix)]
        assert not leaked, f"shared-memory segments leaked by the test session: {leaked}"


@pytest.fixture(scope="session")
def small_study() -> Study:
    """The full small-scenario study (scan -> detect -> ping -> cluster).

    Shares the :func:`cached_study` memo with the CLI tests, so the
    pipeline runs once per session no matter who asks first.
    """
    return cached_study("small")
