"""Observability bench: record the pipeline's stage-time/metrics snapshot.

Runs the small scenario with telemetry enabled and writes the snapshot to
``BENCH_observability.json`` next to this file, in the ``repro-bench-v1``
trajectory format (span forest + counters/gauges/histograms).  Each PR that
touches a pipeline stage regenerates the file, so the sequence of committed
snapshots is a perf trajectory: diff ``spans[].duration_ms`` and the funnel
counters across revisions to spot regressions.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_observability.py -s``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.scenarios import scenario_by_name
from repro.obs import (
    Telemetry,
    render_filter_funnel,
    render_span_tree,
    telemetry_to_json,
    write_metrics_json,
)

from benchmarks.conftest import emit

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_observability.json"

#: Every stage that must appear in the snapshot for it to be useful.
PIPELINE_STAGES = (
    "topology",
    "deployment",
    "scan",
    "detect",
    "ping_campaign",
    "filters",
    "clustering",
)


def _flat_names(spans: list[dict]) -> set[str]:
    names: set[str] = set()
    for span in spans:
        names.add(span["name"])
        names.update(_flat_names(span["children"]))
    return names


def test_bench_observability_snapshot():
    telemetry = Telemetry.capture()
    study = scenario_by_name("small").run(telemetry=telemetry)
    assert study.telemetry is telemetry

    snapshot = telemetry_to_json(telemetry, name="observability-small")
    names = _flat_names(snapshot["spans"])
    for stage in PIPELINE_STAGES:
        assert stage in names, f"stage {stage!r} missing from the trace"
    assert snapshot["counters"]["filters.ips_considered"] > 0
    assert snapshot["counters"]["cluster.isps_analyzed"] > 0

    write_metrics_json(telemetry, SNAPSHOT_PATH, name="observability-small")
    assert json.loads(SNAPSHOT_PATH.read_text())["format"] == "repro-bench-v1"

    emit("stage timings (small scenario)", render_span_tree(telemetry.tracer))
    emit("filter funnel (small scenario)", render_filter_funnel(telemetry.metrics))
