"""Observability bench: compact stage-aggregate snapshot + overhead gate.

Two claims, one committed artifact:

* **Trajectory snapshot** — runs the small scenario fully instrumented
  (profiling + event stream + flight recorder) and writes the **compact**
  aggregate snapshot (``schema: compact-aggregates-v1``) to
  ``BENCH_observability.json``: per-stage rollups and histogram summaries
  instead of the old multi-thousand-line span dump.  Each PR regenerates
  the file; ``repro bench check`` compares fresh runs against it.

* **Disabled-mode overhead** — telemetry off must cost (almost) nothing.
  The PR 5 clustering baseline (``BENCH_clustering.json``,
  ``runs.optimized_s``) was committed from this same container lineage;
  re-running that exact workload with telemetry *disabled* must land
  within :data:`OVERHEAD_TOLERANCE` of it.  A regression here means the
  observability layer leaked cost into the uninstrumented hot path.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_observability.py -s``.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

from repro.experiments.scenarios import scenario_by_name
from repro.obs import (
    COMPACT_SCHEMA,
    Telemetry,
    compact_snapshot,
    render_filter_funnel,
    render_profile,
    render_span_tree,
    write_compact_snapshot,
)

from benchmarks.conftest import emit

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_observability.json"
CLUSTERING_BASELINE_PATH = Path(__file__).parent / "BENCH_clustering.json"

#: Every stage that must appear in the snapshot for it to be useful.
PIPELINE_STAGES = (
    "topology",
    "deployment",
    "scan",
    "detect",
    "ping_campaign",
    "filters",
    "clustering",
)

#: Disabled-mode fraction the bare hot path may exceed the PR 5 baseline by.
#: Override with ``REPRO_BENCH_OVERHEAD_TOL`` (e.g. on noisy shared hosts).
OVERHEAD_TOLERANCE = float(os.environ.get("REPRO_BENCH_OVERHEAD_TOL", "0.02"))

#: Best-of repeats for the overhead timing.
REPEATS = 3


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _time_best(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def _clustering_workload(n_ips: int):
    """The exact PR 5 hot-path workload (see test_bench_clustering.py)."""
    from benchmarks.test_bench_clustering import XIS, _large_isp_columns
    from repro.clustering.sites import ClusteringConfig, ClusteringMemo, cluster_isp_offnets

    columns, ips = _large_isp_columns(n_ips)

    def bare_pass():
        memo = ClusteringMemo()
        return [
            cluster_isp_offnets(
                columns, ips, ClusteringConfig(xi=xi), memo=memo, memo_key="isp"
            ).labels
            for xi in XIS
        ]

    return bare_pass


def test_bench_observability_snapshot(tmp_path):
    smoke = _smoke()

    # -- instrumented scenario run: the committed trajectory snapshot -----------
    events_path = tmp_path / "events.jsonl"
    with Telemetry.capture(
        profile=True, stream=io.StringIO(), events=events_path
    ) as telemetry:
        study = scenario_by_name("small").run(telemetry=telemetry)
        assert study.telemetry is telemetry
        snapshot = compact_snapshot(telemetry, name="observability-small")

    assert snapshot["schema"] == COMPACT_SCHEMA
    for stage in PIPELINE_STAGES:
        assert stage in snapshot["stages"], f"stage {stage!r} missing from the trace"
        assert snapshot["stages"][stage]["cpu_ms"] >= 0.0  # profiled, not just timed
    assert snapshot["counters"]["filters.ips_considered"] > 0
    assert snapshot["counters"]["cluster.isps_analyzed"] > 0
    assert snapshot["flight"]["shards"] > 0, "flight recorder saw no shards"

    emit("stage timings (small scenario)", render_span_tree(telemetry.tracer))
    emit("resource profile (small scenario)", render_profile(telemetry))
    emit("filter funnel (small scenario)", render_filter_funnel(telemetry.metrics))
    emit("executor flights (small scenario)", telemetry.flight.render())

    # -- disabled-mode overhead vs the PR 5 clustering baseline ------------------
    baseline = json.loads(CLUSTERING_BASELINE_PATH.read_text(encoding="utf-8"))
    baseline_s = float(baseline["runs"]["optimized_s"])
    n_ips = int(baseline["workload"]["n_ips"])
    if smoke:
        # CI smoke: assert the structure, skip the timing and snapshot write.
        return
    bare_pass = _clustering_workload(n_ips)
    disabled_s = _time_best(bare_pass, REPEATS)
    overhead = disabled_s / baseline_s - 1.0

    emit(
        f"disabled-mode overhead (clustering hot path, {n_ips} IPs, best of {REPEATS})",
        f"PR 5 baseline {baseline_s:.3f} s -> bare now {disabled_s:.3f} s "
        f"({overhead:+.1%}, tolerance +{OVERHEAD_TOLERANCE:.0%})",
    )
    assert disabled_s <= baseline_s * (1.0 + OVERHEAD_TOLERANCE), (
        f"disabled-mode telemetry overhead {overhead:+.1%} exceeds "
        f"{OVERHEAD_TOLERANCE:.0%} vs the committed PR 5 hot-path baseline "
        f"({baseline_s:.3f} s); the null-object path is no longer free"
    )

    write_compact_snapshot(
        telemetry,
        SNAPSHOT_PATH,
        name="observability-small",
        extra={
            "overhead": {
                "baseline": "BENCH_clustering.json runs.optimized_s",
                "baseline_s": baseline_s,
                "disabled_s": round(disabled_s, 3),
                "overhead_fraction": round(overhead, 4),
                "tolerance": OVERHEAD_TOLERANCE,
            }
        },
    )
    written = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
    assert written["format"] == "repro-bench-v1" and written["schema"] == COMPACT_SCHEMA
