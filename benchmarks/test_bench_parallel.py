"""Parallel-execution bench: serial vs process vs persistent-pool wall time.

Runs the small scenario under the serial backend, the per-stage process
backend, and the persistent ``pool`` backend at 2 and 4 workers,
cross-checks that every run exports **byte-identical** archives, and
writes the timings to ``BENCH_parallel.json`` in the ``repro-bench-v1``
trajectory format.  Each run's flight-recorder summary rides along: per
worker utilization, queue-wait share, per-shard payload bytes (with the
shared-memory marker proving the zero-copy path engaged), and per-stage
pool identity/restarts — the *why* behind every wall time.

The JSON records the host's CPU count: the speedup assertion (pool
backend, 4 workers, >= ``TARGET_SPEEDUP_4W``) only arms when the hardware
can physically deliver parallelism (>= 4 usable cores); on smaller hosts
``hardware_limited`` is set and the numbers are still committed so the
trajectory stays honest about where they came from — with the payload
records standing in as proof that the fast path was exercised.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by the CI ``parallel-check``
job) runs a trimmed grid, skips the timing gate and the snapshot write,
and *asserts the optimization is structurally active*: campaign shard
payloads must ride shared memory and the pool backend must reuse one pool
across both fan-out stages.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_parallel.py -s``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import pytest

from repro._util import format_table
from repro.experiments.scenarios import scenario_by_name
from repro.io.archive import save_archive
from repro.obs import Telemetry
from repro.parallel import (
    ParallelConfig,
    process_backend_available,
    shared_memory_available,
    shutdown_pools,
)

from benchmarks.conftest import emit

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_parallel.json"

#: (backend, workers) grid the bench sweeps.
RUNS = (("serial", 1), ("process", 2), ("process", 4), ("pool", 2), ("pool", 4))

#: Trimmed grid for smoke mode: structure checks, not timings.
SMOKE_RUNS = (("serial", 1), ("pool", 2))

#: Wall-time speedup the 4-worker persistent-pool run must reach on
#: capable hardware.
TARGET_SPEEDUP_4W = 2.0


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _time_run(backend: str, workers: int, export_dir: Path) -> dict:
    telemetry = Telemetry.capture()
    parallel = ParallelConfig(backend=backend, workers=workers)
    started = time.perf_counter()
    study = scenario_by_name("small").run(telemetry=telemetry, parallel=parallel)
    total_s = time.perf_counter() - started
    save_archive(study, export_dir)
    digest = hashlib.sha256()
    for path in sorted(export_dir.iterdir()):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    campaign = telemetry.tracer.find("ping_campaign")
    clustering = telemetry.tracer.find("clustering")
    return {
        "backend": backend,
        # The *resolved* count (ParallelConfig resolves "auto" on
        # construction, so what lands here is what actually ran).
        "workers": parallel.workers,
        "total_s": round(total_s, 3),
        "campaign_s": round(campaign.duration_s, 3),
        "clustering_s": round(clustering.duration_s, 3),
        "parallel_stages_s": round(campaign.duration_s + clustering.duration_s, 3),
        "archive_sha256": digest.hexdigest(),
        # Flight-recorder forensics: per-worker utilization, queue-wait
        # share, payload bytes + shm markers, pool identity, stragglers.
        "flight": telemetry.flight.to_json(),
    }


def _assert_fast_path_active(run: dict) -> None:
    """The structural claims behind the numbers: shm engaged, pool reused."""
    flight = run["flight"]
    if shared_memory_available():
        payload = flight["payload"]
        assert payload["shm_shards"] > 0, (
            f"{run['backend']}/{run['workers']}w: no shard payload rode shared "
            "memory — the zero-copy fast path is not engaged"
        )
        # Reference-shaped payloads: even the largest submission must be
        # far below one campaign submatrix (tens of KiB at small scale).
        assert payload["max_bytes"] < 16 * 1024, (
            f"max shard payload {payload['max_bytes']}B looks value-shaped, "
            "not reference-shaped"
        )
    pools = flight["pools"]
    assert {"campaign", "clustering"} <= set(pools)
    if run["backend"] == "pool":
        assert pools["campaign"]["persistent"] and pools["clustering"]["persistent"]
        assert pools["campaign"]["pool"] == pools["clustering"]["pool"], (
            "pool backend built distinct pools per stage — persistence broken"
        )


def test_bench_parallel_snapshot(tmp_path):
    if not process_backend_available():
        pytest.skip("process executor backend unavailable on this host")

    grid = SMOKE_RUNS if _smoke() else RUNS
    try:
        runs = [
            _time_run(backend, workers, tmp_path / f"{backend}-{workers}")
            for backend, workers in grid
        ]
    finally:
        shutdown_pools()

    # Every run must have flight-recorded its shards, and every parallel
    # run must prove the fast path was structurally active.
    for run in runs:
        assert run["flight"]["shards"] > 0, (
            f"{run['backend']}/{run['workers']}w recorded no shard flights"
        )
        if run["backend"] != "serial":
            _assert_fast_path_active(run)

    # Differential cross-check: every backend/worker combination exported
    # the same bytes (the equivalence harness proves this per-file; here it
    # guards the benchmark itself against comparing different work).
    digests = {run["archive_sha256"] for run in runs}
    assert len(digests) == 1, "backends exported different artifacts"

    if _smoke():
        emit(
            "parallel bench smoke",
            "fast path active: shm payloads engaged, persistent pool reused "
            f"across stages ({len(runs)} runs, identical artifacts)",
        )
        return

    serial = runs[0]
    cpus = _usable_cpus()
    speedups = {
        f"speedup_{run['backend']}_{run['workers']}w": round(
            serial["parallel_stages_s"] / run["parallel_stages_s"], 3
        )
        for run in runs
        if run["backend"] != "serial"
    }
    # The headline number the gate below arms on.
    speedup_4w = speedups.get("speedup_pool_4w")
    snapshot = {
        "bench": "parallel-small",
        "format": "repro-bench-v1",
        "scenario": "small",
        "cpu_count": cpus,
        "identical_artifacts": True,
        "target_speedup_4w": TARGET_SPEEDUP_4W,
        "speedup_4w": speedup_4w,
        "hardware_limited": cpus < 4,
        "shared_memory_available": shared_memory_available(),
        "runs": [
            {key: value for key, value in run.items() if key != "archive_sha256"}
            for run in runs
        ],
        **speedups,
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    rows = [
        [run["backend"], run["workers"], run["total_s"], run["parallel_stages_s"]]
        for run in runs
    ]
    emit(
        f"parallel backend wall times ({cpus} usable CPUs)",
        format_table(["backend", "workers", "total s", "campaign+clustering s"], rows),
    )

    if cpus >= 4:
        assert speedup_4w >= TARGET_SPEEDUP_4W, (
            f"pool-backend 4-worker speedup {speedup_4w}x below "
            f"{TARGET_SPEEDUP_4W}x on a {cpus}-core host"
        )
