"""Parallel-execution bench: serial vs process-backend wall time.

Runs the small scenario under the serial backend and the process backend at
2 and 4 workers, cross-checks that all three runs export **byte-identical**
archives, and writes the timings to ``BENCH_parallel.json`` in the
``repro-bench-v1`` trajectory format.  The JSON records the host's CPU
count: the speedup assertion only arms when the hardware can physically
deliver parallelism (>= 4 usable cores); on smaller hosts the numbers are
still committed so the trajectory stays honest about where they came from.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_parallel.py -s``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import pytest

from repro._util import format_table
from repro.experiments.scenarios import scenario_by_name
from repro.io.archive import save_archive
from repro.obs import Telemetry
from repro.parallel import ParallelConfig, process_backend_available

from benchmarks.conftest import emit

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_parallel.json"

#: (backend, workers) grid the bench sweeps.
RUNS = (("serial", 1), ("process", 2), ("process", 4))

#: Wall-time speedup the 4-worker run must reach on capable hardware.
TARGET_SPEEDUP_4W = 1.5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _time_run(backend: str, workers: int, export_dir: Path) -> dict:
    telemetry = Telemetry.capture()
    parallel = ParallelConfig(backend=backend, workers=workers)
    started = time.perf_counter()
    study = scenario_by_name("small").run(telemetry=telemetry, parallel=parallel)
    total_s = time.perf_counter() - started
    save_archive(study, export_dir)
    digest = hashlib.sha256()
    for path in sorted(export_dir.iterdir()):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    campaign = telemetry.tracer.find("ping_campaign")
    clustering = telemetry.tracer.find("clustering")
    return {
        "backend": backend,
        "workers": workers,
        "total_s": round(total_s, 3),
        "campaign_s": round(campaign.duration_s, 3),
        "clustering_s": round(clustering.duration_s, 3),
        "parallel_stages_s": round(campaign.duration_s + clustering.duration_s, 3),
        "archive_sha256": digest.hexdigest(),
        # Flight-recorder forensics: per-worker utilization, queue-wait
        # share, stragglers — the *why* behind the wall times above.
        "flight": telemetry.flight.to_json(),
    }


def test_bench_parallel_snapshot(tmp_path):
    if not process_backend_available():
        pytest.skip("process executor backend unavailable on this host")

    runs = [
        _time_run(backend, workers, tmp_path / f"{backend}-{workers}")
        for backend, workers in RUNS
    ]

    # Every run must have flight-recorded its shards.
    for run in runs:
        assert run["flight"]["shards"] > 0, (
            f"{run['backend']}/{run['workers']}w recorded no shard flights"
        )

    # Differential cross-check: every backend/worker combination exported
    # the same bytes (the equivalence harness proves this per-file; here it
    # guards the benchmark itself against comparing different work).
    digests = {run["archive_sha256"] for run in runs}
    assert len(digests) == 1, "backends exported different artifacts"

    serial = runs[0]
    cpus = _usable_cpus()
    speedups = {
        f"speedup_{run['workers']}w": round(
            serial["parallel_stages_s"] / run["parallel_stages_s"], 3
        )
        for run in runs
        if run["backend"] == "process"
    }
    snapshot = {
        "bench": "parallel-small",
        "format": "repro-bench-v1",
        "scenario": "small",
        "cpu_count": cpus,
        "identical_artifacts": True,
        "target_speedup_4w": TARGET_SPEEDUP_4W,
        "hardware_limited": cpus < 4,
        "runs": [
            {key: value for key, value in run.items() if key != "archive_sha256"}
            for run in runs
        ],
        **speedups,
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    rows = [
        [run["backend"], run["workers"], run["total_s"], run["parallel_stages_s"]]
        for run in runs
    ]
    emit(
        f"parallel backend wall times ({cpus} usable CPUs)",
        format_table(["backend", "workers", "total s", "campaign+clustering s"], rows),
    )

    if cpus >= 4:
        assert snapshot["speedup_4w"] >= TARGET_SPEEDUP_4W, (
            f"4-worker speedup {snapshot['speedup_4w']}x below {TARGET_SPEEDUP_4W}x "
            f"on a {cpus}-core host"
        )
