"""Clustering hot-path bench: memoized distances, heap OPTICS, same bytes.

One large synthetic ISP (scaled past paper scale: 500+ offnet IPs measured
from 163 vantage points) clustered at both xi settings, three ways:

* **reference** — the kept unoptimized implementations: the per-pair
  ``trimmed_manhattan`` loop and the O(n²)-per-step reference OPTICS scan,
  recomputed for every xi.  This is the differential-harness baseline the
  acceptance criterion's >= 3x speedup is measured against.
* **unshared** — the optimized kernels (triangle-mirrored distance matrix,
  heap-frontier OPTICS) but no memoization: every xi recomputes both.
* **optimized** — the shipped pipeline path: one :class:`ClusteringMemo`
  serving all xi settings of the ISP.

All three must produce identical labels; the snapshot lands in
``BENCH_clustering.json``.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by the CI ``bench-smoke`` job)
shrinks the workload, skips the snapshot write, and — the point of the job —
fails if the optimized implementations are not actually active (env
kill-switch set, memo not reusing, or heap OPTICS not the default).

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_clustering.py -s``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro._util import format_table
from repro.clustering.distance import (
    pairwise_trimmed_manhattan_reference,
)
from repro.clustering.optics import active_optics_implementation, optics_order_reference
from repro.clustering.sites import ClusteringConfig, ClusteringMemo, cluster_isp_offnets
from repro.clustering.xi import extract_xi_clusters, split_clusters_on_spikes, xi_labels
from repro.obs import Telemetry

from benchmarks.conftest import emit

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_clustering.json"

#: Acceptance bar: the shipped path must beat the reference implementations
#: by at least this factor at the scaled workload.
MIN_SPEEDUP = 3.0

XIS = (0.1, 0.9)


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _large_isp_columns(n_ips: int, n_vps: int = 163, n_sites: int = 25, seed: int = 11):
    """Latency columns for one ISP hosting ``n_ips`` offnets in ``n_sites``
    facilities — same generative shape as the study's latency model (shared
    per-site base RTT plus small per-measurement noise, a few NaN holes)."""
    rng = np.random.default_rng(seed)
    site_base = rng.uniform(10.0, 150.0, size=(n_vps, n_sites))
    site_of = rng.integers(0, n_sites, size=n_ips)
    columns = site_base[:, site_of] + rng.normal(0.0, 0.05, size=(n_vps, n_ips))
    columns[rng.random((n_vps, n_ips)) < 0.03] = np.nan
    return columns, list(range(n_ips))


def _reference_labels(columns: np.ndarray, config: ClusteringConfig) -> np.ndarray:
    """The clustering tail driven by the two kept reference kernels."""
    n = columns.shape[1]
    distances = pairwise_trimmed_manhattan_reference(columns, config.trim_fraction)
    result = optics_order_reference(distances, config.min_pts)
    clusters = extract_xi_clusters(result.reachability, config.xi, config.min_pts)
    clusters = split_clusters_on_spikes(
        result.reachability, clusters, config.spike_factor, config.min_pts
    )
    labels = np.full(n, -1, dtype=int)
    labels[result.ordering] = xi_labels(n, clusters)
    return labels


def _time(callable_, repeats: int) -> tuple[float, object]:
    best, value = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        value = callable_()
        best = min(best, time.perf_counter() - started)
    return best, value


def test_bench_clustering_snapshot():
    smoke = _smoke()
    n_ips = 80 if smoke else 520
    repeats = 1 if smoke else 3
    columns, ips = _large_isp_columns(n_ips)

    # The CI smoke guard: the optimized path must actually be in force.
    assert active_optics_implementation() == "heap", (
        "REPRO_OPTICS_REFERENCE is set: the benchmark (and the pipeline) "
        "would silently run the unoptimized reference OPTICS"
    )

    def reference_pass():
        return [_reference_labels(columns, ClusteringConfig(xi=xi)) for xi in XIS]

    def unshared_pass():
        return [
            cluster_isp_offnets(columns, ips, ClusteringConfig(xi=xi)).labels for xi in XIS
        ]

    telemetry = Telemetry.capture()

    def optimized_pass():
        memo = ClusteringMemo()
        return [
            cluster_isp_offnets(
                columns, ips, ClusteringConfig(xi=xi), telemetry=telemetry,
                memo=memo, memo_key="isp",
            ).labels
            for xi in XIS
        ]

    optimized_s, optimized = _time(optimized_pass, repeats)
    unshared_s, unshared = _time(unshared_pass, repeats)
    reference_s, reference = _time(reference_pass, 1)

    # Identical artifacts: every variant assigns every IP the same site.
    for xi, ref, fast, memoized in zip(XIS, reference, unshared, optimized):
        assert np.array_equal(ref, fast), f"unshared labels diverged at xi={xi}"
        assert np.array_equal(ref, memoized), f"memoized labels diverged at xi={xi}"

    # Smoke guard, continued: the memo must have reused, and nothing may
    # have fallen back to the reference OPTICS loop.
    metrics = telemetry.metrics
    assert metrics.counter("cluster.distance_matrices_reused") >= len(XIS) - 1
    assert metrics.counter("cluster.optics_reused") >= len(XIS) - 1
    assert metrics.counter("cluster.optics_reference_runs") == 0

    speedup_vs_reference = reference_s / optimized_s
    speedup_vs_unshared = unshared_s / optimized_s
    rows = [
        ["reference (per-pair loop + scan OPTICS)", round(reference_s, 3), "baseline"],
        ["unshared (fast kernels, no memo)", round(unshared_s, 3), f"{reference_s / unshared_s:.1f}x"],
        ["optimized (memoized, shipped path)", round(optimized_s, 3), f"{speedup_vs_reference:.1f}x"],
    ]
    emit(
        f"clustering hot path ({n_ips} IPs x 163 VPs, xis={XIS}, best of {repeats})",
        format_table(["variant", "wall s", "vs reference"], rows),
    )

    if smoke:
        return  # tiny workload: timings are noise, snapshot stays untouched

    assert speedup_vs_reference >= MIN_SPEEDUP, (
        f"optimized clustering is only {speedup_vs_reference:.2f}x the reference "
        f"(need >= {MIN_SPEEDUP}x at {n_ips} IPs)"
    )
    snapshot = {
        "bench": "clustering-hot-path",
        "format": "repro-bench-v1",
        "workload": {"n_ips": n_ips, "n_vps": 163, "n_sites": 25, "xis": list(XIS)},
        "identical_labels": True,
        "min_speedup": MIN_SPEEDUP,
        "runs": {
            "reference_s": round(reference_s, 3),
            "unshared_s": round(unshared_s, 3),
            "optimized_s": round(optimized_s, 3),
        },
        "speedup_vs_reference": round(speedup_vs_reference, 2),
        "speedup_vs_unshared": round(speedup_vs_unshared, 2),
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
