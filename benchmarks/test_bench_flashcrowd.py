"""FC — §3.3's intra-facility surge mechanism: colocated vs dispersed.

A flash crowd / DoS on one hypergiant saturates the shared facility
uplink and throttles *the other* hypergiants in the building — the
collateral that cannot happen when deployments are dispersed.
"""

import pytest

from benchmarks.conftest import emit
from repro._util import format_table
from repro.capacity.demand import DemandModel
from repro.capacity.flashcrowd import FlashCrowdEvent, colocated_vs_dispersed
from repro.experiments.section43_collateral import most_shared_facility


@pytest.mark.benchmark(group="flashcrowd")
def test_flash_crowd_colocated_vs_dispersed(benchmark, default_study):
    state = default_study.history.state("2023")
    facility_id, hypergiants = most_shared_facility(default_study)
    isp = next(
        s.isp for s in state.servers if s.facility.facility_id == facility_id
    )
    demand = DemandModel(traffic=default_study.traffic)
    steady = {hg: demand.hypergiant_peak_gbps(isp, hg) for hg in hypergiants}
    event = FlashCrowdEvent("Netflix" if "Netflix" in steady else sorted(steady)[0], peak_multiplier=4.0)

    colocated, dispersed = benchmark.pedantic(
        colocated_vs_dispersed, args=(steady, event), rounds=1, iterations=1
    )
    rows = []
    for name in sorted(steady):
        if name == event.target_hypergiant:
            continue
        rows.append(
            [
                name,
                f"{100 * colocated.bystander_loss_fraction(name):.1f}%",
                f"{colocated.degraded_minutes(name)} min",
                "0.0% / 0 min",
            ]
        )
    emit(
        f"Flash crowd on {event.target_hypergiant} (x{event.peak_multiplier}) at the most-shared "
        f"facility (uplink peak utilization x{colocated.peak_utilization:.2f})",
        format_table(["bystander", "colocated loss", "colocated degraded", "dispersed"], rows),
    )
    for name in sorted(steady):
        if name != event.target_hypergiant:
            assert colocated.bystander_loss_fraction(name) > 0.0
