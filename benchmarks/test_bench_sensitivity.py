"""Seed sensitivity: every headline metric across an unseen seed set.

Not a paper artifact — this is the robustness evidence for the synthetic
substrate: the reproduced shapes are properties of the model, not of one
lucky seed.
"""

import pytest

from benchmarks.conftest import emit
from repro.sensitivity import run_sensitivity


@pytest.mark.benchmark(group="sensitivity")
def test_seed_sensitivity(benchmark):
    report = benchmark.pedantic(
        run_sensitivity, kwargs={"seeds": (11, 22, 33, 44, 55)}, rounds=1, iterations=1
    )
    emit("Seed sensitivity of the headline metrics", report.render())
    assert report.all_within_bands
    # The growth percentages are tight by construction; the capacity
    # metrics must also be stable.
    assert report.std("COVID offnet change") < 0.05
    assert report.std("COVID interdomain ratio") < 0.3
