"""Resilience-layer bench: injection must be free when off, cheap when on.

Three timed runs of the small scenario:

* **clean** — no faults, no resilience: the baseline every prior PR's
  numbers were measured against.  The acceptance bar is that wiring the
  injection points added <2% to this path (the hooks are a ``None`` check).
* **armed** — the resilience layer configured but a plan that never fires
  (rate 0): the cost of carrying supervision without faults.
* **chaos** — every campaign shard crashes once and every clustering
  shard errors once, all retried to success: the measured retry overhead
  quoted in ``EXPERIMENTS.md``.

All three runs must export byte-identical archives (transient faults are
artifact-inert); the snapshot lands in ``BENCH_resilience.json``.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_resilience.py -s``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from pathlib import Path

from repro._util import format_table
from repro.core.pipeline import run_study
from repro.experiments.scenarios import scenario_by_name
from repro.faults import FaultPlan, FaultSpec
from repro.io.archive import save_archive
from repro.resilience import ResilienceConfig

from benchmarks.conftest import emit

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_resilience.json"

#: Clean-path overhead budget: the injected hooks may not cost more than
#: this fraction versus the recorded pre-resilience baseline.
CLEAN_OVERHEAD_BUDGET = 0.02

CHAOS_PLAN = FaultPlan(
    seed=99,
    specs=(
        FaultSpec(site="campaign.shard", kind="crash", rate=1.0, fail_attempts=1),
        FaultSpec(site="clustering.shard", kind="error", rate=1.0, fail_attempts=1),
    ),
)

#: Armed but silent: supervision on, zero faults fire.
SILENT_PLAN = FaultPlan(
    seed=99, specs=(FaultSpec(site="campaign.shard", kind="error", rate=0.0, fail_attempts=1),)
)


def _time_run(faults, resilience, export_dir: Path, repeats: int = 3) -> dict:
    base = scenario_by_name("small").config
    config = dataclasses.replace(base, faults=faults, resilience=resilience)
    best = float("inf")
    study = None
    for _ in range(repeats):
        started = time.perf_counter()
        study = run_study(config)
        best = min(best, time.perf_counter() - started)
    save_archive(study, export_dir)
    digest = hashlib.sha256()
    for path in sorted(export_dir.iterdir()):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return {"total_s": round(best, 3), "archive_sha256": digest.hexdigest()}


def test_bench_resilience_snapshot(tmp_path):
    # Warm-up: pay one-time import/allocator costs outside the timings.
    run_study(scenario_by_name("small").config)
    clean = _time_run(None, None, tmp_path / "clean")
    armed = _time_run(SILENT_PLAN, ResilienceConfig(), tmp_path / "armed")
    chaos = _time_run(CHAOS_PLAN, ResilienceConfig(), tmp_path / "chaos")

    digests = {run["archive_sha256"] for run in (clean, armed, chaos)}
    assert len(digests) == 1, "fault-injected runs exported different artifacts"

    armed_overhead = armed["total_s"] / clean["total_s"] - 1.0
    chaos_overhead = chaos["total_s"] / clean["total_s"] - 1.0
    snapshot = {
        "bench": "resilience-small",
        "format": "repro-bench-v1",
        "scenario": "small",
        "identical_artifacts": True,
        "clean_overhead_budget": CLEAN_OVERHEAD_BUDGET,
        "runs": {
            "clean_s": clean["total_s"],
            "armed_silent_s": armed["total_s"],
            "chaos_transient_s": chaos["total_s"],
        },
        "armed_overhead_fraction": round(armed_overhead, 4),
        "chaos_retry_overhead_fraction": round(chaos_overhead, 4),
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    rows = [
        ["clean (no faults, no resilience)", clean["total_s"], "baseline"],
        ["armed (supervision on, 0 faults)", armed["total_s"], f"{100 * armed_overhead:+.1f}%"],
        ["chaos (every shard fails once)", chaos["total_s"], f"{100 * chaos_overhead:+.1f}%"],
    ]
    emit(
        "resilience overhead (small scenario, best of 3)",
        format_table(["run", "wall s", "vs clean"], rows),
    )

    # Supervision without firing faults should be near-free; the explicit
    # <2% clean-path bar versus the PR-3 baseline is checked by comparing
    # BENCH_parallel.json's serial time out-of-band (hardware varies too
    # much for a same-file assertion), but armed-vs-clean on identical
    # hardware must stay inside a loose multiple of the budget.
    assert armed_overhead < 5 * CLEAN_OVERHEAD_BUDGET, (
        f"armed-but-silent supervision cost {100 * armed_overhead:.1f}% "
        f"(budget {100 * CLEAN_OVERHEAD_BUDGET:.0f}%)"
    )
