"""S6 — the discussion's mitigation directions, quantified.

Isolation policies on shared links (fair-share vs background protection vs
per-hypergiant reserved slices) under the flagship facility outage, and the
PNI upgrade cycle at several negotiation lead times (§4.2.2's "months or
even ... impossible").
"""

import pytest

from benchmarks.conftest import emit
from repro.capacity.isolation import IsolationPolicy
from repro.experiments.section6_mitigations import run_section6


@pytest.mark.benchmark(group="mitigations")
def test_section6_mitigations(benchmark, default_study):
    result = benchmark.pedantic(run_section6, args=(default_study,), rounds=1, iterations=1)
    emit("§6: isolation policies and upgrade dynamics", result.render())
    fair = result.outcome(IsolationPolicy.FAIR_SHARE)
    protected = result.outcome(IsolationPolicy.PROTECT_BACKGROUND)
    assert protected.collateral_gbph < fair.collateral_gbph or fair.collateral_gbph == 0
    assert (
        result.upgrade_sweeps[12].overloaded_link_month_fraction()
        >= result.upgrade_sweeps[2].overloaded_link_month_fraction()
    )
    # §4.2.2's flavour: with realistic lead times, a persistent share of
    # PNIs spends time above capacity.
    assert result.upgrade_sweeps[6].overloaded_link_month_fraction() > 0.05
