"""S43 — regenerate §4.3: collateral damage of correlated failures.

The paper argues (qualitatively) that colocated offnets failing over to the
same shared IXP/transit paths hurt other services; this bench quantifies it
with the flagship facility-outage and bad-update scenarios.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.section43_collateral import run_section43


@pytest.mark.benchmark(group="section43")
def test_section43_collateral(benchmark, default_study):
    result = benchmark.pedantic(
        run_section43, args=(default_study,), kwargs={"sample": 120}, rounds=1, iterations=1
    )
    emit("§4.3: correlated-failure scenarios", result.render())
    assert len(result.outage_hypergiants) >= 3
    assert result.facility_outage.total_collateral_gbph > 0
    assert result.facility_outage.affected_users() > 0
    assert result.bad_update.aggregate_interdomain_ratio() > 1.0
