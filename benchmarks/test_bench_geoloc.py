"""CBG — latency-based geolocation of inferred clusters (extension).

Not a paper table; an extension of Appendix A's speed-of-light reasoning:
the same constraints that discard impossible IPs can *localise* the
clusters.  The bench reports the error distribution against ground truth
— real CBG deployments achieve median errors in the 100-300 km range,
which is what the substrate reproduces.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.geoloc import geolocate_clusters


@pytest.mark.benchmark(group="geoloc")
def test_cluster_geolocation(benchmark, default_study):
    state = default_study.history.state("2023")
    clusters, truths = [], []
    for clustering in list(default_study.clusterings[0.9].values())[:80]:
        for cluster in clustering.clusters:
            facility = state.server_at(cluster[0]).facility
            clusters.append(cluster)
            truths.append((facility.lat, facility.lon))

    estimates = benchmark.pedantic(
        geolocate_clusters,
        args=(clusters, default_study.matrix, default_study.vantage_points),
        rounds=1,
        iterations=1,
    )
    errors_km = sorted(
        estimates[i].error_m(*truths[i]) / 1000.0 for i in estimates if estimates[i] is not None
    )
    median = float(np.median(errors_km))
    p90 = float(np.percentile(errors_km, 90))
    emit(
        "CBG cluster geolocation vs ground truth",
        f"{len(errors_km)} clusters: median error {median:.0f} km, p90 {p90:.0f} km "
        "(real-world CBG: ~100-300 km medians)",
    )
    assert median < 500.0
