"""SB — §3.2's "impossible to know which users are served from which
offnets": mapping coverage across steering eras.

Paper account: the 2013 DNS technique worked for Google then; Google now
steers via embedded URLs (as do Netflix and Meta), and Akamai gates ECS
behind a resolver allowlist.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.steering_blindness import run_steering_blindness


@pytest.mark.benchmark(group="steering")
def test_steering_blindness(benchmark, default_study):
    result = benchmark.pedantic(run_steering_blindness, args=(default_study,), rounds=1, iterations=1)
    emit("§3.2: client-mapping coverage across steering eras", result.render())
    assert result.coverage("Google", "legacy_dns") > 0.95
    assert result.coverage("Google", "frontend") == 0.0
    assert result.coverage("Netflix", "frontend") == 0.0
    assert result.coverage("Meta", "frontend") == 0.0
    assert result.coverage("Akamai", "ecs_allowlist") < 0.5
