"""F2 — regenerate Figure 2 (CCDF of single-facility traffic share).

Paper: 76 % of users in ISPs with offnets, 56 % analyzable; 71-82 % of
covered users have a facility able to serve >= 25 % of their traffic;
18-31 % have a facility hosting all four hypergiants (52 % of traffic).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.experiments.figure2 import run_figure2
from repro.viz import render_ccdf


@pytest.mark.benchmark(group="figure2")
def test_figure2_concentration(benchmark, default_study):
    result = benchmark(run_figure2, default_study)
    emit("Figure 2: headline statistics", result.render())
    # The actual figure: both CCDF curves on one plot.
    series = {f"xi={xi}": result.ccdf(xi) for xi in sorted(result.concentrations)}
    emit(
        "Figure 2: CCDF of per-user single-facility traffic share",
        render_ccdf(
            series,
            x_label="estimated fraction of traffic served from one facility",
            y_label="CCDF of users in ISPs with offnets",
            x_range=(0.0, 1.0),
        ),
    )
    assert 0.55 < result.coverage["hosting"] < 0.9
    low, high = result.share25_range()
    assert high > 0.6
    assert result.four_hg_range()[1] > 0.03
