"""Benchmark fixtures: the default-scale study, built once per session.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated paper tables alongside the timings.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import Study
from repro.experiments.scenarios import DEFAULT_SCENARIO, cached_study


@pytest.fixture(scope="session")
def default_study() -> Study:
    """The default-scale study (700 access ISPs, 163 vantage points)."""
    return cached_study(DEFAULT_SCENARIO.name)


def emit(title: str, body: str) -> None:
    """Print a regenerated paper artifact under a banner."""
    print(f"\n===== {title} =====\n{body}")
