"""S41 — regenerate §4.1: single-site fractions and the COVID experiment.

Paper: 75.3-91.2 % of ISPs have a single Netflix site (similar large
fractions for the others); and under the 1.58x lockdown surge, offnet
traffic rose only ~20 % while interdomain more than doubled.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.section41_capacity import run_section41


@pytest.mark.benchmark(group="section41")
def test_section41_capacity(benchmark, default_study):
    result = benchmark.pedantic(
        run_section41, args=(default_study,), kwargs={"covid_sample": 120}, rounds=1, iterations=1
    )
    emit("§4.1: single-site fractions and the COVID surge", result.render())
    for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
        assert result.single_site_range(hypergiant)[1] > 0.4
    covid = result.covid
    assert 0.05 < covid.offnet_change < 0.40
    assert covid.interdomain_ratio > 2.0
    assert 0.55 < covid.baseline_offnet_share < 0.85
