"""Accuracy bench: ground-truth scorecard baselines + evasion degradation.

Two claims, one committed artifact:

* **Accuracy trajectory** — scores the honest ``small`` scenario against
  ground truth (:func:`repro.eval.build_scorecard`) and writes the
  measured numbers plus regress-fail floors (measured − slack) to
  ``BENCH_accuracy.json``.  ``repro eval --baseline`` and the tier-1 gate
  test (``tests/test_eval.py``) compare fresh runs against it.

* **Evasion degradation** — each adversarial certificate-evasion variant
  (rotating SANs, shared wildcard, cert-less QUIC at 30 %) must *strictly
  lower* 2023 detection recall vs the honest baseline, and the degraded
  scorecards are committed alongside for the record.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_accuracy.py -s``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.eval import accuracy_baseline_document, build_scorecard, compare_to_floors, derive_floors
from repro.experiments.evasion import run_evasion_impact
from repro.experiments.scenarios import EVASION_SCENARIOS, cached_study

from benchmarks.conftest import emit

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_accuracy.json"


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def test_bench_accuracy_baseline():
    baseline = build_scorecard(cached_study("small"), scenario="small")
    emit("inference accuracy (small scenario)", baseline.render())

    # The floors must hold on the very scorecard they were derived from.
    floors = derive_floors(baseline)
    self_check = compare_to_floors(floors, baseline, SNAPSHOT_PATH, "small")
    assert self_check.passed, self_check.render()

    if _smoke():
        # CI smoke: structure only — skip the evasion variants and the write.
        return

    evasion = {
        scenario.name: build_scorecard(cached_study(scenario), scenario=scenario.name)
        for scenario in EVASION_SCENARIOS
    }
    baseline_recall = baseline.detection["2023"].recall
    for name, degraded in evasion.items():
        recall = degraded.detection["2023"].recall
        assert recall < baseline_recall, (
            f"{name} should strictly lower 2023 detection recall "
            f"({recall:.4f} vs honest {baseline_recall:.4f})"
        )

    emit("evasion impact (small scenario variants)", run_evasion_impact().render())

    document = accuracy_baseline_document(baseline, evasion=evasion)
    SNAPSHOT_PATH.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    written = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
    assert written["format"] == "repro-accuracy-v1" and written["floors"]
