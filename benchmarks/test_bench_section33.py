"""S33 — §3.3's correlated risk as joint-outage inflation.

"Risks become correlated when multiple hypergiants are colocated": the
joint-outage probability of a service pair at a colocated facility is the
single-facility outage probability itself, orders of magnitude above the
independent-failure baseline.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.correlation import build_correlation_report


@pytest.mark.benchmark(group="section33")
def test_section33_correlated_risk(benchmark, default_study):
    state = default_study.history.state("2023")
    report = benchmark.pedantic(
        build_correlation_report,
        args=(state, default_study.population),
        rounds=1,
        iterations=1,
    )
    emit("§3.3: joint-outage inflation per service pair", report.render())
    worst = report.worst_pairs(5)
    rows = "\n".join(
        f"  ASN {e.isp_asn}: {' + '.join(e.pair)} joint P(out)={e.joint_outage_probability:.1e} "
        f"({e.users:,} users)"
        for e in worst
    )
    emit("§3.3: highest-exposure pairs", rows)
    # Colocation must show up as massive inflation over independence.
    assert report.mean_correlation_factor() > 100.0
    # Fully colocated single-facility pairs hit the shared-fate ceiling.
    ceiling = report.facility_outage_probability
    assert any(e.joint_outage_probability == pytest.approx(ceiling) for e in report.exposures)
