"""Longitudinal trend (§3.1 via the SIGCOMM'21 curves): cohosting rises.

"ISPs tended to host more hypergiants over time ... multi-hypergiant
hosting will continue to increase over time."  The 2017-2023 epoch series
regenerates the trend the paper extrapolates from.
"""

import pytest

from benchmarks.conftest import emit
from repro._util import format_table
from repro.deployment.growth import build_epoch_series


@pytest.mark.benchmark(group="longitudinal")
def test_longitudinal_cohosting(benchmark, default_study):
    series = benchmark.pedantic(
        build_epoch_series, args=(default_study.internet,), kwargs={"seed": 3}, rounds=1, iterations=1
    )
    rows = []
    cohosting_by_epoch = []
    for epoch in sorted(series.epochs):
        state = series.state(epoch)
        hosting = state.hosting_isps()
        at_least_2 = sum(1 for isp in hosting if len(state.hypergiants_in(isp)) >= 2)
        cohosting_by_epoch.append(at_least_2)
        rows.append(
            [epoch]
            + [len(state.isps_hosting(hg)) for hg in ("Google", "Netflix", "Meta", "Akamai")]
            + [at_least_2]
        )
    emit(
        "Longitudinal footprint & cohosting (2017-2023)",
        format_table(["epoch", "Google", "Netflix", "Meta", "Akamai", "ISPs >=2 HGs"], rows),
    )
    assert cohosting_by_epoch == sorted(cohosting_by_epoch)
    assert cohosting_by_epoch[-1] > 1.3 * cohosting_by_epoch[0]
