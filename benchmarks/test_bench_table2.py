"""T2 — regenerate Table 2 (colocation buckets per hypergiant and xi).

Paper shape: colocation widespread everywhere; xi = 0.9 reports more full
colocation than xi = 0.1; most ISPs colocate at least some offnets.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.colocation import ColocationBucket
from repro.experiments.table2 import run_table2


@pytest.mark.benchmark(group="table2")
def test_table2_colocation(benchmark, default_study):
    result = benchmark.pedantic(run_table2, args=(default_study,), rounds=1, iterations=1)
    emit("Table 2: % offnets colocated with another hypergiant", result.render())
    for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
        for xi in (0.1, 0.9):
            table = result.tables[xi]
            assert table.percentage(hypergiant, ColocationBucket.NONE) < 0.3
        assert result.majority_colocation(hypergiant, 0.9) > 0.5
