"""T1 — regenerate Table 1 (offnet footprint growth, 2021 vs 2023).

Paper: Google +23.2 %, Netflix +37.4 %, Meta +16.9 %, Akamai +0.0 %.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.table1 import PAPER_GROWTH_PERCENT, run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_growth(benchmark, default_study):
    result = benchmark(run_table1, default_study)
    emit("Table 1: # of ISPs hosting offnets (measured vs paper growth)", result.render())
    assert result.growth_ranking() == sorted(
        PAPER_GROWTH_PERCENT, key=lambda hg: -PAPER_GROWTH_PERCENT[hg]
    )
    for hypergiant, paper_value in PAPER_GROWTH_PERCENT.items():
        assert result.growth_percent(hypergiant) == pytest.approx(paper_value, abs=4.0)
