"""Timeline bench: incremental recomputation vs full rerun.

Runs the pinned timeline workload (:func:`repro.bench.fresh_timeline_snapshot`)
— a six-quarter monotone timeline computed as a full uncached series and
as an incremental series against a warm stage store — cross-checks that
the two produce **byte-identical** rows, asserts the newest epoch's
incremental computation beats its cold computation by the committed
speedup floor, and writes the timings plus per-stage cache hit counts to
``BENCH_timeline.json`` (consumed by ``repro bench check``).

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_timeline.py -s``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro._util import format_table
from repro.bench import TIMELINE_TARGET_SPEEDUP, fresh_timeline_snapshot

from benchmarks.conftest import emit

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_timeline.json"


@pytest.mark.timeline
def test_bench_timeline_snapshot():
    snapshot = fresh_timeline_snapshot()

    assert snapshot["identical_rows"], "incremental rows diverged from the full rerun"

    counters = snapshot["counters"]
    # Cross-epoch reuse must actually fire: under monotone growth most
    # deployments and many ISP offnet sets are unchanged quarter over
    # quarter, so the detect and cluster caches see real hits.
    assert counters.get("detect.hits", 0) > 0, "no detect-stage reuse across epochs"
    assert counters.get("cluster.hits", 0) > 0, "no cluster-stage reuse across epochs"
    # A cluster hit short-circuits the measure stage entirely, so there
    # must be fewer measure computations than cluster lookups.
    assert counters.get("measure.misses", 0) <= counters.get("cluster.misses", 1)

    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    rows = [[run["leg"], run["seconds"]] for run in snapshot["runs"]]
    emit(
        f"timeline incremental-vs-full timings "
        f"({snapshot['n_quarters']} quarters, speedup {snapshot['incremental_speedup']}x)",
        format_table(["leg", "seconds"], rows)
        + "\n"
        + format_table(
            ["counter", "value"], [[name, counters[name]] for name in sorted(counters)]
        ),
    )

    assert snapshot["incremental_speedup"] >= TIMELINE_TARGET_SPEEDUP, (
        f"incremental newest-epoch computation only {snapshot['incremental_speedup']}x "
        f"faster than cold (floor {TIMELINE_TARGET_SPEEDUP}x)"
    )
