"""CE — §2.1's offnet fractions, derived as emergent cache hit ratios.

The paper's constants — offnets serve 80 % of Google traffic, 95 % of
Netflix, 86 % of Meta, 75 % of Akamai — reproduced as LRU byte hit ratios
over per-hypergiant Zipf catalogs, plus the policy comparison.
"""

import pytest

from benchmarks.conftest import emit
from repro.deployment.hypergiants import profile_by_name
from repro.experiments.cache_emergence import run_cache_emergence


@pytest.mark.benchmark(group="cache")
def test_cache_emergence(benchmark):
    result = benchmark.pedantic(run_cache_emergence, rounds=1, iterations=1)
    emit("§2.1 offnet fractions as emergent byte hit ratios", result.render())
    for hypergiant, sim in result.results.items():
        target = profile_by_name(hypergiant).offnet_serve_fraction
        assert sim.byte_hit_ratio == pytest.approx(target, abs=0.05)
    # The ordering the paper reports: Netflix > Meta > Google > Akamai.
    ratios = {hg: sim.byte_hit_ratio for hg, sim in result.results.items()}
    assert ratios["Netflix"] > ratios["Meta"] > ratios["Google"] > ratios["Akamai"]
