"""Ablations of the design choices DESIGN.md calls out.

Each ablation perturbs one methodological knob and prints how the headline
result moves:

* OPTICS xi steepness (the paper's own 0.1 / 0.9 uncertainty bound),
* the trimmed-distance fraction (paper: drop the worst 20 % of vantage
  points per pair),
* OPTICS n_min,
* the ping aggregation statistic (second-smallest vs min vs median),
* the fingerprint edition (2021 rules on the 2023 scan: the evasions),
* the spillover offnet operating point.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro._util import format_table
from repro.clustering.sites import ClusteringConfig, cluster_isp_offnets, rand_index
from repro.core.colocation import ColocationBucket, build_colocation_table
from repro.experiments.section41_capacity import run_covid_experiment
from repro.scan.detection import detect_offnets
from repro.scan.fingerprints import fingerprint_rules


def _clustering_inputs(study, max_isps=40):
    state = study.history.state("2023")
    for asn in study.campaign.analyzable_isp_asns[:max_isps]:
        ips = study.campaign.ips_by_isp[asn]
        truth_map = {}
        truth = np.array(
            [
                truth_map.setdefault(state.server_at(ip).facility.facility_id, len(truth_map))
                for ip in ips
            ]
        )
        yield asn, ips, study.matrix.submatrix(ips), truth


def _mean_rand(study, config: ClusteringConfig, max_isps=40) -> float:
    scores = [
        rand_index(cluster_isp_offnets(columns, ips, config).labels, truth)
        for _asn, ips, columns, truth in _clustering_inputs(study, max_isps)
    ]
    return float(np.mean(scores))


@pytest.mark.benchmark(group="ablations")
def test_ablation_xi_sweep(benchmark, default_study):
    def sweep():
        return {
            xi: _mean_rand(default_study, ClusteringConfig(xi=xi))
            for xi in (0.05, 0.1, 0.3, 0.5, 0.7, 0.9)
        }

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"{xi}", f"{score:.3f}"] for xi, score in scores.items()]
    emit("Ablation: xi vs clustering accuracy (Rand index)", format_table(["xi", "rand"], rows))
    assert scores[0.9] > 0.8


@pytest.mark.benchmark(group="ablations")
def test_ablation_trim_fraction(benchmark, default_study):
    def sweep():
        return {
            trim: _mean_rand(default_study, ClusteringConfig(xi=0.9, trim_fraction=trim), max_isps=25)
            for trim in (0.0, 0.1, 0.2, 0.4)
        }

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"{trim}", f"{score:.3f}"] for trim, score in scores.items()]
    emit("Ablation: trimmed-distance fraction (paper: 0.2)", format_table(["trim", "rand"], rows))
    assert scores[0.2] > 0.75


@pytest.mark.benchmark(group="ablations")
def test_ablation_min_pts(benchmark, default_study):
    def sweep():
        return {
            min_pts: _mean_rand(default_study, ClusteringConfig(xi=0.9, min_pts=min_pts), max_isps=25)
            for min_pts in (2, 3, 5)
        }

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"{k}", f"{v:.3f}"] for k, v in scores.items()]
    emit("Ablation: OPTICS n_min (paper: 2)", format_table(["n_min", "rand"], rows))
    assert scores[2] > 0.75


@pytest.mark.benchmark(group="ablations")
def test_ablation_fingerprint_editions(benchmark, default_study):
    scan = default_study.scans["2023"]

    def detect_both():
        return {
            edition: detect_offnets(default_study.internet, scan, fingerprint_rules(edition))
            for edition in ("2021", "2023")
        }

    inventories = benchmark.pedantic(detect_both, rounds=1, iterations=1)
    rows = []
    for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
        rows.append(
            [
                hypergiant,
                inventories["2021"].isp_count(hypergiant),
                inventories["2023"].isp_count(hypergiant),
            ]
        )
    emit(
        "Ablation: 2021 vs 2023 fingerprint rules on the 2023 scan "
        "(the paper's motivating evasions)",
        format_table(["Hypergiant", "2021 rules", "2023 rules"], rows),
    )
    # Google and Meta evade the 2021 rules entirely.
    assert inventories["2021"].isp_count("Google") == 0
    assert inventories["2021"].isp_count("Meta") == 0
    assert inventories["2023"].isp_count("Google") > 0


@pytest.mark.benchmark(group="ablations")
def test_ablation_colocation_vs_xi(benchmark, default_study):
    def table_for(xi):
        clusterings = {
            asn: cluster_isp_offnets(columns, ips, ClusteringConfig(xi=xi))
            for asn, ips, columns, _ in _clustering_inputs(default_study, max_isps=60)
        }
        return build_colocation_table(
            xi,
            clusterings,
            default_study.hypergiant_of_ip,
            {
                asn: default_study.hypergiants_by_isp[asn]
                for asn in clusterings
                if asn in default_study.hypergiants_by_isp
            },
        )

    def sweep():
        return {xi: table_for(xi) for xi in (0.1, 0.5, 0.9)}

    tables = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for xi, table in tables.items():
        for hypergiant in ("Google", "Netflix"):
            rows.append(
                [f"{xi}", hypergiant, f"{100 * table.percentage(hypergiant, ColocationBucket.FULL):.0f}%"]
            )
    emit("Ablation: full-colocation bucket vs xi", format_table(["xi", "HG", "100% bucket"], rows))


@pytest.mark.benchmark(group="ablations")
def test_ablation_covid_operating_point(benchmark, default_study):
    def sweep():
        return {
            headroom: run_covid_experiment(
                default_study, offnet_headroom=headroom, sample=60
            )
            for headroom in (0.5, 0.62, 0.8, 1.2)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            f"{headroom}",
            f"{100 * result.baseline_offnet_share:.0f}%",
            f"{100 * result.offnet_change:+.0f}%",
            f"x{result.interdomain_ratio:.2f}",
        ]
        for headroom, result in results.items()
    ]
    emit(
        "Ablation: offnet capacity headroom vs COVID-surge outcome "
        "(paper: baseline 63%, offnet +20%, interdomain >2x)",
        format_table(["headroom", "baseline offnet", "offnet change", "interdomain"], rows),
    )
    # Baseline offnet share grows monotonically with provisioned headroom.
    shares = [results[h].baseline_offnet_share for h in (0.5, 0.62, 0.8, 1.2)]
    assert shares == sorted(shares)
    # Every constrained setting shows the paper's signature: offnet growth
    # far below the 58% surge while interdomain at least doubles.
    for headroom in (0.5, 0.62, 0.8):
        assert results[headroom].offnet_change < 0.45
        assert results[headroom].interdomain_ratio > 1.8


@pytest.mark.benchmark(group="ablations")
def test_ablation_ping_aggregation(benchmark, default_study):
    """Second-smallest-of-8 vs plain min vs median (Appendix A's choice)."""
    from repro.clustering.distance import pairwise_trimmed_manhattan
    from repro.mlab.matrix import LatencyCampaignConfig, measure_offnets
    from repro.mlab.pings import PingConfig
    from repro.mlab.vantage import build_vantage_points

    state = default_study.history.state("2023")
    vps = build_vantage_points(default_study.internet.world, 40, seed=3)
    asns = default_study.campaign.analyzable_isp_asns[:15]

    def accuracy(aggregation: str) -> float:
        scores = []
        for asn in asns:
            ips = default_study.campaign.ips_by_isp[asn]
            config = LatencyCampaignConfig(
                ping=PingConfig(aggregation=aggregation),
                unresponsive_ip_fraction=0.0,
                split_location_fraction=0.0,
                lossy_isp_fraction=0.0,
            )
            matrix = measure_offnets(default_study.internet, state, ips, vps, config, seed=4)
            clustering = cluster_isp_offnets(matrix.submatrix(ips), ips, ClusteringConfig(xi=0.9))
            truth_map = {}
            truth = np.array(
                [
                    truth_map.setdefault(state.server_at(ip).facility.facility_id, len(truth_map))
                    for ip in ips
                ]
            )
            scores.append(rand_index(clustering.labels, truth))
        return float(np.mean(scores))

    def sweep():
        return {agg: accuracy(agg) for agg in ("min", "second_smallest", "median")}

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[agg, f"{score:.3f}"] for agg, score in scores.items()]
    emit(
        "Ablation: ping aggregation statistic (paper: second-smallest of 8)",
        format_table(["aggregation", "rand"], rows),
    )
    # The robust low quantiles beat the noisy median.
    assert scores["second_smallest"] >= scores["median"] - 0.05


@pytest.mark.benchmark(group="ablations")
def test_ablation_org_aggregation(benchmark, default_study):
    """Per-ASN vs per-organisation footprint counts (the AS2Org step)."""
    from repro.topology.organizations import build_organizations, organization_footprint

    def run():
        dataset = build_organizations(default_study.internet, multi_as_fraction=0.25, seed=5)
        return dataset, organization_footprint(default_study.latest_inventory, dataset, use_truth=True)

    dataset, footprint = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
        rows.append(
            [
                hypergiant,
                footprint.asn_counts[hypergiant],
                footprint.org_counts[hypergiant],
                f"x{footprint.overcount_factor(hypergiant):.2f}",
            ]
        )
    emit(
        "Ablation: per-ASN vs per-organisation hosting counts "
        "(why the methodology aggregates through AS2Org)",
        format_table(["Hypergiant", "ASNs", "organisations", "naive overcount"], rows),
    )
    assert any(footprint.overcount_factor(hg) > 1.0 for hg in ("Google", "Netflix", "Meta", "Akamai"))


@pytest.mark.benchmark(group="ablations")
def test_ablation_ip2as_source(benchmark, default_study):
    """Ground-truth IP-to-AS oracle vs BGP-collector-derived dataset."""
    from repro.bgp import build_ip2as, build_route_collector
    from repro.scan.detection import score_detection

    scan = default_study.scans["2023"]
    state = default_study.history.state("2023")

    def run():
        collector = build_route_collector(default_study.internet, seed=3)
        ip2as = build_ip2as(collector)
        oracle = detect_offnets(default_study.internet, scan)
        derived = detect_offnets(default_study.internet, scan, ip2as=ip2as)
        return ip2as, oracle, derived

    ip2as, oracle, derived = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, inventory in (("oracle", oracle), ("BGP-derived", derived)):
        score = score_detection(inventory, state)
        rows.append([label, len(inventory), f"{score.precision:.3f}", f"{score.recall:.3f}"])
    emit(
        "Ablation: IP-to-AS source for offnet attribution "
        f"({len(ip2as)} mapped prefixes, {len(ip2as.conflicted)} MOAS conflicts dropped)",
        format_table(["IP-to-AS", "detections", "precision", "recall"], rows),
    )
    derived_score = score_detection(derived, state)
    assert derived_score.precision > 0.999
    assert derived_score.recall > 0.9
