"""Sweep-campaign bench: cold run vs warm resume vs fully-cached replay.

Runs one four-cell seed sweep three ways — cold into a fresh store,
resumed after an interrupt that left half the cells durable, and replayed
against a fully-warm store — cross-checks that all three produce
**byte-identical** campaign reports, and writes the timings plus store
hit rates to ``BENCH_sweep.json`` in the ``repro-bench-v1`` trajectory
format.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_sweep.py -s``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro._util import format_table
from repro.core.pipeline import StudyConfig
from repro.store import StudyStore
from repro.sweep import MetricSpec, ParameterGrid, run_campaign
from repro.topology.generator import InternetConfig

from benchmarks.conftest import emit

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_sweep.json"

N_CELLS = 4
#: Cells already durable when the "resume" leg starts.
INTERRUPT_AFTER = 2

#: A fully-cached replay must beat the cold run by at least this factor
#: (rehydration skips the ping campaign and clustering entirely).
TARGET_REPLAY_SPEEDUP = 1.5


def _n_detections(study) -> float:
    return float(len(study.latest_inventory))


def _n_analyzable(study) -> float:
    return float(len(study.campaign.analyzable_isp_asns))


METRICS = (
    MetricSpec("detections", _n_detections, 1.0, 1e9, "n/a"),
    MetricSpec("analyzable ISPs", _n_analyzable, 1.0, 1e9, "n/a"),
)


def _grid() -> ParameterGrid:
    base = StudyConfig(
        internet=InternetConfig(seed=3, n_access_isps=60, n_ixps=22),
        n_vantage_points=32,
        seed=3,
    )
    return ParameterGrid.of(base, {"seed,internet.seed": list(range(3, 3 + N_CELLS))})


def _timed_campaign(grid, store, **kwargs):
    started = time.perf_counter()
    report = run_campaign(grid, METRICS, store=store, **kwargs)
    return report, time.perf_counter() - started


def test_bench_sweep_snapshot(tmp_path):
    grid = _grid()

    # Cold: every cell computed and checkpointed into a fresh store.
    cold_store = StudyStore(tmp_path / "cold")
    cold, cold_s = _timed_campaign(grid, cold_store)

    # Resume: a separate store holds the first INTERRUPT_AFTER cells (the
    # interrupted prefix), so the resume rehydrates those and computes
    # only the remainder.
    resume_store = StudyStore(tmp_path / "resume")
    run_campaign(grid, METRICS, store=resume_store, max_cells=INTERRUPT_AFTER)
    resumed, resume_s = _timed_campaign(grid, resume_store)

    # Replay: the cold store is now fully warm; nothing recomputes.
    replay, replay_s = _timed_campaign(grid, cold_store)

    reports = {
        json.dumps(report.to_json(), sort_keys=True) for report in (cold, resumed, replay)
    }
    assert len(reports) == 1, "cold / resumed / replayed reports diverged"
    assert (cold.cache_hits, cold.cache_misses) == (0, N_CELLS)
    assert (resumed.cache_hits, resumed.cache_misses) == (
        INTERRUPT_AFTER,
        N_CELLS - INTERRUPT_AFTER,
    )
    assert (replay.cache_hits, replay.cache_misses) == (N_CELLS, 0)

    runs = [
        {"leg": "cold", "seconds": round(cold_s, 3), "hits": 0, "misses": N_CELLS},
        {
            "leg": "warm-resume",
            "seconds": round(resume_s, 3),
            "hits": INTERRUPT_AFTER,
            "misses": N_CELLS - INTERRUPT_AFTER,
        },
        {"leg": "cached-replay", "seconds": round(replay_s, 3), "hits": N_CELLS, "misses": 0},
    ]
    replay_speedup = round(cold_s / replay_s, 3)
    snapshot = {
        "bench": "sweep-resume",
        "format": "repro-bench-v1",
        "n_cells": N_CELLS,
        "interrupt_after": INTERRUPT_AFTER,
        "identical_reports": True,
        "store_bytes": cold_store.stats().total_bytes,
        "target_replay_speedup": TARGET_REPLAY_SPEEDUP,
        "replay_speedup": replay_speedup,
        "runs": runs,
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    rows = [
        [run["leg"], run["seconds"], f"{run['hits']}/{N_CELLS}", run["misses"]] for run in runs
    ]
    emit(
        f"sweep campaign timings ({N_CELLS} cells, replay speedup {replay_speedup}x)",
        format_table(["leg", "seconds", "store hits", "computed"], rows),
    )

    assert replay_speedup >= TARGET_REPLAY_SPEEDUP, (
        f"cached replay only {replay_speedup}x faster than cold ({cold_s:.2f}s vs {replay_s:.2f}s)"
    )
