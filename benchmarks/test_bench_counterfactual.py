"""CF — the dispersal-mandate counterfactual (§6 policy levers).

Re-place the 2023 deployments with colocation preference turned off and
compare concentration and outage blast radius against the status quo.
The takeaway mirrors §6: with 1-3 facilities per ISP, policy alone cannot
undo the concentration — facility scarcity is the binding constraint.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.counterfactual_dispersal import run_dispersal_counterfactual


@pytest.mark.benchmark(group="counterfactual")
def test_dispersal_counterfactual(benchmark, default_study):
    result = benchmark.pedantic(
        run_dispersal_counterfactual, args=(default_study,), rounds=1, iterations=1
    )
    emit("Counterfactual: dispersal mandate vs status quo", result.render())
    # Dispersal reduces concentration but cannot eliminate sharing.
    assert result.dispersed.mean_best_facility_share <= result.status_quo.mean_best_facility_share
    assert result.dispersed.shared_facility_fraction <= result.status_quo.shared_facility_fraction
    assert result.dispersed.shared_facility_fraction > 0.5  # pigeonhole
