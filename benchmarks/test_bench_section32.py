"""S32 — regenerate the §3.2 narrative numbers and validation counts.

Paper: 5516 ISPs host >= 1 HG, 3382 >= 2, 1880 >= 3, 505 all four; cluster
validation finds almost all checkable clusters geographically consistent.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.section32 import run_section32


@pytest.mark.benchmark(group="section32")
def test_section32_cohosting_and_validation(benchmark, default_study):
    result = benchmark.pedantic(run_section32, args=(default_study,), rounds=1, iterations=1)
    emit("§3.2: cohosting distribution and cluster validation", result.render())
    assert result.cohosting_fraction(2) > 0.5
    assert result.cohosting_fraction(4) > 0.02
    # §3.1's longitudinal claim: cohosting increased between the epochs.
    for k in (2, 3, 4):
        assert result.cohosting_increased(k)
    for summary in result.validations.values():
        assert summary.consistent_fraction > 0.7
