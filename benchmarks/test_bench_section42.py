"""S42 — regenerate §4.2: peering coverage and PNI headroom.

Paper: 38.2 % of Google-offnet ISPs peer with Google, 13.3 % possible,
48.4 % no evidence; 62.2 % of peers via IXP at least once, 42.5 % IXP-only;
Meta saw 10 % of PNIs with demand at twice capacity.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.section42_peering import run_section42
from repro.traceroute.peering import PeeringEvidence


@pytest.mark.benchmark(group="section42")
def test_section42_peering(benchmark, default_study):
    result = benchmark.pedantic(
        run_section42, args=(default_study,), kwargs={"n_regions": 8}, rounds=1, iterations=1
    )
    emit("§4.2: peering inference and PNI headroom", result.render())
    assert 0.25 < result.fraction(PeeringEvidence.PEER) < 0.55
    assert 0.35 < result.fraction(PeeringEvidence.NO_EVIDENCE) < 0.65
    assert result.inference.ixp_at_least_once_fraction() > 0.4
    assert result.precision > 0.99
    google = result.pni_headroom["Google"]
    assert 0.1 < google.overloaded_fraction < 0.6
    assert 0.0 < result.pni_headroom["Meta"].twice_overloaded_fraction < 0.3
