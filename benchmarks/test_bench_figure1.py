"""F1 — regenerate Figure 1 (per-country users in multi-hypergiant ISPs).

Paper: in many countries most users are in ISPs hosting >= 2 hypergiants;
coverage thins sharply from k=2 to k=3 in Europe/Africa; a handful of
countries are ~fully covered at k=4.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.figure1 import run_figure1
from repro.viz import render_world_map


@pytest.mark.benchmark(group="figure1")
def test_figure1_country_fractions(benchmark, default_study):
    result = benchmark(run_figure1, default_study)
    emit("Figure 1: per-country user fractions (k = 2 / 3 / 4)", result.render())
    emit("Figure 1: summary", result.summary())
    for k in (2, 3, 4):
        emit(
            f"Figure 1{'abc'[k - 2]}: users in ISPs hosting >= {k} hypergiants",
            render_world_map(
                default_study.internet.world, result.panels[k].fraction_by_country
            ),
        )
    assert result.majority_country_count(2) >= result.majority_country_count(3)
    assert result.majority_country_count(3) >= result.majority_country_count(4)
    assert result.majority_country_count(2) > 25
