"""S21 — §2.1's operator anecdote: offnets dwarf interdomain delivery.

Paper: a ~2M-user ISP sees ~20-30 Gbps per hypergiant from offnets at peak
(75-90+ % of each service's traffic), ~90 Gbps total from offnets vs
< 15 Gbps over interdomain links.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.section21_anecdote import PAPER_OFFNET_FRACTIONS, run_section21


@pytest.mark.benchmark(group="section21")
def test_section21_anecdote(benchmark, default_study):
    result = benchmark.pedantic(run_section21, args=(default_study,), rounds=1, iterations=1)
    emit("§2.1: peak-hour offnet vs interdomain split", result.render())
    for hypergiant, paper_fraction in PAPER_OFFNET_FRACTIONS.items():
        if hypergiant in result.split:
            assert result.offnet_fraction(hypergiant) == pytest.approx(paper_fraction, abs=0.12)
    # Offnets dominate interdomain delivery by a wide margin.
    assert result.offnet_total > 3 * result.interdomain_total
