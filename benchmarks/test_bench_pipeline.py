"""Pipeline-stage benchmarks: how long each measurement stage takes.

Not a paper artifact — these measure the substrate itself (scan, detection,
latency campaign, clustering, traceroute engine) so regressions in the
expensive stages are visible.
"""

import pytest

from repro.clustering.sites import ClusteringConfig, cluster_isp_offnets
from repro.deployment.growth import build_deployment_history
from repro.mlab.matrix import LatencyCampaignConfig, apply_quality_filters, measure_offnets
from repro.mlab.vantage import build_vantage_points
from repro.scan.detection import detect_offnets
from repro.scan.scanner import run_scan
from repro.topology.generator import InternetConfig, generate_internet
from repro.traceroute.engine import TracerouteEngine


@pytest.fixture(scope="module")
def net():
    return generate_internet(InternetConfig(seed=1, n_access_isps=150))


@pytest.fixture(scope="module")
def state(net):
    return build_deployment_history(net, seed=1).state("2023")


@pytest.mark.benchmark(group="pipeline")
def test_bench_generate_internet(benchmark):
    net = benchmark(generate_internet, InternetConfig(seed=2, n_access_isps=150))
    assert len(net.access_isps) >= 140


@pytest.mark.benchmark(group="pipeline")
def test_bench_scan(benchmark, net, state):
    scan = benchmark(run_scan, net, state)
    assert len(scan) > 1000


@pytest.mark.benchmark(group="pipeline")
def test_bench_detection(benchmark, net, state):
    scan = run_scan(net, state)
    inventory = benchmark(detect_offnets, net, scan)
    assert len(inventory) > 1000


@pytest.mark.benchmark(group="pipeline")
def test_bench_latency_campaign(benchmark, net, state):
    vps = build_vantage_points(net.world, 40, seed=3)
    ips = [server.ip for server in state.servers][:2000]

    def campaign():
        matrix = measure_offnets(net, state, ips, vps, seed=4)
        ip_to_isp = {ip: state.server_at(ip).isp.asn for ip in ips}
        # Scale the coverage threshold to the 40-VP campaign (~61%).
        return apply_quality_filters(matrix, ip_to_isp, LatencyCampaignConfig(min_vps_per_isp=24))

    filtered = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert filtered.ips_by_isp


@pytest.mark.benchmark(group="pipeline")
def test_bench_cluster_one_isp(benchmark, net, state):
    vps = build_vantage_points(net.world, 40, seed=3)
    isp = max(state.hosting_isps(), key=lambda i: len(state.servers_in(i)))
    ips = [server.ip for server in state.servers_in(isp)]
    matrix = measure_offnets(net, state, ips, vps, seed=4)
    result = benchmark(cluster_isp_offnets, matrix.submatrix(ips), ips, ClusteringConfig(xi=0.9))
    assert result.site_count >= 1


@pytest.mark.benchmark(group="pipeline")
def test_bench_traceroute(benchmark, net):
    engine = TracerouteEngine(net, seed=1)
    google = net.hypergiant_as("Google")
    targets = [net.plan.prefixes_of(isp)[0].base + 7 for isp in net.access_isps[:50]]

    def campaign():
        return [engine.trace(google, target) for target in targets]

    paths = benchmark(campaign)
    assert all(path.routable for path in paths)
