"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``study``    — run the pipeline and print selected paper artifacts.
* ``cascade``  — simulate a facility outage and print the damage report.
* ``peering``  — run the §4.2.1 traceroute campaign for one hypergiant.
* ``mapping``  — run the steering-blindness (client-mapping) experiment.
* ``export``   — run the pipeline and write a dataset archive to a directory.
* ``sweep``    — run/resume, inspect, or garbage-collect sweep campaigns
  (``sweep run``, ``sweep status``, ``sweep gc``).
* ``timeline`` — run/resume the longitudinal timeline campaign: the
  Table-1 / Figure-1 / concentration series over quarterly epochs,
  incrementally recomputed through a per-stage content-addressed store
  (``--store-dir``; ``--status`` reports resume progress).
* ``tail``     — render (or ``--follow``) a live run's JSONL event stream
  written by ``--events-out``.
* ``eval``     — score the inference pipeline against ground truth
  (``--scorecard-out`` writes the scorecard JSON, ``--baseline`` regress-
  checks it against committed ``BENCH_accuracy.json`` floors).
* ``bench``    — benchmark-baseline utilities (``bench check`` compares a
  fresh run's stage timings against a committed ``BENCH_*.json``).
* ``info``     — library version and available scenarios/sections.

``study``, ``cascade``, and ``export`` accept ``--store-dir`` to back the
scenario cache with a durable :class:`repro.store.StudyStore`: the first
run pays the full pipeline, every later process rehydrates from disk.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import __version__
from repro.report import available_sections


def _add_scenario_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        choices=("small", "default", "large"),
        default="small",
        help="study scenario preset (default: small)",
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record stage spans and print the stage-time tree on stderr",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also profile CPU time and peak RSS per stage (implies tracing)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured logs as JSON lines (instead of text) on stderr",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the telemetry snapshot (spans + metrics) as JSON to PATH",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        default=None,
        help="stream live progress events (JSONL) to PATH; tail with `repro tail PATH`",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the span forest as a Chrome trace-event file (Perfetto-loadable)",
    )


def _telemetry_from_args(args: argparse.Namespace):
    """A live telemetry bundle when any observability flag is set, else None."""
    if not (
        args.trace
        or args.profile
        or args.log_json
        or args.metrics_out
        or args.events_out
        or args.trace_out
    ):
        return None
    from repro.obs import Telemetry

    return Telemetry.capture(
        json_logs=args.log_json, profile=args.profile, events=args.events_out
    )


def _workers_spec(value: str) -> "int | str":
    """``--workers`` accepts a positive integer or the literal ``auto``."""
    if value == "auto":
        return value
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be a positive integer or 'auto', got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(f"workers must be >= 1, got {workers}")
    return workers


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=("serial", "process", "pool"),
        default="serial",
        help="execution backend for the campaign/clustering fan-outs: serial, "
        "process (fresh worker pool per stage), or pool (one persistent pool "
        "reused across stages; default: serial)",
    )
    parser.add_argument(
        "--workers",
        type=_workers_spec,
        default=1,
        metavar="N",
        help="worker processes for --backend process/pool, or 'auto' for "
        "cpu_count-1 (results are identical at any N)",
    )


def _parallel_from_args(args: argparse.Namespace):
    """A ParallelConfig when any parallel flag departs from the default, else None."""
    shard_timeout = getattr(args, "shard_timeout", None)
    if (
        getattr(args, "backend", "serial") == "serial"
        and getattr(args, "workers", 1) == 1
        and shard_timeout is None
    ):
        return None
    from repro.parallel import ParallelConfig

    return ParallelConfig(
        backend=getattr(args, "backend", "serial"),
        workers=getattr(args, "workers", 1),
        shard_timeout_s=shard_timeout,
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        metavar="PATH",
        default=None,
        help="fault-plan JSON for deterministic chaos testing (see repro.faults)",
    )
    parser.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="N",
        help="enable the resilience layer: at most N attempts per shard / store load",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard timeout; hung workers are requeued (with --retry) or fatal",
    )
    parser.add_argument(
        "--shard-loss-budget",
        type=float,
        default=None,
        metavar="FRACTION",
        help="with --retry: tolerate losing up to this fraction of shards per stage "
        "(default 0.0: any quarantined shard aborts the study)",
    )


def _faults_from_args(args: argparse.Namespace):
    """A FaultPlan when --faults was given, else None."""
    path = getattr(args, "faults", None)
    if path is None:
        return None
    from repro.faults import load_fault_plan

    return load_fault_plan(path)


def _resilience_from_args(args: argparse.Namespace):
    """A ResilienceConfig when --retry was given, else None."""
    retries = getattr(args, "retry", None)
    if retries is None:
        return None
    from repro.resilience import ErrorBudget, ResilienceConfig, RetryPolicy

    budget = getattr(args, "shard_loss_budget", None)
    return ResilienceConfig(
        retry=RetryPolicy(max_attempts=retries),
        budget=ErrorBudget(shard_loss_fraction=budget if budget is not None else 0.0),
    )


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help="durable study store directory (cold runs persist, warm runs rehydrate)",
    )


def _store_from_args(args: argparse.Namespace):
    """A StudyStore when --store-dir was given, else None."""
    store_dir = getattr(args, "store_dir", None)
    if store_dir is None:
        return None
    from repro.store import StudyStore

    return StudyStore(store_dir)


def _load_study(name: str, telemetry=None, parallel=None, store=None, faults=None, resilience=None):
    from repro.experiments.scenarios import cached_study, scenario_by_name

    print(f"running the {name!r} study...", file=sys.stderr)
    if telemetry is None and parallel is None and faults is None and resilience is None:
        return cached_study(name, store=store)
    # A traced, fault-injected, or non-default-backend run must exercise the
    # live pipeline, so it bypasses the caches — but still warms the store
    # afterwards (the store itself refuses degraded studies).
    study = scenario_by_name(name).run(
        telemetry=telemetry, parallel=parallel, faults=faults, resilience=resilience
    )
    if store is not None:
        store.put(study)
    return study


def _emit_telemetry(args: argparse.Namespace, telemetry) -> None:
    """Print / write the recorded telemetry as the flags request.

    Also undoes ``Telemetry.capture``'s process-global effects (restores
    the shared-logger config, closes the event stream) — the CLI's runs
    are over by the time this is called.
    """
    if telemetry is None:
        return
    from repro.obs import (
        render_filter_funnel,
        render_profile,
        render_span_tree,
        write_chrome_trace,
        write_metrics_json,
    )

    if args.trace:
        print("\nstage timings\n-------------", file=sys.stderr)
        print(render_span_tree(telemetry.tracer), file=sys.stderr)
        funnel = render_filter_funnel(telemetry.metrics)
        print(f"\nfilter funnel\n-------------\n{funnel}", file=sys.stderr)
    if args.profile:
        print("\nresource profile\n----------------", file=sys.stderr)
        print(render_profile(telemetry), file=sys.stderr)
        if telemetry.flight.enabled and telemetry.flight.records:
            print("\nexecutor flights\n----------------", file=sys.stderr)
            print(telemetry.flight.render(), file=sys.stderr)
    if args.metrics_out:
        label = getattr(args, "scenario", None) or "sweep"
        path = write_metrics_json(telemetry, args.metrics_out, name=f"study-{label}")
        print(f"wrote telemetry to {path}", file=sys.stderr)
    if args.trace_out:
        path = write_chrome_trace(telemetry, args.trace_out)
        print(f"wrote Chrome trace to {path} (load in Perfetto / chrome://tracing)", file=sys.stderr)
    telemetry.restore()
    if args.events_out:
        print(f"event stream written to {args.events_out}", file=sys.stderr)


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.report import build_report

    telemetry = _telemetry_from_args(args)
    study = _load_study(
        args.scenario,
        telemetry,
        _parallel_from_args(args),
        _store_from_args(args),
        faults=_faults_from_args(args),
        resilience=_resilience_from_args(args),
    )
    sections = tuple(args.sections.split(",")) if args.sections != "all" else None
    print(build_report(study, sections))
    _emit_telemetry(args, telemetry)
    return 0


def _cmd_cascade(args: argparse.Namespace) -> int:
    from repro.capacity.demand import DemandModel
    from repro.capacity.events import facility_outage_scenario
    from repro.capacity.links import build_capacity_plan
    from repro.capacity.cascade import simulate_cascade
    from repro.experiments.section43_collateral import most_shared_facility

    telemetry = _telemetry_from_args(args)
    study = _load_study(
        args.scenario,
        telemetry,
        _parallel_from_args(args),
        _store_from_args(args),
        faults=_faults_from_args(args),
        resilience=_resilience_from_args(args),
    )
    state = study.history.state("2023")
    if args.facility == "auto":
        facility_id, hypergiants = most_shared_facility(study)
        print(f"auto-selected facility {facility_id} (hosts {'+'.join(hypergiants)})")
    else:
        facility_id = int(args.facility)
    demand = DemandModel(traffic=study.traffic)
    plans = build_capacity_plan(study.internet, state, demand, seed=11)
    owner_asns = sorted(
        {s.isp.asn for s in state.servers if s.facility.facility_id == facility_id}
    )
    if not owner_asns:
        print(f"facility {facility_id} hosts no offnets", file=sys.stderr)
        return 1
    report = simulate_cascade(
        study.internet,
        demand,
        plans,
        facility_outage_scenario(facility_id),
        study.population,
        asns=owner_asns,
        telemetry=telemetry,
    )
    for asn, outcome in report.outcomes.items():
        print(
            f"ASN {asn}: offnet {100 * outcome.offnet_change:+.0f}%, "
            f"interdomain x{outcome.interdomain_ratio:.2f}, "
            f"{outcome.congested_hours} congested hours, "
            f"collateral {outcome.collateral_gbph:.0f} Gbps-h"
        )
    print(f"affected users: {report.affected_users():,}")
    _emit_telemetry(args, telemetry)
    return 0


def _cmd_peering(args: argparse.Namespace) -> int:
    from repro.experiments.section42_peering import run_section42

    study = _load_study(args.scenario)
    result = run_section42(study, hypergiant=args.hypergiant, n_regions=args.regions)
    print(result.render())
    return 0


def _cmd_mapping(args: argparse.Namespace) -> int:
    from repro.experiments.steering_blindness import run_steering_blindness

    study = _load_study(args.scenario)
    print(run_steering_blindness(study).render())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.io.archive import save_archive

    telemetry = _telemetry_from_args(args)
    study = _load_study(
        args.scenario,
        telemetry,
        _parallel_from_args(args),
        _store_from_args(args),
        faults=_faults_from_args(args),
        resilience=_resilience_from_args(args),
    )
    directory = save_archive(study, args.output)
    files = sorted(p.name for p in directory.iterdir())
    print(f"wrote {len(files)} files to {directory}:")
    for name in files:
        print(f"  {name}")
    _emit_telemetry(args, telemetry)
    return 0


def _install_graceful_shutdown() -> None:
    """Relay SIGTERM into :class:`KeyboardInterrupt` for campaign CLIs.

    Long-running campaigns checkpoint every completed cell/epoch before
    reporting it, so an interrupt between cells loses nothing — the
    interrupted command prints a resume hint and exits 130, and rerunning
    it replays completed work from the store.  SIGINT already raises
    ``KeyboardInterrupt``; this gives SIGTERM (the supervisor's signal)
    the same checkpoint-and-exit semantics.
    """
    import signal

    def _terminated(signum: int, _frame: object) -> None:
        raise KeyboardInterrupt(f"signal {signum}")

    try:
        signal.signal(signal.SIGTERM, _terminated)
    except ValueError:
        pass  # not the main thread (e.g. under a test harness)


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    from repro.sensitivity import DEFAULT_METRICS
    from repro.sweep import load_grid, run_campaign

    grid = load_grid(args.spec)
    store = _store_from_args(args)
    telemetry = _telemetry_from_args(args)
    print(
        f"sweep campaign: {grid.n_cells} cells over axes {', '.join(grid.axis_names) or '(none)'}"
        + (f" (store: {store.root})" if store is not None else " (no store: not resumable)"),
        file=sys.stderr,
    )
    _install_graceful_shutdown()
    try:
        report = run_campaign(
            grid,
            metrics=DEFAULT_METRICS,
            store=store,
            parallel=_parallel_from_args(args),
            telemetry=telemetry,
            max_cells=args.max_cells,
            faults=_faults_from_args(args),
            resilience=_resilience_from_args(args),
        )
    except KeyboardInterrupt:
        print(
            "interrupted — completed cells are checkpointed"
            + (" in the store; rerun the same command to resume" if store is not None else
               "; rerun with --store-dir to make campaigns resumable"),
            file=sys.stderr,
        )
        _emit_telemetry(args, telemetry)
        return 130
    print(report.render())
    print(
        f"cells: {len(report.cells)} ({report.cache_hits} from store, "
        f"{report.cache_misses} computed)",
        file=sys.stderr,
    )
    if args.report_out:
        path = report.write(args.report_out)
        print(f"wrote campaign report to {path}", file=sys.stderr)
    _emit_telemetry(args, telemetry)
    return 0


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    from repro.sweep import campaign_status, load_grid

    grid = load_grid(args.spec)
    status = campaign_status(grid, _store_from_args(args))
    print(status.render())
    return 0 if status.n_pending == 0 else 2


def _cmd_sweep_gc(args: argparse.Namespace) -> int:
    from repro.store import StudyStore

    store = StudyStore(args.store_dir)
    before = store.stats()
    evicted = store.gc(
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        max_quarantine_entries=args.max_quarantine_entries,
        max_quarantine_age_s=args.max_quarantine_age_s,
    )
    after = store.stats()
    print(
        f"evicted {len(evicted)} of {before.entries} entries "
        f"({before.total_bytes - after.total_bytes:,} bytes freed, "
        f"{after.entries} entries / {after.total_bytes:,} bytes remain)"
    )
    for key in evicted:
        print(f"  evicted {key}")
    return 0


def _cmd_timeline_gc(args: argparse.Namespace) -> int:
    from repro.store import StageStore

    store = StageStore(args.store_dir)
    before = store.stats()
    evicted = store.gc(
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        max_age_s=args.max_age_s,
        max_quarantine_entries=args.max_quarantine_entries,
        max_quarantine_age_s=args.max_quarantine_age_s,
    )
    after = store.stats()
    print(
        f"evicted {len(evicted)} of {before['entries']} entries "
        f"({before['total_bytes'] - after['total_bytes']:,} bytes freed, "
        f"{after['entries']} entries / {after['total_bytes']:,} bytes remain)"
    )
    for key in evicted:
        print(f"  evicted {key}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    # Dispatched by attribute rather than sub-parser set_defaults: on
    # Python < 3.13 the parent parser's set_defaults(handler=...) would
    # clobber the sub-parser's (bpo-9351).
    if getattr(args, "timeline_command", None) == "gc":
        return _cmd_timeline_gc(args)
    from repro.experiments.scenarios import scenario_by_name
    from repro.timeline import TimelineConfig, TimelineSpec, run_timeline, timeline_status

    spec = TimelineSpec(
        start=args.start,
        end=args.end,
        policy=args.policy,
        eviction_rate=args.eviction_rate,
        capacity_ramp_quarters=args.capacity_ramp,
        edition=args.edition,
        seed=args.seed,
    )
    base = scenario_by_name(args.scenario).config
    parallel = _parallel_from_args(args)
    config = TimelineConfig(
        internet=base.internet,
        placement=base.placement,
        scan=base.scan,
        campaign=base.campaign,
        spec=spec,
        n_vantage_points=base.n_vantage_points,
        xis=base.xis,
        population_noise_sigma=base.population_noise_sigma,
        parallel=parallel if parallel is not None else base.parallel,
        faults=_faults_from_args(args),
        resilience=_resilience_from_args(args),
        seed=base.seed,
    )
    store = None
    if args.store_dir is not None:
        from repro.store import StageStore

        store = StageStore(args.store_dir)
    if args.status:
        if store is None:
            print("timeline --status requires --store-dir", file=sys.stderr)
            return 1
        status = timeline_status(config, store)
        print(status.render())
        return 0 if status.n_pending == 0 else 2
    telemetry = _telemetry_from_args(args)
    n_quarters = len(spec.quarters) if args.max_epochs is None else min(args.max_epochs, len(spec.quarters))
    print(
        f"timeline campaign: {n_quarters} quarterly epochs "
        f"({spec.start}..{spec.end}, policy {spec.policy!r})"
        + (f" (store: {store.root})" if store is not None else " (no store: not resumable)"),
        file=sys.stderr,
    )
    _install_graceful_shutdown()
    try:
        report = run_timeline(
            config, store=store, telemetry=telemetry, max_epochs=args.max_epochs
        )
    except KeyboardInterrupt:
        print(
            "interrupted — completed epochs are checkpointed"
            + (" in the store; rerun the same command to resume" if store is not None else
               "; rerun with --store-dir to make campaigns resumable"),
            file=sys.stderr,
        )
        _emit_telemetry(args, telemetry)
        return 130
    print(report.render())
    print(
        f"epochs: {len(report.epochs)} ({report.cache_hits} from store, "
        f"{report.cache_misses} computed, {report.n_lost} lost)",
        file=sys.stderr,
    )
    if args.report_out:
        path = report.write(args.report_out)
        print(f"wrote timeline report to {path}", file=sys.stderr)
    _emit_telemetry(args, telemetry)
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    from repro.obs import (
        follow_events,
        format_event,
        read_events,
        render_progress,
        resolve_events_path,
    )

    try:
        path = resolve_events_path(args.target)
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 1
    if not args.follow:
        print(render_progress(read_events(path)))
        return 0
    events = []
    try:
        for event in follow_events(path, poll_interval_s=args.poll, timeout_s=args.timeout):
            events.append(event)
            print(format_event(event), flush=True)
    except KeyboardInterrupt:
        pass
    print(render_progress(events))
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.eval import build_scorecard, check_accuracy

    telemetry = _telemetry_from_args(args)
    study = _load_study(args.scenario, telemetry)
    scorecard = build_scorecard(
        study,
        scenario=args.scenario,
        hypergiants=tuple(args.hypergiant) if args.hypergiant else ("Google",),
        peering_regions=args.regions,
        telemetry=telemetry,
    )
    print(scorecard.render())
    if args.scorecard_out:
        path = Path(args.scorecard_out)
        path.write_text(scorecard.canonical_json(), encoding="utf-8")
        print(f"wrote scorecard to {path}", file=sys.stderr)
    exit_code = 0
    if args.baseline:
        try:
            result = check_accuracy(args.baseline, scorecard=scorecard, scenario=args.scenario)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            _emit_telemetry(args, telemetry)
            return 1
        print()
        print(result.render())
        exit_code = 0 if result.passed else 1
    _emit_telemetry(args, telemetry)
    return exit_code


def _cmd_bench_check(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.bench import (
        DEFAULT_TOLERANCE,
        TIMELINE_BENCH_NAME,
        check_bench,
        check_timeline_bench,
    )

    baseline_path = Path(args.baseline)
    if baseline_path.exists():
        try:
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        except ValueError:
            baseline = {}
        if baseline.get("bench") == TIMELINE_BENCH_NAME:
            # Timeline baselines carry speedup floors and exact stage-cache
            # counters instead of per-stage wall times.
            print(f"bench check: fresh timeline run vs {args.baseline}...", file=sys.stderr)
            try:
                result = check_timeline_bench(args.baseline)
            except ValueError as error:
                print(str(error), file=sys.stderr)
                return 1
            print(result.render())
            return 0 if result.passed else 1
    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    print(
        f"bench check: fresh {args.scenario!r} run vs {args.baseline} "
        f"(tolerance {tolerance:g}x)...",
        file=sys.stderr,
    )
    try:
        result = check_bench(args.baseline, tolerance=tolerance, scenario=args.scenario)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 1
    print(result.render())
    return 0 if result.passed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ReproServer, ServeConfig

    config = ServeConfig(
        state_dir=args.state_dir,
        parallel=_parallel_from_args(args),
        max_queue=args.max_queue,
        tenant_quota=args.tenant_quota,
        faults=_faults_from_args(args),
        gc_max_entries=args.gc_max_entries,
        gc_max_bytes=args.gc_max_bytes,
    )
    server = ReproServer(config, host=args.host, port=args.port)
    recovered = server.scheduler.recovered
    print(f"repro serve listening on {server.url} (state: {args.state_dir})", file=sys.stderr)
    if recovered.campaigns:
        print(
            f"recovered {len(recovered.campaigns)} campaigns "
            f"({len(recovered.requeued)} re-queued"
            + (f", {recovered.n_corrupt} corrupt journal lines skipped" if recovered.n_corrupt else "")
            + (", torn journal tail tolerated" if recovered.torn_tail else "")
            + ")",
            file=sys.stderr,
        )
    return server.run_until_signalled()


def _cmd_info(_args: argparse.Namespace) -> int:
    from repro.experiments.scenarios import scenario_names

    print(f"repro {__version__}")
    print(f"scenarios: {', '.join(scenario_names())}")
    print(f"report sections: {', '.join(available_sections())}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Central Problem with Distributed Content' (HotNets'23)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    study = subparsers.add_parser("study", help="run the pipeline and print paper artifacts")
    _add_scenario_argument(study)
    _add_telemetry_arguments(study)
    _add_parallel_arguments(study)
    _add_resilience_arguments(study)
    _add_store_argument(study)
    study.add_argument(
        "--sections",
        default="all",
        help=f"comma-separated section ids or 'all' ({','.join(available_sections())})",
    )
    study.set_defaults(handler=_cmd_study)

    cascade = subparsers.add_parser("cascade", help="simulate a facility outage")
    _add_scenario_argument(cascade)
    _add_telemetry_arguments(cascade)
    _add_parallel_arguments(cascade)
    _add_resilience_arguments(cascade)
    _add_store_argument(cascade)
    cascade.add_argument("--facility", default="auto", help="facility id or 'auto' (most shared)")
    cascade.set_defaults(handler=_cmd_cascade)

    peering = subparsers.add_parser("peering", help="run the §4.2.1 traceroute campaign")
    _add_scenario_argument(peering)
    peering.add_argument("--hypergiant", default="Google", choices=("Google", "Netflix", "Meta", "Akamai"))
    peering.add_argument("--regions", type=int, default=4, help="source regions (paper: 112)")
    peering.set_defaults(handler=_cmd_peering)

    mapping = subparsers.add_parser("mapping", help="run the steering-blindness experiment")
    _add_scenario_argument(mapping)
    mapping.set_defaults(handler=_cmd_mapping)

    export = subparsers.add_parser("export", help="write a dataset archive")
    _add_scenario_argument(export)
    _add_telemetry_arguments(export)
    _add_parallel_arguments(export)
    _add_resilience_arguments(export)
    _add_store_argument(export)
    export.add_argument("--output", required=True, help="destination directory")
    export.set_defaults(handler=_cmd_export)

    sweep = subparsers.add_parser("sweep", help="run/resume, inspect, or GC sweep campaigns")
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser("run", help="run (or resume) a campaign from a grid spec")
    sweep_run.add_argument("--spec", required=True, metavar="PATH", help="grid spec file (JSON)")
    _add_store_argument(sweep_run)
    _add_telemetry_arguments(sweep_run)
    _add_parallel_arguments(sweep_run)
    _add_resilience_arguments(sweep_run)
    sweep_run.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="run only the first N cells of the expansion (deterministic prefix)",
    )
    sweep_run.add_argument(
        "--report-out", metavar="PATH", default=None, help="write the campaign report JSON to PATH"
    )
    sweep_run.set_defaults(handler=_cmd_sweep_run)

    sweep_status = sweep_sub.add_parser("status", help="how much of a campaign is already stored")
    sweep_status.add_argument("--spec", required=True, metavar="PATH", help="grid spec file (JSON)")
    sweep_status.add_argument(
        "--store-dir", required=True, metavar="DIR", help="durable study store directory"
    )
    sweep_status.set_defaults(handler=_cmd_sweep_status)

    sweep_gc = sweep_sub.add_parser("gc", help="evict least-recently-used store entries")
    sweep_gc.add_argument(
        "--store-dir", required=True, metavar="DIR", help="durable study store directory"
    )
    sweep_gc.add_argument("--max-entries", type=int, default=None, help="keep at most N entries")
    sweep_gc.add_argument("--max-bytes", type=int, default=None, help="keep at most N bytes")
    sweep_gc.add_argument(
        "--max-quarantine-entries",
        type=int,
        default=None,
        metavar="N",
        help="keep at most N quarantined (corrupt) entries, oldest evicted first",
    )
    sweep_gc.add_argument(
        "--max-quarantine-age-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict quarantined entries older than this many seconds",
    )
    sweep_gc.set_defaults(handler=_cmd_sweep_gc)

    timeline = subparsers.add_parser(
        "timeline", help="run/resume the longitudinal (quarterly-epoch) campaign, or GC its store"
    )
    timeline_sub = timeline.add_subparsers(dest="timeline_command", required=False)
    timeline_gc = timeline_sub.add_parser("gc", help="evict oldest stage-store entries")
    timeline_gc.add_argument(
        "--store-dir", required=True, metavar="DIR", help="stage store directory"
    )
    timeline_gc.add_argument("--max-entries", type=int, default=None, help="keep at most N entries")
    timeline_gc.add_argument("--max-bytes", type=int, default=None, help="keep at most N bytes")
    timeline_gc.add_argument(
        "--max-age-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict entries older than this many seconds",
    )
    timeline_gc.add_argument(
        "--max-quarantine-entries",
        type=int,
        default=None,
        metavar="N",
        help="keep at most N quarantined (corrupt) entries, oldest evicted first",
    )
    timeline_gc.add_argument(
        "--max-quarantine-age-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict quarantined entries older than this many seconds",
    )
    _add_scenario_argument(timeline)
    _add_telemetry_arguments(timeline)
    _add_parallel_arguments(timeline)
    _add_resilience_arguments(timeline)
    timeline.add_argument("--start", default="2019Q1", help="first quarter (YYYYQn; default: %(default)s)")
    timeline.add_argument("--end", default="2026Q4", help="last quarter (YYYYQn; default: %(default)s)")
    timeline.add_argument(
        "--policy",
        choices=("monotone", "churn"),
        default="monotone",
        help="deployment policy: monotone growth or churn with evictions (default: %(default)s)",
    )
    timeline.add_argument(
        "--eviction-rate",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="per-quarter, per-deployment eviction probability (requires --policy churn)",
    )
    timeline.add_argument(
        "--capacity-ramp",
        type=int,
        default=0,
        metavar="QUARTERS",
        help="ramp new deployments to full capacity over this many quarters (default: 0)",
    )
    timeline.add_argument(
        "--edition", choices=("2021", "2023"), default="2023", help="scan edition (default: %(default)s)"
    )
    timeline.add_argument("--seed", type=int, default=0, help="timeline event-stream seed (default: 0)")
    timeline.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help="stage store directory (enables incremental recomputation and resume)",
    )
    timeline.add_argument(
        "--max-epochs",
        type=int,
        default=None,
        metavar="N",
        help="run only the first N quarters (deterministic prefix)",
    )
    timeline.add_argument(
        "--status",
        action="store_true",
        help="report which quarters are already stored (requires --store-dir); exit 2 if pending",
    )
    timeline.add_argument(
        "--report-out", metavar="PATH", default=None, help="write the timeline report JSON to PATH"
    )
    timeline.set_defaults(handler=_cmd_timeline)

    tail = subparsers.add_parser("tail", help="render (or follow) a run's live event stream")
    tail.add_argument("target", help="an events.jsonl file, or a directory containing one")
    tail.add_argument(
        "--follow", action="store_true", help="keep reading and print events as they arrive"
    )
    tail.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS", help="--follow poll interval"
    )
    tail.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="--follow: stop after this long without a new event (default: wait forever)",
    )
    tail.set_defaults(handler=_cmd_tail)

    from repro.experiments.scenarios import scenario_names

    evaluate = subparsers.add_parser(
        "eval", help="score the inference pipeline against ground truth"
    )
    evaluate.add_argument(
        "--scenario",
        choices=tuple(scenario_names()),
        default="small",
        help="scenario preset, including the adversarial evasion variants (default: small)",
    )
    _add_telemetry_arguments(evaluate)
    evaluate.add_argument(
        "--hypergiant",
        action="append",
        choices=("Google", "Netflix", "Meta", "Akamai"),
        default=None,
        help="hypergiant(s) for the peering-inference stage (repeatable; default: Google)",
    )
    evaluate.add_argument(
        "--regions", type=int, default=4, help="traceroute source regions (paper: 112)"
    )
    evaluate.add_argument(
        "--scorecard-out",
        metavar="PATH",
        default=None,
        help="write the scorecard as canonical JSON to PATH",
    )
    evaluate.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="accuracy baseline (BENCH_accuracy.json) to regress-check against; "
        "exit code 1 if any metric falls below its committed floor",
    )
    evaluate.set_defaults(handler=_cmd_eval)

    bench = subparsers.add_parser("bench", help="benchmark-baseline utilities")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_check = bench_sub.add_parser(
        "check", help="compare a fresh run's stage timings against a committed baseline"
    )
    bench_check.add_argument(
        "--baseline",
        metavar="PATH",
        default="benchmarks/BENCH_observability.json",
        help="committed compact snapshot to compare against (default: %(default)s)",
    )
    bench_check.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FACTOR",
        help="max fresh/baseline wall-time ratio per stage (default: repro.bench default)",
    )
    bench_check.add_argument(
        "--scenario",
        choices=("small", "default", "large"),
        default="small",
        help="scenario to run fresh (must match the baseline's workload)",
    )
    bench_check.set_defaults(handler=_cmd_bench_check)

    serve = subparsers.add_parser(
        "serve", help="run the durable campaign-orchestration service (HTTP/JSON)"
    )
    serve.add_argument(
        "--state-dir",
        required=True,
        metavar="DIR",
        help="journal, stores, and results live here (survives restarts)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (default: pick a free port; see endpoint.json)"
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=8,
        metavar="N",
        help="queued-campaign bound; a full queue rejects with 429 (default: %(default)s)",
    )
    serve.add_argument(
        "--tenant-quota",
        type=int,
        default=4,
        metavar="N",
        help="max active (queued+running) campaigns per tenant (default: %(default)s)",
    )
    serve.add_argument(
        "--gc-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="bound the shared stores to N entries (GC runs between campaigns)",
    )
    serve.add_argument(
        "--gc-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="bound the shared stores to N bytes (GC runs between campaigns)",
    )
    _add_parallel_arguments(serve)
    _add_resilience_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    info = subparsers.add_parser("info", help="version and available options")
    info.set_defaults(handler=_cmd_info)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)
