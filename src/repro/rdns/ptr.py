"""PTR record synthesis (Rapid7 Project-Sonar style).

Generates reverse-DNS names for offnet IPs following the conventions real
ISPs use, with the incompletenesses the paper reports: many IPs have no PTR
record at all, many records carry no recognisable location, and a few are
*stale* — they name the city a server used to be in (the paper cites DNS
misnaming as a known error source [57]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require_fraction
from repro.deployment.placement import DeploymentState, OffnetServer
from repro.faults import FaultPlan
from repro.topology.geo import World


@dataclass(frozen=True)
class PtrConfig:
    """Coverage and quality knobs for PTR synthesis."""

    #: Fraction of offnet IPs with any PTR record.
    coverage: float = 0.6
    #: Of covered IPs, fraction whose hostname embeds a city geohint.
    geohint_fraction: float = 0.7
    #: Of geohinted hostnames, fraction naming a *wrong* (stale) city —
    #: typically another city in the ISP's own footprint (the server moved,
    #: the PTR record did not follow).
    stale_fraction: float = 0.02

    def __post_init__(self) -> None:
        require_fraction(self.coverage, "coverage")
        require_fraction(self.geohint_fraction, "geohint_fraction")
        require_fraction(self.stale_fraction, "stale_fraction")


@dataclass
class PtrDataset:
    """IP → hostname mapping plus ground truth for tests."""

    records: dict[int, str]
    #: IPs whose hostname names a stale/incorrect location (ground truth).
    stale_ips: frozenset[int] = frozenset()
    #: Lookups lost to injected ``rdns.lookup`` faults (0 normally).
    lookups_failed: int = 0

    def hostname_of(self, ip: int) -> str | None:
        """The PTR record for ``ip``, or None."""
        return self.records.get(ip)

    def __len__(self) -> int:
        return len(self.records)


def _hostname_for(server: OffnetServer, city_iata: str, with_hint: bool, index: int) -> str:
    """An ISP-style cache hostname, optionally embedding the city code."""
    isp_domain = server.isp.name.lower().replace("_", "-") + ".example"
    role = {"Google": "ggc", "Netflix": "oca", "Meta": "fna", "Akamai": "aka"}[server.hypergiant]
    if with_hint:
        return f"{role}-{city_iata}-{index}.{isp_domain}"
    return f"{role}-node{index}.{isp_domain}"


def build_ptr_dataset(
    state: DeploymentState,
    world: World,
    config: PtrConfig | None = None,
    seed: int | np.random.Generator = 0,
    faults: FaultPlan | None = None,
) -> PtrDataset:
    """Synthesize PTR records for every offnet server in ``state``.

    ``faults`` wires the ``rdns.lookup`` injection site: a server whose
    index fires a ``drop`` fault loses its PTR lookup — no record is
    synthesized.  The drop is applied after the server's RNG draws, so
    injection never shifts the streams of the surviving records.
    """
    config = config or PtrConfig()
    rng = make_rng(seed)
    cities = sorted(world.cities, key=lambda c: c.iata)
    records: dict[int, str] = {}
    stale: set[int] = set()
    lookups_failed = 0
    for index, server in enumerate(state.servers):
        if rng.random() >= config.coverage:
            continue
        with_hint = rng.random() < config.geohint_fraction
        city_iata = server.facility.city.iata
        is_stale = False
        if with_hint and rng.random() < config.stale_fraction:
            # A stale record names another city the ISP operates in (the
            # server moved within the ISP); if the ISP is single-city, fall
            # back to a random city (a rarer, grosser misnaming).
            candidates = [c for c in server.isp.cities if c.iata != city_iata]
            if not candidates:
                candidates = [c for c in cities if c.iata != city_iata]
            other = candidates[int(rng.integers(0, len(candidates)))]
            city_iata = other.iata
            is_stale = True
        if faults is not None and faults.fires_ever("rdns.lookup", index):
            lookups_failed += 1
            continue
        if is_stale:
            stale.add(server.ip)
        records[server.ip] = _hostname_for(server, city_iata, with_hint, index)
    return PtrDataset(records=records, stale_ips=frozenset(stale), lookups_failed=lookups_failed)
