"""HOIHO-style geohint extraction from router/cache hostnames.

HOIHO (Luckie et al., CoNEXT'21) learns rules that map hostname substrings
to locations.  Our parser implements the rule family that matters here:
IATA codes and city names as hyphen/dot-delimited hostname tokens.  It also
reproduces HOIHO's known failure mode — short dictionary words inside
hostnames misread as place codes (the paper manually corrected ``host``
being read as Hostert, LU) — via an ambiguous-token list that the parser
can either naively accept or (default) suppress.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import require
from repro.topology.geo import City, World

#: Hostname tokens that collide with place codes/names but almost always
#: mean something else on the Internet (HOIHO's misinterpretation traps).
AMBIGUOUS_TOKENS = frozenset(
    {
        "host",  # ≠ Hostert, LU
        "node",
        "core",
        "cache",
        "static",
        "dyn",
        "pool",
        "net",
        "for",  # collides with Fortaleza's IATA code
        "per",  # collides with Perth's IATA code
        "man",  # collides with Manchester's IATA code
    }
)


@dataclass
class GeohintParser:
    """Token-dictionary hostname geolocator."""

    world: World
    #: Suppress tokens known to be ambiguous (the paper's manual correction).
    suppress_ambiguous: bool = True
    _iata_to_city: dict[str, City] = field(init=False, repr=False)
    _name_to_city: dict[str, City] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._iata_to_city = {c.iata: c for c in self.world.cities}
        self._name_to_city = {}
        for city in self.world.cities:
            slug = city.name.lower().replace(" ", "")
            self._name_to_city[slug] = city

    def tokens_of(self, hostname: str) -> list[str]:
        """Hostname split into candidate tokens (labels and hyphen parts)."""
        require(bool(hostname), "empty hostname")
        tokens: list[str] = []
        for label in hostname.lower().split("."):
            tokens.extend(part for part in label.split("-") if part)
        return tokens

    def city_of(self, hostname: str) -> City | None:
        """The city a hostname names, or None.

        IATA tokens and city-name tokens are both recognised; the first
        match wins.  With ``suppress_ambiguous`` (default) tokens from
        :data:`AMBIGUOUS_TOKENS` never match, avoiding the Hostert-style
        misreads the paper had to fix by hand.
        """
        for token in self.tokens_of(hostname):
            if self.suppress_ambiguous and token in AMBIGUOUS_TOKENS:
                continue
            city = self._iata_to_city.get(token)
            if city is not None:
                return city
            city = self._name_to_city.get(token)
            if city is not None:
                return city
        return None


def build_default_parser(world: World) -> GeohintParser:
    """The parser used by the validation stage (ambiguity suppression on)."""
    return GeohintParser(world=world, suppress_ambiguous=True)
