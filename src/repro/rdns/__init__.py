"""Reverse DNS and hostname geolocation (substrate).

The paper validates its latency clusters by checking that the hostnames of
IP addresses inside one cluster name consistent locations (§3.2): PTR
records come from a Rapid7-style dataset (:mod:`repro.rdns.ptr`), locations
are extracted from hostnames with a HOIHO-style geohint parser
(:mod:`repro.rdns.geohints`), and the cluster-consistency check is in
:mod:`repro.rdns.validation`.
"""

from repro.rdns.geohints import GeohintParser, build_default_parser
from repro.rdns.ptr import PtrConfig, PtrDataset, build_ptr_dataset
from repro.rdns.validation import ClusterGeoConsistency, ValidationSummary, validate_clusters

__all__ = [
    "ClusterGeoConsistency",
    "GeohintParser",
    "PtrConfig",
    "PtrDataset",
    "ValidationSummary",
    "build_default_parser",
    "build_ptr_dataset",
    "validate_clusters",
]
