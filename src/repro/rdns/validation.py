"""Cluster geo-consistency validation (§3.2, "Validation").

The paper checks each latency cluster that has two or more IP addresses
with identified hostname locations: a correct cluster should name a single
city (or at least a single metropolitan area).  Observed discrepancies may
be clustering errors, HOIHO misreads, or stale hostnames — all three exist
in this substrate, so the validation exercises the same uncertainty.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._util import require
from repro.rdns.geohints import GeohintParser
from repro.rdns.ptr import PtrDataset
from repro.topology.geo import City

#: Cities closer than this are "the same metropolitan area" (the paper's
#: example: suburbs of London and Paris).
METRO_RADIUS_M = 60_000.0


class ConsistencyClass(enum.Enum):
    """How geographically consistent one cluster's hostnames are."""

    SINGLE_CITY = "single_city"
    SINGLE_METRO = "single_metro"
    SINGLE_COUNTRY = "single_country"
    MULTI_COUNTRY = "multi_country"


@dataclass(frozen=True)
class ClusterGeoConsistency:
    """Validation verdict for one cluster."""

    cluster_ips: tuple[int, ...]
    located_ips: tuple[int, ...]
    cities: tuple[City, ...]
    verdict: ConsistencyClass


@dataclass
class ValidationSummary:
    """Aggregate §3.2-style validation counts."""

    results: list[ClusterGeoConsistency] = field(default_factory=list)

    @property
    def checkable_clusters(self) -> int:
        """Clusters with >= 2 located hostnames."""
        return len(self.results)

    def count(self, verdict: ConsistencyClass) -> int:
        """Number of clusters with ``verdict``."""
        return sum(1 for r in self.results if r.verdict is verdict)

    @property
    def consistent_fraction(self) -> float:
        """Fraction of checkable clusters naming one city or one metro."""
        if not self.results:
            return 1.0
        good = self.count(ConsistencyClass.SINGLE_CITY) + self.count(ConsistencyClass.SINGLE_METRO)
        return good / len(self.results)


def _classify(cities: list[City]) -> ConsistencyClass:
    require(len(cities) >= 2, "need at least two located hostnames")
    names = {c.name for c in cities}
    if len(names) == 1:
        return ConsistencyClass.SINGLE_CITY
    max_distance = max(a.distance_m(b) for i, a in enumerate(cities) for b in cities[i + 1 :])
    if max_distance <= METRO_RADIUS_M:
        return ConsistencyClass.SINGLE_METRO
    countries = {c.country_code for c in cities}
    if len(countries) == 1:
        return ConsistencyClass.SINGLE_COUNTRY
    return ConsistencyClass.MULTI_COUNTRY


def validate_clusters(
    clusters: list[list[int]],
    ptr: PtrDataset,
    parser: GeohintParser,
) -> ValidationSummary:
    """Validate latency ``clusters`` (lists of IPs) against hostname geohints.

    Only clusters with two or more IPs whose hostnames yield a location are
    classified ("this validation is incomplete", as the paper notes — many
    IPs lack PTR records or location hints).
    """
    summary = ValidationSummary()
    for cluster in clusters:
        located: list[int] = []
        cities: list[City] = []
        for ip in cluster:
            hostname = ptr.hostname_of(ip)
            if hostname is None:
                continue
            city = parser.city_of(hostname)
            if city is None:
                continue
            located.append(ip)
            cities.append(city)
        if len(located) < 2:
            continue
        summary.results.append(
            ClusterGeoConsistency(
                cluster_ips=tuple(cluster),
                located_ips=tuple(located),
                cities=tuple(cities),
                verdict=_classify(cities),
            )
        )
    return summary
