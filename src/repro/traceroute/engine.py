"""Hop-by-hop traceroute simulation over the AS graph.

A traceroute follows the valley-free AS path to the destination's AS and
emits one or two router hops per AS.  The realism that matters for the
§4.2.1 inference is reproduced:

* crossing an IXP fabric shows the far side's *fabric address* (the member
  router's interface on the peering LAN), not an address from the member's
  own space;
* some ASes filter ICMP entirely, so all their hops show as ``*`` — the
  source of the paper's "only unresponsive hops separate Google and the
  ISP" ambiguity class;
* individual hops are lost with a small probability;
* when a pair interconnects over both a PNI and an IXP, different source
  regions cross different media (regional egress engineering).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, require_fraction
from repro.obs import Telemetry, ensure_telemetry, get_logger
from repro.topology.asn import AS
from repro.topology.generator import Internet
from repro.topology.ixp import IXP
from repro.topology.relationships import PeeringMedium


@dataclass(frozen=True)
class TracerouteConfig:
    """Engine knobs."""

    #: Probability an AS filters ICMP on all its routers.
    icmp_filter_rate: float = 0.09
    #: Independent loss probability for an otherwise responsive hop.
    per_hop_loss: float = 0.03
    #: Probability an AS emits an extra internal hop after its entry hop.
    internal_hop_probability: float = 0.5
    #: Probability the destination host answers the final probe.
    destination_response_rate: float = 0.7
    #: Router addresses are carved from the tail of each AS's first prefix.
    router_pool_size: int = 64

    def __post_init__(self) -> None:
        require_fraction(self.icmp_filter_rate, "icmp_filter_rate")
        require_fraction(self.per_hop_loss, "per_hop_loss")
        require_fraction(self.internal_hop_probability, "internal_hop_probability")
        require_fraction(self.destination_response_rate, "destination_response_rate")
        require(self.router_pool_size >= 1, "router_pool_size must be >= 1")


@dataclass(frozen=True)
class Hop:
    """One traceroute hop; ``address`` is None for an unresponsive hop.

    ``true_asn`` is ground truth (always present, even for unresponsive
    hops) so inference stages can be scored.
    """

    address: int | None
    true_asn: int
    #: IXP whose fabric this address belongs to, if any (ground truth).
    via_ixp_id: int | None = None


@dataclass
class TraceroutePath:
    """A completed traceroute."""

    source: AS
    region: str
    destination_ip: int
    destination_asn: int | None
    hops: list[Hop] = field(default_factory=list)
    #: Whether a valley-free route to the destination AS existed.
    routable: bool = True


class TracerouteEngine:
    """Replays forwarding over an :class:`Internet` and emits hop lists."""

    def __init__(
        self,
        internet: Internet,
        config: TracerouteConfig | None = None,
        seed: int | np.random.Generator = 0,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.internet = internet
        self.config = config or TracerouteConfig()
        #: Diagnostics go through the repo-wide structured logger (see
        #: :mod:`repro.obs.logging`), not an engine-local mechanism.
        self._log = get_logger("repro.traceroute")
        self._obs = ensure_telemetry(telemetry)
        rng = make_rng(seed)
        # Stable per-AS ICMP filtering decisions (hypergiants respond: their
        # peering routers are famously visible in traceroutes).
        self._filters_icmp: dict[int, bool] = {}
        for autonomous_system in internet.registry:
            filtered = bool(rng.random() < self.config.icmp_filter_rate)
            if autonomous_system.role.name == "HYPERGIANT":
                filtered = False
            self._filters_icmp[autonomous_system.asn] = filtered
        self._ixp_by_id: dict[int, IXP] = {ixp.ixp_id: ixp for ixp in internet.ixps}
        self._loss_rng = rng

    # -- address helpers --------------------------------------------------------

    def filters_icmp(self, autonomous_system: AS) -> bool:
        """Ground truth: does this AS hide its routers from traceroute?"""
        return self._filters_icmp[autonomous_system.asn]

    def router_address(self, autonomous_system: AS, index: int) -> int:
        """The ``index``-th router address of an AS (tail of its prefix)."""
        prefix = self.internet.plan.prefixes_of(autonomous_system)[0]
        pool = min(self.config.router_pool_size, prefix.size // 4)
        return prefix.base + prefix.size - 1 - (index % pool)

    def _medium_for(self, a: AS, b: AS, region: str) -> PeeringMedium | None:
        """Which medium the (a, b) crossing uses from ``region``.

        Deterministic per (region, pair): regional egress engineering pins a
        given region's traffic to one interconnect.
        """
        if not self.internet.graph.are_peers(a, b):
            return None
        edge = self.internet.graph.peer_edge(a, b)
        if len(edge.media) == 1:
            return next(iter(edge.media))
        key = f"{region}:{min(a.asn, b.asn)}:{max(a.asn, b.asn)}"
        return PeeringMedium.IXP if zlib.crc32(key.encode()) % 2 else PeeringMedium.PNI

    # -- tracing -----------------------------------------------------------------

    def _emit(self, address: int, asn: int, via_ixp_id: int | None = None) -> Hop:
        """Wrap an address in a Hop, applying per-hop loss."""
        if self._loss_rng.random() < self.config.per_hop_loss:
            return Hop(address=None, true_asn=asn, via_ixp_id=via_ixp_id)
        return Hop(address=address, true_asn=asn, via_ixp_id=via_ixp_id)

    def trace(self, source: AS, destination_ip: int, region: str = "r0") -> TraceroutePath:
        """Traceroute from ``source`` to ``destination_ip``."""
        self._obs.count("traceroute.traces")
        destination_as = self.internet.plan.owner_of(destination_ip)
        if destination_as is None:
            self._obs.count("traceroute.unattributable")
            self._log.debug(
                "destination unattributable", ip=destination_ip, source_asn=source.asn
            )
            return TraceroutePath(source, region, destination_ip, None, [], routable=False)
        as_path = self.internet.graph.as_path(source, destination_as)
        if as_path is None:
            self._obs.count("traceroute.unroutable")
            self._log.debug(
                "no valley-free route",
                source_asn=source.asn,
                destination_asn=destination_as.asn,
            )
            return TraceroutePath(source, region, destination_ip, destination_as.asn, [], routable=False)

        hops: list[Hop] = []
        rng_extra = make_rng(zlib.crc32(f"{region}:{source.asn}:{destination_ip}".encode()))
        # Source-internal hops (e.g. the Google VM's gateway + border router).
        for index in range(2):
            if self._filters_icmp[source.asn]:
                hops.append(Hop(None, source.asn))
            else:
                hops.append(self._emit(self.router_address(source, index), source.asn))

        for previous, current in zip(as_path, as_path[1:]):
            medium = self._medium_for(previous, current, region)
            filtered = self._filters_icmp[current.asn]
            if medium is PeeringMedium.IXP:
                edge = self.internet.graph.peer_edge(previous, current)
                ixp = self._ixp_by_id[edge.ixp_id]
                entry_address = ixp.address_of(current) if ixp.is_member(current) else None
                if entry_address is None or filtered:
                    hops.append(Hop(None, current.asn, via_ixp_id=edge.ixp_id))
                else:
                    hops.append(self._emit(entry_address, current.asn, via_ixp_id=edge.ixp_id))
            else:
                if filtered:
                    hops.append(Hop(None, current.asn))
                else:
                    hops.append(self._emit(self.router_address(current, int(rng_extra.integers(0, 8))), current.asn))
            # Optional internal hop within the current AS.
            if current is not as_path[-1] and rng_extra.random() < self.config.internal_hop_probability:
                if filtered:
                    hops.append(Hop(None, current.asn))
                else:
                    hops.append(self._emit(self.router_address(current, 8 + int(rng_extra.integers(0, 8))), current.asn))

        # The destination host itself.
        if rng_extra.random() < self.config.destination_response_rate:
            hops.append(Hop(destination_ip, destination_as.asn))
        else:
            hops.append(Hop(None, destination_as.asn))
        return TraceroutePath(source, region, destination_ip, destination_as.asn, hops)
