"""Euro-IX / PeeringDB style IXP address mapping.

The real datasets list each IXP's peering-LAN prefixes and (incompletely)
which member uses which fabric address.  The paper prioritises Euro-IX over
PeeringDB "based on prior work"; we model the merged dataset as the ground
-truth member table with a configurable coverage — a fabric address outside
the covered subset is recognised as *an* IXP address but cannot be
attributed to a member.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require_fraction
from repro.topology.generator import Internet
from repro.topology.prefixes import Prefix


@dataclass
class IxpAddressMap:
    """Lookup structure for IXP fabric addresses."""

    fabric_prefixes: list[Prefix]
    #: fabric address -> member ASN (only the covered subset).
    member_by_address: dict[int, int]
    _sorted_bases: list[tuple[int, int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._sorted_bases = sorted((p.base, p.base + p.size) for p in self.fabric_prefixes)

    def is_fabric_address(self, address: int) -> bool:
        """Whether ``address`` is on any known IXP peering LAN."""
        return any(base <= address < end for base, end in self._sorted_bases)

    def member_of(self, address: int) -> int | None:
        """The member ASN using ``address``, if the dataset covers it."""
        return self.member_by_address.get(address)


def build_ixp_address_map(
    internet: Internet,
    coverage: float = 0.92,
    seed: int | np.random.Generator = 0,
) -> IxpAddressMap:
    """Build the dataset from the generated IXPs.

    ``coverage`` is the fraction of member ports whose address→member
    mapping appears in the dataset (Euro-IX + PeeringDB are good but not
    complete).
    """
    require_fraction(coverage, "coverage")
    rng = make_rng(seed)
    member_by_address: dict[int, int] = {}
    prefixes: list[Prefix] = []
    for ixp in internet.ixps:
        prefixes.append(ixp.fabric_prefix)
        for member in ixp.members:
            if rng.random() < coverage:
                member_by_address[ixp.address_of(member)] = member.asn
    return IxpAddressMap(fabric_prefixes=prefixes, member_by_address=member_by_address)
