"""Traceroute simulation and peering inference (substrate + §4.2.1).

The paper issues 21M traceroutes from VMs in all 112 Google Cloud regions to
one IP per announced /24, and infers that Google peers with an ISP when a
Google IP is directly followed by an IP mapped to the ISP (with Euro-IX /
PeeringDB data mapping IXP fabric addresses to member ISPs).  This package
replays that methodology over the generated topology: a hop-by-hop
forwarding engine (:mod:`repro.traceroute.engine`), the IXP address-mapping
dataset (:mod:`repro.traceroute.ixp_mapping`), and the inference plus
campaign driver (:mod:`repro.traceroute.peering`).
"""

from repro.traceroute.engine import Hop, TracerouteConfig, TracerouteEngine, TraceroutePath
from repro.traceroute.ixp_mapping import IxpAddressMap, build_ixp_address_map
from repro.traceroute.peering import (
    CampaignConfig,
    PeeringEvidence,
    PeeringInference,
    run_peering_campaign,
)

__all__ = [
    "CampaignConfig",
    "Hop",
    "IxpAddressMap",
    "PeeringEvidence",
    "PeeringInference",
    "TracerouteConfig",
    "TracerouteEngine",
    "TraceroutePath",
    "build_ixp_address_map",
    "run_peering_campaign",
]
