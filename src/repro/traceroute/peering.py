"""Peering inference from traceroutes (§4.2.1).

The rule: "We inferred an ISP as a peer if any traceroute has a Google IP
address directly followed by one mapped to the ISP."  ISPs where only
unresponsive hops separate Google and the ISP are the "possible peering"
class; everything else is "no evidence" (traffic must come via a provider).
The inference also records the interconnection medium per ISP: whether a
peering was observed over an IXP fabric address in at least one traceroute,
and whether it was *only* ever seen over IXPs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, spawn_rng
from repro.topology.asn import AS
from repro.topology.generator import Internet
from repro.traceroute.engine import TracerouteConfig, TracerouteEngine, TraceroutePath
from repro.traceroute.ixp_mapping import IxpAddressMap, build_ixp_address_map


class PeeringEvidence(enum.Enum):
    """What the traceroutes say about (hypergiant, ISP) interconnection."""

    PEER = "peer"
    POSSIBLE_PEER = "possible"
    NO_EVIDENCE = "no_evidence"


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign shape (the paper: 112 regions x one IP per announced /24)."""

    #: Source regions; the paper used all 112 Google Cloud regions.  Region
    #: diversity only matters here for multi-media peerings, so the default
    #: is smaller.
    n_regions: int = 8
    #: Destination IPs probed per target ISP.
    targets_per_isp: int = 2
    traceroute: TracerouteConfig = field(default_factory=TracerouteConfig)

    def __post_init__(self) -> None:
        require(self.n_regions >= 1, "need at least one region")
        require(self.targets_per_isp >= 1, "need at least one target per ISP")


@dataclass
class PeeringInference:
    """Aggregated inference over a whole campaign."""

    hypergiant: str
    evidence: dict[int, PeeringEvidence] = field(default_factory=dict)
    #: ASNs whose peering was seen over an IXP fabric at least once.
    seen_via_ixp: set[int] = field(default_factory=set)
    #: ASNs whose peering was seen over a non-IXP (PNI) boundary at least once.
    seen_via_pni: set[int] = field(default_factory=set)

    def classify(self, asn: int) -> PeeringEvidence:
        """Evidence class for ``asn`` (NO_EVIDENCE when never probed)."""
        return self.evidence.get(asn, PeeringEvidence.NO_EVIDENCE)

    def counts_for(self, asns: list[int]) -> dict[PeeringEvidence, int]:
        """Evidence-class histogram over ``asns`` (§4.2.1's headline split)."""
        counts = {evidence: 0 for evidence in PeeringEvidence}
        for asn in asns:
            counts[self.classify(asn)] += 1
        return counts

    @property
    def peer_asns(self) -> list[int]:
        """ASNs classified as peers, sorted."""
        return sorted(asn for asn, ev in self.evidence.items() if ev is PeeringEvidence.PEER)

    def ixp_at_least_once_fraction(self) -> float:
        """Of inferred peers, the fraction seen over an IXP at least once."""
        peers = self.peer_asns
        if not peers:
            return 0.0
        return sum(1 for asn in peers if asn in self.seen_via_ixp) / len(peers)

    def ixp_only_fraction(self) -> float:
        """Of inferred peers, the fraction *only* ever seen over IXPs."""
        peers = self.peer_asns
        if not peers:
            return 0.0
        only = sum(1 for asn in peers if asn in self.seen_via_ixp and asn not in self.seen_via_pni)
        return only / len(peers)


def _boundary_observation(
    path: TraceroutePath,
    hypergiant_asn: int,
    target_asn: int,
    internet: Internet,
    ixp_map: IxpAddressMap,
) -> tuple[PeeringEvidence, bool] | None:
    """What one traceroute says: (evidence, via_ixp) or None (nothing).

    Walks the hop list to the last responsive hop mapped to the hypergiant,
    then inspects what follows, exactly as the methodology does (using the
    IXP dataset first, then IP-to-AS ownership).
    """

    def map_address(address: int) -> tuple[int | None, bool]:
        """(mapped ASN or None, is_ixp_fabric_address)."""
        if ixp_map.is_fabric_address(address):
            return ixp_map.member_of(address), True
        owner = internet.plan.owner_of(address)
        return (owner.asn if owner is not None else None), False

    last_hypergiant_index: int | None = None
    for index, hop in enumerate(path.hops):
        if hop.address is None:
            continue
        mapped_asn, _ = map_address(hop.address)
        if mapped_asn == hypergiant_asn:
            last_hypergiant_index = index
    if last_hypergiant_index is None:
        return None

    skipped_unresponsive = False
    for hop in path.hops[last_hypergiant_index + 1 :]:
        if hop.address is None:
            skipped_unresponsive = True
            continue
        mapped_asn, is_ixp = map_address(hop.address)
        if mapped_asn == target_asn:
            if skipped_unresponsive:
                return (PeeringEvidence.POSSIBLE_PEER, is_ixp)
            return (PeeringEvidence.PEER, is_ixp)
        if mapped_asn is None:
            # An unmappable responsive hop (e.g. uncovered IXP port): it
            # breaks "directly followed", leaving at best a possibility.
            skipped_unresponsive = True
            continue
        return (PeeringEvidence.NO_EVIDENCE, False)
    return (PeeringEvidence.NO_EVIDENCE, False)


def run_peering_campaign(
    internet: Internet,
    hypergiant: str,
    target_isps: list[AS],
    config: CampaignConfig | None = None,
    ixp_map: IxpAddressMap | None = None,
    seed: int | np.random.Generator = 0,
) -> PeeringInference:
    """Traceroute from ``hypergiant`` VMs to ``target_isps`` and infer peering.

    (The paper can only run this from Google Cloud; the simulator can run it
    from any hypergiant, which the tests exploit.)
    """
    config = config or CampaignConfig()
    root = make_rng(seed)
    engine = TracerouteEngine(internet, config.traceroute, seed=spawn_rng(root, "engine"))
    if ixp_map is None:
        ixp_map = build_ixp_address_map(internet, seed=spawn_rng(root, "ixpmap"))
    source = internet.hypergiant_as(hypergiant)
    inference = PeeringInference(hypergiant=hypergiant)

    for isp in sorted(target_isps, key=lambda a: a.asn):
        prefix = internet.plan.prefixes_of(isp)[0]
        best: PeeringEvidence | None = None
        for region_index in range(config.n_regions):
            region = f"region-{region_index:03d}"
            for target_index in range(config.targets_per_isp):
                # One IP per /24, like the paper (offset 7 avoids the
                # infrastructure block's first addresses).
                destination_ip = prefix.base + 256 * target_index + 7
                path = engine.trace(source, destination_ip, region)
                observation = _boundary_observation(path, source.asn, isp.asn, internet, ixp_map)
                if observation is None:
                    continue
                evidence, via_ixp = observation
                if evidence is PeeringEvidence.PEER:
                    best = PeeringEvidence.PEER
                    if via_ixp:
                        inference.seen_via_ixp.add(isp.asn)
                    else:
                        inference.seen_via_pni.add(isp.asn)
                elif evidence is PeeringEvidence.POSSIBLE_PEER and best is not PeeringEvidence.PEER:
                    best = PeeringEvidence.POSSIBLE_PEER
                elif best is None:
                    best = PeeringEvidence.NO_EVIDENCE
        inference.evidence[isp.asn] = best or PeeringEvidence.NO_EVIDENCE
    return inference


@dataclass(frozen=True)
class PeeringScore:
    """Accuracy of the inference against the ground-truth graph."""

    true_peer_detected: int
    true_peer_possible: int
    true_peer_missed: int
    false_peer: int

    @property
    def recall(self) -> float:
        """Detected true peers / all true peers probed."""
        total = self.true_peer_detected + self.true_peer_possible + self.true_peer_missed
        return self.true_peer_detected / total if total else 1.0

    @property
    def precision(self) -> float:
        """Detected true peers / all detected peers."""
        detected = self.true_peer_detected + self.false_peer
        return self.true_peer_detected / detected if detected else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0.0 when both are 0)."""
        denominator = self.precision + self.recall
        return 2.0 * self.precision * self.recall / denominator if denominator else 0.0


def score_peering_inference(
    internet: Internet, hypergiant: str, inference: PeeringInference
) -> PeeringScore:
    """Score ``inference`` against the ground-truth relationship graph."""
    source = internet.hypergiant_as(hypergiant)
    detected = possible = missed = false_peer = 0
    by_asn = {a.asn: a for a in internet.registry}
    for asn, evidence in inference.evidence.items():
        is_peer = internet.graph.are_peers(source, by_asn[asn])
        if is_peer and evidence is PeeringEvidence.PEER:
            detected += 1
        elif is_peer and evidence is PeeringEvidence.POSSIBLE_PEER:
            possible += 1
        elif is_peer:
            missed += 1
        elif evidence is PeeringEvidence.PEER:
            false_peer += 1
    return PeeringScore(detected, possible, missed, false_peer)
