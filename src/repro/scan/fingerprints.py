"""Hypergiant certificate fingerprint rules, 2021 and 2023 editions.

The 2021 methodology (Gigis et al., SIGCOMM'21) identified hypergiant
certificates mainly via the Subject Organization (Google) or via exact
matches against names harvested from onnet servers (Meta).  The paper updates
both rules for the evasions deployed since (§2.2):

* Google: match ``CN == *.googlevideo.com`` instead of the (now absent)
  Organization entry;
* Meta: match the ``*.fbcdn.net`` suffix pattern instead of the exact onnet
  name set.

Every rule also applies the "other checks": a plausible issuer for the
hypergiant (rejecting self-signed middlebox impostors).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro._util import require
from repro.scan.certificates import TRUSTED_ISSUERS, Certificate


@dataclass(frozen=True)
class FingerprintRule:
    """A predicate identifying one hypergiant's serving certificates."""

    hypergiant: str
    edition: str
    _predicate: Callable[[Certificate], bool]

    def matches(self, certificate: Certificate) -> bool:
        """Whether ``certificate`` is attributed to this hypergiant."""
        if not _issuer_plausible(certificate, self.hypergiant):
            return False
        return self._predicate(certificate)


def _issuer_plausible(certificate: Certificate, hypergiant: str) -> bool:
    """The "other checks": a believable CA, never self-signed."""
    if certificate.self_signed:
        return False
    return certificate.issuer_organization == TRUSTED_ISSUERS[hypergiant]


_GOOGLEVIDEO_CN = "*.googlevideo.com"
_META_ONNET_NAMES = frozenset({"*.fbcdn.net", "*.facebook.com", "*.fb.com"})
_META_SUFFIX = re.compile(r"(^|\.)fbcdn\.net$")
_NETFLIX_CN = "*.nflxvideo.net"
_AKAMAI_ORG = "Akamai Technologies, Inc."


def _google_2021(certificate: Certificate) -> bool:
    """2021 rule: Organization subfield of the Subject Name."""
    return certificate.subject_organization == "Google LLC"


def _google_2023(certificate: Certificate) -> bool:
    """2023 rule: CN field matches ``*.googlevideo.com``."""
    return certificate.subject_common_name == _GOOGLEVIDEO_CN


def _meta_2021(certificate: Certificate) -> bool:
    """2021 rule: names exactly match names seen on onnet servers."""
    return any(name in _META_ONNET_NAMES for name in certificate.all_names)


def _meta_2023(certificate: Certificate) -> bool:
    """2023 rule: any name matches the ``*.fbcdn.net`` suffix pattern."""
    return any(_META_SUFFIX.search(name.removeprefix("*.")) for name in certificate.all_names)


def _netflix(certificate: Certificate) -> bool:
    """Stable rule: Netflix Organization or the nflxvideo CN."""
    return (
        certificate.subject_organization == "Netflix, Inc."
        or certificate.subject_common_name == _NETFLIX_CN
    )


def _akamai(certificate: Certificate) -> bool:
    """Stable rule: Akamai Organization entry."""
    return certificate.subject_organization == _AKAMAI_ORG


def fingerprint_rules(edition: str) -> list[FingerprintRule]:
    """The rule set for ``edition`` (``"2021"`` or ``"2023"``), one per HG.

    The 2023 edition is the paper's updated methodology; running the 2021
    edition against a 2023 scan quantifies how much footprint the evasions
    hide (the ablation in ``benchmarks/test_bench_ablations.py``).
    """
    require(edition in ("2021", "2023"), f"unknown edition {edition!r}")
    if edition == "2021":
        return [
            FingerprintRule("Google", edition, _google_2021),
            FingerprintRule("Netflix", edition, _netflix),
            FingerprintRule("Meta", edition, _meta_2021),
            FingerprintRule("Akamai", edition, _akamai),
        ]
    return [
        FingerprintRule("Google", edition, _google_2023),
        FingerprintRule("Netflix", edition, _netflix),
        FingerprintRule("Meta", edition, _meta_2023),
        FingerprintRule("Akamai", edition, _akamai),
    ]
