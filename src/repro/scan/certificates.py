"""X.509-lite certificates and hypergiant naming conventions.

Models exactly the certificate fields the paper's methodology reads: the
Subject Common Name (CN), the Subject Organization, the SubjectAltNames, and
the issuer.  Conventions are epoch-dependent, reproducing the two evasions the
paper had to work around:

* **Google**: in 2021 leaf certificates carried ``Organization = Google LLC``;
  by 2023 Google *removed the Organization entry*, so only the CN
  (``*.googlevideo.com``) identifies the serving certificate.
* **Meta**: in 2021 offnets served the same names as onnet servers
  (``*.fbcdn.net``); by 2023 Meta switched to *site-specific* names like
  ``*.fhan14-4.fna.fbcdn.net`` (han = Hanoi), so exact-match-against-onnet
  fingerprinting fails and a suffix pattern is required.

Netflix and Akamai conventions are stable across epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.deployment.placement import OffnetServer
from repro.topology.asn import AS


@dataclass(frozen=True)
class Certificate:
    """The subset of X.509 the detection methodology inspects."""

    subject_common_name: str
    subject_organization: str | None
    subject_alternative_names: tuple[str, ...]
    issuer_common_name: str
    issuer_organization: str
    self_signed: bool = False

    def __post_init__(self) -> None:
        require(bool(self.subject_common_name), "certificate needs a CN")

    @property
    def all_names(self) -> tuple[str, ...]:
        """CN plus SANs (deduplicated, CN first)."""
        names = [self.subject_common_name]
        for san in self.subject_alternative_names:
            if san not in names:
                names.append(san)
        return tuple(names)


#: Issuer organizations each hypergiant actually uses (the methodology's
#: "other checks" include verifying a plausible CA, which defeats self-signed
#: impostors).
TRUSTED_ISSUERS: dict[str, str] = {
    "Google": "Google Trust Services LLC",
    "Netflix": "DigiCert Inc",
    "Meta": "DigiCert Inc",
    "Akamai": "Let's Encrypt",
}


def _meta_site_code(server: OffnetServer, rng: np.random.Generator) -> str:
    """Meta's 2023-era site code, e.g. ``fhan14-4`` for a Hanoi deployment.

    The leading ``f`` + IATA code of the facility's city + a small cluster
    number and machine index, matching the convention the paper reports
    (``*.fhan14-4.fna.fbcdn.net``, ``*.fbhx2-2.fna.fbcdn.net``).
    """
    iata = server.facility.city.iata
    cluster = 1 + server.facility.facility_id % 20
    machine = 1 + int(rng.integers(1, 6))
    return f"f{iata}{cluster}-{machine}"


def certificate_for_server(server: OffnetServer, epoch: str, rng: np.random.Generator) -> Certificate:
    """The certificate the offnet ``server`` presents on port 443 in ``epoch``.

    ``epoch`` is ``"2021"`` or ``"2023"``; conventions differ as described in
    the module docstring.
    """
    require(epoch in ("2021", "2023"), f"unknown epoch {epoch!r}")
    hypergiant = server.hypergiant
    issuer_org = TRUSTED_ISSUERS[hypergiant]
    if hypergiant == "Google":
        organization = "Google LLC" if epoch == "2021" else None
        return Certificate(
            subject_common_name="*.googlevideo.com",
            subject_organization=organization,
            subject_alternative_names=("*.c.googlevideo.com", "googlevideo.com"),
            issuer_common_name="GTS CA 1C3",
            issuer_organization=issuer_org,
        )
    if hypergiant == "Meta":
        if epoch == "2021":
            common_name = "*.fbcdn.net"
        else:
            common_name = f"*.{_meta_site_code(server, rng)}.fna.fbcdn.net"
        return Certificate(
            subject_common_name=common_name,
            subject_organization="Meta Platforms, Inc.",
            subject_alternative_names=(common_name.removeprefix("*."),),
            issuer_common_name="DigiCert SHA2 High Assurance Server CA",
            issuer_organization=issuer_org,
        )
    if hypergiant == "Netflix":
        return Certificate(
            subject_common_name="*.nflxvideo.net",
            subject_organization="Netflix, Inc.",
            subject_alternative_names=("nflxvideo.net",),
            issuer_common_name="DigiCert TLS RSA SHA256 2020 CA1",
            issuer_organization=issuer_org,
        )
    if hypergiant == "Akamai":
        return Certificate(
            subject_common_name="a248.e.akamai.net",
            subject_organization="Akamai Technologies, Inc.",
            subject_alternative_names=("*.akamaized.net", "*.akamaihd.net"),
            issuer_common_name="Let's Encrypt R3",
            issuer_organization=issuer_org,
        )
    raise ValueError(f"no certificate convention for hypergiant {hypergiant!r}")


def infrastructure_certificate(isp: AS, host_index: int) -> Certificate:
    """A mundane ISP-operated service certificate (scan background noise)."""
    domain = f"{isp.name.lower().replace('_', '-')}.example"
    return Certificate(
        subject_common_name=f"svc{host_index}.{domain}",
        subject_organization=isp.name,
        subject_alternative_names=(domain,),
        issuer_common_name="Generic CA",
        issuer_organization="Generic Trust Services",
    )


def impostor_certificate(hypergiant: str, rng: np.random.Generator) -> Certificate:
    """A self-signed certificate impersonating ``hypergiant``.

    Appliances, captive portals, and middleboxes on the real Internet present
    hypergiant names without being hypergiant servers; the methodology's
    issuer check must reject these.
    """
    names = {
        "Google": "*.googlevideo.com",
        "Meta": "*.fbcdn.net",
        "Netflix": "*.nflxvideo.net",
        "Akamai": "a248.e.akamai.net",
    }
    require(hypergiant in names, f"unknown hypergiant {hypergiant!r}")
    serial = int(rng.integers(0, 10_000))
    return Certificate(
        subject_common_name=names[hypergiant],
        subject_organization=None,
        subject_alternative_names=(),
        issuer_common_name=f"middlebox-{serial}",
        issuer_organization="Self-Signed",
        self_signed=True,
    )


def onnet_certificate(hypergiant: str, epoch: str = "2023") -> Certificate:
    """The certificate a hypergiant's *onnet* (own-AS) server presents.

    Identical in content to offnet certificates — this is the paper's point:
    ownership of the hosting IP, not the certificate, distinguishes offnet
    from onnet.
    """
    require(epoch in ("2021", "2023"), f"unknown epoch {epoch!r}")
    google_organization = "Google LLC" if epoch == "2021" else None
    conventions = {
        "Google": ("*.googlevideo.com", google_organization, "GTS CA 1C3"),
        "Meta": ("*.fbcdn.net", "Meta Platforms, Inc.", "DigiCert SHA2 High Assurance Server CA"),
        "Netflix": ("*.nflxvideo.net", "Netflix, Inc.", "DigiCert TLS RSA SHA256 2020 CA1"),
        "Akamai": ("a248.e.akamai.net", "Akamai Technologies, Inc.", "Let's Encrypt R3"),
    }
    require(hypergiant in conventions, f"unknown hypergiant {hypergiant!r}")
    common_name, organization, issuer_cn = conventions[hypergiant]
    return Certificate(
        subject_common_name=common_name,
        subject_organization=organization,
        subject_alternative_names=(),
        issuer_common_name=issuer_cn,
        issuer_organization=TRUSTED_ISSUERS[hypergiant],
    )
