"""TLS-scan-based offnet discovery (substrate + methodology).

Reimplements the §2.2 pipeline: an X.509-lite certificate model with each
hypergiant's (epoch-dependent) naming conventions
(:mod:`repro.scan.certificates`), a Censys-style synthetic port-443 scan
(:mod:`repro.scan.scanner`), the 2021 and updated 2023 fingerprint rules
(:mod:`repro.scan.fingerprints`), and the offnet-inference step that joins
certificate fingerprints with IP-to-AS ownership
(:mod:`repro.scan.detection`).
"""

from repro.scan.certificates import Certificate, certificate_for_server, infrastructure_certificate
from repro.scan.detection import (
    DetectedOffnet,
    DetectionScore,
    OffnetInventory,
    detect_offnets,
    score_detection,
)
from repro.scan.evasion import (
    EvasionConfig,
    rotating_san_certificate,
    shared_wildcard_certificate,
)
from repro.scan.fingerprints import FingerprintRule, fingerprint_rules
from repro.scan.scanner import ScanConfig, ScanRecord, ScanResult, run_scan

__all__ = [
    "Certificate",
    "DetectedOffnet",
    "DetectionScore",
    "EvasionConfig",
    "FingerprintRule",
    "OffnetInventory",
    "ScanConfig",
    "ScanRecord",
    "ScanResult",
    "certificate_for_server",
    "detect_offnets",
    "fingerprint_rules",
    "infrastructure_certificate",
    "rotating_san_certificate",
    "run_scan",
    "score_detection",
    "shared_wildcard_certificate",
]
