"""Offnet inference: join certificate fingerprints with IP ownership.

The §2.2 rule: *"If an IP address of an ISP other than a hypergiant hosts a
certificate of the hypergiant, then the IP address corresponds to an offnet
server of the hypergiant, hosted in the ISP."*  This module applies that rule
to a :class:`~repro.scan.scanner.ScanResult` and scores the inference against
the generated ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import require
from repro.deployment.placement import DeploymentState
from repro.obs import Telemetry, ensure_telemetry
from repro.scan.fingerprints import FingerprintRule, fingerprint_rules
from repro.scan.scanner import ScanResult
from repro.topology.asn import AS
from repro.topology.generator import Internet


@dataclass(frozen=True)
class DetectedOffnet:
    """One inferred offnet server."""

    ip: int
    hypergiant: str
    isp_asn: int


@dataclass
class OffnetInventory:
    """The inferred offnet footprint of one scan."""

    epoch: str
    edition: str
    detections: list[DetectedOffnet]
    _by_hypergiant: dict[str, list[DetectedOffnet]] = field(init=False, repr=False)
    _isps_by_hypergiant: dict[str, set[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_hypergiant = {}
        self._isps_by_hypergiant = {}
        seen_ips: set[int] = set()
        for detection in self.detections:
            require(detection.ip not in seen_ips, f"IP {detection.ip} detected twice")
            seen_ips.add(detection.ip)
            self._by_hypergiant.setdefault(detection.hypergiant, []).append(detection)
            self._isps_by_hypergiant.setdefault(detection.hypergiant, set()).add(detection.isp_asn)

    def __len__(self) -> int:
        return len(self.detections)

    def ips_of(self, hypergiant: str) -> list[int]:
        """Detected offnet IPs of ``hypergiant``, sorted."""
        return sorted(d.ip for d in self._by_hypergiant.get(hypergiant, ()))

    def isp_count(self, hypergiant: str) -> int:
        """Number of distinct ISPs hosting detected ``hypergiant`` offnets."""
        return len(self._isps_by_hypergiant.get(hypergiant, ()))

    def isp_asns(self, hypergiant: str) -> set[int]:
        """ASNs of ISPs hosting detected ``hypergiant`` offnets."""
        return set(self._isps_by_hypergiant.get(hypergiant, ()))

    def hosting_isp_asns(self) -> set[int]:
        """ASNs hosting at least one detected offnet of any hypergiant."""
        result: set[int] = set()
        for asns in self._isps_by_hypergiant.values():
            result.update(asns)
        return result

    def hypergiants_in_isp(self, asn: int) -> list[str]:
        """Hypergiants with detected offnets in ISP ``asn``, sorted."""
        return sorted(hg for hg, asns in self._isps_by_hypergiant.items() if asn in asns)

    def detections_in_isp(self, asn: int) -> list[DetectedOffnet]:
        """All detections inside ISP ``asn``, in IP order."""
        return sorted((d for d in self.detections if d.isp_asn == asn), key=lambda d: d.ip)


def detect_offnets(
    internet: Internet,
    scan: ScanResult,
    rules: list[FingerprintRule] | None = None,
    ip2as=None,
    telemetry: Telemetry | None = None,
) -> OffnetInventory:
    """Apply fingerprint ``rules`` (default: scan-epoch edition) to ``scan``.

    ``ip2as`` optionally supplies a BGP-derived IP-to-AS dataset
    (:class:`repro.bgp.ip2as.Ip2AsDataset`); without it, attribution uses
    the ground-truth address plan (a perfect IP-to-AS oracle).  The
    ablation bench compares the two.
    """
    if rules is None:
        rules = fingerprint_rules(scan.epoch)
    obs = ensure_telemetry(telemetry)
    hypergiant_asns = {a.asn for a in internet.hypergiant_ases.values()}
    detections: list[DetectedOffnet] = []
    matched_records = 0
    for record in scan.records:
        matched: str | None = None
        for rule in rules:
            if rule.matches(record.certificate):
                matched = rule.hypergiant
                break
        if matched is None:
            continue
        matched_records += 1
        if ip2as is None:
            owner = internet.plan.owner_of(record.ip)
        else:
            owner_asn = ip2as.lookup(record.ip)
            owner = internet.registry.get(owner_asn) if owner_asn is not None and owner_asn in internet.registry else None
        if owner is None or owner.asn in hypergiant_asns or not owner.is_isp:
            continue  # onnet or unattributable: not an offnet
        detections.append(DetectedOffnet(ip=record.ip, hypergiant=matched, isp_asn=owner.asn))
    edition = rules[0].edition if rules else "2023"
    obs.count("detect.records_scanned", len(scan.records))
    obs.count("detect.records_matched", matched_records)
    obs.count("detect.onnet_or_unattributable", matched_records - len(detections))
    obs.count("detect.offnets_found", len(detections))
    return OffnetInventory(epoch=scan.epoch, edition=edition, detections=detections)


@dataclass(frozen=True)
class DetectionScore:
    """Precision/recall of an inventory against deployment ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was detected."""
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when nothing was deployed."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0.0 when both are 0)."""
        denominator = self.precision + self.recall
        return 2.0 * self.precision * self.recall / denominator if denominator else 0.0


def score_detection(inventory: OffnetInventory, truth: DeploymentState) -> DetectionScore:
    """Score ``inventory`` against the ground-truth deployment ``truth``.

    A detection is a true positive iff the IP really hosts an offnet of the
    detected hypergiant.  Ground-truth servers that went undetected (e.g.
    unresponsive during the scan) are false negatives.
    """
    true_positives = 0
    false_positives = 0
    detected_ips: set[int] = set()
    for detection in inventory.detections:
        detected_ips.add(detection.ip)
        server = truth.server_at(detection.ip)
        if server is not None and server.hypergiant == detection.hypergiant:
            true_positives += 1
        else:
            false_positives += 1
    false_negatives = sum(1 for server in truth.servers if server.ip not in detected_ips)
    return DetectionScore(true_positives, false_positives, false_negatives)
