"""Censys-style synthetic IPv4 port-443 scan.

Produces the scan snapshot the detection methodology consumes: for each
responsive IP serving TLS, the certificate presented.  The scan covers:

* every offnet server of the epoch's deployment state (modulo a small
  non-response rate — some servers are firewalled or down during the scan);
* per-ISP infrastructure hosts serving mundane ISP certificates (noise);
* hypergiant onnet servers inside the hypergiants' own ASes (which the
  methodology must *exclude* — same certificates, wrong owner);
* a sprinkling of self-signed impostor certificates on ISP addresses
  (middleboxes), which the issuer check must reject.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, require_fraction, spawn_rng
from repro.deployment.placement import DeploymentState
from repro.faults import FaultPlan
from repro.obs import Telemetry, ensure_telemetry
from repro.scan.certificates import (
    Certificate,
    certificate_for_server,
    impostor_certificate,
    infrastructure_certificate,
    onnet_certificate,
)
from repro.scan.evasion import (
    CERTLESS_QUIC,
    SHARED_WILDCARD,
    EvasionConfig,
    rotating_san_certificate,
    shared_wildcard_certificate,
)
from repro.topology.generator import Internet


@dataclass(frozen=True)
class ScanRecord:
    """One responsive IP and the certificate it presented."""

    ip: int
    certificate: Certificate


@dataclass(frozen=True)
class ScanConfig:
    """Knobs for :func:`run_scan`."""

    #: Fraction of offnet servers that do not answer the scan.
    offnet_nonresponse_rate: float = 0.02
    #: Infrastructure TLS hosts per ISP (background noise).
    infrastructure_hosts_per_isp: int = 3
    #: Onnet TLS servers per hypergiant (inside the hypergiant's own AS).
    onnet_hosts_per_hypergiant: int = 50
    #: Expected number of impostor (self-signed) certificates per 100 ISPs.
    impostors_per_100_isps: float = 10.0
    #: Adversarial certificate evasion adopted by the offnet fleet
    #: (see :mod:`repro.scan.evasion`).  None = honest certificates.
    evasion: EvasionConfig | None = None

    def __post_init__(self) -> None:
        require_fraction(self.offnet_nonresponse_rate, "offnet_nonresponse_rate")
        require(self.infrastructure_hosts_per_isp >= 0, "bad infrastructure host count")
        require(self.onnet_hosts_per_hypergiant >= 0, "bad onnet host count")
        require(self.impostors_per_100_isps >= 0, "bad impostor rate")


@dataclass
class ScanResult:
    """A scan snapshot: records plus the epoch they were taken in."""

    epoch: str
    records: list[ScanRecord]
    #: Offnet records lost to injected ``scan.record`` faults (0 normally).
    records_dropped: int = 0
    _by_ip: dict[int, ScanRecord] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_ip = {}
        for record in self.records:
            require(record.ip not in self._by_ip, f"duplicate scan record for IP {record.ip}")
            self._by_ip[record.ip] = record

    def __len__(self) -> int:
        return len(self.records)

    def record_at(self, ip: int) -> ScanRecord | None:
        """The record for ``ip`` or None if unresponsive/unscanned."""
        return self._by_ip.get(ip)


def run_scan(
    internet: Internet,
    state: DeploymentState,
    config: ScanConfig | None = None,
    seed: int | np.random.Generator = 0,
    telemetry: Telemetry | None = None,
    faults: FaultPlan | None = None,
) -> ScanResult:
    """Scan the generated Internet at ``state``'s epoch.

    ``faults`` wires the ``scan.record`` injection site: an offnet server
    whose index fires a ``drop`` fault silently vanishes from the snapshot.
    The drop is applied *after* the server's response and certificate draws,
    so injection never shifts the RNG streams of the surviving records.
    """
    config = config or ScanConfig()
    obs = ensure_telemetry(telemetry)
    root = make_rng(seed)
    rng_response = spawn_rng(root, "response")
    rng_certs = spawn_rng(root, "certs")
    rng_noise = spawn_rng(root, "noise")
    records: list[ScanRecord] = []

    # Offnet servers (the signal).
    nonresponders = 0
    records_dropped = 0
    evasion = config.evasion if config.evasion is not None and config.evasion.enabled else None
    certless_endpoints = 0
    rewritten_certificates = 0
    for index, server in enumerate(state.servers):
        if rng_response.random() < config.offnet_nonresponse_rate:
            nonresponders += 1
            continue
        # The honest certificate is always drawn, even for evading servers:
        # evasion is a pure (seed, knob, ip) function applied afterwards, so
        # turning it on never shifts the RNG streams of honest records.
        certificate = certificate_for_server(server, state.epoch, rng_certs)
        if evasion is not None:
            mode = evasion.mode_for(server.ip)
            if mode == CERTLESS_QUIC:
                certless_endpoints += 1
                continue
            if mode is not None:
                certificate = (
                    shared_wildcard_certificate()
                    if mode == SHARED_WILDCARD
                    else rotating_san_certificate(server, evasion.seed)
                )
                rewritten_certificates += 1
        record = ScanRecord(server.ip, certificate)
        if faults is not None and faults.fires_ever("scan.record", index):
            records_dropped += 1
            continue
        records.append(record)

    # ISP infrastructure hosts (noise) on the first addresses of each ISP.
    for isp in internet.isps:
        prefix = internet.plan.prefixes_of(isp)[0]
        for host_index in range(config.infrastructure_hosts_per_isp):
            ip = prefix.base + 1 + host_index
            records.append(ScanRecord(ip, infrastructure_certificate(isp, host_index)))

    # Hypergiant onnet servers: same certs, hypergiant-owned addresses.
    for name in sorted(internet.hypergiant_ases):
        hypergiant_as = internet.hypergiant_as(name)
        prefix = internet.plan.prefixes_of(hypergiant_as)[0]
        for host_index in range(config.onnet_hosts_per_hypergiant):
            ip = prefix.base + 1 + host_index
            records.append(ScanRecord(ip, onnet_certificate(name, state.epoch)))

    # Self-signed impostors on random ISP addresses (after the infra block,
    # before the offnet block, so they never collide with real servers).
    n_impostors = int(rng_noise.poisson(config.impostors_per_100_isps * len(internet.isps) / 100.0))
    hypergiant_names = sorted(internet.hypergiant_ases)
    isps = internet.isps
    used_ips = {record.ip for record in records}
    for _ in range(n_impostors):
        isp = isps[int(rng_noise.integers(0, len(isps)))]
        prefix = internet.plan.prefixes_of(isp)[0]
        ip = prefix.base + int(rng_noise.integers(config.infrastructure_hosts_per_isp + 1, 512))
        if ip in used_ips:
            continue
        used_ips.add(ip)
        hypergiant = hypergiant_names[int(rng_noise.integers(0, len(hypergiant_names)))]
        records.append(ScanRecord(ip, impostor_certificate(hypergiant, rng_noise)))

    records.sort(key=lambda r: r.ip)
    n_infra = config.infrastructure_hosts_per_isp * len(internet.isps)
    n_onnet = config.onnet_hosts_per_hypergiant * len(internet.hypergiant_ases)
    obs.count("scan.hosts_probed", len(state.servers) + n_infra + n_onnet + n_impostors)
    obs.count("scan.offnet_servers", len(state.servers))
    obs.count("scan.offnet_nonresponders", nonresponders)
    obs.count("scan.records", len(records))
    if records_dropped:
        obs.count("faults.scan_records_dropped", records_dropped)
    if evasion is not None:
        obs.count("scan.evasion_certless", certless_endpoints)
        obs.count("scan.evasion_rewritten", rewritten_certificates)
    obs.log(
        "scan complete",
        epoch=state.epoch,
        records=len(records),
        offnet_nonresponders=nonresponders,
    )
    return ScanResult(epoch=state.epoch, records=records, records_dropped=records_dropped)
