"""Adversarial certificate evasion (the §2.2 arms race, projected forward).

The paper's fingerprints already had to survive two evasions (Google
dropping the Organization entry, Meta rotating to site-specific names).
This module models the next moves a hypergiant could make against a
certificate-based detector, as scenario knobs on the scan:

* **rotating SANs** — per-server rotated, unrecognisable names on an
  otherwise legitimate certificate (trusted issuer kept, Organization
  withheld).  Every published fingerprint rule misses it.
* **shared wildcard certs** — one bland shared wildcard certificate from a
  generic CA across all evading servers of all hypergiants, so the scan
  sees an undifferentiated CDN edge.
* **cert-less QUIC** — the endpoint stops answering TCP/443 with a
  certificate at all (media over QUIC with out-of-band keys); the scan
  simply has no record for it.

Each knob is a fraction of offnet servers that adopt the evasion.  Whether
a given server evades is a pure function of ``(seed, knob, ip)`` — the
same blake2b-coin idiom as :mod:`repro.faults` — so evasion never draws
from the scan's RNG streams: certificates of non-evading servers are
byte-identical to the evasion-off run, and raising a fraction can only
grow the evading set (detection recall is monotonically non-increasing in
every knob, which ``tests/test_evasion.py`` asserts).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro._util import require_fraction
from repro.deployment.placement import OffnetServer
from repro.scan.certificates import TRUSTED_ISSUERS, Certificate

#: Evasion mode identifiers, in precedence order (an IP selected by several
#: knobs uses the strongest: no record beats a rewritten certificate).
CERTLESS_QUIC = "certless_quic"
SHARED_WILDCARD = "shared_wildcard"
ROTATING_SAN = "rotating_san"


def _coin(seed: int, knob: str, ip: int) -> float:
    """A uniform [0, 1) draw that is a pure function of its arguments."""
    material = f"evasion:{seed}:{knob}:{ip}".encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class EvasionConfig:
    """Which fraction of offnet servers adopts each evasion."""

    #: Fraction of offnet servers presenting rotated, unfingerprints-able names.
    rotating_san_fraction: float = 0.0
    #: Fraction presenting the one shared generic wildcard certificate.
    shared_wildcard_fraction: float = 0.0
    #: Fraction serving cert-less QUIC only (no scan record at all).
    certless_quic_fraction: float = 0.0
    #: Keys the per-IP evasion coins (independent of the scan seed).
    seed: int = 0

    def __post_init__(self) -> None:
        require_fraction(self.rotating_san_fraction, "rotating_san_fraction")
        require_fraction(self.shared_wildcard_fraction, "shared_wildcard_fraction")
        require_fraction(self.certless_quic_fraction, "certless_quic_fraction")

    @property
    def enabled(self) -> bool:
        """Whether any knob is turned up at all."""
        return bool(
            self.rotating_san_fraction
            or self.shared_wildcard_fraction
            or self.certless_quic_fraction
        )

    def mode_for(self, ip: int) -> str | None:
        """The evasion mode server ``ip`` adopts, or None (honest cert).

        Each knob flips its own coin, so growing one fraction never
        un-selects an IP chosen by another (monotonicity per knob).
        """
        if _coin(self.seed, CERTLESS_QUIC, ip) < self.certless_quic_fraction:
            return CERTLESS_QUIC
        if _coin(self.seed, SHARED_WILDCARD, ip) < self.shared_wildcard_fraction:
            return SHARED_WILDCARD
        if _coin(self.seed, ROTATING_SAN, ip) < self.rotating_san_fraction:
            return ROTATING_SAN
        return None


def rotating_san_certificate(server: OffnetServer, seed: int) -> Certificate:
    """A legitimate but unrecognisable certificate for ``server``.

    The hypergiant keeps its real CA (the issuer check still passes, as it
    should — this is a genuine hypergiant certificate) but rotates the
    subject to a per-server opaque edge name and withholds the
    Organization, so none of the 2021/2023 fingerprint rules match.
    """
    token = hashlib.blake2b(f"rotate:{seed}:{server.ip}".encode(), digest_size=4).hexdigest()
    name = f"*.{token}.edge-{server.facility.city.iata}.example"
    issuer = TRUSTED_ISSUERS[server.hypergiant]
    return Certificate(
        subject_common_name=name,
        subject_organization=None,
        subject_alternative_names=(name.removeprefix("*."),),
        issuer_common_name=f"{issuer} Edge CA",
        issuer_organization=issuer,
    )


def shared_wildcard_certificate() -> Certificate:
    """The one bland wildcard certificate every evading server shares.

    Nothing identifies the operator: a generic cache name, no
    Organization, a generic CA.  Indistinguishable from any third-party
    CDN edge, and identical across hypergiants by construction.
    """
    return Certificate(
        subject_common_name="*.edge-cache.example",
        subject_organization=None,
        subject_alternative_names=("edge-cache.example",),
        issuer_common_name="Generic CA",
        issuer_organization="Generic Trust Services",
    )
