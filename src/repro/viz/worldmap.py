"""ASCII world choropleths (Figure 1's medium, in text).

Without country polygons, the map anchors on the world model's cities:
each character cell of a lat/lon grid takes the value of the nearest city
within a cutoff radius, shaded with a monochrome density ramp (a proper
sequential encoding: light → dark = low → high).  Because cities trace the
continents, the rendered shape is a recognisable world map; ocean cells
stay blank.
"""

from __future__ import annotations

from repro._util import great_circle_m, require, require_fraction
from repro.topology.geo import World

#: Sequential ramp, light -> dark (fractions 0..1 map onto these).
SHADE_RAMP = " .:-=+*#%@"
#: A cell further than this from every city is ocean/empty.
DEFAULT_REACH_KM = 900.0


def shade_for(fraction: float) -> str:
    """The ramp character for a value in [0, 1]."""
    require_fraction(fraction, "fraction")
    index = min(len(SHADE_RAMP) - 1, int(fraction * (len(SHADE_RAMP) - 1) + 0.5))
    return SHADE_RAMP[index]


def render_world_map(
    world: World,
    value_by_country: dict[str, float],
    width: int = 72,
    height: int = 24,
    reach_km: float = DEFAULT_REACH_KM,
    title: str = "",
) -> str:
    """Render a per-country value map.

    ``value_by_country`` maps ISO codes to fractions in [0, 1]; countries
    absent from the dict render at 0 (lightest shade).
    """
    require(width >= 20 and height >= 10, "map too small")
    lat_top, lat_bottom = 72.0, -56.0
    lon_left, lon_right = -168.0, 180.0

    cities = world.cities
    rows: list[str] = []
    for row_index in range(height):
        lat = lat_top + (lat_bottom - lat_top) * row_index / (height - 1)
        row_chars: list[str] = []
        for column in range(width):
            lon = lon_left + (lon_right - lon_left) * column / (width - 1)
            nearest = None
            nearest_m = reach_km * 1000.0
            for city in cities:
                distance = great_circle_m(lat, lon, city.lat, city.lon)
                if distance < nearest_m:
                    nearest_m = distance
                    nearest = city
            if nearest is None:
                row_chars.append(" ")
            else:
                value = value_by_country.get(nearest.country_code, 0.0)
                row_chars.append(shade_for(min(1.0, max(0.0, value))))
        rows.append("".join(row_chars))

    legend = "legend: " + "".join(SHADE_RAMP) + "  (0% -> 100% of users)"
    header = [title] if title else []
    return "\n".join(header + rows + [legend])
