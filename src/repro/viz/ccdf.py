"""ASCII CCDF / line plots.

One x axis, one y axis, up to four series with fixed distinct glyphs
(identity is carried by the glyph and the legend, never by shading), a
recessive dotted grid, and tick labels on both axes.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro._util import require

#: Fixed series glyphs, assigned in order (never cycled past four series).
SERIES_GLYPHS = ("*", "o", "+", "x")


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.1f}"
    return f"{value:.2f}"


def render_ccdf(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "P(X >= x)",
    x_range: tuple[float, float] | None = None,
) -> str:
    """Render step-like curves (e.g. CCDFs) as a text plot.

    ``series`` maps a legend label to ``(x_values, y_values)``; y is assumed
    to be in [0, 1].  At most four series (the fixed-glyph rule).
    """
    require(0 < len(series) <= len(SERIES_GLYPHS), "1-4 series supported")
    require(width >= 20 and height >= 6, "plot too small")

    cleaned: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for label, (xs, ys) in series.items():
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        require(xs.shape == ys.shape, f"series {label!r} x/y mismatch")
        require(xs.size > 0, f"series {label!r} is empty")
        cleaned[label] = (xs, ys)

    if x_range is None:
        x_min = min(float(xs.min()) for xs, _ in cleaned.values())
        x_max = max(float(xs.max()) for xs, _ in cleaned.values())
    else:
        x_min, x_max = x_range
    if math.isclose(x_min, x_max):
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    # Recessive dotted gridlines at quartile y levels.
    for fraction in (0.25, 0.5, 0.75):
        row = int(round((1.0 - fraction) * (height - 1)))
        for column in range(0, width, 4):
            grid[row][column] = "."

    def x_to_col(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def y_to_row(y: float) -> int:
        return int(round((1.0 - min(1.0, max(0.0, y))) * (height - 1)))

    for glyph, (label, (xs, ys)) in zip(SERIES_GLYPHS, cleaned.items()):
        # Sample the step function at every column for a continuous trace.
        order = np.argsort(xs)
        xs_sorted, ys_sorted = xs[order], ys[order]
        for column in range(width):
            x = x_min + column / (width - 1) * (x_max - x_min)
            index = np.searchsorted(xs_sorted, x, side="right") - 1
            if index < 0:
                y = ys_sorted[0]
            else:
                y = ys_sorted[index]
            grid[y_to_row(float(y))][column] = glyph

    lines: list[str] = []
    for row_index, row in enumerate(grid):
        y_value = 1.0 - row_index / (height - 1)
        tick = f"{y_value:4.2f} |" if row_index % max(1, (height - 1) // 4) == 0 else "     |"
        lines.append(tick + "".join(row))
    lines.append("     +" + "-" * width)
    # Three x ticks: min, mid, max.
    tick_row = [" "] * (width + 6)
    for fraction in (0.0, 0.5, 1.0):
        column = 6 + int(fraction * (width - 1))
        text = _format_tick(x_min + fraction * (x_max - x_min))
        for offset, char in enumerate(text):
            if column + offset < len(tick_row):
                tick_row[column + offset] = char
    lines.append("".join(tick_row))
    lines.append(f"      x: {x_label}    y: {y_label}")
    legend = "      legend: " + "   ".join(
        f"{glyph} {label}" for glyph, label in zip(SERIES_GLYPHS, cleaned)
    )
    lines.append(legend)
    return "\n".join(lines)
