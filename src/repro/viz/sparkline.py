"""One-line sparklines for small time series (diurnal curves, trajectories)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._util import require

#: Eight vertical levels, light to heavy.
SPARK_CHARS = " _.-=+*#"


def render_sparkline(values: Sequence[float], label: str = "") -> str:
    """Render ``values`` as a one-line character sparkline.

    Values are min-max normalised; a flat series renders at the midline.
    """
    series = np.asarray(list(values), dtype=float)
    require(series.size > 0, "sparkline needs values")
    low, high = float(series.min()), float(series.max())
    if high - low < 1e-12:
        normalised = np.full(series.size, 0.5)
    else:
        normalised = (series - low) / (high - low)
    indices = np.clip((normalised * (len(SPARK_CHARS) - 1)).round().astype(int), 0, len(SPARK_CHARS) - 1)
    line = "".join(SPARK_CHARS[i] for i in indices)
    suffix = f"  [{low:.2f}..{high:.2f}]"
    prefix = f"{label}: " if label else ""
    return prefix + line + suffix
