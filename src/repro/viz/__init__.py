"""Text-mode figure rendering (terminal-friendly reproductions).

The paper's two figures are a CCDF plot (Figure 2) and three world
choropleths (Figure 1).  This package renders both as plain text so the
benchmark harnesses can regenerate the *figures*, not just their underlying
series: :func:`render_ccdf` draws multi-series CCDF curves with one y axis,
distinct per-series glyphs and a legend; :func:`render_world_map` shades a
city-anchored world grid with a monochrome density ramp (a sequential
encoding: light → dark = low → high).
"""

from repro.viz.ccdf import render_ccdf
from repro.viz.sparkline import render_sparkline
from repro.viz.worldmap import render_world_map

__all__ = ["render_ccdf", "render_sparkline", "render_world_map"]
