"""BGP route collection and IP-to-AS mapping (substrate).

Every stage of the paper that attributes an IP address to a network —
offnet detection (§2.2), traceroute peering inference (§4.2.1) — relies on
an IP-to-AS dataset derived from BGP routing tables (RouteViews/RIPE RIS
style).  This package models that derivation: ASes announce their prefixes
(:mod:`repro.bgp.announcements`), collectors with a limited peer set record
the AS paths they hear (:mod:`repro.bgp.collector`), and a longest-prefix
-match dataset is distilled from the RIBs (:mod:`repro.bgp.ip2as`) —
including the real-world artifacts: prefixes invisible to the collector's
peers, MOAS conflicts, and IXP peering LANs that are *not* announced in
BGP at all (which is why the §4.2.1 methodology needs Euro-IX data).
"""

from repro.bgp.announcements import Announcement, announced_prefixes
from repro.bgp.collector import CollectorConfig, RouteCollector, build_route_collector
from repro.bgp.ip2as import Ip2AsDataset, build_ip2as

__all__ = [
    "Announcement",
    "CollectorConfig",
    "Ip2AsDataset",
    "RouteCollector",
    "announced_prefixes",
    "build_ip2as",
    "build_route_collector",
]
