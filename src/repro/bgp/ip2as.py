"""IP-to-AS datasets distilled from collector RIBs.

For every visible prefix, the origin is decided by majority vote across
collector peers; prefixes with an unresolvable MOAS conflict (no origin
reaches the vote threshold) stay unmapped, as do prefixes no peer could
see and — structurally — IXP peering LANs, which are never announced.
Lookup is longest-prefix match.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro._util import require, require_fraction
from repro.bgp.collector import RouteCollector
from repro.topology.prefixes import Prefix


@dataclass
class Ip2AsDataset:
    """Longest-prefix-match IP-to-origin-AS mapping."""

    #: (prefix, origin ASN), disjoint after vote resolution.
    mappings: list[tuple[Prefix, int]]
    #: Prefixes dropped because no origin won the vote.
    conflicted: list[Prefix] = field(default_factory=list)
    _bases: list[int] = field(init=False, repr=False)
    _rows: list[tuple[int, int, int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rows = sorted((p.base, p.base + p.size, asn) for p, asn in self.mappings)
        for (base_a, end_a, _), (base_b, _, _) in zip(rows, rows[1:]):
            require(end_a <= base_b, "ip2as mappings must be disjoint")
        self._rows = rows
        self._bases = [row[0] for row in rows]

    def lookup(self, address: int) -> int | None:
        """Origin ASN covering ``address``, or None when unmapped."""
        index = bisect_right(self._bases, address) - 1
        if index < 0:
            return None
        base, end, asn = self._rows[index]
        return asn if base <= address < end else None

    def __len__(self) -> int:
        return len(self.mappings)


def build_ip2as(collector: RouteCollector, vote_threshold: float = 0.6) -> Ip2AsDataset:
    """Distill ``collector``'s RIB into an :class:`Ip2AsDataset`.

    ``vote_threshold`` is the fraction of reporting peers an origin must
    reach; below it the prefix is recorded as conflicted and left out.
    """
    require_fraction(vote_threshold, "vote_threshold")
    mappings: list[tuple[Prefix, int]] = []
    conflicted: list[Prefix] = []
    for prefix in collector.visible_prefixes():
        votes = collector.origins_of(prefix)
        total = sum(votes.values())
        winner, winner_votes = max(votes.items(), key=lambda kv: (kv[1], -kv[0]))
        if winner_votes / total >= vote_threshold:
            mappings.append((prefix, winner))
        else:
            conflicted.append(prefix)
    return Ip2AsDataset(mappings=mappings, conflicted=conflicted)
