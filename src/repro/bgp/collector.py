"""Route collectors: partial views of the routing system.

A collector (RouteViews/RIPE RIS style) has BGP sessions with a set of
peer ASes and records, for every announced prefix, the AS path each peer
uses.  A prefix a peer has no valley-free route to simply does not appear
in that peer's table — the collector's view is inherently partial, which
is why collector-peer diversity matters for IP-to-AS completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, spawn_rng
from repro.bgp.announcements import Announcement, announced_prefixes
from repro.topology.asn import AS, ASRole
from repro.topology.generator import Internet
from repro.topology.prefixes import Prefix


@dataclass(frozen=True)
class CollectorConfig:
    """Collector peer-set composition."""

    #: All tier-1s peer with the collector (full feeds).
    include_tier1s: bool = True
    #: Number of additional transit / access peers sampled.
    n_extra_peers: int = 12
    #: MOAS injection rate for the announcement set.
    moas_rate: float = 0.01

    def __post_init__(self) -> None:
        require(self.n_extra_peers >= 0, "n_extra_peers must be >= 0")


@dataclass(frozen=True)
class RibEntry:
    """One table entry at one collector peer."""

    peer_asn: int
    prefix: Prefix
    as_path: tuple[int, ...]

    @property
    def origin_asn(self) -> int:
        """The path's origin (last ASN)."""
        return self.as_path[-1]


@dataclass
class RouteCollector:
    """The assembled multi-peer RIB."""

    peers: list[AS]
    entries: list[RibEntry] = field(default_factory=list)

    def entries_for(self, prefix: Prefix) -> list[RibEntry]:
        """All entries for ``prefix`` across peers."""
        return [entry for entry in self.entries if entry.prefix == prefix]

    def visible_prefixes(self) -> list[Prefix]:
        """Prefixes seen by at least one peer, deduplicated and sorted."""
        seen = {(entry.prefix.base, entry.prefix.length): entry.prefix for entry in self.entries}
        return [seen[key] for key in sorted(seen)]

    def origins_of(self, prefix: Prefix) -> dict[int, int]:
        """Origin ASN -> number of peers reporting it, for ``prefix``."""
        votes: dict[int, int] = {}
        for entry in self.entries_for(prefix):
            votes[entry.origin_asn] = votes.get(entry.origin_asn, 0) + 1
        return votes


def build_route_collector(
    internet: Internet,
    config: CollectorConfig | None = None,
    seed: int | np.random.Generator = 0,
) -> RouteCollector:
    """Collect routes from a tier-1-heavy peer set plus sampled extras."""
    config = config or CollectorConfig()
    root = make_rng(seed)
    rng_peers = spawn_rng(root, "peers")

    peers: list[AS] = []
    if config.include_tier1s:
        peers.extend(internet.registry.with_role(ASRole.TIER1))
    candidates = [a for a in internet.isps if a not in peers]
    if config.n_extra_peers and candidates:
        indices = rng_peers.choice(
            len(candidates), size=min(config.n_extra_peers, len(candidates)), replace=False
        )
        peers.extend(candidates[i] for i in sorted(indices))

    by_asn = {a.asn: a for a in internet.registry}
    collector = RouteCollector(peers=peers)
    announcements = announced_prefixes(internet, config.moas_rate, seed=spawn_rng(root, "moas"))

    # Group by origin so each (peer, origin) path is computed once.
    by_origin: dict[int, list[Announcement]] = {}
    for announcement in announcements:
        by_origin.setdefault(announcement.origin_asn, []).append(announcement)

    for origin_asn in sorted(by_origin):
        origin = by_asn.get(origin_asn)
        if origin is None:
            continue
        routes = internet.graph.routes_to(origin)
        for peer in collector.peers:
            if peer not in routes:
                continue
            path = internet.graph.as_path(peer, origin)
            if path is None:
                continue
            as_path = tuple(a.asn for a in path)
            for announcement in by_origin[origin_asn]:
                collector.entries.append(RibEntry(peer.asn, announcement.prefix, as_path))
    return collector
