"""Prefix origination: what each AS announces into BGP.

Registered ASes announce their allocated prefixes.  IXP peering LANs are
deliberately *not* announced (their owner pseudo-ASes are not routing
participants) — reproducing the real-world property that fabric addresses
cannot be attributed through BGP-derived IP-to-AS data.

A small MOAS (multi-origin AS) rate injects the dataset's classic
ambiguity: a prefix occasionally shows a second origin (anycast,
misconfiguration, or a leak).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import make_rng, require_fraction
from repro.topology.generator import Internet
from repro.topology.prefixes import Prefix


@dataclass(frozen=True)
class Announcement:
    """One (prefix, origin) pair as injected into BGP."""

    prefix: Prefix
    origin_asn: int
    #: True for the rare bogus second origin of a MOAS conflict.
    spurious: bool = False


def announced_prefixes(
    internet: Internet,
    moas_rate: float = 0.01,
    seed: int | np.random.Generator = 0,
) -> list[Announcement]:
    """Every announcement in the generated Internet, in prefix order."""
    require_fraction(moas_rate, "moas_rate")
    rng = make_rng(seed)
    registered_asns = {autonomous_system.asn for autonomous_system in internet.registry}
    all_asns = sorted(registered_asns)
    announcements: list[Announcement] = []
    for autonomous_system in internet.registry:
        for prefix in internet.plan.prefixes_of(autonomous_system):
            announcements.append(Announcement(prefix, autonomous_system.asn))
            if rng.random() < moas_rate:
                other = int(all_asns[int(rng.integers(0, len(all_asns)))])
                if other != autonomous_system.asn:
                    announcements.append(Announcement(prefix, other, spurious=True))
    announcements.sort(key=lambda a: (a.prefix.base, a.prefix.length, a.origin_asn))
    return announcements
