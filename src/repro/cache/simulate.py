"""Request-stream simulation: emergent byte hit ratios.

Draw requests from a catalog's Zipf popularity, warm the cache, then
measure the steady-state byte hit ratio — the §2.1 "offnet serve
fraction" as an emergent property of catalog shape x appliance capacity x
replacement policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import make_rng, require
from repro.cache.catalog import CatalogSpec, ContentCatalog, build_catalog
from repro.cache.policies import make_cache


@dataclass(frozen=True)
class CacheSimResult:
    """Steady-state statistics of one simulation."""

    hypergiant: str
    policy: str
    capacity_gb: float
    byte_hit_ratio: float
    request_hit_ratio: float
    catalog_gb: float

    @property
    def capacity_to_catalog(self) -> float:
        """Appliance capacity as a fraction of the catalog footprint."""
        return self.capacity_gb / self.catalog_gb if self.catalog_gb else 0.0


def simulate_cache(
    spec: CatalogSpec,
    capacity_gb: float,
    policy: str = "lru",
    n_requests: int = 150_000,
    warmup_fraction: float = 0.4,
    seed: int | np.random.Generator = 0,
) -> CacheSimResult:
    """Simulate one appliance against one catalog.

    ``warmup_fraction`` of the requests fill the cache before counters are
    reset, so the reported ratios are steady-state.
    """
    require(n_requests >= 10, "need a meaningful request count")
    require(0.0 <= warmup_fraction < 1.0, "warmup_fraction must be in [0, 1)")
    rng = make_rng(seed)
    catalog = build_catalog(spec, seed=rng)
    cache = make_cache(policy, capacity_gb)

    requests = rng.choice(spec.n_objects, size=n_requests, p=catalog.popularity)
    warmup = int(warmup_fraction * n_requests)
    for index, object_id in enumerate(requests):
        if index == warmup:
            cache.reset_counters()
        cache.access(int(object_id), float(catalog.sizes_gb[object_id]))

    return CacheSimResult(
        hypergiant=spec.hypergiant,
        policy=policy,
        capacity_gb=capacity_gb,
        byte_hit_ratio=cache.byte_hit_ratio,
        request_hit_ratio=cache.request_hit_ratio,
        catalog_gb=catalog.total_gb,
    )


def capacity_for_target_ratio(
    spec: CatalogSpec,
    target_byte_hit_ratio: float,
    policy: str = "lru",
    seed: int = 0,
    tolerance: float = 0.02,
    max_iterations: int = 12,
) -> tuple[float, CacheSimResult]:
    """Binary-search the appliance capacity that hits a target byte ratio.

    Used to check §2.1's constants are *reachable* with plausible
    capacity-to-catalog fractions.
    """
    catalog = build_catalog(spec, seed=seed)
    low, high = catalog.total_gb * 1e-4, catalog.total_gb
    result = simulate_cache(spec, high, policy, seed=seed)
    for _ in range(max_iterations):
        middle = (low + high) / 2.0
        result = simulate_cache(spec, middle, policy, seed=seed)
        if abs(result.byte_hit_ratio - target_byte_hit_ratio) <= tolerance:
            return middle, result
        if result.byte_hit_ratio < target_byte_hit_ratio:
            low = middle
        else:
            high = middle
    return (low + high) / 2.0, result
