"""Offnet cache simulation (substrate extension).

Everywhere else in the library, the fraction of a hypergiant's traffic an
offnet can serve is a constant taken from §2.1 (Google 80 %, Netflix 95 %,
Meta 86 %, Akamai 75 %).  Those constants are really *byte hit ratios* of
cache appliances against each service's content catalog.  This package
makes them emergent: Zipf content catalogs per hypergiant
(:mod:`repro.cache.catalog`), classic cache replacement policies
(:mod:`repro.cache.policies`), and a request-stream simulator
(:mod:`repro.cache.simulate`) whose hit ratios reproduce §2.1's numbers —
and explain them: Netflix's small, head-heavy catalog fits on one
appliance; YouTube's long tail does not.
"""

from repro.cache.catalog import DEFAULT_CATALOGS, CatalogSpec, ContentCatalog
from repro.cache.policies import FifoCache, LfuCache, LruCache, make_cache
from repro.cache.simulate import CacheSimResult, simulate_cache

__all__ = [
    "CacheSimResult",
    "CatalogSpec",
    "ContentCatalog",
    "DEFAULT_CATALOGS",
    "FifoCache",
    "LfuCache",
    "LruCache",
    "make_cache",
    "simulate_cache",
]
