"""Content catalogs: what each hypergiant's offnets actually cache.

The catalogs differ in exactly the ways that produce §2.1's offnet
fractions: Netflix has a compact, head-heavy video catalog (an Open
Connect appliance holds most of what is watched tonight); YouTube's
catalog is enormous with a long tail (a Google Global Cache misses more);
Meta sits between; Akamai serves many customers' web objects, the least
concentrated mix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import make_rng, require, require_positive, zipf_weights


@dataclass(frozen=True)
class CatalogSpec:
    """Shape of one hypergiant's content catalog."""

    hypergiant: str
    n_objects: int
    #: Zipf popularity exponent (higher = more head-heavy).
    popularity_exponent: float
    #: Mean object size, GB (sizes are drawn log-normally around it).
    mean_object_gb: float
    size_sigma: float = 0.5

    def __post_init__(self) -> None:
        require(self.n_objects >= 1, "catalog needs objects")
        require_positive(self.popularity_exponent, "popularity_exponent")
        require_positive(self.mean_object_gb, "mean_object_gb")


#: Calibrated so a same-sized appliance reproduces §2.1's byte hit ratios:
#: Netflix ~0.95, Meta ~0.86, Google ~0.80, Akamai ~0.75.
DEFAULT_CATALOGS: dict[str, CatalogSpec] = {
    "Netflix": CatalogSpec("Netflix", n_objects=4_000, popularity_exponent=1.15, mean_object_gb=2.0),
    "Meta": CatalogSpec("Meta", n_objects=60_000, popularity_exponent=1.05, mean_object_gb=0.05),
    "Google": CatalogSpec("Google", n_objects=120_000, popularity_exponent=1.0, mean_object_gb=0.05),
    "Akamai": CatalogSpec("Akamai", n_objects=100_000, popularity_exponent=0.85, mean_object_gb=0.02),
}


@dataclass
class ContentCatalog:
    """A materialised catalog: per-object popularity and size."""

    spec: CatalogSpec
    popularity: np.ndarray
    sizes_gb: np.ndarray

    @property
    def total_gb(self) -> float:
        """Total catalog footprint."""
        return float(self.sizes_gb.sum())

    def byte_popularity(self) -> np.ndarray:
        """Fraction of requested *bytes* attributable to each object."""
        weighted = self.popularity * self.sizes_gb
        return weighted / weighted.sum()

    def working_set_gb(self, byte_fraction: float) -> float:
        """Smallest cache that could serve ``byte_fraction`` of the bytes
        with perfect (offline-optimal by byte density) placement."""
        density = self.popularity  # popularity per GB is popularity/size*size
        order = np.argsort(-density)
        cumulative_bytes = np.cumsum(self.byte_popularity()[order])
        cumulative_size = np.cumsum(self.sizes_gb[order])
        index = int(np.searchsorted(cumulative_bytes, byte_fraction))
        index = min(index, len(cumulative_size) - 1)
        return float(cumulative_size[index])


def build_catalog(spec: CatalogSpec, seed: int | np.random.Generator = 0) -> ContentCatalog:
    """Materialise a catalog from its spec (deterministic per seed)."""
    rng = make_rng(seed)
    popularity = zipf_weights(spec.n_objects, spec.popularity_exponent)
    log_mean = np.log(spec.mean_object_gb) - spec.size_sigma**2 / 2.0
    sizes = rng.lognormal(log_mean, spec.size_sigma, size=spec.n_objects)
    return ContentCatalog(spec=spec, popularity=popularity, sizes_gb=sizes)
