"""Cache replacement policies: LRU, LFU, FIFO.

Byte-capacity caches over variable-size objects.  The interface is the
classic one: ``access(object_id, size_gb) -> hit?``; on a miss the object
is admitted (if it fits the cache at all) and victims are evicted in
policy order until it fits.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field

from repro._util import require, require_positive


@dataclass
class _BaseCache:
    capacity_gb: float
    used_gb: float = 0.0
    hits: int = 0
    misses: int = 0
    hit_bytes_gb: float = 0.0
    miss_bytes_gb: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.capacity_gb, "capacity_gb")

    # -- bookkeeping shared by the policies -----------------------------------

    def _record(self, hit: bool, size_gb: float) -> None:
        if hit:
            self.hits += 1
            self.hit_bytes_gb += size_gb
        else:
            self.misses += 1
            self.miss_bytes_gb += size_gb

    @property
    def request_hit_ratio(self) -> float:
        """Hits over requests."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        """Hit bytes over requested bytes — §2.1's offnet fraction analogue."""
        total = self.hit_bytes_gb + self.miss_bytes_gb
        return self.hit_bytes_gb / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero the hit/miss statistics (e.g. after a warm-up phase)."""
        self.hits = self.misses = 0
        self.hit_bytes_gb = self.miss_bytes_gb = 0.0


@dataclass
class LruCache(_BaseCache):
    """Least-recently-used eviction."""

    _entries: OrderedDict = field(default_factory=OrderedDict)

    def access(self, object_id: int, size_gb: float) -> bool:
        """Touch one object; returns True on a hit."""
        require(size_gb > 0, "object size must be positive")
        if object_id in self._entries:
            self._entries.move_to_end(object_id)
            self._record(True, size_gb)
            return True
        self._record(False, size_gb)
        if size_gb <= self.capacity_gb:
            while self.used_gb + size_gb > self.capacity_gb:
                _, victim_size = self._entries.popitem(last=False)
                self.used_gb -= victim_size
            self._entries[object_id] = size_gb
            self.used_gb += size_gb
        return False

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._entries


@dataclass
class FifoCache(_BaseCache):
    """First-in-first-out eviction (no recency update on hits)."""

    _entries: OrderedDict = field(default_factory=OrderedDict)

    def access(self, object_id: int, size_gb: float) -> bool:
        """Touch one object; returns True on a hit."""
        require(size_gb > 0, "object size must be positive")
        if object_id in self._entries:
            self._record(True, size_gb)
            return True
        self._record(False, size_gb)
        if size_gb <= self.capacity_gb:
            while self.used_gb + size_gb > self.capacity_gb:
                _, victim_size = self._entries.popitem(last=False)
                self.used_gb -= victim_size
            self._entries[object_id] = size_gb
            self.used_gb += size_gb
        return False

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._entries


@dataclass
class LfuCache(_BaseCache):
    """Least-frequently-used eviction (lazy heap, ties by insertion age)."""

    _sizes: dict = field(default_factory=dict)
    _counts: dict = field(default_factory=dict)
    _heap: list = field(default_factory=list)
    _age: int = 0

    def access(self, object_id: int, size_gb: float) -> bool:
        """Touch one object; returns True on a hit."""
        require(size_gb > 0, "object size must be positive")
        if object_id in self._sizes:
            self._counts[object_id] += 1
            heapq.heappush(self._heap, (self._counts[object_id], self._age, object_id))
            self._age += 1
            self._record(True, size_gb)
            return True
        self._record(False, size_gb)
        if size_gb <= self.capacity_gb:
            while self.used_gb + size_gb > self.capacity_gb:
                self._evict_one()
            self._sizes[object_id] = size_gb
            self._counts[object_id] = 1
            heapq.heappush(self._heap, (1, self._age, object_id))
            self._age += 1
            self.used_gb += size_gb
        return False

    def _evict_one(self) -> None:
        while self._heap:
            count, _, object_id = heapq.heappop(self._heap)
            if object_id in self._counts and self._counts[object_id] == count:
                self.used_gb -= self._sizes.pop(object_id)
                del self._counts[object_id]
                return
        require(False, "LFU eviction with empty cache")  # pragma: no cover

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._sizes


def make_cache(policy: str, capacity_gb: float):
    """Factory: ``"lru"`` / ``"lfu"`` / ``"fifo"``."""
    policies = {"lru": LruCache, "lfu": LfuCache, "fifo": FifoCache}
    require(policy in policies, f"unknown cache policy {policy!r}")
    return policies[policy](capacity_gb=capacity_gb)
