"""Study archives: export measurement artifacts to portable files.

Real measurement studies release their datasets (scan snapshots, inferred
inventories, latency matrices, clusterings); this package does the same for
a :class:`~repro.core.pipeline.Study` — JSON/CSV for the relational
artifacts, ``.npz`` for the latency matrix — and loads them back into
plain-data structures that the analysis layer can consume without
re-running the pipeline.
"""

from repro.io.archive import ArchiveManifest, LoadedArchive, load_archive, save_archive

__all__ = ["ArchiveManifest", "LoadedArchive", "load_archive", "save_archive"]
