"""Save/load study artifacts as a directory of portable files.

Layout of an archive directory::

    manifest.json          version, epoch list, xi list, counts
    inventory_<epoch>.csv  detected offnets: ip, hypergiant, isp_asn
    isps.csv               ASN, name, country, users (estimates)
    latency.npz            rtt matrix + target ips + vantage coordinates
    clusterings.json       per xi: {asn: {"ips": [...], "labels": [...]}}
    ptr.csv                ip, hostname
    results.json           headline metrics (paper-shape numbers)

Everything round-trips: :func:`load_archive` returns a
:class:`LoadedArchive` from which Table 2 and Figure 2 can be recomputed
without the generator (see ``tests/test_io.py``), which is exactly how a
third party would reanalyse a released dataset.

The manifest carries a sha256 digest per data file; :func:`load_archive`
verifies them before parsing anything, so a truncated or bit-flipped file
raises :class:`ArchiveCorruptError` up front instead of surfacing as a
confusing parse error deep in reanalysis code.
"""

from __future__ import annotations

import csv
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import __version__
from repro._util import require
from repro.clustering.sites import ClusteringConfig, SiteClustering
from repro.core.pipeline import Study

_MANIFEST_NAME = "manifest.json"


class ArchiveCorruptError(RuntimeError):
    """An archive file is missing, truncated, or fails its digest check."""


def file_sha256(path: Path) -> str:
    """Hex sha256 of one file, streamed."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class ArchiveManifest:
    """Archive-level metadata."""

    version: str
    epochs: tuple[str, ...]
    xis: tuple[float, ...]
    n_vantage_points: int
    n_detections: int
    #: filename -> sha256 hex digest; empty for pre-digest archives.
    digests: tuple[tuple[str, str], ...] = ()
    #: (site, lost, total) coverage triples, sorted by site; empty means a
    #: complete (or pre-coverage) archive.  Mirrors the study's
    #: :class:`~repro.resilience.CoverageReport`, so a released dataset
    #: declares what fraction of its measurement surface survived.
    coverage: tuple[tuple[str, int, int], ...] = ()

    def to_json(self) -> dict:
        """JSON-serialisable form."""
        return {
            "version": self.version,
            "epochs": list(self.epochs),
            "xis": list(self.xis),
            "n_vantage_points": self.n_vantage_points,
            "n_detections": self.n_detections,
            "digests": {name: digest for name, digest in self.digests},
            "coverage": {
                site: {"lost": lost, "total": total} for site, lost, total in self.coverage
            },
        }

    @classmethod
    def from_json(cls, data: dict) -> "ArchiveManifest":
        """Parse the manifest file."""
        return cls(
            version=data["version"],
            epochs=tuple(data["epochs"]),
            xis=tuple(float(x) for x in data["xis"]),
            n_vantage_points=int(data["n_vantage_points"]),
            n_detections=int(data["n_detections"]),
            digests=tuple(sorted(data.get("digests", {}).items())),
            coverage=tuple(
                (site, int(entry["lost"]), int(entry["total"]))
                for site, entry in sorted(data.get("coverage", {}).items())
            ),
        )


def verify_archive(directory: str | Path, manifest: ArchiveManifest | None = None) -> None:
    """Check every digest recorded in ``directory``'s manifest.

    Raises :class:`ArchiveCorruptError` naming the first file that is
    missing or whose bytes no longer match.  Archives written before
    digests existed (empty ``digests``) pass vacuously.
    """
    directory = Path(directory)
    if manifest is None:
        manifest_path = directory / _MANIFEST_NAME
        if not manifest_path.exists():
            raise ArchiveCorruptError(f"not an archive: {directory} (missing {_MANIFEST_NAME})")
        try:
            manifest = ArchiveManifest.from_json(json.loads(manifest_path.read_text()))
        except (json.JSONDecodeError, KeyError) as error:
            raise ArchiveCorruptError(f"unreadable manifest in {directory}: {error}") from error
    for name, expected in manifest.digests:
        path = directory / name
        if not path.exists():
            raise ArchiveCorruptError(
                f"archive file missing: {path} (manifest expects sha256 {expected})"
            )
        actual = file_sha256(path)
        if actual != expected:
            raise ArchiveCorruptError(
                f"archive file corrupt: {path} (actual sha256 {actual}, "
                f"manifest says {expected})"
            )


def save_archive(study: Study, directory: str | Path) -> Path:
    """Write ``study``'s artifacts into ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    # Inventories, one CSV per epoch.
    for epoch, inventory in sorted(study.inventories.items()):
        with open(directory / f"inventory_{epoch}.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["ip", "hypergiant", "isp_asn"])
            for detection in inventory.detections:
                writer.writerow([detection.ip, detection.hypergiant, detection.isp_asn])

    # ISP table with population estimates.
    with open(directory / "isps.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["asn", "name", "country", "users"])
        for isp in study.internet.isps:
            writer.writerow(
                [isp.asn, isp.name, isp.country_code, study.population.users_of(isp.asn)]
            )

    # The latency matrix plus measurement geometry.
    np.savez_compressed(
        directory / "latency.npz",
        rtt_ms=study.matrix.rtt_ms,
        ips=np.array(study.matrix.ips, dtype=np.int64),
        vp_lat=np.array([vp.lat for vp in study.vantage_points]),
        vp_lon=np.array([vp.lon for vp in study.vantage_points]),
        vp_site=np.array([vp.site_code for vp in study.vantage_points]),
    )

    # Clusterings per xi.
    clusterings_json: dict[str, dict[str, dict]] = {}
    for xi, per_isp in study.clusterings.items():
        clusterings_json[str(xi)] = {
            str(asn): {"ips": clustering.ips, "labels": clustering.labels.tolist()}
            for asn, clustering in sorted(per_isp.items())
        }
    (directory / "clusterings.json").write_text(json.dumps(clusterings_json))

    # PTR records.
    with open(directory / "ptr.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["ip", "hostname"])
        for ip in sorted(study.ptr.records):
            writer.writerow([ip, study.ptr.records[ip]])

    # Headline results for quick diffing.
    from repro.experiments.table1 import run_table1

    table1 = run_table1(study)
    results = {
        "table1": {
            hypergiant: dict(counts) for hypergiant, counts in table1.counts.items()
        },
        "analyzable_isps": len(study.campaign.analyzable_isp_asns),
    }
    (directory / "results.json").write_text(json.dumps(results, indent=2))

    # Digest every data file, then write the manifest last: a reader that
    # finds a manifest is guaranteed the digests cover the whole archive.
    digests = tuple(
        sorted(
            (path.name, file_sha256(path))
            for path in directory.iterdir()
            if path.is_file() and path.name != _MANIFEST_NAME
        )
    )
    manifest = ArchiveManifest(
        version=__version__,
        epochs=tuple(sorted(study.inventories)),
        xis=tuple(study.config.xis),
        n_vantage_points=len(study.vantage_points),
        n_detections=len(study.latest_inventory),
        digests=digests,
        coverage=tuple(
            (site, lost, total)
            for site, (lost, total) in sorted(study.coverage.entries.items())
        ),
    )
    (directory / _MANIFEST_NAME).write_text(json.dumps(manifest.to_json(), indent=2))
    return directory


@dataclass
class LoadedArchive:
    """A study's released artifacts, loaded without the generator."""

    manifest: ArchiveManifest
    #: epoch -> list of (ip, hypergiant, isp_asn).
    inventories: dict[str, list[tuple[int, str, int]]]
    #: asn -> (name, country, users).
    isps: dict[int, tuple[str, str, int]]
    rtt_ms: np.ndarray
    target_ips: list[int]
    #: xi -> asn -> SiteClustering.
    clusterings: dict[float, dict[int, SiteClustering]] = field(default_factory=dict)
    ptr: dict[int, str] = field(default_factory=dict)
    results: dict = field(default_factory=dict)

    def hypergiant_of_ip(self, epoch: str) -> dict[int, str]:
        """Detected hypergiant per IP for ``epoch``."""
        return {ip: hypergiant for ip, hypergiant, _ in self.inventories[epoch]}

    def hypergiants_by_isp(self, epoch: str) -> dict[int, list[str]]:
        """Detected hypergiants per hosting ISP for ``epoch``."""
        mapping: dict[int, set[str]] = {}
        for _ip, hypergiant, asn in self.inventories[epoch]:
            mapping.setdefault(asn, set()).add(hypergiant)
        return {asn: sorted(hypergiants) for asn, hypergiants in mapping.items()}


def load_archive(directory: str | Path, verify: bool = True) -> LoadedArchive:
    """Load an archive written by :func:`save_archive`.

    With ``verify`` (the default) every file's sha256 is checked against
    the manifest before parsing, so corruption raises
    :class:`ArchiveCorruptError` instead of a downstream parse error.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST_NAME
    require(manifest_path.exists(), f"not an archive: {directory} (missing {_MANIFEST_NAME})")
    manifest = ArchiveManifest.from_json(json.loads(manifest_path.read_text()))
    if verify:
        verify_archive(directory, manifest)

    inventories: dict[str, list[tuple[int, str, int]]] = {}
    for epoch in manifest.epochs:
        rows: list[tuple[int, str, int]] = []
        with open(directory / f"inventory_{epoch}.csv", newline="") as handle:
            for record in csv.DictReader(handle):
                rows.append((int(record["ip"]), record["hypergiant"], int(record["isp_asn"])))
        inventories[epoch] = rows

    isps: dict[int, tuple[str, str, int]] = {}
    with open(directory / "isps.csv", newline="") as handle:
        for record in csv.DictReader(handle):
            isps[int(record["asn"])] = (record["name"], record["country"], int(record["users"]))

    with np.load(directory / "latency.npz", allow_pickle=False) as data:
        rtt_ms = data["rtt_ms"]
        target_ips = [int(ip) for ip in data["ips"]]

    clusterings: dict[float, dict[int, SiteClustering]] = {}
    raw = json.loads((directory / "clusterings.json").read_text())
    for xi_text, per_isp in raw.items():
        xi = float(xi_text)
        clusterings[xi] = {}
        for asn_text, payload in per_isp.items():
            clusterings[xi][int(asn_text)] = SiteClustering(
                ips=[int(ip) for ip in payload["ips"]],
                labels=np.array(payload["labels"], dtype=int),
                config=ClusteringConfig(xi=xi),
            )

    ptr: dict[int, str] = {}
    with open(directory / "ptr.csv", newline="") as handle:
        for record in csv.DictReader(handle):
            ptr[int(record["ip"])] = record["hostname"]

    results = json.loads((directory / "results.json").read_text())
    return LoadedArchive(
        manifest=manifest,
        inventories=inventories,
        isps=isps,
        rtt_ms=rtt_ms,
        target_ips=target_ips,
        clusterings=clusterings,
        ptr=ptr,
        results=results,
    )
