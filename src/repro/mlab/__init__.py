"""M-Lab-style latency measurement (substrate).

The paper measures latencies from the 163 M-Lab sites to all 261K offnet IP
addresses, taking the second-smallest of 8 pings (Appendix A).  This package
provides: globally distributed vantage points with known geolocations
(:mod:`repro.mlab.vantage`), a propagation + queueing latency model
(:mod:`repro.mlab.latency`), the 8-ping probe process
(:mod:`repro.mlab.pings`), and the measurement matrix with the paper's
responsiveness and speed-of-light filters (:mod:`repro.mlab.matrix`).
"""

from repro.mlab.matrix import LatencyCampaignConfig, LatencyMatrix, measure_offnets
from repro.mlab.pings import PingConfig, ping_rtts
from repro.mlab.vantage import VantagePoint, build_vantage_points

__all__ = [
    "LatencyCampaignConfig",
    "LatencyMatrix",
    "PingConfig",
    "VantagePoint",
    "build_vantage_points",
    "measure_offnets",
    "ping_rtts",
]
