"""The latency campaign: matrices and Appendix-A quality filters.

:func:`measure_offnets` produces the (vantage point x IP) matrix of
second-smallest-of-8 RTTs, including the pathologies the paper had to filter:
fully unresponsive IPs (they discarded 12K) and IPs whose latencies "could
not possibly have come from a single destination" (1.9K, caught with known
vantage-point geolocations and the speed of light).
:func:`apply_quality_filters` reproduces those filters plus the per-ISP
coverage requirement (>= 100 sites with successful measurements to all of an
ISP's offnets).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro._util import make_rng, require, require_fraction, spawn_rng
from repro.deployment.placement import DeploymentState
from repro.faults import FaultPlan
from repro.mlab.latency import base_rtt_matrix, vp_pair_floor_matrix
from repro.mlab.pings import PingConfig, ping_rtts
from repro.mlab.vantage import VantagePoint
from repro.obs import Telemetry, ensure_telemetry
from repro.parallel import (
    ParallelConfig,
    Shard,
    ShardPlan,
    SharedArray,
    ShmRegistry,
    run_sharded,
)
from repro.resilience import ResilienceConfig, ShardLoss
from repro.topology.facilities import Facility
from repro.topology.generator import Internet


@dataclass(frozen=True)
class LatencyCampaignConfig:
    """Knobs for :func:`measure_offnets` and :func:`apply_quality_filters`."""

    ping: PingConfig = field(default_factory=PingConfig)
    #: Fraction of target IPs that never answer pings (ICMP filtered).
    unresponsive_ip_fraction: float = 0.04
    #: Fraction of target IPs whose responses come from two different
    #: locations (load-balanced / anycast-like virtual addresses).
    split_location_fraction: float = 0.006
    #: Fraction of ISPs that rate-limit ICMP so aggressively that most
    #: probes fail; such ISPs fall below the per-ISP coverage threshold and
    #: drop out of the colocation analysis (the paper's 76 % -> 56 % user
    #: coverage gap).
    lossy_isp_fraction: float = 0.25
    #: Per-measurement success probability inside a lossy ISP.
    lossy_success_rate: float = 0.5
    #: Latency-model inflation seed (stable metro-pair path properties).
    inflation_seed: int = 7
    #: Tolerance (ms) for the speed-of-light plausibility check.
    plausibility_slack_ms: float = 0.5
    #: Minimum vantage points with successful measurements to *all* of an
    #: ISP's offnet IPs for the ISP to enter the colocation analysis.
    min_vps_per_isp: int = 100

    def __post_init__(self) -> None:
        require_fraction(self.unresponsive_ip_fraction, "unresponsive_ip_fraction")
        require_fraction(self.split_location_fraction, "split_location_fraction")
        require_fraction(self.lossy_isp_fraction, "lossy_isp_fraction")
        require_fraction(self.lossy_success_rate, "lossy_success_rate")
        require(self.min_vps_per_isp >= 1, "min_vps_per_isp must be >= 1")


@dataclass
class LatencyMatrix:
    """Second-smallest-of-8 RTTs, shape ``(n_vps, n_ips)``; NaN = no value."""

    vps: list[VantagePoint]
    ips: list[int]
    rtt_ms: np.ndarray
    #: Ground truth for tests: IPs measured with split-location behaviour.
    split_location_ips: frozenset[int] = frozenset()
    #: IPs whose measurements were lost to injected faults or quarantined
    #: shards (NaN columns by construction); empty on clean runs.
    unmeasured_ips: frozenset[int] = frozenset()
    #: Campaign shards quarantined after exhausting their retry budget.
    shards_lost: int = 0
    #: Campaign shards the fan-out planned (for coverage denominators).
    shards_total: int = 0
    _column_of: dict[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        require(self.rtt_ms.shape == (len(self.vps), len(self.ips)), "matrix shape mismatch")
        self._column_of = {ip: j for j, ip in enumerate(self.ips)}
        require(len(self._column_of) == len(self.ips), "duplicate IPs in matrix")

    def _index_of(self, ip: int) -> int:
        try:
            return self._column_of[ip]
        except KeyError:
            raise KeyError(
                f"IP {ip} is not a target of this campaign "
                f"({len(self.ips)} measured IPs; see LatencyMatrix.has_ip)"
            ) from None

    def column(self, ip: int) -> np.ndarray:
        """The RTT vector (one entry per vantage point) for ``ip``.

        Raises :class:`KeyError` naming the IP when it was not a campaign
        target.
        """
        return self.rtt_ms[:, self._index_of(ip)]

    def column_indices(self, ips: list[int]) -> np.ndarray:
        """Column index per IP in ``ips``, in the given order.

        The indirection that lets a sharded stage ship *indices* to
        workers holding a shared-memory view of ``rtt_ms`` instead of
        copied submatrices.  Raises :class:`KeyError` naming the first
        missing IP when any of ``ips`` was not a campaign target.
        """
        return np.array([self._index_of(ip) for ip in ips], dtype=np.intp)

    def submatrix(self, ips: list[int]) -> np.ndarray:
        """Columns for ``ips``, in the given order.

        Raises :class:`KeyError` naming the first missing IP when any of
        ``ips`` was not a campaign target.
        """
        return self.rtt_ms[:, self.column_indices(ips)]

    def has_ip(self, ip: int) -> bool:
        """Whether ``ip`` was a target in this campaign."""
        return ip in self._column_of


@dataclass(frozen=True)
class _CampaignShardInputs:
    """Everything one campaign shard needs, picklable for process workers.

    All randomness-driven *behaviour* (which IPs are unresponsive, split, or
    rate-limited) is decided in the parent before fan-out; shards only draw
    the per-probe measurement noise from their own stream (a compact seed
    riding on ``shard.payload``).  Every array field is a
    :class:`~repro.parallel.SharedArray`: on the process backends they
    cross into workers as shared-memory references (~100 bytes each)
    instead of pickled copies, and by value — bit-identically — where
    shared memory is unavailable.
    """

    base: SharedArray  # (n_vps, n_facilities) base RTTs
    target_facility: SharedArray  # facility column per target IP
    alternate_facility: SharedArray  # split-location alternate per target IP
    unresponsive: SharedArray  # bool per target IP
    split: SharedArray  # bool per target IP
    lossy: SharedArray  # bool per target IP (ISP rate-limits ICMP)
    ping: PingConfig
    lossy_success_rate: float
    #: bool per target IP: measurements lost to an injected ``mlab.ping``
    #: fault (None when no such faults are planned — the common case).
    dropped: SharedArray | None = None


def _measure_shard(
    inputs: _CampaignShardInputs,
    shard: Shard,
    telemetry: Telemetry | None,
) -> np.ndarray:
    """Measure one shard's columns: shape ``(n_vps, len(shard))``."""
    obs = ensure_telemetry(telemetry)
    # The shard's RNG stream, spawned in the parent before dispatch and
    # shipped as seed material (see ShardPlan.shard_seeds): identical to
    # the generator shard_rngs() would have handed a serial loop.
    rng = np.random.default_rng(shard.payload)
    base = inputs.base.array
    cols = np.asarray(shard.items, dtype=int)
    k = cols.size
    target_facility = inputs.target_facility.array[cols]
    alternate_facility = inputs.alternate_facility.array[cols]
    unresponsive = inputs.unresponsive.array[cols]
    split = inputs.split.array[cols]
    lossy = inputs.lossy.array[cols]
    n_vps = base.shape[0]
    drop_mask = inputs.dropped.array[cols] if inputs.dropped is not None else None
    rtt = np.empty((n_vps, k))
    for i in range(n_vps):
        base_row = base[i, target_facility].copy()
        if split.any():
            # Each vantage point hits one of the two locations, 50/50.
            use_alternate = split & (rng.random(k) < 0.5)
            base_row[use_alternate] = base[i, alternate_facility[use_alternate]]
        base_row[unresponsive] = np.nan
        if lossy.any():
            rate_limited = lossy & (rng.random(k) >= inputs.lossy_success_rate)
            base_row[rate_limited] = np.nan
        rtt[i] = ping_rtts(base_row, inputs.ping, rng, drop_mask=drop_mask)
    obs.count("campaign.shard_measurements", n_vps * k)
    return rtt


def injected_ping_drops(faults: FaultPlan | None, n_ips: int) -> np.ndarray | None:
    """Bool mask of target indices whose ``mlab.ping`` measurements are lost.

    Pure function of the plan — the rehydration path in
    :func:`repro.core.pipeline.run_study` recomputes it to rebuild coverage
    without re-measuring.  None when the plan injects no ping drops.
    """
    if faults is None or "mlab.ping" not in faults.sites():
        return None
    mask = np.fromiter(
        (faults.fires_ever("mlab.ping", index) for index in range(n_ips)), dtype=bool, count=n_ips
    )
    return mask if mask.any() else None


def measure_offnets(
    internet: Internet,
    truth: DeploymentState,
    target_ips: list[int],
    vps: list[VantagePoint],
    config: LatencyCampaignConfig | None = None,
    seed: int | np.random.Generator = 0,
    telemetry: Telemetry | None = None,
    parallel: ParallelConfig | None = None,
    faults: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
) -> LatencyMatrix:
    """Ping every IP in ``target_ips`` from every vantage point.

    Targets must be ground-truth offnet servers (their facility determines
    the base RTT).  A configured fraction are made unresponsive, and another
    fraction respond from a mix of their true facility and a random other
    facility of the same hypergiant (split-location behaviour).

    The measurement fan-out is sharded over target IPs (``parallel``
    controls the backend); each shard draws from its own RNG stream spawned
    before dispatch, so the matrix is byte-identical for every backend and
    worker count at a fixed ``campaign_chunk``.

    ``faults`` injects deterministic failures: ``mlab.ping`` drops turn a
    target's column NaN (after the RNG draws, so neighbours are
    untouched), and shard-site faults exercise the supervised executor.
    With ``resilience``, a shard that exhausts its retries is quarantined
    and its columns become NaN — accounted in ``unmeasured_ips`` and
    ``shards_lost`` on the returned matrix.
    """
    config = config or LatencyCampaignConfig()
    parallel = parallel or ParallelConfig()
    obs = ensure_telemetry(telemetry)
    root = make_rng(seed)
    rng_behaviour = spawn_rng(root, "behaviour")
    rng_pings = spawn_rng(root, "pings")

    servers = []
    for ip in target_ips:
        server = truth.server_at(ip)
        require(server is not None, f"IP {ip} is not a ground-truth offnet server")
        servers.append(server)

    facilities: list[Facility] = sorted({s.facility for s in servers}, key=lambda f: f.facility_id)
    facility_index = {f: j for j, f in enumerate(facilities)}
    base = base_rtt_matrix(vps, facilities, config.inflation_seed)  # (n_vps, n_facs)

    n_vps, n_ips = len(vps), len(target_ips)
    target_facility = np.array([facility_index[s.facility] for s in servers])

    unresponsive = rng_behaviour.random(n_ips) < config.unresponsive_ip_fraction
    split = (~unresponsive) & (rng_behaviour.random(n_ips) < config.split_location_fraction)

    # Lossy ISPs: a stable per-ISP trait (ICMP rate limiting at the edge).
    lossy_asns: set[int] = set()
    for asn in sorted({s.isp.asn for s in servers}):
        if rng_behaviour.random() < config.lossy_isp_fraction:
            lossy_asns.add(asn)
    lossy_ip = np.array([s.isp.asn in lossy_asns for s in servers])

    # For split-location IPs, pick an alternate facility of the same HG.
    alternate_facility = target_facility.copy()
    by_hypergiant: dict[str, set[int]] = {}
    for server in servers:
        by_hypergiant.setdefault(server.hypergiant, set()).add(facility_index[server.facility])
    for idx in np.flatnonzero(split):
        candidates = sorted(by_hypergiant.get(servers[idx].hypergiant, set()) - {int(target_facility[idx])})
        if candidates:
            alternate_facility[idx] = candidates[int(rng_behaviour.integers(0, len(candidates)))]

    dropped = injected_ping_drops(faults, n_ips)
    plan = ShardPlan.of(range(n_ips), chunk_size=parallel.campaign_chunk)
    # Seed material instead of generators: each shard carries only *its*
    # stream (tens of bytes on shard.payload) where the old design pickled
    # the whole stage's generator tuple into every submission.
    seeds = plan.shard_seeds(rng_pings, "campaign")
    # Heavy read-only arrays ride shared memory on the process backends;
    # the registry is scoped to the fan-out and unlinks on exit (workers'
    # attached views stay valid for in-flight shards until they drop).
    with ShmRegistry(enabled=parallel.backend != "serial") as registry:
        inputs = _CampaignShardInputs(
            base=registry.share(base),
            target_facility=registry.share(target_facility),
            alternate_facility=registry.share(alternate_facility),
            unresponsive=registry.share(unresponsive),
            split=registry.share(split),
            lossy=registry.share(lossy_ip),
            ping=config.ping,
            lossy_success_rate=config.lossy_success_rate,
            dropped=registry.share(dropped),
        )
        columns = run_sharded(
            partial(_measure_shard, inputs),
            plan,
            parallel,
            telemetry=telemetry,
            label="campaign",
            faults=faults,
            resilience=resilience,
            payloads=seeds,
        )
    shards = plan.shards()
    unmeasured: set[int] = set()
    if dropped is not None:
        unmeasured.update(int(target_ips[i]) for i in np.flatnonzero(dropped))
    shards_lost = 0
    filled_columns: list[np.ndarray] = []
    for shard, column in zip(shards, columns):
        if isinstance(column, ShardLoss):
            # A quarantined shard's measurements are simply missing: its
            # columns degrade to NaN, exactly like unresponsive targets,
            # and the loss is surfaced in coverage rather than hidden.
            shards_lost += 1
            unmeasured.update(int(target_ips[i]) for i in shard.items)
            filled_columns.append(np.full((n_vps, len(shard)), np.nan))
        else:
            filled_columns.append(column)
    rtt = np.concatenate(filled_columns, axis=1) if filled_columns else np.empty((n_vps, 0))

    obs.count("campaign.vantage_points", n_vps)
    obs.count("campaign.target_ips", n_ips)
    obs.count("campaign.measurements", n_vps * n_ips)
    obs.count("campaign.unresponsive_targets", int(unresponsive.sum()))
    obs.count("campaign.split_location_targets", int(split.sum()))
    obs.count("campaign.lossy_isps", len(lossy_asns))
    if dropped is not None:
        obs.count("faults.ping_drops", int(dropped.sum()))
    obs.log("latency campaign measured", vps=n_vps, target_ips=n_ips)
    return LatencyMatrix(
        vps=vps,
        ips=list(target_ips),
        rtt_ms=rtt,
        split_location_ips=frozenset(int(ip) for ip, flag in zip(target_ips, split) if flag),
        unmeasured_ips=frozenset(unmeasured),
        shards_lost=shards_lost,
        shards_total=len(shards),
    )


@dataclass
class FilteredCampaign:
    """Outcome of the Appendix-A quality filters."""

    matrix: LatencyMatrix
    #: IPs kept, grouped by ISP ASN (only ISPs passing the coverage filter).
    ips_by_isp: dict[int, list[int]]
    unresponsive_ips: list[int]
    implausible_ips: list[int]
    #: ISPs dropped for having too few fully-successful vantage points.
    discarded_isp_asns: list[int]

    @property
    def analyzable_isp_asns(self) -> list[int]:
        """ASNs that enter the colocation analysis, sorted."""
        return sorted(self.ips_by_isp)


def _implausible_for_single_location(
    rtts: np.ndarray, vps: list[VantagePoint], floor: np.ndarray, slack_ms: float
) -> bool:
    """Speed-of-light check: can one location explain this RTT vector?

    For a single location x, ``rtt_i + rtt_j >= floor(i, j)`` must hold for
    all vantage pairs (the two probe paths, chained, must cover the
    inter-vantage distance).  We check the strongest constraints: the
    closest vantage point against all others.

    Per-IP reference for :func:`_implausible_mask`, which batches the same
    decision over every column at once; ``tests/test_mlab.py`` proves the
    two agree column-for-column.
    """
    valid = np.flatnonzero(~np.isnan(rtts))
    if valid.size < 2:
        return False
    closest = valid[np.argmin(rtts[valid])]
    sums = rtts[closest] + rtts[valid]
    return bool((sums + slack_ms < floor[closest, valid]).any())


def _implausible_mask(
    rtt_ms: np.ndarray, valid: np.ndarray, n_valid: np.ndarray, floor: np.ndarray, slack_ms: float
) -> np.ndarray:
    """Batched :func:`_implausible_for_single_location` over every column.

    ``valid`` is ``~isnan(rtt_ms)`` and ``n_valid`` its column sums (the
    caller already has both).  Invalid entries are filled with inf so they
    can neither be the closest vantage point nor violate a floor; columns
    with fewer than two valid entries are never implausible, matching the
    reference.  ``argmin`` returns the first minimum, the same tie-break as
    the reference's ``valid[np.argmin(rtts[valid])]``.
    """
    n_ips = rtt_ms.shape[1]
    if n_ips == 0:
        return np.zeros(0, dtype=bool)
    filled = np.where(valid, rtt_ms, np.inf)
    closest = np.argmin(filled, axis=0)
    closest_rtt = filled[closest, np.arange(n_ips)]
    chained = closest_rtt[None, :] + filled  # inf where either side is missing
    pair_floor = floor[:, closest]  # floor is symmetric: row i is floor(closest_j, i)
    violates = chained + slack_ms < pair_floor
    return violates.any(axis=0) & (n_valid >= 2)


def apply_quality_filters(
    matrix: LatencyMatrix,
    ip_to_isp: dict[int, int],
    config: LatencyCampaignConfig | None = None,
    telemetry: Telemetry | None = None,
) -> FilteredCampaign:
    """Apply the Appendix-A filters to a raw campaign matrix.

    With ``telemetry``, records the full attrition funnel
    (``filters.ips_considered`` → ``filters.ips_analyzable``; see
    :data:`repro.obs.FUNNEL_COUNTERS`) plus ``filters.*_ms`` stage timings.
    """
    config = config or LatencyCampaignConfig()
    obs = ensure_telemetry(telemetry)
    timing = obs.metrics.enabled
    started = time.perf_counter() if timing else 0.0
    floor = vp_pair_floor_matrix(matrix.vps, telemetry=telemetry)
    if timing:
        obs.observe("filters.floor_matrix_ms", 1000.0 * (time.perf_counter() - started))

    started = time.perf_counter() if timing else 0.0
    valid = ~np.isnan(matrix.rtt_ms)
    n_valid = valid.sum(axis=0)
    unresponsive_mask = n_valid == 0
    implausible_mask = _implausible_mask(
        matrix.rtt_ms, valid, n_valid, floor, config.plausibility_slack_ms
    )
    kept_mask = ~unresponsive_mask & ~implausible_mask
    unresponsive = [ip for ip, flag in zip(matrix.ips, unresponsive_mask) if flag]
    implausible = [ip for ip, flag in zip(matrix.ips, implausible_mask) if flag]
    kept = [ip for ip, flag in zip(matrix.ips, kept_mask) if flag]
    if timing:
        obs.observe("filters.plausibility_ms", 1000.0 * (time.perf_counter() - started))

    # Per-ISP coverage: vantage points with successful measurements to ALL
    # of the ISP's kept offnet IPs.
    started = time.perf_counter() if timing else 0.0
    by_isp: dict[int, list[int]] = {}
    columns_by_isp: dict[int, list[int]] = {}
    for column, ip in zip(np.flatnonzero(kept_mask), kept):
        by_isp.setdefault(ip_to_isp[ip], []).append(ip)
        columns_by_isp.setdefault(ip_to_isp[ip], []).append(int(column))
    ips_by_isp: dict[int, list[int]] = {}
    discarded: list[int] = []
    for asn in sorted(by_isp):
        fully_successful_vps = int(valid[:, columns_by_isp[asn]].all(axis=1).sum())
        if fully_successful_vps >= config.min_vps_per_isp:
            ips_by_isp[asn] = sorted(by_isp[asn])
        else:
            discarded.append(asn)
    if timing:
        obs.observe("filters.coverage_ms", 1000.0 * (time.perf_counter() - started))

    n_analyzable_ips = sum(len(ips) for ips in ips_by_isp.values())
    obs.count("filters.ips_considered", len(matrix.ips))
    obs.count("filters.ips_dropped_unresponsive", len(unresponsive))
    obs.count("filters.ips_dropped_implausible", len(implausible))
    obs.count("filters.ips_kept", len(kept))
    obs.count("filters.ips_dropped_low_coverage_isp", len(kept) - n_analyzable_ips)
    obs.count("filters.ips_analyzable", n_analyzable_ips)
    obs.count("filters.isps_considered", len(by_isp))
    obs.count("filters.isps_dropped_low_coverage", len(discarded))
    obs.count("filters.isps_analyzable", len(ips_by_isp))
    return FilteredCampaign(
        matrix=matrix,
        ips_by_isp=ips_by_isp,
        unresponsive_ips=unresponsive,
        implausible_ips=implausible,
        discarded_isp_asns=discarded,
    )
