"""The 8-ping probe process with second-smallest aggregation.

Appendix A: "For each latency value, we took the second smallest latency of
8 pings".  The second-smallest is a robust low quantile: it rejects the one
lucky-looking corrupted sample a plain minimum would keep, while still
shedding queueing noise.  We simulate each ping as base RTT + exponential
queueing delay + small Gaussian timestamping noise, with independent loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require, require_fraction, require_non_negative


@dataclass(frozen=True)
class PingConfig:
    """Probe-process parameters."""

    pings_per_target: int = 8
    #: Mean of the exponential queueing component, ms.
    queueing_mean_ms: float = 0.4
    #: Std-dev of the Gaussian timestamping noise, ms.
    noise_std_ms: float = 0.05
    #: Independent per-probe loss probability.
    loss_probability: float = 0.02
    #: Minimum responsive probes needed to report a value (second-smallest
    #: needs two).
    min_responses: int = 2
    #: Aggregation statistic over the probes: the paper's second-smallest,
    #: or "min" / "median" for the ablation of that choice.
    aggregation: str = "second_smallest"

    def __post_init__(self) -> None:
        require(self.pings_per_target >= 2, "need at least 2 pings for second-smallest")
        require_non_negative(self.queueing_mean_ms, "queueing_mean_ms")
        require_non_negative(self.noise_std_ms, "noise_std_ms")
        require_fraction(self.loss_probability, "loss_probability")
        require(2 <= self.min_responses <= self.pings_per_target, "bad min_responses")
        require(
            self.aggregation in ("second_smallest", "min", "median"),
            f"unknown aggregation {self.aggregation!r}",
        )


def ping_rtts(
    base_rtts_ms: np.ndarray,
    config: PingConfig,
    rng: np.random.Generator,
    drop_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Measure each target once: second-smallest of ``pings_per_target`` pings.

    ``base_rtts_ms`` has shape ``(n,)``; entries that are NaN (unreachable
    targets) stay NaN.  Returns shape ``(n,)`` with NaN where fewer than
    ``min_responses`` probes answered.

    ``drop_mask`` (optional, bool shape ``(n,)``) marks targets whose
    measurements are lost to injected faults (the ``mlab.ping`` site).  It
    is applied *after* every RNG draw, so a dropped target consumes exactly
    the randomness an undropped one would — injection never shifts the
    probe streams of its neighbours.
    """
    base = np.asarray(base_rtts_ms, dtype=float)
    n = base.shape[0]
    k = config.pings_per_target
    samples = (
        base[:, None]
        + rng.exponential(config.queueing_mean_ms, size=(n, k))
        + rng.normal(0.0, config.noise_std_ms, size=(n, k))
    )
    # Never below the physical floor: clamp the noise term at >= 0 total.
    samples = np.maximum(samples, base[:, None])
    lost = rng.random((n, k)) < config.loss_probability
    samples[lost] = np.nan
    responses = (~np.isnan(samples)).sum(axis=1)
    samples_sorted = np.sort(samples, axis=1)  # NaNs sort last
    if config.aggregation == "min":
        measured = samples_sorted[:, 0]
    elif config.aggregation == "median":
        with np.errstate(all="ignore"):
            measured = np.nanmedian(samples, axis=1)
    else:
        measured = samples_sorted[:, 1]
    measured[responses < config.min_responses] = np.nan
    measured[np.isnan(base)] = np.nan
    if drop_mask is not None:
        measured[drop_mask] = np.nan
    return measured
