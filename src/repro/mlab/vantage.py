"""Measurement vantage points (M-Lab-style sites).

M-Lab operates pods in metro areas worldwide with well-known geolocations;
the paper uses all 163 of them.  We scatter the same number of vantage points
over the world's cities (weighted toward the heavy, well-connected metros
where M-Lab actually deploys) and give each a site code in the M-Lab style
(``lga02`` = IATA + index).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import make_rng, require
from repro.topology.facilities import jittered_coordinates
from repro.topology.geo import City, World


@dataclass(frozen=True)
class VantagePoint:
    """A measurement site with a known, trusted geolocation."""

    vp_id: int
    site_code: str
    city: City
    lat: float
    lon: float

    def __post_init__(self) -> None:
        require(self.vp_id >= 0, "vp_id must be >= 0")
        require(bool(self.site_code), "site_code required")


def build_vantage_points(
    world: World,
    count: int = 163,
    seed: int | np.random.Generator = 0,
) -> list[VantagePoint]:
    """Place ``count`` vantage points over ``world``'s cities.

    Cities are sampled with replacement, weighted by city weight (M-Lab has
    several pods in big metros), and each vantage point sits a few km from
    the city centre.  Deterministic given ``seed``.
    """
    require(count >= 1, "need at least one vantage point")
    rng = make_rng(seed)
    cities = sorted(world.cities, key=lambda c: c.iata)
    weights = np.array([c.weight for c in cities])
    probabilities = weights / weights.sum()
    vantage_points: list[VantagePoint] = []
    per_city_index: dict[str, int] = {}
    for vp_id in range(count):
        city = cities[int(rng.choice(len(cities), p=probabilities))]
        index = per_city_index.get(city.iata, 0) + 1
        per_city_index[city.iata] = index
        lat, lon = jittered_coordinates(city, rng, max_offset_km=20.0)
        vantage_points.append(
            VantagePoint(
                vp_id=vp_id,
                site_code=f"{city.iata}{index:02d}",
                city=city,
                lat=lat,
                lon=lon,
            )
        )
    return vantage_points
