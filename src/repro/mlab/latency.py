"""Deterministic base-RTT model between vantage points and facilities.

The minimum RTT between a vantage point and a server is propagation delay
over an inflated great-circle path, plus the server facility's uplink
serialisation delay.  Path inflation is a stable property of the (vantage
city, facility city) pair — real Internet paths between two metros follow
the same physical routes — drawn deterministically from a hash so that:

* two servers in the *same facility* share identical base RTTs from every
  vantage point (the signal OPTICS clusters on);
* two facilities in the same city differ by their uplink delays and their
  few-km coordinate offsets (sub-millisecond but consistent — what lets the
  technique "differentiat[e] between multiple facilities in a city");
* facilities in different cities differ by milliseconds.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro._util import great_circle_m, propagation_rtt_ms, require
from repro.mlab.vantage import VantagePoint
from repro.topology.facilities import Facility

#: Bounds for metro-pair path inflation (literature: typically 1.5-2.5x).
MIN_INFLATION = 1.4
MAX_INFLATION = 2.2


def path_inflation(vp_city_iata: str, facility_city_iata: str, seed: int) -> float:
    """Stable path-inflation factor for a metro pair.

    Hash-derived (CRC32), so independent of call order and of the RNG
    streams used elsewhere.
    """
    key = f"{seed}:{min(vp_city_iata, facility_city_iata)}:{max(vp_city_iata, facility_city_iata)}"
    fraction = (zlib.crc32(key.encode()) % 10_000) / 10_000.0
    return MIN_INFLATION + fraction * (MAX_INFLATION - MIN_INFLATION)


def base_rtt_ms(vp: VantagePoint, facility: Facility, seed: int) -> float:
    """Minimum (uncongested) RTT between ``vp`` and a server in ``facility``."""
    distance = great_circle_m(vp.lat, vp.lon, facility.lat, facility.lon)
    inflation = path_inflation(vp.city.iata, facility.city.iata, seed)
    return propagation_rtt_ms(distance, inflation) + facility.uplink_delay_ms


def base_rtt_matrix(
    vps: list[VantagePoint], facilities: list[Facility], seed: int
) -> np.ndarray:
    """Base RTTs, shape ``(len(vps), len(facilities))``."""
    require(bool(vps) and bool(facilities), "need vantage points and facilities")
    matrix = np.empty((len(vps), len(facilities)))
    for i, vp in enumerate(vps):
        for j, facility in enumerate(facilities):
            matrix[i, j] = base_rtt_ms(vp, facility, seed)
    return matrix


def vp_pair_floor_rtt_ms(a: VantagePoint, b: VantagePoint) -> float:
    """Absolute physical floor RTT between two vantage points.

    Uses inflation 1.0 (straight fibre on the great circle): no real path can
    beat this, which is what the Appendix-A plausibility filter exploits.
    """
    return propagation_rtt_ms(great_circle_m(a.lat, a.lon, b.lat, b.lon), 1.0)
