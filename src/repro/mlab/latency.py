"""Deterministic base-RTT model between vantage points and facilities.

The minimum RTT between a vantage point and a server is propagation delay
over an inflated great-circle path, plus the server facility's uplink
serialisation delay.  Path inflation is a stable property of the (vantage
city, facility city) pair — real Internet paths between two metros follow
the same physical routes — drawn deterministically from a hash so that:

* two servers in the *same facility* share identical base RTTs from every
  vantage point (the signal OPTICS clusters on);
* two facilities in the same city differ by their uplink delays and their
  few-km coordinate offsets (sub-millisecond but consistent — what lets the
  technique "differentiat[e] between multiple facilities in a city");
* facilities in different cities differ by milliseconds.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict

import numpy as np

from repro._util import (
    EARTH_RADIUS_M,
    FIBRE_LIGHT_SPEED_M_S,
    great_circle_m,
    propagation_rtt_ms,
    require,
)
from repro.mlab.vantage import VantagePoint
from repro.obs import Telemetry, ensure_telemetry
from repro.topology.facilities import Facility

#: Bounds for metro-pair path inflation (literature: typically 1.5-2.5x).
MIN_INFLATION = 1.4
MAX_INFLATION = 2.2


def path_inflation(vp_city_iata: str, facility_city_iata: str, seed: int) -> float:
    """Stable path-inflation factor for a metro pair.

    Hash-derived (CRC32), so independent of call order and of the RNG
    streams used elsewhere.
    """
    key = f"{seed}:{min(vp_city_iata, facility_city_iata)}:{max(vp_city_iata, facility_city_iata)}"
    fraction = (zlib.crc32(key.encode()) % 10_000) / 10_000.0
    return MIN_INFLATION + fraction * (MAX_INFLATION - MIN_INFLATION)


def base_rtt_ms(vp: VantagePoint, facility: Facility, seed: int) -> float:
    """Minimum (uncongested) RTT between ``vp`` and a server in ``facility``."""
    distance = great_circle_m(vp.lat, vp.lon, facility.lat, facility.lon)
    inflation = path_inflation(vp.city.iata, facility.city.iata, seed)
    return propagation_rtt_ms(distance, inflation) + facility.uplink_delay_ms


def base_rtt_matrix(
    vps: list[VantagePoint], facilities: list[Facility], seed: int
) -> np.ndarray:
    """Base RTTs, shape ``(len(vps), len(facilities))``."""
    require(bool(vps) and bool(facilities), "need vantage points and facilities")
    matrix = np.empty((len(vps), len(facilities)))
    for i, vp in enumerate(vps):
        for j, facility in enumerate(facilities):
            matrix[i, j] = base_rtt_ms(vp, facility, seed)
    return matrix


def vp_pair_floor_rtt_ms(a: VantagePoint, b: VantagePoint) -> float:
    """Absolute physical floor RTT between two vantage points.

    Uses inflation 1.0 (straight fibre on the great circle): no real path can
    beat this, which is what the Appendix-A plausibility filter exploits.
    """
    return propagation_rtt_ms(great_circle_m(a.lat, a.lon, b.lat, b.lon), 1.0)


#: The floor matrix is a pure function of the vantage-point coordinates and
#: every study stage sees the same vantage set, so a tiny LRU suffices; the
#: bound only guards pathological many-vantage-set callers (sweeps cycling
#: configs) from unbounded growth.
_FLOOR_CACHE_MAX = 8
_floor_cache: OrderedDict[tuple[tuple[float, float], ...], np.ndarray] = OrderedDict()


def vp_pair_floor_matrix(
    vps: list[VantagePoint], telemetry: Telemetry | None = None
) -> np.ndarray:
    """Pairwise :func:`vp_pair_floor_rtt_ms` matrix, cached per vantage set.

    Vectorised haversine over all pairs at once.  SIMD trig can differ from
    the scalar ``math``-library path by ~1 ulp (relative ~1e-16); the
    plausibility filter compares these floors against RTT sums offset by a
    0.5 ms slack, so the difference is six orders of magnitude below
    anything that could flip a decision (the golden-export tests pin the
    artifacts regardless).  The returned array is shared and marked
    read-only — copy before mutating.
    """
    obs = ensure_telemetry(telemetry)
    key = tuple((vp.lat, vp.lon) for vp in vps)
    cached = _floor_cache.get(key)
    if cached is not None:
        _floor_cache.move_to_end(key)
        obs.count("filters.floor_cache_hits")
        return cached
    obs.count("filters.floor_cache_misses")
    lat = np.radians(np.array([vp.lat for vp in vps]))
    lon = np.radians(np.array([vp.lon for vp in vps]))
    half_dphi = (lat[None, :] - lat[:, None]) / 2.0
    half_dlambda = (lon[None, :] - lon[:, None]) / 2.0
    a = np.sin(half_dphi) ** 2 + np.cos(lat)[:, None] * np.cos(lat)[None, :] * np.sin(half_dlambda) ** 2
    distance_m = 2 * EARTH_RADIUS_M * np.arcsin(np.minimum(1.0, np.sqrt(a)))
    floor = 2.0 * (distance_m / FIBRE_LIGHT_SPEED_M_S) * 1000.0
    np.fill_diagonal(floor, 0.0)
    floor.flags.writeable = False
    _floor_cache[key] = floor
    while len(_floor_cache) > _FLOOR_CACHE_MAX:
        _floor_cache.popitem(last=False)
    return floor
