"""Benchmark-baseline checking: ``repro bench check``.

The ``benchmarks/BENCH_*.json`` files committed with each PR form a perf
trajectory (see ``benchmarks/README`` conventions): every revision
regenerates them on the machine running the suite, so consecutive files
are same-machine comparable.  This module closes the loop — it runs the
compact study scenario fresh, aggregates its stage timings into the same
compact snapshot shape (:func:`repro.obs.export.compact_snapshot`), and
compares them against a committed baseline:

* **stage wall times** must stay within ``tolerance ×`` the baseline
  (stages under :data:`MIN_STAGE_MS` are skipped as timer noise);
* **deterministic counters** (funnel counts, shard counts, topology
  sizes) must match the baseline *exactly* — a drift here is not noise
  but a behaviour change that slipped past the tests.

The CI ``bench-check`` job runs this as a smoke gate; locally it is
``PYTHONPATH=src python -m repro bench check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro._util import format_table, require

#: A fresh stage may take at most this multiple of its baseline wall time.
DEFAULT_TOLERANCE = 2.5

#: Stages with a baseline total below this are timer noise and are skipped.
MIN_STAGE_MS = 5.0

#: Counter prefixes whose values are timing- or environment-dependent and
#: therefore excluded from the exact comparison.
NONDETERMINISTIC_COUNTER_PREFIXES = ("resilience.",)


@dataclass(frozen=True)
class StageCheck:
    """One stage's fresh-vs-baseline wall-time comparison."""

    name: str
    baseline_ms: float
    fresh_ms: float
    tolerance: float
    skipped: bool = False

    @property
    def ratio(self) -> float:
        """Fresh over baseline wall time (0 when the baseline is zero)."""
        return self.fresh_ms / self.baseline_ms if self.baseline_ms > 0 else 0.0

    @property
    def ok(self) -> bool:
        """Whether this stage is within tolerance (skipped stages pass)."""
        return self.skipped or self.ratio <= self.tolerance


@dataclass
class BenchCheckResult:
    """The full outcome of one ``repro bench check`` run."""

    baseline_path: Path
    tolerance: float
    checks: list[StageCheck] = field(default_factory=list)
    #: counter name -> (baseline, fresh) for every exact-compare mismatch.
    counter_mismatches: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def regressions(self) -> list[StageCheck]:
        """Stages over their tolerance band."""
        return [check for check in self.checks if not check.ok]

    @property
    def passed(self) -> bool:
        """Whether every stage and every deterministic counter held."""
        return not self.regressions and not self.counter_mismatches

    def render(self) -> str:
        """The per-stage comparison table plus the verdict."""
        rows = []
        for check in self.checks:
            if check.skipped:
                verdict = "skip (noise)"
            elif check.ok:
                verdict = "ok"
            else:
                verdict = f"REGRESSION (> {check.tolerance:g}x)"
            rows.append(
                [
                    check.name,
                    f"{check.baseline_ms:.1f}",
                    f"{check.fresh_ms:.1f}",
                    f"{check.ratio:.2f}x" if check.baseline_ms > 0 else "-",
                    verdict,
                ]
            )
        lines = [format_table(["stage", "baseline ms", "fresh ms", "ratio", "verdict"], rows)]
        for name, (baseline, fresh) in sorted(self.counter_mismatches.items()):
            lines.append(f"COUNTER DRIFT {name}: baseline {baseline:g} != fresh {fresh:g}")
        verdict = "bench check passed" if self.passed else (
            f"bench check FAILED: {len(self.regressions)} stage regression(s), "
            f"{len(self.counter_mismatches)} counter drift(s)"
        )
        lines.append(f"{verdict} (baseline: {self.baseline_path}, tolerance {self.tolerance:g}x)")
        return "\n".join(lines)


def fresh_compact_snapshot(scenario: str = "small") -> dict[str, Any]:
    """Run ``scenario`` fresh with profiling and return its compact snapshot.

    The same workload the observability bench commits as its baseline, so
    the two snapshots are directly comparable.
    """
    from repro.experiments.scenarios import scenario_by_name
    from repro.obs import Telemetry, compact_snapshot

    with Telemetry.capture(profile=True) as telemetry:
        scenario_by_name(scenario).run(telemetry=telemetry)
        return compact_snapshot(telemetry, name=f"observability-{scenario}")


def compare_snapshots(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    baseline_path: Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> BenchCheckResult:
    """Compare two compact snapshots stage by stage and counter by counter."""
    require(tolerance > 1.0, "tolerance must be > 1.0 (a multiple of the baseline)")
    baseline_stages = baseline.get("stages", {})
    fresh_stages = fresh.get("stages", {})
    result = BenchCheckResult(baseline_path=baseline_path, tolerance=tolerance)
    for name, entry in baseline_stages.items():
        fresh_entry = fresh_stages.get(name)
        if fresh_entry is None:
            # A stage that disappeared is a structural change, not a perf
            # regression — the bench tests themselves gate structure.
            continue
        baseline_ms = float(entry.get("total_ms", 0.0))
        result.checks.append(
            StageCheck(
                name=name,
                baseline_ms=baseline_ms,
                fresh_ms=float(fresh_entry.get("total_ms", 0.0)),
                tolerance=tolerance,
                skipped=baseline_ms < MIN_STAGE_MS,
            )
        )
    fresh_counters = fresh.get("counters", {})
    for name, value in baseline.get("counters", {}).items():
        if name.startswith(NONDETERMINISTIC_COUNTER_PREFIXES):
            continue
        fresh_value = fresh_counters.get(name)
        if fresh_value is None or float(fresh_value) != float(value):
            result.counter_mismatches[name] = (
                float(value),
                float(fresh_value) if fresh_value is not None else float("nan"),
            )
    return result


# -- timeline (incremental-recomputation) baseline ------------------------------

#: ``bench`` tag of timeline baselines (``benchmarks/BENCH_timeline.json``).
TIMELINE_BENCH_NAME = "timeline-incremental"

#: Computing the newest epoch against a warm stage store must beat a cold
#: (uncached) computation of the same epoch by at least this factor.
TIMELINE_TARGET_SPEEDUP = 3.0


def fresh_timeline_snapshot() -> dict[str, Any]:
    """Run the timeline bench workload fresh and return its snapshot.

    The workload is pinned here so ``repro bench check`` and the
    benchmark suite (``benchmarks/test_bench_timeline.py``) measure the
    exact same thing: a six-quarter monotone timeline on a compact
    Internet, computed three ways — a full uncached series, an
    incremental series walked with a warm stage store, and the newest
    epoch alone (cold vs incremental, the headline speedup).  All stage
    cache counters are deterministic and land in ``counters`` for exact
    baseline comparison; rows are cross-checked byte-identical between
    the cached and uncached legs.
    """
    import json as _json
    import tempfile
    import time

    from repro.store import StageStore
    from repro.timeline import (
        TimelineConfig,
        TimelineSpec,
        build_substrate,
        compute_epoch,
        epoch_stage_key,
    )
    from repro.topology.generator import InternetConfig

    spec = TimelineSpec(start="2022Q1", end="2023Q2", seed=3)
    config = TimelineConfig(
        internet=InternetConfig(seed=5, n_access_isps=40, n_ixps=16),
        spec=spec,
        n_vantage_points=24,
        seed=7,
    )
    quarters = spec.quarters
    substrate = build_substrate(config)
    last = quarters[-1]
    with tempfile.TemporaryDirectory() as tmp:
        store = StageStore(tmp)
        # Incremental series: walk the predecessor quarters in order
        # against one store, warming it with their stage artifacts.
        started = time.perf_counter()
        incremental_rows = []
        for quarter in quarters[:-1]:
            row = compute_epoch(substrate, quarter, store)
            store.put("epoch", epoch_stage_key(config, quarter), row)
            incremental_rows.append(row)
        prefix_s = time.perf_counter() - started
        # Headline: the newest epoch, never computed before, against the
        # warm store — only genuine cross-epoch reuse can help it.
        started = time.perf_counter()
        incremental_last = compute_epoch(substrate, last, store)
        incremental_last_s = time.perf_counter() - started
        incremental_rows.append(incremental_last)
        incremental_series_s = prefix_s + incremental_last_s
        counters = dict(store.counters)
        # Full series, no caching anywhere.
        started = time.perf_counter()
        full_rows = [compute_epoch(substrate, quarter, None) for quarter in quarters]
        full_series_s = time.perf_counter() - started
        started = time.perf_counter()
        full_last = compute_epoch(substrate, last, None)
        full_last_s = time.perf_counter() - started
    identical = _json.dumps(incremental_rows, sort_keys=True) == _json.dumps(
        full_rows, sort_keys=True
    ) and _json.dumps(incremental_last, sort_keys=True) == _json.dumps(full_last, sort_keys=True)
    return {
        "bench": TIMELINE_BENCH_NAME,
        "format": "repro-bench-v1",
        "n_quarters": len(quarters),
        "identical_rows": identical,
        "target_incremental_speedup": TIMELINE_TARGET_SPEEDUP,
        "incremental_speedup": round(full_last_s / incremental_last_s, 3) if incremental_last_s > 0 else float("inf"),
        "runs": [
            {"leg": "full-series", "seconds": round(full_series_s, 3)},
            {"leg": "incremental-series", "seconds": round(incremental_series_s, 3)},
            {"leg": "full-last-epoch", "seconds": round(full_last_s, 3)},
            {"leg": "incremental-last-epoch", "seconds": round(incremental_last_s, 3)},
        ],
        "counters": {name: counters[name] for name in sorted(counters)},
    }


@dataclass
class TimelineBenchResult:
    """Outcome of checking a fresh timeline run against its baseline."""

    baseline_path: Path
    target_speedup: float
    fresh_speedup: float
    identical_rows: bool
    #: counter name -> (baseline, fresh) for every exact-compare mismatch.
    counter_mismatches: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """Speedup floor held, rows byte-identical, no counter drift."""
        return (
            self.identical_rows
            and self.fresh_speedup >= self.target_speedup
            and not self.counter_mismatches
        )

    def render(self) -> str:
        """Verdict lines for the CLI."""
        lines = [
            f"incremental speedup: {self.fresh_speedup:g}x "
            f"(floor {self.target_speedup:g}x) — "
            + ("ok" if self.fresh_speedup >= self.target_speedup else "REGRESSION"),
            "incremental rows byte-identical to full rerun: "
            + ("yes" if self.identical_rows else "NO — DIVERGED"),
        ]
        for name, (baseline, fresh) in sorted(self.counter_mismatches.items()):
            lines.append(f"COUNTER DRIFT {name}: baseline {baseline:g} != fresh {fresh:g}")
        verdict = "bench check passed" if self.passed else "bench check FAILED"
        lines.append(f"{verdict} (baseline: {self.baseline_path})")
        return "\n".join(lines)


def check_timeline_bench(
    baseline_path: str | Path, fresh: dict[str, Any] | None = None
) -> TimelineBenchResult:
    """Re-run the timeline bench workload and compare against its baseline.

    Stage-cache counters (hits/misses/writes per stage kind) are
    deterministic and must match **exactly**; the incremental speedup
    must stay at or above the committed floor; and the incremental rows
    must remain byte-identical to the uncached rerun.  ``fresh`` lets
    tests inject a snapshot instead of re-running the workload.
    """
    import json

    baseline_path = Path(baseline_path)
    require(baseline_path.exists(), f"no benchmark baseline at {baseline_path}")
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    require(
        baseline.get("bench") == TIMELINE_BENCH_NAME,
        f"{baseline_path} is not a timeline benchmark baseline "
        f"(bench != {TIMELINE_BENCH_NAME!r})",
    )
    if fresh is None:
        fresh = fresh_timeline_snapshot()
    result = TimelineBenchResult(
        baseline_path=baseline_path,
        target_speedup=float(baseline.get("target_incremental_speedup", TIMELINE_TARGET_SPEEDUP)),
        fresh_speedup=float(fresh["incremental_speedup"]),
        identical_rows=bool(fresh["identical_rows"]),
    )
    fresh_counters = fresh.get("counters", {})
    for name, value in baseline.get("counters", {}).items():
        fresh_value = fresh_counters.get(name)
        if fresh_value is None or float(fresh_value) != float(value):
            result.counter_mismatches[name] = (
                float(value),
                float(fresh_value) if fresh_value is not None else float("nan"),
            )
    return result


def check_bench(
    baseline_path: str | Path,
    tolerance: float = DEFAULT_TOLERANCE,
    scenario: str = "small",
    fresh: dict[str, Any] | None = None,
) -> BenchCheckResult:
    """Run the scenario fresh and compare it against the committed baseline.

    ``fresh`` lets tests (and callers that already ran the workload) inject
    a snapshot instead of re-running the pipeline.  Raises
    :class:`ValueError` if the baseline file is missing or not a compact
    snapshot.
    """
    import json

    baseline_path = Path(baseline_path)
    require(baseline_path.exists(), f"no benchmark baseline at {baseline_path}")
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    require(
        "stages" in baseline,
        f"{baseline_path} is not a compact benchmark snapshot (no 'stages'); "
        "regenerate it with the benchmarks suite",
    )
    if fresh is None:
        fresh = fresh_compact_snapshot(scenario)
    return compare_snapshots(baseline, fresh, baseline_path, tolerance)
