"""Constraint-based geolocation from vantage-point RTT vectors.

Classic CBG: from each vantage point, the RTT upper-bounds the distance
(light travels one way in rtt/2, with a calibrated "bestline" slope for
path inflation).  The target lies in the intersection of the disks.  Our
estimator samples candidate positions on a grid seeded by the tightest
vantage points and picks the point minimising total constraint violation;
the achievable accuracy is bounded by the path-inflation uncertainty, as
in real CBG deployments (tens to hundreds of km).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import FIBRE_LIGHT_SPEED_M_S, great_circle_m, require
from repro.mlab.vantage import VantagePoint

#: Calibration slope: distance <= rtt/2 * speed / slope.  Real CBG fits a
#: per-VP "bestline"; we use the minimum plausible path inflation.
MIN_PLAUSIBLE_INFLATION = 1.4


@dataclass(frozen=True)
class CbgEstimate:
    """A position estimate with its residual violation."""

    lat: float
    lon: float
    #: Total constraint violation (metres summed over violated disks).
    violation_m: float
    #: Vantage points with usable measurements.
    n_constraints: int

    def error_m(self, true_lat: float, true_lon: float) -> float:
        """Great-circle error against a known true position."""
        return great_circle_m(self.lat, self.lon, true_lat, true_lon)


def _distance_bounds_m(rtts_ms: np.ndarray) -> np.ndarray:
    """Per-VP upper bounds on the target's distance."""
    one_way_s = rtts_ms / 2.0 / 1000.0
    return one_way_s * FIBRE_LIGHT_SPEED_M_S / MIN_PLAUSIBLE_INFLATION


def _violation(lat: float, lon: float, vps: list[VantagePoint], bounds_m: np.ndarray, valid: np.ndarray) -> float:
    total = 0.0
    for index in np.flatnonzero(valid):
        distance = great_circle_m(lat, lon, vps[index].lat, vps[index].lon)
        if distance > bounds_m[index]:
            total += distance - bounds_m[index]
    return total


def estimate_position(
    rtts_ms: np.ndarray,
    vps: list[VantagePoint],
    refine_steps: int = 3,
) -> CbgEstimate | None:
    """CBG position estimate from one RTT vector (NaN = no measurement).

    Strategy: start from the vantage point with the tightest bound (the
    target must be near it), then hill-descend on a shrinking grid around
    the best candidate, minimising total disk violation.
    Returns None with fewer than three usable constraints.
    """
    rtts_ms = np.asarray(rtts_ms, dtype=float)
    require(rtts_ms.shape == (len(vps),), "rtts must align with vantage points")
    valid = ~np.isnan(rtts_ms)
    if valid.sum() < 3:
        return None
    bounds = _distance_bounds_m(np.where(valid, rtts_ms, np.inf))

    anchor_index = int(np.argmin(np.where(valid, bounds, np.inf)))
    best_lat, best_lon = vps[anchor_index].lat, vps[anchor_index].lon
    best_violation = _violation(best_lat, best_lon, vps, bounds, valid)

    # Grid refinement: start at the anchor's bound radius, halve each pass.
    radius_deg = max(0.05, bounds[anchor_index] / 111_000.0)
    for _ in range(refine_steps):
        for dlat in np.linspace(-radius_deg, radius_deg, 5):
            for dlon in np.linspace(-radius_deg, radius_deg, 5):
                lat = float(np.clip(best_lat + dlat, -90.0, 90.0))
                lon = float((best_lon + dlon + 180.0) % 360.0 - 180.0)
                violation = _violation(lat, lon, vps, bounds, valid)
                if violation < best_violation:
                    best_lat, best_lon, best_violation = lat, lon, violation
        radius_deg /= 2.0

    return CbgEstimate(
        lat=best_lat,
        lon=best_lon,
        violation_m=best_violation,
        n_constraints=int(valid.sum()),
    )


def geolocate_clusters(
    clusters: list[list[int]],
    matrix,
    vps: list[VantagePoint],
) -> dict[int, CbgEstimate | None]:
    """Estimate a position per cluster from the median member RTT vector.

    ``matrix`` is a :class:`repro.mlab.matrix.LatencyMatrix`; clusters are
    lists of member IPs.  Aggregating members before estimating sheds the
    per-probe noise.
    """
    estimates: dict[int, CbgEstimate | None] = {}
    for index, cluster in enumerate(clusters):
        columns = matrix.submatrix(list(cluster))
        with np.errstate(all="ignore"):
            median_rtts = np.nanmedian(columns, axis=1)
        estimates[index] = estimate_position(median_rtts, vps)
    return estimates
