"""Latency-based geolocation (substrate extension).

The paper uses speed-of-light constraints only to *discard* impossible
measurements (Appendix A).  The same physics supports constraint-based
geolocation (CBG): every vantage point's RTT bounds the target inside a
disk, and the intersection localises it.  This package implements CBG over
the campaign's latency matrix and scores it against the ground-truth
facility coordinates — a natural extension the validation section hints
at (cluster locations could be checked against *estimated* positions, not
just hostname hints).
"""

from repro.geoloc.cbg import CbgEstimate, estimate_position, geolocate_clusters

__all__ = ["CbgEstimate", "estimate_position", "geolocate_clusters"]
