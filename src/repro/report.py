"""Full-study report generation: every paper artifact as one text document.

Used by the CLI (``python -m repro study``) and handy in notebooks::

    from repro.report import build_report
    print(build_report(study, sections=("t1", "t2")))
"""

from __future__ import annotations

from typing import Callable

from repro._util import require
from repro.core.pipeline import Study

#: Section id -> (title, renderer).
_SECTIONS: dict[str, tuple[str, Callable[[Study], str]]] = {}


def _register(section_id: str, title: str):
    def decorator(fn: Callable[[Study], str]):
        _SECTIONS[section_id] = (title, fn)
        return fn

    return decorator


@_register("s21", "Section 2.1: offnets serve most hypergiant traffic (anecdote)")
def _s21(study: Study) -> str:
    from repro.experiments.section21_anecdote import run_section21

    return run_section21(study).render()


@_register("ce", "Section 2.1: offnet fractions as emergent cache hit ratios")
def _ce(study: Study) -> str:
    from repro.experiments.cache_emergence import run_cache_emergence

    del study  # catalog simulation is independent of the generated Internet
    return run_cache_emergence().render()


@_register("t1", "Table 1: offnet footprint growth (2021 vs 2023)")
def _t1(study: Study) -> str:
    from repro.experiments.table1 import run_table1

    return run_table1(study).render()


@_register("f1", "Figure 1: per-country users in multi-hypergiant ISPs")
def _f1(study: Study) -> str:
    from repro.experiments.figure1 import run_figure1

    result = run_figure1(study)
    return result.summary() + "\n\n" + result.render()


@_register("t2", "Table 2: colocation of offnets across hypergiants")
def _t2(study: Study) -> str:
    from repro.experiments.table2 import run_table2

    return run_table2(study).render()


@_register("f2", "Figure 2: single-facility traffic concentration")
def _f2(study: Study) -> str:
    from repro.experiments.figure2 import run_figure2

    return run_figure2(study).render()


@_register("s32", "Section 3.2: cohosting and cluster validation")
def _s32(study: Study) -> str:
    from repro.experiments.section32 import run_section32

    return run_section32(study).render()


@_register("s41", "Section 4.1: offnet capacity and the COVID surge")
def _s41(study: Study) -> str:
    from repro.experiments.section41_capacity import run_section41

    return run_section41(study, covid_sample=60).render()


@_register("s42", "Section 4.2: peering coverage and PNI headroom")
def _s42(study: Study) -> str:
    from repro.experiments.section42_peering import run_section42

    return run_section42(study, n_regions=4).render()


@_register("s43", "Section 4.3: correlated failures and collateral damage")
def _s43(study: Study) -> str:
    from repro.experiments.section43_collateral import run_section43

    return run_section43(study, sample=60).render()


@_register("s33", "Section 3.3: correlated risk (joint-outage inflation)")
def _s33(study: Study) -> str:
    from repro.core.correlation import build_correlation_report

    return build_correlation_report(study.history.state("2023"), study.population).render()


@_register("sb", "Section 3.2: steering eras vs the 2013 mapping technique")
def _sb(study: Study) -> str:
    from repro.experiments.steering_blindness import run_steering_blindness

    return run_steering_blindness(study).render()


@_register("s6", "Section 6: mitigation directions (isolation, upgrades)")
def _s6(study: Study) -> str:
    from repro.experiments.section6_mitigations import run_section6

    return run_section6(study).render()


@_register("long", "Section 3.1: the longitudinal cohosting trend (2017-2023)")
def _long(study: Study) -> str:
    from repro._util import format_table
    from repro.deployment.growth import build_epoch_series

    series = build_epoch_series(study.internet, seed=3)
    rows = []
    for epoch in sorted(series.epochs):
        state = series.state(epoch)
        hosting = state.hosting_isps()
        at_least_2 = sum(1 for isp in hosting if len(state.hypergiants_in(isp)) >= 2)
        rows.append(
            [epoch]
            + [len(state.isps_hosting(hg)) for hg in ("Google", "Netflix", "Meta", "Akamai")]
            + [at_least_2]
        )
    return format_table(["epoch", "Google", "Netflix", "Meta", "Akamai", "ISPs >=2 HGs"], rows)


@_register("fc", "Section 3.3: a flash crowd on the shared facility uplink")
def _fc(study: Study) -> str:
    from repro._util import format_table
    from repro.capacity.demand import DemandModel
    from repro.capacity.flashcrowd import FlashCrowdEvent, colocated_vs_dispersed
    from repro.experiments.section43_collateral import most_shared_facility

    state = study.history.state("2023")
    facility_id, hypergiants = most_shared_facility(study)
    isp = next(s for s in state.servers if s.facility.facility_id == facility_id).isp
    demand = DemandModel(traffic=study.traffic)
    steady = {hg: demand.hypergiant_peak_gbps(isp, hg) for hg in hypergiants}
    target = "Netflix" if "Netflix" in steady else sorted(steady)[0]
    colocated, _dispersed = colocated_vs_dispersed(steady, FlashCrowdEvent(target, 4.0))
    rows = [
        [
            name,
            f"{100 * colocated.bystander_loss_fraction(name):.1f}%",
            f"{colocated.degraded_minutes(name)} min",
        ]
        for name in sorted(steady)
        if name != target
    ]
    header = (
        f"x4.0 surge on {target} at facility {facility_id} "
        f"(uplink peak utilization x{colocated.peak_utilization:.2f}); dispersed: zero loss"
    )
    return header + "\n" + format_table(["bystander", "bytes lost (colocated)", "degraded"], rows)


@_register("cf", "Counterfactual: a dispersal mandate vs the status quo")
def _cf(study: Study) -> str:
    from repro.experiments.counterfactual_dispersal import run_dispersal_counterfactual

    return run_dispersal_counterfactual(study).render()


@_register("acc", "Accuracy: the inference pipeline scored against ground truth")
def _acc(study: Study) -> str:
    return study.scorecard().render()


@_register("cov", "Coverage: measurement surface lost to faults and quarantines")
def _cov(study: Study) -> str:
    return study.coverage.render()


@_register("obs", "Telemetry: stage timings, resources, flights, metrics")
def _obs(study: Study) -> str:
    from repro.obs import (
        profile_stages,
        render_filter_funnel,
        render_metrics_table,
        render_profile,
        render_span_tree,
    )

    if study.telemetry is None or not study.telemetry.enabled:
        return (
            "telemetry was not captured for this study\n"
            "(run with --trace / --metrics-out, or pass telemetry=Telemetry.capture() to run_study)"
        )
    blocks = [
        "stage timings:\n" + render_span_tree(study.telemetry.tracer),
        "filter funnel:\n" + render_filter_funnel(study.telemetry.metrics),
        "metrics:\n" + render_metrics_table(study.telemetry.metrics),
    ]
    if profile_stages(study.telemetry):
        blocks.insert(1, "resource profile:\n" + render_profile(study.telemetry))
    if study.telemetry.flight.enabled and study.telemetry.flight.records:
        blocks.append("executor flights:\n" + study.telemetry.flight.render())
    return "\n\n".join(blocks)


def available_sections() -> list[str]:
    """Section ids, in presentation order."""
    return list(_SECTIONS)


def build_report(study: Study, sections: tuple[str, ...] | None = None) -> str:
    """Render the selected ``sections`` (default: all) for ``study``."""
    chosen = list(sections) if sections else available_sections()
    for section_id in chosen:
        require(section_id in _SECTIONS, f"unknown report section {section_id!r}")
    blocks = []
    for section_id in chosen:
        title, renderer = _SECTIONS[section_id]
        underline = "=" * len(title)
        blocks.append(f"{title}\n{underline}\n{renderer(study)}")
    return "\n\n\n".join(blocks)
