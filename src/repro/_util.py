"""Shared utilities: deterministic RNG management, validation, formatting.

Everything in :mod:`repro` is deterministic given a seed.  The convention is
that any object that needs randomness accepts either a ``seed`` integer or a
:class:`numpy.random.Generator` and passes child generators to sub-components
via :func:`spawn_rng`, so that adding a new consumer of randomness in one
module does not perturb the stream seen by another.
"""

from __future__ import annotations

import math
import os
import uuid
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import TypeVar

import numpy as np

T = TypeVar("T")

#: Speed of light in fibre, metres per second (~2/3 of c in vacuum).
FIBRE_LIGHT_SPEED_M_S = 2.0e8

#: Earth mean radius in metres, for great-circle distances.
EARTH_RADIUS_M = 6_371_000.0


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (non-deterministic; discouraged outside interactive use).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator from ``rng``, keyed by ``label``.

    Using a label (rather than drawing from the parent stream) keeps sibling
    components' randomness independent of the order in which they are built.
    """
    # Fold the label into entropy deterministically.
    label_entropy = [ord(ch) for ch in label]
    seed_material = rng.integers(0, 2**63 - 1)
    return np.random.default_rng([int(seed_material), *label_entropy])


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (unique temp file + rename).

    The same publish-by-rename idiom :mod:`repro.store` uses for artifact
    archives: readers (a concurrent ``repro tail``, a crashed run's
    post-mortem) only ever see the old file or the complete new one, never
    a torn half-write.  The temp name carries pid + random suffix so
    concurrent writers to the same path cannot collide; ``os.replace``
    keeps last-writer-wins semantics on POSIX and Windows alike.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    staging = path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
    try:
        staging.write_text(text, encoding="utf-8")
        os.replace(staging, path)
    except BaseException:
        staging.unlink(missing_ok=True)
        raise
    return path


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Return ``n`` normalised Zipf weights ``1/rank**exponent``.

    Used for market shares (ISP user counts, content popularity) which are
    heavy-tailed in the real Internet.
    """
    require(n > 0, "zipf_weights needs n > 0")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def weighted_choice_without_replacement(
    rng: np.random.Generator, items: Sequence[T], weights: Iterable[float], k: int
) -> list[T]:
    """Sample ``k`` distinct items with probability proportional to ``weights``."""
    weights = np.asarray(list(weights), dtype=float)
    require(len(items) == len(weights), "items and weights must align")
    require(0 <= k <= len(items), "k out of range")
    if k == 0:
        return []
    probabilities = weights / weights.sum()
    indices = rng.choice(len(items), size=k, replace=False, p=probabilities)
    return [items[i] for i in indices]


def great_circle_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in metres between two (lat, lon) points (haversine)."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    return 2 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def propagation_rtt_ms(distance_m: float, path_inflation: float = 1.0) -> float:
    """Minimum round-trip time in milliseconds over ``distance_m`` of fibre.

    ``path_inflation`` >= 1 models the fact that fibre paths are longer than
    great circles (typical Internet inflation is 1.5-2.5x).
    """
    require(path_inflation >= 1.0, "path_inflation must be >= 1")
    one_way_s = distance_m * path_inflation / FIBRE_LIGHT_SPEED_M_S
    return 2.0 * one_way_s * 1000.0


def ccdf(values: Sequence[float], weights: Sequence[float] | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, ccdf)`` where ``ccdf[i] = P(X >= sorted_values[i])``.

    ``weights`` lets values represent populations (e.g. users per ISP).
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return np.array([]), np.array([])
    if weights is None:
        weights = np.ones_like(values)
    else:
        weights = np.asarray(weights, dtype=float)
        require(weights.shape == values.shape, "weights must match values")
        require(bool((weights >= 0).all()), "weights must be non-negative")
    order = np.argsort(values)
    sorted_values = values[order]
    sorted_weights = weights[order]
    total = sorted_weights.sum()
    require(total > 0, "total weight must be positive")
    # P(X >= v_i): weight of items at index >= i (inclusive of ties handled by sort order).
    tail = np.cumsum(sorted_weights[::-1])[::-1]
    return sorted_values, tail / total


def format_percent(fraction: float, digits: int = 1) -> str:
    """Format ``fraction`` in [0, 1] as a percent string like ``'42.5%'``."""
    return f"{100.0 * fraction:.{digits}f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (used by benchmark harnesses)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        require(len(row) == len(headers), "row width must match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
