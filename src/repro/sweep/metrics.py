"""Metric specifications: named study-level observables with shape bands.

:class:`MetricSpec` was born in :mod:`repro.sensitivity` (which still
re-exports it) and moved here when sweep campaigns became the general
mechanism: any campaign — seed sensitivity, OPTICS-steepness sweeps,
outage grids — extracts the same named metrics per cell and aggregates
them against the same paper-shape acceptance bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.pipeline import Study


@dataclass(frozen=True)
class MetricSpec:
    """One headline metric plus its paper-shape acceptance band."""

    name: str
    extract: "Callable[[Study], float]"
    lower: float
    upper: float
    paper_value: str

    def within_band(self, value: float) -> bool:
        """Whether ``value`` satisfies the shape assertion."""
        return self.lower <= value <= self.upper


def evaluate_metrics(study: "Study", specs: tuple[MetricSpec, ...]) -> dict[str, float]:
    """Extract every spec's value from ``study``, keyed by metric name."""
    return {spec.name: float(spec.extract(study)) for spec in specs}
