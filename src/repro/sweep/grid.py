"""Declarative parameter grids over :class:`StudyConfig`.

A grid is a base config plus named axes.  Axis names are dotted paths
into the (nested, frozen) config dataclasses — ``"seed"``,
``"internet.n_access_isps"``, ``"campaign.ping.pings_per_target"`` — and an axis
may link several paths with commas (``"seed,internet.seed"`` varies both
together, the shape seed-sensitivity campaigns need).  Expansion is the
cartesian product in axis order, so cell order — and therefore every
downstream report — is deterministic.

Grids also load from spec files (JSON always; YAML when PyYAML happens
to be installed)::

    {
      "scenario": "small",
      "overrides": {"n_vantage_points": 32},
      "axes": {"seed,internet.seed": [1, 2, 3],
               "xis": [[0.1, 0.9], [0.5, 0.9]]}
    }
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, fields, is_dataclass, replace
from pathlib import Path
from typing import Any

from repro._util import require
from repro.core.pipeline import StudyConfig


def apply_override(config: Any, path: str, value: Any) -> Any:
    """A copy of ``config`` with the dotted ``path`` replaced by ``value``.

    Walks nested frozen dataclasses with :func:`dataclasses.replace`;
    unknown field names raise :class:`ValueError` naming the full path.
    JSON lists are coerced to tuples where the current value is a tuple,
    so spec files can express ``xis`` naturally.
    """
    return _apply_override(config, path, value, full_path=path)


def _apply_override(config: Any, path: str, value: Any, full_path: str) -> Any:
    require(
        is_dataclass(config),
        f"cannot apply override {full_path!r} to {type(config).__name__}",
    )
    head, _, rest = path.partition(".")
    names = {field.name for field in fields(config)}
    require(
        head in names,
        f"unknown config field {head!r} in override path {full_path!r} "
        f"(fields of {type(config).__name__}: {', '.join(sorted(names))})",
    )
    current = getattr(config, head)
    if rest:
        return replace(config, **{head: _apply_override(current, rest, value, full_path)})
    if isinstance(current, tuple) and isinstance(value, list):
        value = tuple(value)
    return replace(config, **{head: value})


def _format_value(value: Any) -> str:
    """Compact, deterministic rendering of an axis value for cell ids."""
    if isinstance(value, str):
        return value
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SweepCell:
    """One expanded grid point: a fully-resolved config plus provenance."""

    index: int
    cell_id: str
    #: (axis name, value) in axis order.
    overrides: tuple[tuple[str, Any], ...]
    config: StudyConfig


@dataclass(frozen=True)
class ParameterGrid:
    """A base config and the axes to sweep over it."""

    base: StudyConfig
    #: (axis name, values); an axis name may comma-link several paths.
    axes: tuple[tuple[str, tuple[Any, ...]], ...]

    def __post_init__(self) -> None:
        for name, values in self.axes:
            require(bool(values), f"axis {name!r} has no values")

    @classmethod
    def of(cls, base: StudyConfig, axes: dict[str, Any]) -> "ParameterGrid":
        """Build a grid from a dict of axis name -> iterable of values."""
        return cls(base=base, axes=tuple((name, tuple(values)) for name, values in axes.items()))

    @property
    def axis_names(self) -> tuple[str, ...]:
        """Axis names in sweep order."""
        return tuple(name for name, _ in self.axes)

    @property
    def n_cells(self) -> int:
        """Number of grid points (1 for an axis-free grid)."""
        count = 1
        for _, values in self.axes:
            count *= len(values)
        return count

    def cells(self) -> list[SweepCell]:
        """Expand the cartesian product, in deterministic axis order."""
        expanded: list[SweepCell] = []
        value_lists = [values for _, values in self.axes]
        for index, combo in enumerate(itertools.product(*value_lists)):
            config = self.base
            overrides: list[tuple[str, Any]] = []
            for (axis, _), value in zip(self.axes, combo):
                for path in axis.split(","):
                    config = apply_override(config, path.strip(), value)
                overrides.append((axis, value))
            cell_id = (
                ",".join(f"{axis}={_format_value(value)}" for axis, value in overrides) or "base"
            )
            expanded.append(
                SweepCell(index=index, cell_id=cell_id, overrides=tuple(overrides), config=config)
            )
        return expanded

    @classmethod
    def from_spec(cls, spec: dict[str, Any]) -> "ParameterGrid":
        """Build a grid from a parsed spec file (see module docstring)."""
        unknown = set(spec) - {"scenario", "overrides", "axes"}
        require(not unknown, f"unknown spec keys: {sorted(unknown)}")
        if "scenario" in spec:
            from repro.experiments.scenarios import scenario_by_name

            base = scenario_by_name(spec["scenario"]).config
        else:
            base = StudyConfig()
        for path, value in spec.get("overrides", {}).items():
            base = apply_override(base, path, value)
        return cls.of(base, spec.get("axes", {}))


def load_spec(path: str | Path) -> dict[str, Any]:
    """Parse a grid spec file: JSON always, YAML if PyYAML is available."""
    path = Path(path)
    text = path.read_text()
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as error:  # pragma: no cover - depends on host env
            raise ValueError(
                f"cannot read {path}: PyYAML is not installed; use a JSON spec instead"
            ) from error
        return yaml.safe_load(text)
    return json.loads(text)


def load_grid(path: str | Path) -> ParameterGrid:
    """Load and expand a spec file into a :class:`ParameterGrid`."""
    return ParameterGrid.from_spec(load_spec(path))
