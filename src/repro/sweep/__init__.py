"""Sweep campaigns: declarative grids, durable cells, deterministic reports.

The paper's argument is a *sweep* — the same pipeline re-run under many
configurations (OPTICS steepness, filter thresholds, epochs, seeds,
outage scenarios).  This package turns that pattern into infrastructure:

* :mod:`repro.sweep.grid` — :class:`ParameterGrid` expands dict-of-axes
  (or a JSON/YAML spec file) into fully-resolved
  :class:`~repro.core.pipeline.StudyConfig` cells, deterministically.
* :mod:`repro.sweep.campaign` — :func:`run_campaign` dispatches cells
  through :mod:`repro.parallel`, checkpoints each into a
  :class:`~repro.store.StudyStore`, and resumes by skipping stored
  cells; :class:`CampaignReport` aggregates per-cell metrics into
  sensitivity bands, byte-identically whether or not the campaign was
  interrupted.
* :mod:`repro.sweep.metrics` — :class:`MetricSpec`, the named-observable
  + acceptance-band abstraction shared with :mod:`repro.sensitivity`.
"""

from repro.sweep.campaign import (
    REPORT_FORMAT,
    CampaignReport,
    CampaignStatus,
    CellResult,
    campaign_status,
    run_campaign,
)
from repro.sweep.grid import (
    ParameterGrid,
    SweepCell,
    apply_override,
    load_grid,
    load_spec,
)
from repro.sweep.metrics import MetricSpec, evaluate_metrics

__all__ = [
    "CampaignReport",
    "CampaignStatus",
    "CellResult",
    "MetricSpec",
    "ParameterGrid",
    "REPORT_FORMAT",
    "SweepCell",
    "apply_override",
    "campaign_status",
    "evaluate_metrics",
    "load_grid",
    "load_spec",
    "run_campaign",
]
