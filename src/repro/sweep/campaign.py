"""Resumable sweep campaigns: expand a grid, run cells, checkpoint each.

:func:`run_campaign` turns a :class:`~repro.sweep.grid.ParameterGrid`
into one :class:`CellResult` per grid point.  Cells dispatch through the
:mod:`repro.parallel` executor (one cell per shard; a cell is already a
whole pipeline run) and every completed cell is checkpointed into a
:class:`~repro.store.StudyStore` *before* its result is reported, so an
interrupt or crash loses at most the cells in flight.  Re-running the
same campaign skips every stored cell — the store's content address *is*
the resume token; there is no separate campaign state file to corrupt.

The :class:`CampaignReport` is a pure function of the grid and the
metric specs: cache provenance (hits/misses) and timings are surfaced
separately, so an interrupted-then-resumed campaign renders and
serialises **byte-identically** to an uninterrupted one
(``tests/test_sweep_resume.py`` proves this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro._util import atomic_write_text, format_table, require
from repro.core.pipeline import run_study
from repro.faults import FaultPlan, WorkerCrashError, raise_injected
from repro.obs import Telemetry, ensure_telemetry
from repro.parallel import ParallelConfig, Shard, ShardPlan, run_sharded
from repro.resilience import ResilienceConfig, ShardLoss, call_with_retry
from repro.store import StudyStore
from repro.sweep.grid import ParameterGrid
from repro.sweep.metrics import MetricSpec, evaluate_metrics

#: Format tag stamped into exported campaign reports.
REPORT_FORMAT = "repro-sweep-v2"


@dataclass(frozen=True)
class CellResult:
    """One completed grid point's extracted metrics."""

    index: int
    cell_id: str
    overrides: tuple[tuple[str, Any], ...]
    #: metric name -> value (empty when the cell failed).
    values: dict[str, float]
    #: Whether the cell came from the store (provenance, not artifact).
    from_store: bool = False
    #: ``"ok"``, or ``"failed"`` when the cell exhausted its retries and
    #: the campaign's error budget allowed continuing without it.
    status: str = "ok"


@dataclass
class CampaignReport:
    """Per-cell metric table plus per-metric sensitivity bands.

    Everything :meth:`render` and :meth:`to_json` emit is a deterministic
    function of (grid, metric specs); cache provenance lives only in
    :attr:`cache_hits` / :attr:`cache_misses` and is excluded, so resumed
    and uninterrupted campaigns produce identical report bytes.
    """

    axis_names: tuple[str, ...]
    specs: tuple[MetricSpec, ...]
    cells: list[CellResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def n_failed(self) -> int:
        """Cells that exhausted their retries and were recorded as failed."""
        return sum(1 for cell in self.cells if cell.status != "ok")

    def series(self, name: str) -> list[float]:
        """One metric's values across *successful* cells, in cell order."""
        return [cell.values[name] for cell in self.cells if name in cell.values]

    def out_of_band(self, name: str) -> int:
        """How many cells violated the metric's acceptance band."""
        spec = next(s for s in self.specs if s.name == name)
        return sum(1 for value in self.series(name) if not spec.within_band(value))

    @property
    def all_within_bands(self) -> bool:
        """Whether every metric held its shape on every cell."""
        return all(self.out_of_band(spec.name) == 0 for spec in self.specs)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-metric bands: mean / std / min / max / violations."""
        out: dict[str, dict[str, float]] = {}
        for spec in self.specs:
            series = self.series(spec.name)
            if not series:
                # Every cell failed: there is no distribution to summarise.
                out[spec.name] = {"mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0, "violations": 0}
                continue
            out[spec.name] = {
                "mean": float(np.mean(series)),
                "std": float(np.std(series)),
                "min": float(min(series)),
                "max": float(max(series)),
                "violations": self.out_of_band(spec.name),
            }
        return out

    def render(self) -> str:
        """Per-cell table plus the sensitivity-band table."""
        metric_names = [spec.name for spec in self.specs]
        cell_rows = [
            [
                cell.cell_id,
                *(
                    f"{cell.values[name]:.3f}" if name in cell.values else "FAILED"
                    for name in metric_names
                ),
            ]
            for cell in self.cells
        ]
        cell_table = format_table(["cell", *metric_names], cell_rows)
        summary = self.summary()
        band_rows = [
            [
                spec.name,
                f"{summary[spec.name]['mean']:.3f}",
                f"{summary[spec.name]['std']:.3f}",
                f"{summary[spec.name]['min']:.3f}",
                f"{summary[spec.name]['max']:.3f}",
                spec.paper_value,
                f"{summary[spec.name]['violations']:g}/{len(self.cells)}",
            ]
            for spec in self.specs
        ]
        band_table = format_table(
            ["metric", "mean", "std", "min", "max", "paper", "violations"], band_rows
        )
        return f"{cell_table}\n\n{band_table}"

    def to_json(self) -> dict[str, Any]:
        """Canonical report dict (no timings, no cache provenance)."""
        return {
            "format": REPORT_FORMAT,
            "axes": list(self.axis_names),
            "n_cells": len(self.cells),
            "n_failed": self.n_failed,
            "cells": [
                {
                    "cell_id": cell.cell_id,
                    "overrides": {axis: value for axis, value in cell.overrides},
                    "status": cell.status,
                    "values": {name: cell.values[name] for name in sorted(cell.values)},
                }
                for cell in self.cells
            ],
            "summary": self.summary(),
        }

    def write(self, path: str | Path) -> Path:
        """Write the canonical report JSON to ``path`` (atomically) and return it."""
        return atomic_write_text(path, json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n")


def _trip_cell_fault(faults: FaultPlan | None, cell_index: int, attempt: int) -> None:
    """Apply a planned ``sweep.cell`` fault to this cell attempt."""
    if faults is None:
        return
    spec = faults.decide("sweep.cell", cell_index, attempt)
    if spec is None:
        return
    if spec.kind == "error":
        raise_injected(spec, "sweep.cell", cell_index)
    elif spec.kind == "crash":
        raise WorkerCrashError(f"injected worker crash at sweep cell {cell_index}")


def _run_cells_shard(
    store_root: str | None,
    specs: tuple[MetricSpec, ...],
    cell_hook: "Callable[[CellResult], None] | None",
    faults: FaultPlan | None,
    resilience: ResilienceConfig | None,
    shard: Shard,
    telemetry: Telemetry | None,
) -> list[CellResult]:
    """Run one shard of sweep cells; store-first, compute on miss.

    Each cell checkpoints into the store before its result is returned,
    so the set of durable cells only ever grows — that is the whole
    resume protocol.  ``cell_hook`` fires after the checkpoint (serial
    backend: the abort-mid-campaign tests hook here).

    With ``resilience``, each cell gets its own retry loop (the
    ``sweep.cell`` fault site is attempt-aware, so transient faults clear
    on retry); a cell that exhausts its attempts is recorded as
    ``status="failed"`` instead of sinking the campaign.
    """
    obs = ensure_telemetry(telemetry)
    store = (
        StudyStore(
            store_root,
            faults=faults,
            retry=resilience.retry if resilience is not None else None,
        )
        if store_root is not None
        else None
    )
    results: list[CellResult] = []
    for cell in shard.items:

        def _attempt_cell(attempt: int, cell=cell) -> CellResult:
            _trip_cell_fault(faults, cell.index, attempt)
            study = store.get(cell.config, telemetry=telemetry) if store is not None else None
            from_store = study is not None
            if study is None:
                study = run_study(cell.config, telemetry=telemetry)
                if store is not None:
                    store.put(study)
            return CellResult(
                index=cell.index,
                cell_id=cell.cell_id,
                overrides=cell.overrides,
                values=evaluate_metrics(study, specs),
                from_store=from_store,
            )

        if resilience is None:
            result = _attempt_cell(0)
        else:
            try:
                result = call_with_retry(
                    _attempt_cell,
                    resilience.retry,
                    on_retry=lambda _attempt, _error: obs.count("resilience.retries"),
                )
            except Exception as error:  # noqa: BLE001 — recorded, not fatal
                obs.count("sweep.cells_failed")
                result = CellResult(
                    index=cell.index,
                    cell_id=cell.cell_id,
                    overrides=cell.overrides,
                    values={},
                    status="failed",
                )
                obs.log("sweep cell failed", cell=cell.cell_id, error=f"{type(error).__name__}: {error}")
        results.append(result)
        if cell_hook is not None:
            cell_hook(result)
    return results


def run_campaign(
    grid: ParameterGrid,
    metrics: tuple[MetricSpec, ...],
    store: StudyStore | None = None,
    parallel: ParallelConfig | None = None,
    telemetry: Telemetry | None = None,
    max_cells: int | None = None,
    cell_hook: "Callable[[CellResult], None] | None" = None,
    faults: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
) -> CampaignReport:
    """Run (or resume) the campaign for ``grid``; one report row per cell.

    ``store`` makes the campaign durable: cells already present are
    loaded instead of recomputed, and freshly-computed cells are
    checkpointed as they finish.  ``max_cells`` truncates the expansion
    to its first N cells (a deterministic partial campaign — useful for
    smoke runs and for exercising resume).  ``parallel`` dispatches one
    cell per shard through the configured backend; with a process
    backend, ``cell_hook`` must be picklable.

    ``faults`` wires the ``sweep.cell``, ``sweep.shard``, and
    ``store.load`` injection sites into the campaign.  With
    ``resilience``, failed cells and quarantined shards degrade to
    ``status="failed"`` rows (within the error budget) instead of
    aborting the whole campaign.
    """
    require(bool(metrics), "need at least one metric spec")
    cells = grid.cells()
    if max_cells is not None:
        require(max_cells >= 1, "max_cells must be >= 1")
        cells = cells[:max_cells]
    parallel = parallel or ParallelConfig()
    obs = ensure_telemetry(telemetry)

    store_root = str(store.root) if store is not None else None
    plan = ShardPlan.of(cells, chunk_size=1)
    # One cell per shard, so the executor's per-shard progress events double
    # as per-cell campaign progress ("sweep: k/n, eta ...") on the stream.
    obs.emit("campaign_start", n_cells=len(cells), axes=list(grid.axis_names))
    with obs.span("sweep", n_cells=len(cells), stored=store is not None):
        shard_results = run_sharded(
            partial(_run_cells_shard, store_root, tuple(metrics), cell_hook, faults, resilience),
            plan,
            parallel,
            telemetry=telemetry,
            label="sweep",
            faults=faults,
            resilience=resilience,
        )
    results: list[CellResult] = []
    for shard, shard_result in zip(plan.shards(), shard_results):
        if isinstance(shard_result, ShardLoss):
            # One cell per shard: a quarantined shard is a failed cell.
            for cell in shard.items:
                obs.count("sweep.cells_failed")
                results.append(
                    CellResult(
                        index=cell.index,
                        cell_id=cell.cell_id,
                        overrides=cell.overrides,
                        values={},
                        status="failed",
                    )
                )
            continue
        results.extend(shard_result)

    report = CampaignReport(
        axis_names=grid.axis_names,
        specs=tuple(metrics),
        cells=results,
        cache_hits=sum(1 for r in results if r.from_store),
        cache_misses=sum(1 for r in results if not r.from_store),
    )
    obs.count("sweep.cells", len(results))
    obs.count("sweep.store_hits", report.cache_hits)
    obs.count("sweep.store_misses", report.cache_misses)
    obs.emit(
        "campaign_end",
        n_cells=len(results),
        n_failed=report.n_failed,
        store_hits=report.cache_hits,
        store_misses=report.cache_misses,
    )
    obs.log(
        "sweep campaign complete",
        cells=len(results),
        store_hits=report.cache_hits,
        store_misses=report.cache_misses,
    )
    return report


@dataclass(frozen=True)
class CampaignStatus:
    """Which grid points are already durable in a store."""

    n_cells: int
    done: tuple[str, ...]
    pending: tuple[str, ...]

    @property
    def n_done(self) -> int:
        """Cells already checkpointed."""
        return len(self.done)

    @property
    def n_pending(self) -> int:
        """Cells a resume would still run."""
        return len(self.pending)

    def render(self) -> str:
        """One-line summary plus the pending cell ids."""
        lines = [f"{self.n_done}/{self.n_cells} cells stored, {self.n_pending} pending"]
        for cell_id in self.pending:
            lines.append(f"  pending: {cell_id}")
        return "\n".join(lines)


def campaign_status(grid: ParameterGrid, store: StudyStore) -> CampaignStatus:
    """Check every grid point against the store (no LRU effects)."""
    done: list[str] = []
    pending: list[str] = []
    for cell in grid.cells():
        (done if store.contains(cell.config) else pending).append(cell.cell_id)
    return CampaignStatus(n_cells=len(done) + len(pending), done=tuple(done), pending=tuple(pending))
