"""Latency-based colocation clustering (substrate).

From-scratch OPTICS (Ankerst et al., SIGMOD'99) with xi steep-area cluster
extraction, plus the paper's distance function: the normalised Manhattan
distance over vantage-point latency vectors after trimming the 20 % of
vantage points with the largest discrepancy (Appendix A, following the
IMC'13 Google-mapping paper).
"""

from repro.clustering.distance import (
    pairwise_trimmed_manhattan,
    pairwise_trimmed_manhattan_reference,
    trimmed_manhattan,
)
from repro.clustering.optics import (
    OpticsResult,
    active_optics_implementation,
    optics_order,
    optics_order_reference,
)
from repro.clustering.sites import (
    ClusteringConfig,
    ClusteringMemo,
    SiteClustering,
    cluster_isp_offnets,
)
from repro.clustering.xi import extract_xi_clusters, xi_labels

__all__ = [
    "ClusteringConfig",
    "ClusteringMemo",
    "OpticsResult",
    "SiteClustering",
    "active_optics_implementation",
    "cluster_isp_offnets",
    "extract_xi_clusters",
    "optics_order",
    "optics_order_reference",
    "pairwise_trimmed_manhattan",
    "pairwise_trimmed_manhattan_reference",
    "trimmed_manhattan",
    "xi_labels",
]
