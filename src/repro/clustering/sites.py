"""Per-ISP site clustering: the §3.2 / Appendix-A driver.

Given the filtered latency matrix of one ISP's offnet IPs, compute the
trimmed-Manhattan distance matrix, run OPTICS, extract xi clusters, and
return the site assignment.  IPs not assigned to any cluster are treated as
"not colocated" (Appendix A: "OPTICS will not assign an IP address to a
cluster if no address is within a short distance, in which case we consider
the offnet as not colocated").

The study clusters every ISP at *several* xi settings, but neither the
distance matrix (a function of the columns and ``trim_fraction``) nor the
OPTICS ordering (additionally of ``min_pts``) depends on xi —
:class:`ClusteringMemo` caches both so a caller holding all of an ISP's xi
settings pays for them once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro._util import require, require_fraction
from repro.clustering.distance import pairwise_trimmed_manhattan
from repro.clustering.optics import OpticsResult, optics_order
from repro.clustering.xi import extract_xi_clusters, split_clusters_on_spikes, xi_labels
from repro.obs import Telemetry, ensure_telemetry


@dataclass(frozen=True)
class ClusteringConfig:
    """Parameters of the per-ISP clustering (paper's Appendix A)."""

    xi: float = 0.1
    min_pts: int = 2
    trim_fraction: float = 0.2
    #: Interior reachability spikes beyond this multiple of the cluster's
    #: median split the cluster (see
    #: :func:`repro.clustering.xi.split_clusters_on_spikes`).
    spike_factor: float = 5.0

    def __post_init__(self) -> None:
        require(0.0 < self.xi < 1.0, "xi must be in (0, 1)")
        require(self.min_pts >= 2, "min_pts must be >= 2")
        require_fraction(self.trim_fraction, "trim_fraction")
        require(self.spike_factor > 1.0, "spike_factor must be > 1")


class ClusteringMemo:
    """Intra-run cache of the xi-independent clustering intermediates.

    Keys are caller-chosen (the pipeline uses the ISP ASN); the memo trusts
    the caller to pass the same columns for the same key, which is why
    :func:`cluster_isp_offnets` refuses a memo without an explicit
    ``memo_key``.  Scope the memo to one run (the pipeline creates one per
    clustering shard) — it holds strong references to the cached matrices.
    """

    __slots__ = ("_distances", "_optics")

    def __init__(self) -> None:
        self._distances: dict[tuple, np.ndarray] = {}
        self._optics: dict[tuple, OpticsResult] = {}

    def distances(
        self,
        key: object,
        columns: np.ndarray,
        trim_fraction: float,
        telemetry: Telemetry | None = None,
    ) -> np.ndarray:
        """The trimmed-Manhattan matrix for ``columns``, cached per (key, trim)."""
        obs = ensure_telemetry(telemetry)
        cache_key = (key, trim_fraction)
        cached = self._distances.get(cache_key)
        if cached is not None:
            obs.count("cluster.distance_matrices_reused")
            return cached
        timing = obs.metrics.enabled
        started = time.perf_counter() if timing else 0.0
        matrix = pairwise_trimmed_manhattan(columns, trim_fraction)
        if timing:
            obs.observe("cluster.distance_ms", 1000.0 * (time.perf_counter() - started))
        obs.count("cluster.distance_matrices_computed")
        self._distances[cache_key] = matrix
        return matrix

    def optics(
        self,
        key: object,
        distances: np.ndarray,
        trim_fraction: float,
        min_pts: int,
        telemetry: Telemetry | None = None,
    ) -> OpticsResult:
        """The OPTICS ordering for ``distances``, cached per (key, trim, min_pts)."""
        obs = ensure_telemetry(telemetry)
        cache_key = (key, trim_fraction, min_pts)
        cached = self._optics.get(cache_key)
        if cached is not None:
            obs.count("cluster.optics_reused")
            return cached
        timing = obs.metrics.enabled
        started = time.perf_counter() if timing else 0.0
        result = optics_order(distances, min_pts, telemetry=telemetry)
        if timing:
            obs.observe("cluster.optics_ms", 1000.0 * (time.perf_counter() - started))
        self._optics[cache_key] = result
        return result


@dataclass
class SiteClustering:
    """The inferred sites of one ISP's offnets."""

    ips: list[int]
    #: Cluster label per IP, aligned with ``ips``; -1 = not colocated.
    labels: np.ndarray
    config: ClusteringConfig
    _clusters: dict[int, list[int]] = field(init=False, repr=False)
    _position_of: dict[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        require(self.labels.shape == (len(self.ips),), "labels must align with ips")
        self._clusters = {}
        self._position_of = {}
        for position, (ip, label) in enumerate(zip(self.ips, self.labels)):
            # setdefault keeps the first occurrence, like list.index did.
            self._position_of.setdefault(ip, position)
            if label >= 0:
                self._clusters.setdefault(int(label), []).append(ip)

    @property
    def clusters(self) -> list[list[int]]:
        """Clustered IPs, one (sorted) list per cluster, by label order."""
        return [sorted(self._clusters[label]) for label in sorted(self._clusters)]

    @property
    def noise_ips(self) -> list[int]:
        """IPs OPTICS did not place in any cluster, sorted."""
        return sorted(ip for ip, label in zip(self.ips, self.labels) if label < 0)

    def label_of(self, ip: int) -> int:
        """Cluster label of ``ip`` (-1 if unclustered).

        Raises :class:`KeyError` naming the IP when it was not a clustering
        target.
        """
        try:
            position = self._position_of[ip]
        except KeyError:
            raise KeyError(
                f"IP {ip} is not a target of this clustering "
                f"({len(self.ips)} clustered IPs; see SiteClustering.ips)"
            ) from None
        return int(self.labels[position])

    @property
    def site_count(self) -> int:
        """Number of inferred sites: clusters plus unclustered singletons.

        §4.1 counts an ISP's offnet "sites" for one hypergiant this way; an
        unclustered IP is its own site.
        """
        return len(self._clusters) + len(self.noise_ips)


def cluster_isp_offnets(
    columns: np.ndarray,
    ips: list[int],
    config: ClusteringConfig | None = None,
    telemetry: Telemetry | None = None,
    memo: ClusteringMemo | None = None,
    memo_key: object | None = None,
) -> SiteClustering:
    """Cluster one ISP's offnet IPs from their latency columns.

    ``columns`` has shape ``(n_vps, len(ips))``.  Handles the degenerate
    single-IP case (one cluster of one? no — one *unclustered* IP, matching
    OPTICS semantics with min_pts = 2).

    Pass a :class:`ClusteringMemo` (with a ``memo_key`` identifying the
    column set — the pipeline uses the ISP ASN) to share the distance
    matrix and OPTICS ordering across calls that differ only in ``xi``; the
    xi extraction itself is re-run per call.  Without a memo the
    intermediates are computed fresh, exactly as before.
    """
    config = config or ClusteringConfig()
    obs = ensure_telemetry(telemetry)
    require(columns.shape[1] == len(ips), "columns must align with ips")
    require(memo is None or memo_key is not None, "a memo requires an explicit memo_key")
    n = len(ips)
    if n == 0:
        return SiteClustering(ips=[], labels=np.empty(0, dtype=int), config=config)
    if n == 1:
        obs.count("cluster.singleton_isps")
        return SiteClustering(ips=list(ips), labels=np.array([-1]), config=config)
    if memo is None:
        # A throwaway memo unifies the timed/counted code path; nothing is
        # ever reused through it.
        memo, memo_key = ClusteringMemo(), "unshared"
    distances = memo.distances(memo_key, columns, config.trim_fraction, telemetry=telemetry)
    result = memo.optics(memo_key, distances, config.trim_fraction, config.min_pts, telemetry=telemetry)
    timing = obs.metrics.enabled
    started = time.perf_counter() if timing else 0.0
    clusters = extract_xi_clusters(result.reachability, config.xi, config.min_pts)
    clusters = split_clusters_on_spikes(
        result.reachability, clusters, config.spike_factor, config.min_pts
    )
    position_labels = xi_labels(n, clusters)
    labels = np.full(n, -1, dtype=int)
    labels[result.ordering] = position_labels
    if timing:
        obs.observe("cluster.xi_extract_ms", 1000.0 * (time.perf_counter() - started))
    clustering = SiteClustering(ips=list(ips), labels=labels, config=config)
    obs.count("cluster.clusters_found", len(clustering.clusters))
    obs.count("cluster.noise_ips", len(clustering.noise_ips))
    obs.observe("cluster.sites_per_isp", clustering.site_count)
    return clustering


def _pairs_within(counts: np.ndarray) -> int:
    """Sum of C(count, 2) over a vector of group sizes."""
    counts = counts.astype(np.int64)
    return int((counts * (counts - 1) // 2).sum())


def pair_confusion_counts(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> tuple[int, int, int, int]:
    """Pairwise agreement counts between two labelings (for Rand index).

    Noise labels (-1) are treated as singleton clusters unique to each point.
    Returns ``(both_together, a_only, b_only, both_apart)`` over all pairs.

    Counting math instead of the O(n²) pair loop (kept as
    :func:`pair_confusion_counts_reference`): "together in a" pairs are
    ΣC(size, 2) over a's non-noise clusters, "together in both" the same sum
    over the joint (a, b) label intersection cells, and the remaining
    buckets follow by inclusion-exclusion over C(n, 2).
    """
    require(labels_a.shape == labels_b.shape, "labelings must align")
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    n = int(labels_a.shape[0])
    total = n * (n - 1) // 2

    clustered_a = labels_a >= 0
    clustered_b = labels_b >= 0
    together_a = _pairs_within(np.unique(labels_a[clustered_a], return_counts=True)[1])
    together_b = _pairs_within(np.unique(labels_b[clustered_b], return_counts=True)[1])

    both_clustered = clustered_a & clustered_b
    # Dense joint codes: a pair is together in both labelings iff both
    # points share the same (label_a, label_b) cell and neither is noise.
    codes_a = np.unique(labels_a[both_clustered], return_inverse=True)[1]
    codes_b = np.unique(labels_b[both_clustered], return_inverse=True)[1]
    joint = codes_a * (codes_b.max() + 1 if codes_b.size else 1) + codes_b
    both_together = _pairs_within(np.unique(joint, return_counts=True)[1])

    a_only = together_a - both_together
    b_only = together_b - both_together
    both_apart = total - together_a - together_b + both_together
    return both_together, a_only, b_only, both_apart


def pair_confusion_counts_reference(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> tuple[int, int, int, int]:
    """The O(n²) pair loop, kept as the regression-test oracle."""
    require(labels_a.shape == labels_b.shape, "labelings must align")
    n = labels_a.shape[0]
    both_together = a_only = b_only = both_apart = 0
    for i in range(n):
        for j in range(i + 1, n):
            together_a = labels_a[i] >= 0 and labels_a[i] == labels_a[j]
            together_b = labels_b[i] >= 0 and labels_b[i] == labels_b[j]
            if together_a and together_b:
                both_together += 1
            elif together_a:
                a_only += 1
            elif together_b:
                b_only += 1
            else:
                both_apart += 1
    return both_together, a_only, b_only, both_apart


def rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Rand index in [0, 1] between two labelings (1 = identical grouping)."""
    together, a_only, b_only, apart = pair_confusion_counts(labels_a, labels_b)
    total = together + a_only + b_only + apart
    return (together + apart) / total if total else 1.0
