"""Per-ISP site clustering: the §3.2 / Appendix-A driver.

Given the filtered latency matrix of one ISP's offnet IPs, compute the
trimmed-Manhattan distance matrix, run OPTICS, extract xi clusters, and
return the site assignment.  IPs not assigned to any cluster are treated as
"not colocated" (Appendix A: "OPTICS will not assign an IP address to a
cluster if no address is within a short distance, in which case we consider
the offnet as not colocated").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import require, require_fraction
from repro.clustering.distance import pairwise_trimmed_manhattan
from repro.clustering.optics import optics_order
from repro.clustering.xi import extract_xi_clusters, split_clusters_on_spikes, xi_labels
from repro.obs import Telemetry, ensure_telemetry


@dataclass(frozen=True)
class ClusteringConfig:
    """Parameters of the per-ISP clustering (paper's Appendix A)."""

    xi: float = 0.1
    min_pts: int = 2
    trim_fraction: float = 0.2
    #: Interior reachability spikes beyond this multiple of the cluster's
    #: median split the cluster (see
    #: :func:`repro.clustering.xi.split_clusters_on_spikes`).
    spike_factor: float = 5.0

    def __post_init__(self) -> None:
        require(0.0 < self.xi < 1.0, "xi must be in (0, 1)")
        require(self.min_pts >= 2, "min_pts must be >= 2")
        require_fraction(self.trim_fraction, "trim_fraction")
        require(self.spike_factor > 1.0, "spike_factor must be > 1")


@dataclass
class SiteClustering:
    """The inferred sites of one ISP's offnets."""

    ips: list[int]
    #: Cluster label per IP, aligned with ``ips``; -1 = not colocated.
    labels: np.ndarray
    config: ClusteringConfig
    _clusters: dict[int, list[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        require(self.labels.shape == (len(self.ips),), "labels must align with ips")
        self._clusters = {}
        for ip, label in zip(self.ips, self.labels):
            if label >= 0:
                self._clusters.setdefault(int(label), []).append(ip)

    @property
    def clusters(self) -> list[list[int]]:
        """Clustered IPs, one (sorted) list per cluster, by label order."""
        return [sorted(self._clusters[label]) for label in sorted(self._clusters)]

    @property
    def noise_ips(self) -> list[int]:
        """IPs OPTICS did not place in any cluster, sorted."""
        return sorted(ip for ip, label in zip(self.ips, self.labels) if label < 0)

    def label_of(self, ip: int) -> int:
        """Cluster label of ``ip`` (-1 if unclustered)."""
        return int(self.labels[self.ips.index(ip)])

    @property
    def site_count(self) -> int:
        """Number of inferred sites: clusters plus unclustered singletons.

        §4.1 counts an ISP's offnet "sites" for one hypergiant this way; an
        unclustered IP is its own site.
        """
        return len(self._clusters) + len(self.noise_ips)


def cluster_isp_offnets(
    columns: np.ndarray,
    ips: list[int],
    config: ClusteringConfig | None = None,
    telemetry: Telemetry | None = None,
) -> SiteClustering:
    """Cluster one ISP's offnet IPs from their latency columns.

    ``columns`` has shape ``(n_vps, len(ips))``.  Handles the degenerate
    single-IP case (one cluster of one? no — one *unclustered* IP, matching
    OPTICS semantics with min_pts = 2).
    """
    config = config or ClusteringConfig()
    obs = ensure_telemetry(telemetry)
    require(columns.shape[1] == len(ips), "columns must align with ips")
    n = len(ips)
    if n == 0:
        return SiteClustering(ips=[], labels=np.empty(0, dtype=int), config=config)
    if n == 1:
        obs.count("cluster.singleton_isps")
        return SiteClustering(ips=list(ips), labels=np.array([-1]), config=config)
    distances = pairwise_trimmed_manhattan(columns, config.trim_fraction)
    result = optics_order(distances, config.min_pts, telemetry=telemetry)
    clusters = extract_xi_clusters(result.reachability, config.xi, config.min_pts)
    clusters = split_clusters_on_spikes(
        result.reachability, clusters, config.spike_factor, config.min_pts
    )
    position_labels = xi_labels(n, clusters)
    labels = np.full(n, -1, dtype=int)
    labels[result.ordering] = position_labels
    clustering = SiteClustering(ips=list(ips), labels=labels, config=config)
    obs.count("cluster.clusters_found", len(clustering.clusters))
    obs.count("cluster.noise_ips", len(clustering.noise_ips))
    obs.observe("cluster.sites_per_isp", clustering.site_count)
    return clustering


def pair_confusion_counts(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> tuple[int, int, int, int]:
    """Pairwise agreement counts between two labelings (for Rand index).

    Noise labels (-1) are treated as singleton clusters unique to each point.
    Returns ``(both_together, a_only, b_only, both_apart)`` over all pairs.
    """
    require(labels_a.shape == labels_b.shape, "labelings must align")
    n = labels_a.shape[0]
    both_together = a_only = b_only = both_apart = 0
    for i in range(n):
        for j in range(i + 1, n):
            together_a = labels_a[i] >= 0 and labels_a[i] == labels_a[j]
            together_b = labels_b[i] >= 0 and labels_b[i] == labels_b[j]
            if together_a and together_b:
                both_together += 1
            elif together_a:
                a_only += 1
            elif together_b:
                b_only += 1
            else:
                both_apart += 1
    return both_together, a_only, b_only, both_apart


def rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Rand index in [0, 1] between two labelings (1 = identical grouping)."""
    together, a_only, b_only, apart = pair_confusion_counts(labels_a, labels_b)
    total = together + a_only + b_only + apart
    return (together + apart) / total if total else 1.0
