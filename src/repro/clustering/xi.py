"""Xi cluster extraction from an OPTICS reachability plot.

Implements the steep-area method of the OPTICS paper (Ankerst et al. §4.3):
a cluster is a steep-down area followed by a steep-up area, where "steep" is
relative to the parameter xi — a point is xi-steep downward when the next
reachability is at least a factor (1 - xi) lower.  Small xi (0.1) accepts
gentle valleys as clusters (more, larger clusters → the paper's permissive
bound on colocation); large xi (0.9) demands near-cliffs (only unmistakable
clusters → the conservative bound).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require, require_fraction


@dataclass(frozen=True)
class XiCluster:
    """A cluster as a closed interval of ordering positions."""

    start: int
    end: int

    @property
    def size(self) -> int:
        """Number of points in the cluster."""
        return self.end - self.start + 1


def _extend_region(steep: np.ndarray, mild_opposite: np.ndarray, start: int, min_pts: int) -> int:
    """End index of the maximal steep region beginning at ``start``.

    A region may contain up to ``min_pts`` consecutive non-steep points as
    long as they do not move in the opposite direction.
    """
    n = steep.shape[0]
    non_steep_run = 0
    end = start
    index = start
    while index < n:
        if steep[index]:
            non_steep_run = 0
            end = index
        elif not mild_opposite[index]:
            non_steep_run += 1
            if non_steep_run > min_pts:
                break
        else:
            break
        index += 1
    return end


def _filter_steep_down_areas(
    areas: list[dict], mib: float, xi_complement: float, reachability: np.ndarray
) -> list[dict]:
    """Drop areas invalidated by ``mib``; update the survivors' mib values."""
    if np.isinf(mib):
        return []
    kept = [area for area in areas if mib <= reachability[area["start"]] * xi_complement]
    for area in kept:
        area["mib"] = max(area["mib"], mib)
    return kept


def extract_xi_clusters(
    reachability: np.ndarray,
    xi: float,
    min_pts: int = 2,
    min_cluster_size: int | None = None,
) -> list[XiCluster]:
    """All xi-clusters of a reachability plot, as ordering intervals.

    The returned list may be hierarchical (nested intervals);
    :func:`xi_labels` flattens it to a partition.
    """
    require_fraction(xi, "xi")
    require(0.0 < xi < 1.0, "xi must be strictly between 0 and 1")
    if min_cluster_size is None:
        min_cluster_size = min_pts
    reachability = np.asarray(reachability, dtype=float)
    n = reachability.shape[0]
    if n < min_cluster_size:
        return []
    plot = np.hstack([reachability, [np.inf]])
    xi_complement = 1.0 - xi

    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = plot[:-1] / plot[1:]
        steep_up = ratio <= xi_complement
        steep_down = ratio >= 1.0 / xi_complement
        upward = ratio < 1.0
        downward = ratio > 1.0

    steep_down_areas: list[dict] = []
    clusters: list[XiCluster] = []
    index = 0
    mib = 0.0
    for steep_index in np.flatnonzero(steep_up | steep_down):
        steep_index = int(steep_index)
        if steep_index < index:
            continue
        mib = max(mib, float(np.max(plot[index : steep_index + 1])))
        if steep_down[steep_index]:
            steep_down_areas = _filter_steep_down_areas(steep_down_areas, mib, xi_complement, plot)
            area_start = steep_index
            area_end = _extend_region(steep_down, upward, area_start, min_pts)
            steep_down_areas.append({"start": area_start, "end": area_end, "mib": 0.0})
            index = area_end + 1
            mib = float(plot[index])
        else:
            steep_down_areas = _filter_steep_down_areas(steep_down_areas, mib, xi_complement, plot)
            up_start = steep_index
            up_end = _extend_region(steep_up, downward, up_start, min_pts)
            index = up_end + 1
            mib = float(plot[index])
            found: list[XiCluster] = []
            for area in steep_down_areas:
                cluster_start = area["start"]
                cluster_end = min(up_end, n - 1)
                # SC2: the region between D and U must stay below mib limits.
                if plot[up_end + 1] * xi_complement < area["mib"]:
                    continue
                # Definition 11, condition 4: align the shallower side.
                down_max = plot[area["start"]]
                up_level = plot[up_end + 1]
                if down_max * xi_complement >= up_level:
                    # Down side is deeper: trim its start to the up level.
                    while cluster_start < area["end"] and plot[cluster_start + 1] > up_level:
                        cluster_start += 1
                elif up_level * xi_complement >= down_max:
                    # Up side is higher: trim its end down to the down level.
                    while cluster_end > up_start and plot[cluster_end] < down_max:
                        cluster_end -= 1
                if cluster_end - cluster_start + 1 < min_cluster_size:
                    continue
                if cluster_start > area["end"] or cluster_end < up_start:
                    continue
                found.append(XiCluster(cluster_start, cluster_end))
            # Smaller (later-starting) clusters first, so the flattening in
            # xi_labels keeps the most specific cluster per point.
            found.reverse()
            clusters.extend(found)
    return clusters


def split_clusters_on_spikes(
    reachability: np.ndarray,
    clusters: list[XiCluster],
    spike_factor: float = 5.0,
    min_cluster_size: int = 2,
) -> list[XiCluster]:
    """Split clusters at interior reachability spikes.

    The plain xi extraction can glue a distant straggler onto a dense
    cluster when the plot starts at infinity (there is no steep-down edge
    *inside* the data to cut on).  A position whose reachability exceeds
    ``spike_factor`` times the cluster's median interior reachability is an
    unmistakable boundary: everything from there on is a different site.
    Fragments smaller than ``min_cluster_size`` are dropped (their points
    revert to noise, i.e. "not colocated").
    """
    require(spike_factor > 1.0, "spike_factor must be > 1")
    result: list[XiCluster] = []
    for cluster in clusters:
        interior = reachability[cluster.start + 1 : cluster.end + 1]
        finite = interior[np.isfinite(interior)]
        if finite.size == 0:
            result.append(cluster)
            continue
        threshold = spike_factor * max(float(np.median(finite)), 1e-12)
        segment_start = cluster.start
        for position in range(cluster.start + 1, cluster.end + 1):
            value = reachability[position]
            if not np.isfinite(value) or value > threshold:
                if position - segment_start >= min_cluster_size:
                    result.append(XiCluster(segment_start, position - 1))
                segment_start = position
        if cluster.end + 1 - segment_start >= min_cluster_size:
            result.append(XiCluster(segment_start, cluster.end))
    return result


def xi_labels(n_points: int, clusters: list[XiCluster]) -> np.ndarray:
    """Flatten (possibly nested) clusters to per-ordering-position labels.

    Position ``i`` gets the label of the first cluster in ``clusters`` whose
    interval it falls in and that does not overlap an already-labelled
    region; unlabelled positions get -1 (noise / not colocated).  Note the
    labels are per *ordering position*; map through ``ordering`` to get
    per-point labels.
    """
    labels = np.full(n_points, -1, dtype=int)
    next_label = 0
    for cluster in clusters:
        segment = labels[cluster.start : cluster.end + 1]
        if (segment != -1).any():
            continue
        labels[cluster.start : cluster.end + 1] = next_label
        next_label += 1
    return labels
