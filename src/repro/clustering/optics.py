"""OPTICS ordering (Ankerst, Breunig, Kriegel, Sander — SIGMOD'99).

Works directly on a precomputed distance matrix (the latency-vector
distances), with an unbounded generating radius (eps = inf), which is the
exact setting the colocation study needs: no a-priori number or size of
clusters.  The output is the cluster-ordering with reachability and core
distances, consumed by the xi extraction in :mod:`repro.clustering.xi`.

Two interchangeable ordering loops live here:

* the **heap** implementation (default): a lazy-deletion binary heap of
  ``(reachability, point_id)`` candidates replaces the per-step
  O(n) ``flatnonzero`` + ``argmin`` scan over unprocessed points, and the
  reachability-at-selection is recorded directly at pop time, eliminating
  the O(n²) replay pass entirely;
* the **reference** implementation: the original per-step scan plus
  :func:`_reorder_reachability` replay, kept verbatim for differential
  and property testing (``tests/test_properties.py`` proves the two are
  bit-equal on adversarial inputs).

Both produce bit-identical :class:`OpticsResult` values: the heap pops in
``(reachability, id)`` order, which is exactly the reference's
"smallest reachability, ties by smallest id" selection rule, and every
float written comes from the same ``np.maximum(core, row)`` expression.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.obs import Telemetry, ensure_telemetry

#: Environment kill-switch: set to any non-empty value to force the
#: reference ordering loop.  Debugging aid only — the CI ``bench-smoke``
#: job asserts the optimized path is active in the default environment.
REFERENCE_ENV_VAR = "REPRO_OPTICS_REFERENCE"

#: Valid ``implementation=`` arguments to :func:`optics_order`.
OPTICS_IMPLEMENTATIONS = ("heap", "reference")


def active_optics_implementation() -> str:
    """The ordering loop :func:`optics_order` dispatches to by default."""
    return "reference" if os.environ.get(REFERENCE_ENV_VAR) else "heap"


@dataclass
class OpticsResult:
    """The OPTICS cluster-ordering of a point set."""

    #: Point indices in visit order.
    ordering: np.ndarray
    #: Reachability of each point *in ordering position order* (inf for the
    #: first point of each connected exploration).
    reachability: np.ndarray
    #: Core distance per point (indexed by point id, not ordering position).
    core_distance: np.ndarray

    @property
    def n_points(self) -> int:
        """Number of points ordered."""
        return int(self.ordering.shape[0])


def optics_order(
    distances: np.ndarray,
    min_pts: int = 2,
    telemetry: Telemetry | None = None,
    implementation: str | None = None,
) -> OpticsResult:
    """Compute the OPTICS ordering of points given a distance matrix.

    ``distances`` is a symmetric ``(n, n)`` matrix; NaN entries are treated
    as "unconnectable" (infinite distance).  ``min_pts`` counts the point
    itself, matching the common (sklearn) convention — the paper's
    ``n_min = 2`` therefore means "a cluster can be as small as two
    addresses", i.e. the core distance is the nearest-neighbour distance.

    ``implementation`` picks the ordering loop (``"heap"`` or
    ``"reference"``); None uses :func:`active_optics_implementation`.
    The choice never changes the result — only how fast it arrives.

    With ``telemetry``, the finite reachability values of the ordering feed
    the ``cluster.optics_reachability_ms`` histogram (metrics are recorded
    once per call, after the ordering loop — never inside it).
    """
    distances = np.asarray(distances, dtype=float)
    require(distances.ndim == 2 and distances.shape[0] == distances.shape[1], "need a square matrix")
    require(min_pts >= 2, "min_pts must be >= 2")
    implementation = implementation or active_optics_implementation()
    require(
        implementation in OPTICS_IMPLEMENTATIONS,
        f"implementation must be one of {OPTICS_IMPLEMENTATIONS}, got {implementation!r}",
    )
    n = distances.shape[0]
    working = np.where(np.isnan(distances), np.inf, distances)

    # Core distance: distance to the (min_pts)-th nearest point counting the
    # point itself; with min_pts=2 that is the nearest other point.
    core = np.full(n, np.inf)
    if n >= min_pts:
        sorted_rows = np.sort(working, axis=1)  # column 0 is the self-distance 0
        core = sorted_rows[:, min_pts - 1]

    if implementation == "heap":
        ordering, reachability = _order_heap(working, core)
    else:
        ordering = _order_reference(working, core)
        reachability = _reorder_reachability(working, core, ordering)

    obs = ensure_telemetry(telemetry)
    if obs.metrics.enabled:
        obs.count("cluster.optics_runs")
        obs.count("cluster.optics_points_ordered", n)
        if implementation == "reference":
            obs.count("cluster.optics_reference_runs")
        for value in reachability[np.isfinite(reachability)]:
            obs.observe("cluster.optics_reachability_ms", float(value))
    return OpticsResult(
        ordering=ordering,
        reachability=reachability,
        core_distance=core,
    )


def optics_order_reference(
    distances: np.ndarray, min_pts: int = 2, telemetry: Telemetry | None = None
) -> OpticsResult:
    """The unoptimized ordering loop, for differential and property tests."""
    return optics_order(distances, min_pts, telemetry=telemetry, implementation="reference")


def _order_heap(working: np.ndarray, core: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Heap-frontier ordering loop: returns ``(ordering, reachability)``.

    A lazy-deletion heap holds ``(reachability, point_id)`` candidates;
    entries are pushed only on strict improvement, so reachabilities only
    ever shrink and a popped entry is current iff its value still matches
    ``reach_by_point``.  Popping in ``(reachability, id)`` order reproduces
    the reference's "argmin, first occurrence wins" tie-break exactly, and
    recording ``reach_by_point`` at pop time *is* the
    reachability-at-selection the reference recovers by replaying.
    """
    n = working.shape[0]
    ordering = np.empty(n, dtype=int)
    reachability = np.full(n, np.inf)
    reach_by_point = np.full(n, np.inf)
    processed = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = []
    position = 0

    for start in range(n):
        if processed[start]:
            continue
        # Begin a new exploration at the unprocessed point with smallest id
        # (deterministic); its reachability is still inf at this moment —
        # a restart only happens when every unprocessed point is at inf.
        current = start
        while True:
            processed[current] = True
            ordering[position] = current
            reachability[position] = reach_by_point[current]
            position += 1
            if np.isfinite(core[current]):
                new_reach = np.maximum(core[current], working[current])
                improved = np.flatnonzero(~processed & (new_reach < reach_by_point))
                if improved.size:
                    reach_by_point[improved] = new_reach[improved]
                    for value, index in zip(new_reach[improved].tolist(), improved.tolist()):
                        heapq.heappush(heap, (value, index))
            current = -1
            while heap:
                value, index = heapq.heappop(heap)
                if not processed[index] and value == reach_by_point[index]:
                    current = index
                    break
            if current < 0:
                break  # frontier exhausted: restart from the outer loop
    return ordering, reachability


def _order_reference(working: np.ndarray, core: np.ndarray) -> np.ndarray:
    """The original O(n²)-per-restart ordering loop (reference)."""
    n = working.shape[0]
    ordering = np.empty(n, dtype=int)
    reachability_by_point = np.full(n, np.inf)
    processed = np.zeros(n, dtype=bool)
    position = 0

    for start in range(n):
        if processed[start]:
            continue
        # Begin a new exploration at the unprocessed point with smallest id
        # (deterministic), reachability undefined (inf).
        current = start
        while current is not None:
            processed[current] = True
            ordering[position] = current
            position += 1
            if np.isfinite(core[current]):
                # Update reachabilities of unprocessed points.
                new_reach = np.maximum(core[current], working[current])
                mask = ~processed
                improved = mask & (new_reach < reachability_by_point)
                reachability_by_point[improved] = new_reach[improved]
            # Next: unprocessed point with smallest reachability (ties by id);
            # if all remaining are inf, fall back to the outer loop.
            remaining = np.flatnonzero(~processed)
            if remaining.size == 0:
                current = None
                break
            best = remaining[np.argmin(reachability_by_point[remaining])]
            if not np.isfinite(reachability_by_point[best]):
                current = None  # disconnected: restart from the outer loop
            else:
                current = int(best)
    return ordering


def _reorder_reachability(working: np.ndarray, core: np.ndarray, ordering: np.ndarray) -> np.ndarray:
    """Replay the ordering to produce reachability per ordering position.

    Replaying (rather than reusing the mutated array from the main loop)
    guarantees the reported reachability is the value each point had *when it
    was selected*, which is what the xi extraction consumes.
    """
    n = ordering.shape[0]
    reachability = np.full(n, np.inf)
    best = np.full(n, np.inf)
    seen = np.zeros(n, dtype=bool)
    for position, point in enumerate(ordering):
        reachability[position] = best[point]
        seen[point] = True
        if np.isfinite(core[point]):
            candidate = np.maximum(core[point], working[point])
            improved = ~seen & (candidate < best)
            best[improved] = candidate[improved]
    return reachability
