"""OPTICS ordering (Ankerst, Breunig, Kriegel, Sander — SIGMOD'99).

Works directly on a precomputed distance matrix (the latency-vector
distances), with an unbounded generating radius (eps = inf), which is the
exact setting the colocation study needs: no a-priori number or size of
clusters.  The output is the cluster-ordering with reachability and core
distances, consumed by the xi extraction in :mod:`repro.clustering.xi`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.obs import Telemetry, ensure_telemetry


@dataclass
class OpticsResult:
    """The OPTICS cluster-ordering of a point set."""

    #: Point indices in visit order.
    ordering: np.ndarray
    #: Reachability of each point *in ordering position order* (inf for the
    #: first point of each connected exploration).
    reachability: np.ndarray
    #: Core distance per point (indexed by point id, not ordering position).
    core_distance: np.ndarray

    @property
    def n_points(self) -> int:
        """Number of points ordered."""
        return int(self.ordering.shape[0])


def optics_order(
    distances: np.ndarray, min_pts: int = 2, telemetry: Telemetry | None = None
) -> OpticsResult:
    """Compute the OPTICS ordering of points given a distance matrix.

    ``distances`` is a symmetric ``(n, n)`` matrix; NaN entries are treated
    as "unconnectable" (infinite distance).  ``min_pts`` counts the point
    itself, matching the common (sklearn) convention — the paper's
    ``n_min = 2`` therefore means "a cluster can be as small as two
    addresses", i.e. the core distance is the nearest-neighbour distance.

    With ``telemetry``, the finite reachability values of the ordering feed
    the ``cluster.optics_reachability_ms`` histogram (metrics are recorded
    once per call, after the ordering loop — never inside it).
    """
    distances = np.asarray(distances, dtype=float)
    require(distances.ndim == 2 and distances.shape[0] == distances.shape[1], "need a square matrix")
    require(min_pts >= 2, "min_pts must be >= 2")
    n = distances.shape[0]
    working = np.where(np.isnan(distances), np.inf, distances)

    # Core distance: distance to the (min_pts)-th nearest point counting the
    # point itself; with min_pts=2 that is the nearest other point.
    core = np.full(n, np.inf)
    if n >= min_pts:
        sorted_rows = np.sort(working, axis=1)  # column 0 is the self-distance 0
        core = sorted_rows[:, min_pts - 1]

    ordering = np.empty(n, dtype=int)
    reachability_by_point = np.full(n, np.inf)
    processed = np.zeros(n, dtype=bool)
    position = 0

    for start in range(n):
        if processed[start]:
            continue
        # Begin a new exploration at the unprocessed point with smallest id
        # (deterministic), reachability undefined (inf).
        current = start
        while current is not None:
            processed[current] = True
            ordering[position] = current
            position += 1
            if np.isfinite(core[current]):
                # Update reachabilities of unprocessed points.
                new_reach = np.maximum(core[current], working[current])
                mask = ~processed
                improved = mask & (new_reach < reachability_by_point)
                reachability_by_point[improved] = new_reach[improved]
            # Next: unprocessed point with smallest reachability (ties by id);
            # if all remaining are inf, fall back to the outer loop.
            remaining = np.flatnonzero(~processed)
            if remaining.size == 0:
                current = None
                break
            best = remaining[np.argmin(reachability_by_point[remaining])]
            if not np.isfinite(reachability_by_point[best]):
                current = None  # disconnected: restart from the outer loop
            else:
                current = int(best)

    reachability = _reorder_reachability(working, core, ordering)
    obs = ensure_telemetry(telemetry)
    if obs.metrics.enabled:
        obs.count("cluster.optics_runs")
        obs.count("cluster.optics_points_ordered", n)
        for value in reachability[np.isfinite(reachability)]:
            obs.observe("cluster.optics_reachability_ms", float(value))
    return OpticsResult(
        ordering=ordering,
        reachability=reachability,
        core_distance=core,
    )


def _reorder_reachability(working: np.ndarray, core: np.ndarray, ordering: np.ndarray) -> np.ndarray:
    """Replay the ordering to produce reachability per ordering position.

    Replaying (rather than reusing the mutated array from the main loop)
    guarantees the reported reachability is the value each point had *when it
    was selected*, which is what the xi extraction consumes.
    """
    n = ordering.shape[0]
    reachability = np.full(n, np.inf)
    best = np.full(n, np.inf)
    seen = np.zeros(n, dtype=bool)
    for position, point in enumerate(ordering):
        reachability[position] = best[point]
        seen[point] = True
        if np.isfinite(core[point]):
            candidate = np.maximum(core[point], working[point])
            improved = ~seen & (candidate < best)
            best[improved] = candidate[improved]
    return reachability
