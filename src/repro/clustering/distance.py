"""The trimmed normalised Manhattan distance between latency vectors.

Appendix A: "for each pair of IP addresses, we calculate the distance as the
(normalized) Manhattan distance after excluding measurements from the 20% of
M-Lab sites that have the largest latency discrepancy between the two
addresses".  Trimming makes the distance robust to vantage points that took
a detour to one address but not the other; normalisation (mean rather than
sum) makes distances comparable across pairs with different numbers of
usable vantage points.

The matrix builder exploits symmetry (``|a - b|`` is bitwise symmetric, so
computing the upper triangle and mirroring is exact, halving the work) and
takes a bookkeeping-free fast path when the columns contain no NaN.  Both
shortcuts preserve bit-identical output versus the per-pair reference —
every kept float travels through the same op sequence (abs, sort, cumsum,
divide) regardless of which pairs share a block.
"""

from __future__ import annotations

import numpy as np

from repro._util import require, require_fraction


def trimmed_manhattan(a: np.ndarray, b: np.ndarray, trim_fraction: float = 0.2) -> float:
    """Distance between two latency vectors (NaN entries are skipped).

    Returns NaN when fewer than two vantage points measured both addresses.
    """
    require_fraction(trim_fraction, "trim_fraction")
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    require(a.shape == b.shape, "latency vectors must align")
    differences = np.abs(a - b)
    differences = differences[~np.isnan(differences)]
    if differences.size < 2:
        return float("nan")
    n_trim = int(np.floor(trim_fraction * differences.size))
    if n_trim:
        differences = np.sort(differences)[: differences.size - n_trim]
    return float(differences.mean())


def pairwise_trimmed_manhattan_reference(
    columns: np.ndarray, trim_fraction: float = 0.2
) -> np.ndarray:
    """Per-pair loop over :func:`trimmed_manhattan` — the reference matrix.

    Kept for property tests and benchmarks; quadratic in Python and
    therefore orders of magnitude slower than
    :func:`pairwise_trimmed_manhattan` at paper scale.

    Note the per-pair mean sums only the *kept* prefix while the vectorised
    path divides a cumulative sum — mathematically equal but not bitwise, so
    equivalence tests compare with a tight tolerance rather than ``==``.
    """
    require_fraction(trim_fraction, "trim_fraction")
    columns = np.asarray(columns, dtype=float)
    require(columns.ndim == 2, "columns must be (n_vps, n_ips)")
    n_ips = columns.shape[1]
    matrix = np.zeros((n_ips, n_ips))
    for i in range(n_ips):
        for j in range(i + 1, n_ips):
            matrix[i, j] = matrix[j, i] = trimmed_manhattan(
                columns[:, i], columns[:, j], trim_fraction
            )
    return matrix


def pairwise_trimmed_manhattan(columns: np.ndarray, trim_fraction: float = 0.2) -> np.ndarray:
    """All-pairs distance matrix for ``columns`` of shape ``(n_vps, n_ips)``.

    Fully vectorised: for each pair, discrepancies at vantage points lacking
    either measurement are dropped before trimming.  The diagonal is 0;
    entries for pairs with fewer than two common vantage points are NaN.
    Equivalent to calling :func:`trimmed_manhattan` per pair (see
    :func:`pairwise_trimmed_manhattan_reference`, kept for clarity and
    property-testing), but ~100x faster at paper scale: only the upper
    triangle is computed (the lower is a bitwise-exact mirror, because every
    per-pair operation is symmetric in the pair), and NaN-free inputs skip
    the valid-count bookkeeping entirely.
    """
    require_fraction(trim_fraction, "trim_fraction")
    columns = np.asarray(columns, dtype=float)
    require(columns.ndim == 2, "columns must be (n_vps, n_ips)")
    n_vps, n_ips = columns.shape
    if n_ips == 0:
        return np.zeros((0, 0))
    # Work in (row-block, trailing-ips, n_vps) chunks with the vantage axis
    # last: the per-pair sort runs over contiguous memory, and the chunking
    # keeps the temporaries cache-friendly even for very large ISPs.  Each
    # block covers rows [start:stop] against columns [start:] — the strict
    # upper triangle plus the diagonal band — and is mirrored in place.
    transposed = np.ascontiguousarray(columns.T)
    matrix = np.empty((n_ips, n_ips))
    has_nan = bool(np.isnan(transposed).any())
    # With no NaN every pair keeps the same number of entries, so the
    # per-pair valid counts collapse to one scalar (same float product and
    # floor as the array expression below — bit-identical kept index).
    kept_all = n_vps - int(np.floor(trim_fraction * n_vps))
    start = 0
    while start < n_ips:
        width = n_ips - start
        block = max(1, int(4_000_000 / max(1, width * n_vps)))
        stop = min(n_ips, start + block)
        # NaN where either side is missing; sort puts NaNs last, aligning
        # per-pair valid prefixes.
        diffs = np.abs(transposed[start:stop, None, :] - transposed[None, start:, :])
        if has_nan:
            valid_counts = (~np.isnan(diffs)).sum(axis=2)
            diffs.sort(axis=2)
            # Number of entries kept after trimming, per pair.
            kept = valid_counts - np.floor(trim_fraction * valid_counts).astype(int)
            np.nan_to_num(diffs, copy=False)  # NaNs are sorted past every kept index
            cumulative = np.cumsum(diffs, axis=2)
            kept_index = np.clip(kept - 1, 0, n_vps - 1)
            sums = np.take_along_axis(cumulative, kept_index[:, :, None], axis=2)[:, :, 0]
            with np.errstate(invalid="ignore", divide="ignore"):
                rows = sums / kept
            rows[valid_counts < 2] = np.nan
        else:
            diffs.sort(axis=2)
            cumulative = np.cumsum(diffs, axis=2)
            kept_index = min(max(kept_all - 1, 0), n_vps - 1)
            with np.errstate(invalid="ignore", divide="ignore"):
                rows = cumulative[:, :, kept_index] / kept_all
            if n_vps < 2:
                rows[...] = np.nan
        matrix[start:stop, start:] = rows
        matrix[start:, start:stop] = rows.T
        start = stop
    np.fill_diagonal(matrix, 0.0)
    return matrix
