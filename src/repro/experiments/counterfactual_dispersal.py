"""CF — a counterfactual: what if offnets were *not* colocated?

§6 floats policy levers (best practices, compliance rules) that could push
ISPs away from concentrating every hypergiant in one facility.  The
generator lets us run that world: re-place the 2023 deployments with the
colocation preference turned off, then compare

* the ground-truth colocation level,
* the single-facility traffic concentration (Figure 2's best-facility
  share), and
* the blast radius of the worst facility outage

against the status-quo placement.  The headline *finding* of the
counterfactual: a placement policy alone barely moves the needle, because
most ISPs operate only one to three facilities — with four hypergiants to
host, the pigeonhole principle forces sharing.  Dispersal only bites where
ISPs have enough facilities, which is §6's point that ISPs "designed their
networks primarily for providing access, not hosting high-volume
third-party servers".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import format_table
from repro.capacity.cascade import simulate_cascade
from repro.capacity.demand import DemandModel
from repro.capacity.events import facility_outage_scenario
from repro.capacity.links import build_capacity_plan
from repro.core.pipeline import Study
from repro.core.traffic_model import TrafficModel
from repro.deployment.placement import DeploymentState, PlacementConfig, place_offnets


@dataclass(frozen=True)
class PlacementOutcome:
    """Risk metrics of one placement world."""

    label: str
    #: Fraction of multi-HG ISPs with at least one shared facility.
    shared_facility_fraction: float
    #: Same, restricted to ISPs with >= 3 facilities (where dispersal is
    #: actually feasible).
    shared_when_feasible_fraction: float
    #: User-weighted mean best-facility servable share.
    mean_best_facility_share: float
    #: Worst-case facility outage: interdomain ratio at the hosting ISP.
    outage_interdomain_ratio: float
    #: Worst-case facility outage: hypergiants taken down together.
    outage_hypergiants: int


@dataclass
class DispersalResult:
    """Status quo vs dispersal mandate."""

    status_quo: PlacementOutcome
    dispersed: PlacementOutcome

    def render(self) -> str:
        headers = [
            "placement",
            "shared facility (all multi-HG ISPs)",
            "shared facility (ISPs w/ >=3 facilities)",
            "mean best-facility share",
            "outage interdomain ratio",
            "HGs lost in worst outage",
        ]
        rows = []
        for outcome in (self.status_quo, self.dispersed):
            rows.append(
                [
                    outcome.label,
                    f"{100 * outcome.shared_facility_fraction:.0f}%",
                    f"{100 * outcome.shared_when_feasible_fraction:.0f}%",
                    f"{100 * outcome.mean_best_facility_share:.0f}%",
                    f"x{outcome.outage_interdomain_ratio:.2f}",
                    outcome.outage_hypergiants,
                ]
            )
        note = (
            "finding: with 1-3 facilities per ISP, the pigeonhole principle keeps "
            "sharing high regardless of policy; dispersal bites only where ISPs "
            "have enough facilities"
        )
        return format_table(headers, rows) + "\n" + note


def _ground_truth_outcome(study: Study, state: DeploymentState, label: str) -> PlacementOutcome:
    traffic = TrafficModel()
    # Colocation prevalence (ground truth, no clustering uncertainty).
    multi = shared = 0
    feasible_multi = feasible_shared = 0
    best_shares: list[tuple[float, int]] = []
    worst_facility = None
    worst_hypergiants: set[str] = set()
    for isp in state.hosting_isps():
        hosted = state.hypergiants_in(isp)
        facility_hgs: dict[int, set[str]] = {}
        for server in state.servers_in(isp):
            facility_hgs.setdefault(server.facility.facility_id, set()).add(server.hypergiant)
        best = max(facility_hgs.values(), key=lambda hgs: (len(hgs), traffic.facility_share(hgs)))
        best_shares.append((traffic.facility_share(best), isp.users))
        if len(hosted) >= 2:
            multi += 1
            has_shared = any(len(hgs) >= 2 for hgs in facility_hgs.values())
            if has_shared:
                shared += 1
            if len(study.internet.facilities_of(isp)) >= 3:
                feasible_multi += 1
                feasible_shared += has_shared
        for facility_id, hgs in facility_hgs.items():
            if len(hgs) > len(worst_hypergiants):
                worst_facility = facility_id
                worst_hypergiants = hgs

    demand = DemandModel(traffic=traffic)
    plans = build_capacity_plan(study.internet, state, demand, seed=11)
    owner_asn = next(
        server.isp.asn
        for server in state.servers
        if server.facility.facility_id == worst_facility
    )
    report = simulate_cascade(
        study.internet,
        demand,
        plans,
        facility_outage_scenario(worst_facility),
        study.population,
        asns=[owner_asn],
    )
    outcome = report.outcomes[owner_asn]
    total_users = sum(users for _, users in best_shares) or 1
    return PlacementOutcome(
        label=label,
        shared_facility_fraction=shared / multi if multi else 0.0,
        shared_when_feasible_fraction=feasible_shared / feasible_multi if feasible_multi else 0.0,
        mean_best_facility_share=sum(share * users for share, users in best_shares) / total_users,
        outage_interdomain_ratio=outcome.interdomain_ratio,
        outage_hypergiants=len(worst_hypergiants),
    )


def run_dispersal_counterfactual(study: Study, seed: int = 17) -> DispersalResult:
    """Compare the status-quo placement with a dispersal-mandate world."""
    status_quo_state = study.history.state("2023")
    dispersed_config = PlacementConfig(
        colocation_preference=0.05,
        legacy_colocation_preference=0.05,
        rack_sharing_probability=0.1,
    )
    dispersed_state = place_offnets(
        study.internet, config=dispersed_config, seed=seed, epoch="2023-dispersed"
    )
    return DispersalResult(
        status_quo=_ground_truth_outcome(study, status_quo_state, "status quo"),
        dispersed=_ground_truth_outcome(study, dispersed_state, "dispersal mandate"),
    )
