"""Canonical seeded scenario presets.

Three sizes: ``SMALL`` runs the whole pipeline in a few seconds and backs
the test suite; ``DEFAULT`` approximates the study's scale relative to our
synthetic Internet and backs the benchmark harnesses; ``LARGE`` stresses
scalability.  :func:`cached_study` memoises pipeline runs per scenario so a
benchmark session pays for each study once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.pipeline import Study, StudyConfig, run_study
from repro.faults import FaultPlan
from repro.obs import Telemetry, get_logger, global_metrics
from repro.resilience import ResilienceConfig
from repro.parallel import ParallelConfig
from repro.scan.evasion import EvasionConfig
from repro.store import StudyStore, config_fingerprint
from repro.topology.generator import InternetConfig


@dataclass(frozen=True)
class StudyScenario:
    """A named, fully-pinned study configuration."""

    name: str
    config: StudyConfig
    #: Source regions for the traceroute campaign.
    n_traceroute_regions: int
    #: ISPs sampled in the capacity/cascade analyses (None = all).
    capacity_sample: int | None

    def run(
        self,
        telemetry: Telemetry | None = None,
        parallel: ParallelConfig | None = None,
        faults: "FaultPlan | None" = None,
        resilience: "ResilienceConfig | None" = None,
    ) -> Study:
        """Run the pipeline for this scenario (uncached).

        ``parallel`` overrides the scenario's execution backend/workers; it
        never changes the artifacts (see :mod:`repro.parallel`).  ``faults``
        and ``resilience`` wire a deterministic fault plan and the retry /
        supervision layer into the run (see :mod:`repro.faults`).
        """
        overrides = {}
        if parallel is not None:
            overrides["parallel"] = parallel
        if faults is not None:
            overrides["faults"] = faults
        if resilience is not None:
            overrides["resilience"] = resilience
        config = replace(self.config, **overrides) if overrides else self.config
        return run_study(config, telemetry=telemetry)


SMALL_SCENARIO = StudyScenario(
    name="small",
    config=StudyConfig(
        internet=InternetConfig(seed=1, n_access_isps=60, n_ixps=25),
        n_vantage_points=40,
        seed=1,
    ),
    n_traceroute_regions=4,
    capacity_sample=30,
)

DEFAULT_SCENARIO = StudyScenario(
    name="default",
    config=StudyConfig(
        internet=InternetConfig(seed=7, n_access_isps=700),
        n_vantage_points=163,
        seed=7,
    ),
    n_traceroute_regions=8,
    capacity_sample=120,
)

LARGE_SCENARIO = StudyScenario(
    name="large",
    config=StudyConfig(
        internet=InternetConfig(seed=11, n_access_isps=1400),
        n_vantage_points=163,
        seed=11,
    ),
    n_traceroute_regions=8,
    capacity_sample=200,
)

#: Fraction of offnet servers adopting the evasion in each adversarial
#: variant (one knob per variant, everything else identical to ``small``).
EVASION_FRACTION = 0.3


def _evasion_variant(base: StudyScenario, suffix: str, evasion: EvasionConfig) -> StudyScenario:
    """An adversarial copy of ``base`` with evading offnet certificates."""
    return StudyScenario(
        name=f"{base.name}-{suffix}",
        config=replace(base.config, scan=replace(base.config.scan, evasion=evasion)),
        n_traceroute_regions=base.n_traceroute_regions,
        capacity_sample=base.capacity_sample,
    )


SMALL_ROTATING_SANS = _evasion_variant(
    SMALL_SCENARIO, "rotating-sans", EvasionConfig(rotating_san_fraction=EVASION_FRACTION)
)
SMALL_SHARED_WILDCARD = _evasion_variant(
    SMALL_SCENARIO, "shared-wildcard", EvasionConfig(shared_wildcard_fraction=EVASION_FRACTION)
)
SMALL_CERTLESS_QUIC = _evasion_variant(
    SMALL_SCENARIO, "certless-quic", EvasionConfig(certless_quic_fraction=EVASION_FRACTION)
)

#: The adversarial certificate-evasion variants, in presentation order.
EVASION_SCENARIOS = (SMALL_ROTATING_SANS, SMALL_SHARED_WILDCARD, SMALL_CERTLESS_QUIC)

_BY_NAME = {
    s.name: s
    for s in (SMALL_SCENARIO, DEFAULT_SCENARIO, LARGE_SCENARIO, *EVASION_SCENARIOS)
}


def scenario_by_name(name: str) -> StudyScenario:
    """Look up a preset by name."""
    return _BY_NAME[name]


def scenario_names() -> list[str]:
    """Every registered scenario name (presets + evasion variants)."""
    return list(_BY_NAME)


#: Process-memory front layer, keyed by the *full* config fingerprint —
#: never by scenario name, so two scenarios sharing a name but differing
#: in any knob (even the parallel backend) can never collide.
_STUDY_CACHE: dict[str, Study] = {}


def cached_study(scenario: str | StudyScenario, store: StudyStore | None = None) -> Study:
    """Run (once) and cache the study for a scenario.

    Two cache layers: a process-memory dict keyed by
    :func:`repro.store.config_fingerprint` of the scenario's config, and
    — when ``store`` is given — a durable
    :class:`~repro.store.StudyStore` consulted on memory misses and
    warmed after fresh runs, so a new process pays only the (cheap)
    rehydration cost instead of the full pipeline.

    Hits and misses are accounted on the process-wide metrics registry
    (``scenarios.cache_hits`` / ``scenarios.cache_misses``) and logged
    through :func:`repro.obs.get_logger` (visible once logging is
    configured below the default WARNING threshold).
    """
    if isinstance(scenario, str):
        scenario = scenario_by_name(scenario)
    log = get_logger("repro.scenarios")
    key = config_fingerprint(scenario.config)
    if key in _STUDY_CACHE:
        global_metrics().count("scenarios.cache_hits")
        log.info("scenario cache hit", scenario=scenario.name)
        return _STUDY_CACHE[key]
    global_metrics().count("scenarios.cache_misses")
    log.info("scenario cache miss", scenario=scenario.name)
    study = store.get(scenario.config) if store is not None else None
    if study is None:
        study = scenario.run()
        if store is not None:
            store.put(study)
    _STUDY_CACHE[key] = study
    return study


# Backwards-friendly alias used in module docs.
Scenario = StudyScenario
