"""One module per paper artifact.

==================  ==========================================  =========================
Experiment id       Paper artifact                              Module
==================  ==========================================  =========================
T1                  Table 1 (offnet footprint growth)           :mod:`repro.experiments.table1`
F1                  Figure 1 (per-country multi-HG users)       :mod:`repro.experiments.figure1`
T2                  Table 2 (colocation buckets)                :mod:`repro.experiments.table2`
F2                  Figure 2 (single-facility share CCDF)       :mod:`repro.experiments.figure2`
S32                 §3.2 narrative + validation counts          :mod:`repro.experiments.section32`
S41                 §4.1 capacity / COVID spillover             :mod:`repro.experiments.section41_capacity`
S42                 §4.2 peering coverage + PNI headroom        :mod:`repro.experiments.section42_peering`
S43                 §4.3 collateral damage                      :mod:`repro.experiments.section43_collateral`
==================  ==========================================  =========================

:mod:`repro.experiments.scenarios` defines the canonical seeded scenario
presets shared by the examples, tests, and benchmark harnesses.
"""

from repro.experiments.scenarios import (
    DEFAULT_SCENARIO,
    LARGE_SCENARIO,
    SMALL_SCENARIO,
    Scenario,
    cached_study,
)

__all__ = [
    "DEFAULT_SCENARIO",
    "LARGE_SCENARIO",
    "SMALL_SCENARIO",
    "Scenario",
    "cached_study",
]
