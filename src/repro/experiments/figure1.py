"""F1 — Figure 1: per-country users in ISPs hosting >= k hypergiants.

The paper draws three world maps (k = 2, 3, 4) and observes: in many
countries the majority of users are in ISPs hosting >= 2 hypergiants;
Europe and Africa thin out markedly between k = 2 and k = 3; and a few
countries (Mexico, Bolivia, Uruguay, New Zealand, Mongolia, Greenland) have
all or nearly all users in 4-hypergiant ISPs.  We emit the same per-country
fractions (the data behind the choropleth).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import format_table, require
from repro.core.country import CountryHostingResult, country_hosting_fractions
from repro.core.pipeline import Study
from repro.deployment.growth import epoch_key
from repro.population.users import PopulationDataset
from repro.scan.detection import OffnetInventory

#: Countries the paper calls out as ~fully covered at k = 4.
PAPER_FULL_K4_COUNTRIES = ("MX", "BO", "UY", "NZ", "MN", "GL")


def figure1_panels(
    inventory: OffnetInventory,
    population: PopulationDataset,
    ks: tuple[int, ...] = (2, 3, 4),
) -> dict[int, CountryHostingResult]:
    """The Figure-1 panels for one inventory (any epoch).

    The per-inventory core of :func:`run_figure1`; the timeline engine
    calls it per quarter to trace the choropleth data over time.
    """
    return {k: country_hosting_fractions(inventory, population, k) for k in ks}


@dataclass
class Figure1Result:
    """The three panels (k = 2, 3, 4), per requested epoch.

    ``panels`` holds the calendar-latest epoch (the classic shape);
    ``panels_by_epoch`` every requested epoch.
    """

    panels: dict[int, CountryHostingResult] = field(default_factory=dict)
    panels_by_epoch: dict[str, dict[int, CountryHostingResult]] = field(default_factory=dict)

    def majority_country_count(self, k: int) -> int:
        """Countries where the majority of users are in >= k-HG ISPs."""
        return len(self.panels[k].countries_above(0.5))

    def render(self) -> str:
        """Per-country fractions for all three thresholds."""
        countries = sorted(self.panels[2].fraction_by_country)
        headers = ["Country", ">=2 HGs", ">=3 HGs", "4 HGs"]
        rows = []
        for code in countries:
            rows.append(
                [
                    code,
                    f"{100 * self.panels[2].fraction(code):.0f}%",
                    f"{100 * self.panels[3].fraction(code):.0f}%",
                    f"{100 * self.panels[4].fraction(code):.0f}%",
                ]
            )
        return format_table(headers, rows)

    def summary(self) -> str:
        """The headline comparisons the paper draws from the maps."""
        lines = []
        for k in (2, 3, 4):
            count = self.majority_country_count(k)
            lines.append(f">= {k} hypergiants: majority-of-users countries = {count}")
        full = self.panels[4].countries_above(0.9)
        lines.append(f"countries ~fully covered at k=4: {', '.join(full) if full else '(none)'}")
        return "\n".join(lines)


def run_figure1(study: Study, epochs: tuple[str, ...] | None = None) -> Figure1Result:
    """Compute the three Figure-1 panels per epoch.

    ``epochs`` defaults to every epoch in the study; the legacy
    ``panels`` field always holds the calendar-latest requested epoch,
    so the default two-epoch study reproduces the historical result
    exactly.
    """
    if epochs is None:
        epochs = tuple(sorted(study.inventories, key=epoch_key))
    require(bool(epochs), "need at least one epoch")
    for epoch in epochs:
        require(epoch in study.inventories, f"study has no inventory for epoch {epoch!r}")
    result = Figure1Result()
    for epoch in epochs:
        result.panels_by_epoch[epoch] = figure1_panels(study.inventories[epoch], study.population)
    result.panels = dict(result.panels_by_epoch[max(epochs, key=epoch_key)])
    return result
