"""S42 — §4.2: peering coverage (traceroutes) and PNI headroom.

§4.2.1 paper values: of 4697 ISPs with Google offnets, 38.2 % peer with
Google, 13.3 % show only unresponsive hops between Google and the ISP
("possible"), 48.4 % show no evidence.  Of all inferred Google peers,
62.2 % peer via an IXP in at least one traceroute and 42.5 % only appear
connected through an IXP.

§4.2.2: dedicated PNIs that exist often lack capacity — Google peak demand
exceeded capacity by >= 13 % on average, Meta found 10 % of PNIs seeing
demand at twice capacity.  We report the same statistics over our
provisioned plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import format_table
from repro.capacity.demand import DemandModel
from repro.capacity.links import build_capacity_plan
from repro.core.pipeline import Study
from repro.traceroute.peering import (
    CampaignConfig,
    PeeringEvidence,
    PeeringInference,
    run_peering_campaign,
    score_peering_inference,
)

#: Paper fractions for ISPs hosting Google offnets.
PAPER_PEER_FRACTION = 0.382
PAPER_POSSIBLE_FRACTION = 0.133
PAPER_NO_EVIDENCE_FRACTION = 0.484
PAPER_IXP_AT_LEAST_ONCE = 0.622
PAPER_IXP_ONLY = 0.425
#: §4.2.2: share of PNIs that saw demand at >= 2x capacity (Meta).
PAPER_PNI_TWICE_OVERLOADED = 0.10


@dataclass
class PniHeadroomResult:
    """Peak-demand-vs-capacity statistics over provisioned PNIs."""

    hypergiant: str
    n_pnis: int
    overloaded_fraction: float
    twice_overloaded_fraction: float
    mean_peak_excess: float


@dataclass
class Section42Result:
    """Traceroute inference stats plus PNI headroom stats."""

    hypergiant: str
    inference: PeeringInference | None = None
    counts: dict[PeeringEvidence, int] = field(default_factory=dict)
    n_hosting: int = 0
    precision: float = 1.0
    recall: float = 0.0
    pni_headroom: dict[str, PniHeadroomResult] = field(default_factory=dict)

    def fraction(self, evidence: PeeringEvidence) -> float:
        """Evidence-class share among offnet-hosting ISPs."""
        return self.counts.get(evidence, 0) / self.n_hosting if self.n_hosting else 0.0

    def render(self) -> str:
        """§4.2.1 and §4.2.2 tables, measured vs paper."""
        headers = ["§4.2.1 statistic", "measured", "paper"]
        rows = [
            ["peer", f"{100 * self.fraction(PeeringEvidence.PEER):.1f}%", "38.2%"],
            ["possible (unresponsive)", f"{100 * self.fraction(PeeringEvidence.POSSIBLE_PEER):.1f}%", "13.3%"],
            ["no evidence", f"{100 * self.fraction(PeeringEvidence.NO_EVIDENCE):.1f}%", "48.4%"],
            ["peers via IXP at least once", f"{100 * self.inference.ixp_at_least_once_fraction():.1f}%", "62.2%"],
            ["peers only via IXP", f"{100 * self.inference.ixp_only_fraction():.1f}%", "42.5%"],
            ["inference precision (vs ground truth)", f"{self.precision:.3f}", "n/a"],
            ["inference recall (vs ground truth)", f"{self.recall:.3f}", "n/a"],
        ]
        blocks = [format_table(headers, rows)]
        headers2 = ["§4.2.2 PNI headroom", "n", "peak>cap", "peak>=2x cap", "mean peak excess"]
        rows2 = []
        for hypergiant in sorted(self.pni_headroom):
            stat = self.pni_headroom[hypergiant]
            rows2.append(
                [
                    hypergiant,
                    stat.n_pnis,
                    f"{100 * stat.overloaded_fraction:.0f}%",
                    f"{100 * stat.twice_overloaded_fraction:.0f}%",
                    f"{100 * stat.mean_peak_excess:+.0f}%",
                ]
            )
        blocks.append(format_table(headers2, rows2))
        return "\n\n".join(blocks)


def run_pni_headroom(study: Study, seed: int = 11) -> dict[str, PniHeadroomResult]:
    """§4.2.2: compare each provisioned PNI against normal peak demand."""
    state = study.history.state("2023")
    demand = DemandModel(traffic=study.traffic)
    plans = build_capacity_plan(study.internet, state, demand, seed=seed)
    results: dict[str, PniHeadroomResult] = {}
    for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
        ratios = []
        for asn, plan in plans.items():
            pni = plan.pni.get(hypergiant)
            if pni is None:
                continue
            # Offnets serve at most the cacheable slice, regardless of their
            # raw capacity; the rest rides the PNI at peak.
            peak_total = demand.hypergiant_peak_gbps(plan.isp, hypergiant)
            peak_eligible = demand.offnet_eligible_gbps(plan.isp, hypergiant, hour=20)
            peak_offnet = min(plan.offnet_capacity_gbps(hypergiant), peak_eligible)
            peak_interdomain = max(0.0, peak_total - peak_offnet)
            if pni.capacity_gbps > 0:
                ratios.append(peak_interdomain / pni.capacity_gbps)
        ratios_array = np.array(ratios) if ratios else np.array([0.0])
        results[hypergiant] = PniHeadroomResult(
            hypergiant=hypergiant,
            n_pnis=len(ratios),
            overloaded_fraction=float((ratios_array > 1.0).mean()),
            twice_overloaded_fraction=float((ratios_array >= 2.0).mean()),
            mean_peak_excess=float(np.maximum(0.0, ratios_array - 1.0).mean()),
        )
    return results


def run_section42(
    study: Study,
    hypergiant: str = "Google",
    n_regions: int = 8,
    seed: int = 9,
) -> Section42Result:
    """The §4.2.1 campaign (from ``hypergiant``) plus §4.2.2 headroom."""
    state = study.history.state("2023")
    hosting = state.isps_hosting(hypergiant)
    inference = run_peering_campaign(
        study.internet,
        hypergiant,
        hosting,
        CampaignConfig(n_regions=n_regions, targets_per_isp=2),
        seed=seed,
    )
    score = score_peering_inference(study.internet, hypergiant, inference)
    result = Section42Result(
        hypergiant=hypergiant,
        inference=inference,
        counts=inference.counts_for([isp.asn for isp in hosting]),
        n_hosting=len(hosting),
        precision=score.precision,
        recall=score.recall,
    )
    result.pni_headroom = run_pni_headroom(study)
    return result
