"""T1 — Table 1: # of ISPs hosting each hypergiant's offnets, 2021 vs 2023.

Paper values::

    Hypergiant   2021/04   2023/04
    Google       3810      4697 (+23.2 %)
    Netflix      2115      2906 (+37.4 %)
    Meta         2214      2588 (+16.9 %)
    Akamai       1094      1094 (+0.0 %)

Our reproduction runs the scan + detection methodology against both epochs
of the generated deployment history; absolute counts scale with the
synthetic Internet, the *growth percentages and ordering* are the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import format_table
from repro.core.pipeline import Study

HYPERGIANTS = ("Google", "Netflix", "Meta", "Akamai")

#: The paper's growth percentages per hypergiant.
PAPER_GROWTH_PERCENT = {"Google": 23.2, "Netflix": 37.4, "Meta": 16.9, "Akamai": 0.0}
#: The paper's absolute 2023 counts (for scale context only).
PAPER_COUNTS_2023 = {"Google": 4697, "Netflix": 2906, "Meta": 2588, "Akamai": 1094}


@dataclass
class Table1Result:
    """Measured footprint counts per hypergiant and epoch."""

    counts: dict[str, dict[str, int]] = field(default_factory=dict)

    def growth_percent(self, hypergiant: str) -> float:
        """Percent growth 2021 → 2023."""
        before = self.counts[hypergiant]["2021"]
        after = self.counts[hypergiant]["2023"]
        return 100.0 * (after - before) / before if before else 0.0

    def growth_ranking(self) -> list[str]:
        """Hypergiants ordered by measured growth, fastest first."""
        return sorted(self.counts, key=lambda hg: -self.growth_percent(hg))

    def render(self) -> str:
        """Plain-text table mirroring the paper's Table 1."""
        headers = ["Hypergiant", "2021", "2023", "growth", "paper growth"]
        rows = []
        for hypergiant in HYPERGIANTS:
            rows.append(
                [
                    hypergiant,
                    self.counts[hypergiant]["2021"],
                    self.counts[hypergiant]["2023"],
                    f"{self.growth_percent(hypergiant):+.1f}%",
                    f"{PAPER_GROWTH_PERCENT[hypergiant]:+.1f}%",
                ]
            )
        return format_table(headers, rows)


def run_table1(study: Study) -> Table1Result:
    """Count hosting ISPs per hypergiant per epoch from the detections."""
    result = Table1Result()
    for hypergiant in HYPERGIANTS:
        result.counts[hypergiant] = {
            epoch: inventory.isp_count(hypergiant)
            for epoch, inventory in sorted(study.inventories.items())
        }
    return result
