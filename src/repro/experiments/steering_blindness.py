"""SB — §3.2's measurement-blindness claim, quantified.

"With existing methodologies, it is impossible to know which users are
served from which offnets.  An earlier technique provided such results for
Google in 2013, but it only works if the hypergiant uses DNS to direct
users ... Google no longer does so ... Akamai does use DNS ... but it only
accepts EDNS Client Subnet queries from allow-listed DNS resolvers."

This experiment runs the 2013 client-mapping technique against every
steering era and reports the recovered coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import format_table
from repro.core.pipeline import Study
from repro.steering.dns import SteeringMode
from repro.steering.mapping import ClientMappingResult, build_authority, run_client_mapping
from repro.steering.policy import build_steering_policy


@dataclass
class SteeringBlindnessResult:
    """Mapping coverage per (hypergiant, steering era)."""

    results: dict[tuple[str, str], ClientMappingResult] = field(default_factory=dict)

    def coverage(self, hypergiant: str, mode: str) -> float:
        """Recovered-mapping coverage for one configuration."""
        return self.results[(hypergiant, mode)].coverage

    def render(self) -> str:
        """Coverage table across steering eras."""
        headers = ["Hypergiant", "steering era", "mapping coverage", "paper's account"]
        notes = {
            ("Google", SteeringMode.LEGACY_DNS.value): "worked in 2013 [12]",
            ("Google", SteeringMode.FRONTEND.value): "Google no longer uses DNS steering",
            ("Netflix", SteeringMode.FRONTEND.value): "embedded URLs, pages onnet/cloud",
            ("Meta", SteeringMode.FRONTEND.value): "embedded URLs, pages onnet/cloud",
            ("Akamai", SteeringMode.ECS_ALLOWLIST.value): "ECS only from allow-listed resolvers",
        }
        rows = []
        for (hypergiant, mode), result in sorted(self.results.items()):
            rows.append(
                [
                    hypergiant,
                    mode,
                    f"{100 * result.coverage:.0f}%",
                    notes.get((hypergiant, mode), ""),
                ]
            )
        return format_table(headers, rows)


def run_steering_blindness(study: Study, seed: int = 4) -> SteeringBlindnessResult:
    """Run the mapping campaign against each steering configuration."""
    policy = build_steering_policy(study.internet, study.history.state("2023"))
    result = SteeringBlindnessResult()
    configurations = [
        ("Google", SteeringMode.LEGACY_DNS),
        ("Google", SteeringMode.FRONTEND),
        ("Netflix", SteeringMode.FRONTEND),
        ("Meta", SteeringMode.FRONTEND),
        ("Akamai", SteeringMode.ECS_ALLOWLIST),
    ]
    for hypergiant, mode in configurations:
        authority = build_authority(study.internet, policy, hypergiant, mode)
        result.results[(hypergiant, mode.value)] = run_client_mapping(
            study.internet, authority, seed=seed
        )
    return result
