"""S43 — §4.3: spillover onto shared paths causes collateral damage.

The paper argues (without a table — this experiment makes the argument
quantitative) that when colocated offnets fail over to the same shared IXP
and transit links, services *other* than the hypergiants get hurt.  We run
the flagship correlated-failure event — an outage of the facility hosting
the most hypergiants — and a hypergiant-wide bad-update event, and report
congested shared links, throttled background traffic, and affected users,
against the no-failure baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import format_table
from repro.capacity.cascade import CascadeReport, simulate_cascade
from repro.capacity.demand import DemandModel
from repro.capacity.events import bad_update_scenario, facility_outage_scenario
from repro.capacity.links import build_capacity_plan
from repro.core.pipeline import Study


@dataclass
class Section43Result:
    """Outcomes of the correlated-failure scenarios."""

    #: Facility chosen for the outage and the hypergiants it hosted.
    outage_facility_id: int = -1
    outage_hypergiants: tuple[str, ...] = ()
    facility_outage: CascadeReport | None = None
    bad_update: CascadeReport | None = None
    covered_users: int = 0

    def render(self) -> str:
        """Scenario table: congestion, collateral, affected users."""
        headers = ["Scenario", "congested ISPs", "collateral (Gbps-h)", "affected users"]
        rows = []
        for label, report in (
            (f"facility {self.outage_facility_id} outage ({'+'.join(self.outage_hypergiants)})", self.facility_outage),
            ("Netflix fleet bad update (50% of sites)", self.bad_update),
        ):
            if report is None:
                continue
            rows.append(
                [
                    label,
                    len(report.congested_isp_asns),
                    f"{report.total_collateral_gbph:.0f}",
                    f"{report.affected_users():,}",
                ]
            )
        return format_table(headers, rows)


def most_shared_facility(study: Study) -> tuple[int, tuple[str, ...]]:
    """The ground-truth facility hosting the most hypergiants (ties: users)."""
    state = study.history.state("2023")
    hosts: dict[int, set[str]] = {}
    users: dict[int, int] = {}
    for server in state.servers:
        facility_id = server.facility.facility_id
        hosts.setdefault(facility_id, set()).add(server.hypergiant)
        users[facility_id] = server.isp.users
    best = max(hosts, key=lambda fid: (len(hosts[fid]), users.get(fid, 0), -fid))
    return best, tuple(sorted(hosts[best]))


def run_section43(study: Study, sample: int | None = None, seed: int = 11) -> Section43Result:
    """Run both §4.3 scenarios over provisioned capacity plans."""
    state = study.history.state("2023")
    demand = DemandModel(traffic=study.traffic)
    plans = build_capacity_plan(study.internet, state, demand, seed=seed)
    asns = sorted(plans)
    if sample is not None:
        asns = asns[:sample]

    result = Section43Result()
    result.outage_facility_id, result.outage_hypergiants = most_shared_facility(study)
    owner_asn = next(
        server.isp.asn
        for server in state.servers
        if server.facility.facility_id == result.outage_facility_id
    )
    outage_asns = sorted(set(asns) | {owner_asn})
    result.facility_outage = simulate_cascade(
        study.internet,
        demand,
        plans,
        facility_outage_scenario(result.outage_facility_id),
        study.population,
        asns=outage_asns,
    )
    result.bad_update = simulate_cascade(
        study.internet,
        demand,
        plans,
        bad_update_scenario("Netflix", failure_fraction=0.5, seed=seed),
        study.population,
        asns=asns,
    )
    result.covered_users = study.population.users_in_asns(set(asns))
    return result
