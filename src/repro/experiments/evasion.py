"""EV — how certificate evasion degrades detection and the conclusions.

Runs the adversarial scenario variants of ``small``
(:data:`repro.experiments.scenarios.EVASION_SCENARIOS`) and compares each
against the honest baseline on three levels:

* **detection recall** (2023) — the direct damage: evading servers vanish
  from the inventory;
* **Table 1** — total hosting-ISP count across hypergiants, 2023: does
  the footprint story shrink?
* **Figure 2** — the single-facility concentration headline (fraction of
  covered users behind a >= 25 %-share facility): do the paper's risk
  conclusions survive an under-counted fleet?

The punchline mirrors §2.2's arms-race warning: the concentration
*conclusions* are fairly robust (the surviving detections concentrate the
same way) while the *footprint counts* are quietly wrong — exactly the
failure mode a certificate-based methodology cannot see from inside.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import format_table
from repro.core.pipeline import Study
from repro.scan.detection import score_detection


@dataclass(frozen=True)
class EvasionImpactRow:
    """One scenario's headline numbers."""

    scenario: str
    detection_recall: float
    detection_precision: float
    hosting_isps_2023: int
    share25_low: float
    share25_high: float


@dataclass
class EvasionImpactResult:
    """Baseline row first, then one row per evasion variant."""

    rows: list[EvasionImpactRow] = field(default_factory=list)

    @property
    def baseline(self) -> EvasionImpactRow:
        return self.rows[0]

    def recall_drop(self, scenario: str) -> float:
        """Baseline recall minus ``scenario``'s recall (positive = degraded)."""
        by_name = {row.scenario: row for row in self.rows}
        return self.baseline.detection_recall - by_name[scenario].detection_recall

    def render(self) -> str:
        headers = ["scenario", "recall", "precision", "hosting ISPs", "share>=25% users"]
        rows = []
        for row in self.rows:
            rows.append(
                [
                    row.scenario,
                    f"{row.detection_recall:.3f}",
                    f"{row.detection_precision:.3f}",
                    row.hosting_isps_2023,
                    f"{100 * row.share25_low:.0f}%-{100 * row.share25_high:.0f}%",
                ]
            )
        return format_table(headers, rows)


def _impact_row(name: str, study: Study) -> EvasionImpactRow:
    from repro.experiments.figure2 import run_figure2

    score = score_detection(study.latest_inventory, study.history.state("2023"))
    share_low, share_high = run_figure2(study).share25_range()
    return EvasionImpactRow(
        scenario=name,
        detection_recall=score.recall,
        detection_precision=score.precision,
        hosting_isps_2023=len(study.latest_inventory.hosting_isp_asns()),
        share25_low=share_low,
        share25_high=share_high,
    )


def run_evasion_impact(baseline: str = "small") -> EvasionImpactResult:
    """Run ``baseline`` plus its evasion variants and compare headlines."""
    from repro.experiments.scenarios import EVASION_SCENARIOS, cached_study

    result = EvasionImpactResult()
    result.rows.append(_impact_row(baseline, cached_study(baseline)))
    for scenario in EVASION_SCENARIOS:
        result.rows.append(_impact_row(scenario.name, cached_study(scenario)))
    return result
