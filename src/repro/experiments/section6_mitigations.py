"""S6 — the discussion section's mitigation directions, evaluated.

Two quantitative follow-ups to §6:

1. **Isolation policies** ("isolation mechanisms ... to protect capacity
   for each hypergiant and for other Internet traffic"): replay the §4.3
   facility-outage cascade under fair-share (status quo), background
   protection, and per-hypergiant reserved slices, and compare collateral
   damage vs unserved hypergiant overflow.

2. **Upgrade dynamics** (§4.2.2: "getting ISPs to upgrade can take months
   or even be impossible"): simulate the PNI upgrade cycle with different
   lead times and report the steady-state overload fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import format_table
from repro.capacity.demand import DemandModel
from repro.capacity.events import facility_outage_scenario
from repro.capacity.isolation import IsolationPolicy
from repro.capacity.links import build_capacity_plan
from repro.capacity.spillover import SpilloverModel
from repro.capacity.upgrades import UpgradeConfig, UpgradeReport, pni_links_from_plans, simulate_upgrade_cycle
from repro.core.pipeline import Study
from repro.experiments.section43_collateral import most_shared_facility


@dataclass(frozen=True)
class PolicyOutcome:
    """Day totals for the outage ISP under one isolation policy."""

    policy: IsolationPolicy
    collateral_gbph: float
    unserved_gbph: float
    interdomain_gbph: float


@dataclass
class Section6Result:
    """Isolation comparison plus upgrade-cycle sweeps."""

    outage_facility_id: int = -1
    policies: list[PolicyOutcome] = field(default_factory=list)
    #: upgrade lead-time (months, midpoint) -> report.
    upgrade_sweeps: dict[int, UpgradeReport] = field(default_factory=dict)

    def outcome(self, policy: IsolationPolicy) -> PolicyOutcome:
        """The outcome row for ``policy``."""
        return next(o for o in self.policies if o.policy is policy)

    def render(self) -> str:
        """Both mitigation tables."""
        headers = ["isolation policy", "collateral (Gbps-h)", "unserved HG (Gbps-h)"]
        rows = [
            [o.policy.value, f"{o.collateral_gbph:.0f}", f"{o.unserved_gbph:.0f}"]
            for o in self.policies
        ]
        blocks = [format_table(headers, rows)]
        headers2 = ["upgrade lead time", "overloaded link-months", "final peak>cap", "final peak>=2x"]
        rows2 = []
        for lead, report in sorted(self.upgrade_sweeps.items()):
            rows2.append(
                [
                    f"~{lead} months",
                    f"{100 * report.overloaded_link_month_fraction():.0f}%",
                    f"{100 * report.final_overloaded_fraction():.0f}%",
                    f"{100 * report.final_overloaded_fraction(2.0):.0f}%",
                ]
            )
        blocks.append(format_table(headers2, rows2))
        return "\n\n".join(blocks)


def run_isolation_comparison(study: Study, seed: int = 11) -> tuple[int, list[PolicyOutcome]]:
    """Outage-day totals for the most-shared facility, per policy."""
    state = study.history.state("2023")
    demand = DemandModel(traffic=study.traffic)
    plans = build_capacity_plan(study.internet, state, demand, seed=seed)
    facility_id, _ = most_shared_facility(study)
    owner_asn = next(
        server.isp.asn for server in state.servers if server.facility.facility_id == facility_id
    )
    damaged = facility_outage_scenario(facility_id).apply_to_plans(plans)
    outcomes = []
    for policy in IsolationPolicy:
        model = SpilloverModel(study.internet, demand, damaged, policy=policy)
        reports = model.daily_reports(owner_asn)
        outcomes.append(
            PolicyOutcome(
                policy=policy,
                collateral_gbph=sum(r.background_collateral_gbps for r in reports),
                unserved_gbph=sum(r.total_unserved_gbps for r in reports),
                interdomain_gbph=sum(r.total_interdomain_gbps for r in reports),
            )
        )
    return facility_id, outcomes


def run_upgrade_sweep(
    study: Study, lead_times: tuple[int, ...] = (2, 6, 12), seed: int = 11
) -> dict[int, UpgradeReport]:
    """The PNI upgrade cycle at several negotiation lead times."""
    state = study.history.state("2023")
    demand = DemandModel(traffic=study.traffic)
    plans = build_capacity_plan(study.internet, state, demand, seed=seed)
    links = pni_links_from_plans(plans, demand)
    sweeps: dict[int, UpgradeReport] = {}
    for lead in lead_times:
        config = UpgradeConfig(lead_time_months=(max(1, lead - 1), lead + 1))
        sweeps[lead] = simulate_upgrade_cycle(links, config, seed=seed)
    return sweeps


def run_section6(study: Study, seed: int = 11) -> Section6Result:
    """Both §6 mitigation analyses."""
    result = Section6Result()
    result.outage_facility_id, result.policies = run_isolation_comparison(study, seed)
    result.upgrade_sweeps = run_upgrade_sweep(study, seed=seed)
    return result
