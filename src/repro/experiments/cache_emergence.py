"""CE — §2.1's offnet fractions as emergent cache hit ratios.

The paper treats "offnets serve 70-90 % of Google traffic / 95 % of
Netflix traffic / 86 % of Meta / 75 % of Akamai" as reported constants.
This experiment derives them: simulate each hypergiant's appliance (LRU
over its content catalog) and search for the capacity that reproduces the
reported byte hit ratio.  The per-hypergiant *ordering* falls out of
catalog shape: Netflix's compact head-heavy catalog reaches 95 % with a
modest appliance; Akamai's many-customer tail is the hardest to cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import format_table
from repro.cache.catalog import DEFAULT_CATALOGS
from repro.cache.simulate import CacheSimResult, capacity_for_target_ratio, simulate_cache
from repro.deployment.hypergiants import profile_by_name


@dataclass
class CacheEmergenceResult:
    """Calibrated capacities plus the emergent ratios."""

    results: dict[str, CacheSimResult] = field(default_factory=dict)
    policy_comparison: dict[str, dict[str, float]] = field(default_factory=dict)

    def render(self) -> str:
        headers = [
            "Hypergiant",
            "paper offnet fraction",
            "emergent byte hit ratio",
            "capacity (GB)",
            "capacity / catalog",
        ]
        rows = []
        for hypergiant in sorted(self.results):
            result = self.results[hypergiant]
            target = profile_by_name(hypergiant).offnet_serve_fraction
            rows.append(
                [
                    hypergiant,
                    f"{target:.2f}",
                    f"{result.byte_hit_ratio:.3f}",
                    f"{result.capacity_gb:,.0f}",
                    f"{100 * result.capacity_to_catalog:.0f}%",
                ]
            )
        blocks = [format_table(headers, rows)]
        if self.policy_comparison:
            headers2 = ["Hypergiant", "lru", "lfu", "fifo"]
            rows2 = []
            for hypergiant in sorted(self.policy_comparison):
                ratios = self.policy_comparison[hypergiant]
                rows2.append(
                    [hypergiant] + [f"{ratios[p]:.3f}" for p in ("lru", "lfu", "fifo")]
                )
            blocks.append(format_table(headers2, rows2))
        return "\n\n".join(blocks)


def run_cache_emergence(seed: int = 0, compare_policies: bool = True) -> CacheEmergenceResult:
    """Calibrate each hypergiant's appliance and compare policies."""
    result = CacheEmergenceResult()
    for hypergiant, spec in DEFAULT_CATALOGS.items():
        target = profile_by_name(hypergiant).offnet_serve_fraction
        capacity, sim = capacity_for_target_ratio(spec, target, seed=seed)
        result.results[hypergiant] = sim
        if compare_policies:
            result.policy_comparison[hypergiant] = {
                policy: simulate_cache(spec, capacity, policy, seed=seed).byte_hit_ratio
                for policy in ("lru", "lfu", "fifo")
            }
    return result
