"""T2 — Table 2: % of offnets colocated with another hypergiant.

Paper values (each row sums to 100 % across buckets)::

                xi    Sole HG   0 %    (0,50)   [50,100)   100 %
    Google      0.1   31 %      15 %   12 %     9 %        33 %
                0.9   31 %      2 %    2 %      3 %        62 %
    Akamai      0.1   16 %      25 %   36 %     7 %        16 %
                0.9   16 %      7 %    4 %      15 %       58 %
    Meta        0.1   6 %       23 %   27 %     12 %       32 %
                0.9   6 %       4 %    2 %      4 %        84 %
    Netflix     0.1   12 %      21 %   10 %     11 %       46 %
                0.9   12 %      8 %    2 %      7 %        71 %

The shape assertions: colocation is widespread at every setting; xi = 0.9
(conservative clustering) reports *more* colocation than xi = 0.1; Akamai
(legacy deployments) shows the most partial colocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.colocation import ColocationBucket, ColocationTable
from repro.core.pipeline import Study

#: Paper percentages for the FULL (100 %) bucket, per hypergiant and xi.
PAPER_FULL_BUCKET = {
    ("Google", 0.1): 0.33,
    ("Google", 0.9): 0.62,
    ("Akamai", 0.1): 0.16,
    ("Akamai", 0.9): 0.58,
    ("Meta", 0.1): 0.32,
    ("Meta", 0.9): 0.84,
    ("Netflix", 0.1): 0.46,
    ("Netflix", 0.9): 0.71,
}


@dataclass
class Table2Result:
    """Both xi panels."""

    tables: dict[float, ColocationTable] = field(default_factory=dict)

    def full_colocation(self, hypergiant: str, xi: float) -> float:
        """The 100 %-colocated bucket share."""
        return self.tables[xi].percentage(hypergiant, ColocationBucket.FULL)

    def majority_colocation(self, hypergiant: str, xi: float) -> float:
        """Share of ISPs colocating at least half of the HG's offnets."""
        table = self.tables[xi]
        return table.percentage(hypergiant, ColocationBucket.HALF_OR_MORE) + table.percentage(
            hypergiant, ColocationBucket.FULL
        )

    def partial_colocation(self, hypergiant: str, xi: float) -> float:
        """Share of ISPs that are neither 0 % nor 100 % colocated (the
        Akamai-is-different metric)."""
        table = self.tables[xi]
        return table.percentage(hypergiant, ColocationBucket.UNDER_HALF) + table.percentage(
            hypergiant, ColocationBucket.HALF_OR_MORE
        )

    def render(self) -> str:
        """Both panels, paper layout."""
        return "\n\n".join(self.tables[xi].render() for xi in sorted(self.tables))


def run_table2(study: Study) -> Table2Result:
    """Build both Table-2 panels from the study's clusterings."""
    result = Table2Result()
    for xi in study.config.xis:
        result.tables[xi] = study.colocation_table(xi)
    return result
