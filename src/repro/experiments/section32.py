"""S32 — §3.1/§3.2 narrative numbers and the hostname validation.

Paper: of 5516 ISPs hosting >= 1 hypergiant (2023), 3382 host >= 2, 1880
host >= 3, and 505 host all four — an increase in cohosting since 2021,
when ~2840 hosted at least two, ~1690 at least three, and ~430 all four
("multi-hypergiant hosting will continue to increase over time").
Validation: at xi = 0.1, 60 clusters had >= 2 located hostnames — 55
single-city, 3 single-metro, 2 multi-city-same-country; at xi = 0.9, 34
clusters — 30 / 2 / 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import format_table
from repro.core.pipeline import Study
from repro.rdns.validation import ConsistencyClass, ValidationSummary

#: Paper cohosting counts per epoch (2021 values are the SIGCOMM'21
#: study's, quoted in §3.1 as approximations).
PAPER_COHOSTING = {1: 5516, 2: 3382, 3: 1880, 4: 505}
PAPER_COHOSTING_2021 = {2: 2840, 3: 1690, 4: 430}


@dataclass
class Section32Result:
    """Cohosting distribution (both epochs) plus validation per xi."""

    cohosting: dict[int, int] = field(default_factory=dict)
    cohosting_2021: dict[int, int] = field(default_factory=dict)
    validations: dict[float, ValidationSummary] = field(default_factory=dict)

    def cohosting_fraction(self, k: int) -> float:
        """Fraction of hosting ISPs with >= k hypergiants (2023)."""
        total = self.cohosting.get(1, 0)
        return self.cohosting.get(k, 0) / total if total else 0.0

    def cohosting_increased(self, k: int) -> bool:
        """§3.1's longitudinal claim: more k-cohosting in 2023 than 2021."""
        return self.cohosting.get(k, 0) >= self.cohosting_2021.get(k, 0)

    def render(self) -> str:
        """Cohosting (both epochs) and validation tables, measured vs paper."""
        headers = ["ISPs hosting", "2021", "2023", "2023 frac", "paper 2021", "paper 2023"]
        rows = []
        for k in (1, 2, 3, 4):
            rows.append(
                [
                    f">= {k} HGs" if k < 4 else "all 4 HGs",
                    self.cohosting_2021.get(k, 0),
                    self.cohosting.get(k, 0),
                    f"{100 * self.cohosting_fraction(k):.0f}%",
                    PAPER_COHOSTING_2021.get(k, "-"),
                    PAPER_COHOSTING[k],
                ]
            )
        blocks = [format_table(headers, rows)]
        for xi in sorted(self.validations):
            summary = self.validations[xi]
            blocks.append(
                f"validation @ xi={xi}: {summary.checkable_clusters} checkable clusters, "
                f"{summary.count(ConsistencyClass.SINGLE_CITY)} single-city, "
                f"{summary.count(ConsistencyClass.SINGLE_METRO)} single-metro, "
                f"{summary.count(ConsistencyClass.SINGLE_COUNTRY)} same-country, "
                f"{summary.count(ConsistencyClass.MULTI_COUNTRY)} multi-country "
                f"({100 * summary.consistent_fraction:.0f}% consistent)"
            )
        return "\n\n".join(blocks)


def run_section32(study: Study) -> Section32Result:
    """Count cohosting levels (both epochs) and validate clusters."""
    result = Section32Result()
    for epoch, target in (("2023", result.cohosting), ("2021", result.cohosting_2021)):
        inventory = study.inventories[epoch]
        counts = {
            asn: len(inventory.hypergiants_in_isp(asn)) for asn in inventory.hosting_isp_asns()
        }
        for k in (1, 2, 3, 4):
            target[k] = sum(1 for n in counts.values() if n >= k)
    for xi in study.config.xis:
        result.validations[xi] = study.validation(xi)
    return result
