"""S32 — §3.1/§3.2 narrative numbers and the hostname validation.

Paper: of 5516 ISPs hosting >= 1 hypergiant (2023), 3382 host >= 2, 1880
host >= 3, and 505 host all four — an increase in cohosting since 2021,
when ~2840 hosted at least two, ~1690 at least three, and ~430 all four
("multi-hypergiant hosting will continue to increase over time").
Validation: at xi = 0.1, 60 clusters had >= 2 located hostnames — 55
single-city, 3 single-metro, 2 multi-city-same-country; at xi = 0.9, 34
clusters — 30 / 2 / 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import format_table, require
from repro.core.pipeline import Study
from repro.deployment.growth import epoch_key
from repro.rdns.validation import ConsistencyClass, ValidationSummary
from repro.scan.detection import OffnetInventory

#: Paper cohosting counts per epoch (2021 values are the SIGCOMM'21
#: study's, quoted in §3.1 as approximations).
PAPER_COHOSTING = {1: 5516, 2: 3382, 3: 1880, 4: 505}
PAPER_COHOSTING_2021 = {2: 2840, 3: 1690, 4: 430}


def cohosting_counts(inventory: OffnetInventory) -> dict[int, int]:
    """ISPs hosting >= k hypergiants (k = 1..4) in one inventory.

    The §3.1 cohosting distribution for a single epoch; the timeline
    engine evaluates it per quarter to plot cohosting over time.
    """
    counts = {asn: len(inventory.hypergiants_in_isp(asn)) for asn in inventory.hosting_isp_asns()}
    return {k: sum(1 for n in counts.values() if n >= k) for k in (1, 2, 3, 4)}


@dataclass
class Section32Result:
    """Cohosting distribution (all requested epochs) plus validation per xi.

    ``cohosting_by_epoch`` carries every epoch; ``cohosting`` /
    ``cohosting_2021`` remain the calendar-latest / calendar-earliest
    epochs' counts, so two-epoch callers see exactly the historical
    shape (and :meth:`render` is unchanged).
    """

    cohosting: dict[int, int] = field(default_factory=dict)
    cohosting_2021: dict[int, int] = field(default_factory=dict)
    cohosting_by_epoch: dict[str, dict[int, int]] = field(default_factory=dict)
    validations: dict[float, ValidationSummary] = field(default_factory=dict)

    def cohosting_fraction(self, k: int) -> float:
        """Fraction of hosting ISPs with >= k hypergiants (2023)."""
        total = self.cohosting.get(1, 0)
        return self.cohosting.get(k, 0) / total if total else 0.0

    def cohosting_increased(self, k: int) -> bool:
        """§3.1's longitudinal claim: more k-cohosting in 2023 than 2021."""
        return self.cohosting.get(k, 0) >= self.cohosting_2021.get(k, 0)

    def render(self) -> str:
        """Cohosting (both epochs) and validation tables, measured vs paper."""
        headers = ["ISPs hosting", "2021", "2023", "2023 frac", "paper 2021", "paper 2023"]
        rows = []
        for k in (1, 2, 3, 4):
            rows.append(
                [
                    f">= {k} HGs" if k < 4 else "all 4 HGs",
                    self.cohosting_2021.get(k, 0),
                    self.cohosting.get(k, 0),
                    f"{100 * self.cohosting_fraction(k):.0f}%",
                    PAPER_COHOSTING_2021.get(k, "-"),
                    PAPER_COHOSTING[k],
                ]
            )
        blocks = [format_table(headers, rows)]
        for xi in sorted(self.validations):
            summary = self.validations[xi]
            blocks.append(
                f"validation @ xi={xi}: {summary.checkable_clusters} checkable clusters, "
                f"{summary.count(ConsistencyClass.SINGLE_CITY)} single-city, "
                f"{summary.count(ConsistencyClass.SINGLE_METRO)} single-metro, "
                f"{summary.count(ConsistencyClass.SINGLE_COUNTRY)} same-country, "
                f"{summary.count(ConsistencyClass.MULTI_COUNTRY)} multi-country "
                f"({100 * summary.consistent_fraction:.0f}% consistent)"
            )
        return "\n\n".join(blocks)


def run_section32(study: Study, epochs: tuple[str, ...] | None = None) -> Section32Result:
    """Count cohosting levels per epoch and validate clusters.

    ``epochs`` defaults to every epoch in the study (the classic
    2021/2023 pair); pass an explicit list to restrict or reorder.  The
    legacy ``cohosting`` / ``cohosting_2021`` fields hold the
    calendar-latest and calendar-earliest requested epochs, which for
    the default two-epoch study reproduces the historical result
    exactly.
    """
    if epochs is None:
        epochs = tuple(sorted(study.inventories, key=epoch_key))
    require(bool(epochs), "need at least one epoch")
    for epoch in epochs:
        require(epoch in study.inventories, f"study has no inventory for epoch {epoch!r}")
    result = Section32Result()
    for epoch in epochs:
        result.cohosting_by_epoch[epoch] = cohosting_counts(study.inventories[epoch])
    result.cohosting = dict(result.cohosting_by_epoch[max(epochs, key=epoch_key)])
    result.cohosting_2021 = dict(result.cohosting_by_epoch[min(epochs, key=epoch_key)])
    if len(epochs) == 1:
        # A single epoch has no "earlier" snapshot to compare against.
        result.cohosting_2021 = {}
    for xi in study.config.xis:
        result.validations[xi] = study.validation(xi)
    return result
