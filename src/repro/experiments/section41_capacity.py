"""S41 — §4.1: offnets run near capacity; single-site fractions.

Two artifacts:

1. **Single-site fractions**: the paper clusters offnet IPs into sites and
   finds 75.3-91.2 % of ISPs have only a single Netflix site, 37.8-64.3 %
   a single Meta site, 34.3-78.4 % a single Google site, 34.6-75.1 % a
   single Akamai site (ranges over xi).  For those ISPs any spillover must
   cross interdomain boundaries.

2. **The COVID experiment**: before lockdown, offnets in some European ISPs
   served 63 % of Netflix traffic; demand spiked 58 %, offnet traffic rose
   only ~20 %, interdomain traffic more than doubled — i.e. offnets had no
   headroom.  We reproduce it by running the spillover waterfall with
   capacity-constrained offnets at a healthy operating point (90 %
   utilization target), then at crisis operation under a 1.58x surge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import format_table
from repro.capacity.demand import DemandModel
from repro.capacity.links import ProvisioningConfig, build_capacity_plan
from repro.capacity.spillover import SpilloverModel
from repro.core.pipeline import Study

#: Paper single-site ranges per hypergiant (min, max over xi).
PAPER_SINGLE_SITE = {
    "Netflix": (0.753, 0.912),
    "Meta": (0.378, 0.643),
    "Google": (0.343, 0.784),
    "Akamai": (0.346, 0.751),
}
#: Paper COVID observations.
PAPER_COVID_BASELINE_OFFNET_SHARE = 0.63
PAPER_COVID_DEMAND_MULTIPLIER = 1.58
PAPER_COVID_OFFNET_INCREASE = 0.20


@dataclass
class CovidResult:
    """Measured lockdown-surge outcome for one hypergiant."""

    hypergiant: str
    baseline_offnet_share: float
    offnet_change: float
    interdomain_ratio: float


@dataclass
class Section41Result:
    """Single-site fractions per (hypergiant, xi) plus the COVID run."""

    single_site: dict[str, dict[float, float]] = field(default_factory=dict)
    covid: CovidResult | None = None

    def single_site_range(self, hypergiant: str) -> tuple[float, float]:
        """(min, max) single-site fraction over the xi settings."""
        values = list(self.single_site[hypergiant].values())
        return (min(values), max(values))

    def render(self) -> str:
        """Single-site table plus COVID headline, measured vs paper."""
        headers = ["Hypergiant", "single-site (measured)", "single-site (paper)"]
        rows = []
        for hypergiant in sorted(self.single_site):
            low, high = self.single_site_range(hypergiant)
            paper_low, paper_high = PAPER_SINGLE_SITE[hypergiant]
            rows.append(
                [
                    hypergiant,
                    f"{100 * low:.1f}%-{100 * high:.1f}%",
                    f"{100 * paper_low:.1f}%-{100 * paper_high:.1f}%",
                ]
            )
        blocks = [format_table(headers, rows)]
        if self.covid is not None:
            blocks.append(
                f"COVID surge ({self.covid.hypergiant}, x{PAPER_COVID_DEMAND_MULTIPLIER}): "
                f"baseline offnet share {100 * self.covid.baseline_offnet_share:.0f}% (paper 63%), "
                f"offnet {100 * self.covid.offnet_change:+.0f}% (paper ~+20%), "
                f"interdomain x{self.covid.interdomain_ratio:.2f} (paper: more than doubled)"
            )
        return "\n\n".join(blocks)


def run_covid_experiment(
    study: Study,
    hypergiant: str = "Netflix",
    multiplier: float = PAPER_COVID_DEMAND_MULTIPLIER,
    offnet_headroom: float = 0.62,
    sample: int | None = None,
    seed: int = 11,
) -> CovidResult:
    """The lockdown surge over capacity-constrained offnets.

    ``offnet_headroom`` < 1 models the European ISPs of the pre-COVID
    study, whose offnets could not even cover the normal evening peak.
    """
    state = study.history.state("2023")
    demand = DemandModel(traffic=study.traffic)
    plans = build_capacity_plan(
        study.internet, state, demand, ProvisioningConfig(offnet_headroom=offnet_headroom), seed=seed
    )
    model = SpilloverModel(study.internet, demand, plans)
    asns = [isp.asn for isp in state.isps_hosting(hypergiant)]
    if sample is not None:
        asns = asns[:sample]

    def day_totals(demand_multiplier: float, utilization_cap: float) -> tuple[float, float, float]:
        offnet = interdomain = total = 0.0
        for asn in asns:
            for hour in range(24):
                report = model.report(
                    asn, hour, {hypergiant: demand_multiplier}, offnet_utilization_cap=utilization_cap
                )
                flow = report.flows.get(hypergiant)
                if flow is None:
                    continue
                offnet += flow.offnet_gbps
                interdomain += flow.interdomain_gbps
                total += flow.demand_gbps
        return offnet, interdomain, total

    base_offnet, base_interdomain, base_total = day_totals(1.0, utilization_cap=0.9)
    surge_offnet, surge_interdomain, _ = day_totals(multiplier, utilization_cap=1.0)
    return CovidResult(
        hypergiant=hypergiant,
        baseline_offnet_share=base_offnet / base_total if base_total else 0.0,
        offnet_change=surge_offnet / base_offnet - 1.0 if base_offnet else 0.0,
        interdomain_ratio=surge_interdomain / base_interdomain if base_interdomain else float("inf"),
    )


def run_section41(study: Study, covid_sample: int | None = None) -> Section41Result:
    """Single-site fractions at each xi, plus the COVID experiment."""
    result = Section41Result()
    for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
        result.single_site[hypergiant] = {
            xi: study.single_site_fraction(hypergiant, xi) for xi in study.config.xis
        }
    result.covid = run_covid_experiment(study, sample=covid_sample)
    return result
