"""S21 — §2.1's operator anecdote: offnets dwarf interdomain delivery.

"One network reports that its Google offnets deliver ≈ 20 Gbps at peak per
location (80 % of its Google traffic), its Netflix offnets deliver
≈ 30 Gbps (> 90 %), its Meta offnets ≈ 20 Gbps (86 %), and its Akamai
offnets ≈ 20 Gbps (75 %) ... up to ≈ 90 Gbps, compared to < 15 Gbps coming
from these hypergiants over interdomain links."

This experiment finds the generated ISP closest to the anecdote's scale
(~2M users) and reports the same peak-hour split from the spillover model,
checking both the per-hypergiant offnet fractions and the ~6:1
offnet-to-interdomain ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import format_table
from repro.capacity.demand import DemandModel
from repro.capacity.links import build_capacity_plan
from repro.capacity.spillover import SpilloverModel
from repro.core.pipeline import Study

#: The anecdote's per-hypergiant offnet fractions.
PAPER_OFFNET_FRACTIONS = {"Google": 0.80, "Netflix": 0.90, "Meta": 0.86, "Akamai": 0.75}
#: The anecdote's totals: ~90 Gbps offnet vs < 15 Gbps interdomain.
PAPER_OFFNET_TOTAL_GBPS = 90.0
PAPER_INTERDOMAIN_TOTAL_GBPS = 15.0


@dataclass
class Section21Result:
    """Peak-hour serving split for the anecdote-scale ISP."""

    isp_asn: int = 0
    isp_users: int = 0
    #: hypergiant -> (offnet Gbps, interdomain Gbps).
    split: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def offnet_total(self) -> float:
        """Peak offnet Gbps across hypergiants."""
        return sum(offnet for offnet, _ in self.split.values())

    @property
    def interdomain_total(self) -> float:
        """Peak interdomain Gbps across hypergiants."""
        return sum(interdomain for _, interdomain in self.split.values())

    def offnet_fraction(self, hypergiant: str) -> float:
        """Share of the hypergiant's traffic served from offnets."""
        offnet, interdomain = self.split[hypergiant]
        total = offnet + interdomain
        return offnet / total if total else 0.0

    def render(self) -> str:
        """The anecdote table, measured vs paper."""
        headers = ["Hypergiant", "offnet Gbps", "interdomain Gbps", "offnet %", "paper offnet %"]
        rows = []
        for hypergiant in sorted(self.split):
            offnet, interdomain = self.split[hypergiant]
            rows.append(
                [
                    hypergiant,
                    f"{offnet:.1f}",
                    f"{interdomain:.1f}",
                    f"{100 * self.offnet_fraction(hypergiant):.0f}%",
                    f"{100 * PAPER_OFFNET_FRACTIONS.get(hypergiant, 0):.0f}%",
                ]
            )
        table = format_table(headers, rows)
        summary = (
            f"ISP (ASN {self.isp_asn}, {self.isp_users:,} users): "
            f"{self.offnet_total:.0f} Gbps from offnets vs "
            f"{self.interdomain_total:.0f} Gbps interdomain "
            f"(paper: ~{PAPER_OFFNET_TOTAL_GBPS:.0f} vs <{PAPER_INTERDOMAIN_TOTAL_GBPS:.0f})"
        )
        return table + "\n" + summary


def run_section21(study: Study, target_users: int = 2_000_000, seed: int = 11) -> Section21Result:
    """Reproduce the anecdote for the 4-hypergiant ISP nearest ``target_users``."""
    state = study.history.state("2023")
    candidates = [
        isp for isp in state.hosting_isps() if len(state.hypergiants_in(isp)) == 4
    ]
    if not candidates:
        candidates = state.hosting_isps()
    isp = min(candidates, key=lambda a: abs(a.users - target_users))

    demand = DemandModel(traffic=study.traffic)
    plans = build_capacity_plan(study.internet, state, demand, seed=seed)
    model = SpilloverModel(study.internet, demand, plans)
    report = model.report(isp.asn, hour=20)

    result = Section21Result(isp_asn=isp.asn, isp_users=isp.users)
    for hypergiant, flow in report.flows.items():
        result.split[hypergiant] = (flow.offnet_gbps, flow.interdomain_gbps)
    return result
