"""F2 — Figure 2: CCDF of per-user single-facility traffic share.

Paper headlines: 76 % of Internet users are in ISPs with at least one
offnet; 56 % are in ISPs analyzable for colocation; of those, 71-82 % have
a local facility able to serve >= 25 % of their traffic; 18-31 % (10-17 %
of *all* users) have a facility hosting all four hypergiants, which could
serve 52 % of their traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import format_table
from repro.core.concentration import ConcentrationResult, coverage_statistics
from repro.core.pipeline import Study

#: Paper headline ranges (fractions).
PAPER_HOSTING_USER_FRACTION = 0.76
PAPER_ANALYZABLE_USER_FRACTION = 0.56
PAPER_SHARE25_RANGE = (0.71, 0.82)
PAPER_FOUR_HG_RANGE = (0.18, 0.31)
PAPER_FOUR_HG_SHARE = 0.52


@dataclass
class Figure2Result:
    """The CCDF inputs per xi plus the coverage headlines."""

    concentrations: dict[float, ConcentrationResult] = field(default_factory=dict)
    coverage: dict[str, float] = field(default_factory=dict)

    def ccdf(self, xi: float) -> tuple[np.ndarray, np.ndarray]:
        """(x, P(share >= x)) series for one xi (a Figure-2 curve)."""
        return self.concentrations[xi].ccdf_points()

    def share25_range(self) -> tuple[float, float]:
        """Across xis: fraction of covered users with a >= 25 %-share facility."""
        values = [c.user_fraction_with_share_at_least(0.25) for c in self.concentrations.values()]
        return (min(values), max(values))

    def four_hg_range(self) -> tuple[float, float]:
        """Across xis: fraction of covered users with a 4-HG facility."""
        values = [c.user_fraction_with_hypergiants_at_least(4) for c in self.concentrations.values()]
        return (min(values), max(values))

    def render(self) -> str:
        """Headline table, measured vs paper."""
        share_low, share_high = self.share25_range()
        four_low, four_high = self.four_hg_range()
        headers = ["Statistic", "measured", "paper"]
        rows = [
            ["users in ISPs with offnets", f"{100 * self.coverage['hosting']:.0f}%", "76%"],
            ["users in analyzable ISPs", f"{100 * self.coverage['analyzable']:.0f}%", "56%"],
            [
                "covered users w/ facility serving >=25%",
                f"{100 * share_low:.0f}%-{100 * share_high:.0f}%",
                "71%-82%",
            ],
            [
                "covered users w/ 4-HG facility",
                f"{100 * four_low:.0f}%-{100 * four_high:.0f}%",
                "18%-31%",
            ],
        ]
        return format_table(headers, rows)


def run_figure2(study: Study) -> Figure2Result:
    """Compute the Figure-2 curves and headlines."""
    result = Figure2Result()
    for xi in study.config.xis:
        result.concentrations[xi] = study.concentration(xi)
    result.coverage = coverage_statistics(
        study.latest_inventory, study.campaign.analyzable_isp_asns, study.population
    )
    return result
