"""The campaign write-ahead journal: crc'd, append-only, damage-tolerant.

Every lifecycle transition the :mod:`repro.serve` scheduler makes —
campaign submitted, started, finished, lost, drained; server started,
stopped — lands here as one JSONL record before (or immediately after)
the transition takes effect, so a SIGKILLed server can rebuild its state
on restart (:mod:`repro.serve.recovery`).

Durability discipline mirrors :mod:`repro.obs.stream`: each record is
serialised to one line and written with a **single** ``write`` call
followed by a flush, so a killed *process* leaves a file of complete
JSON lines plus at most one torn final line.  (There is no fsync — the
journal defends against process death, not power loss; and because the
journal is only an *optimization hint* over the content-addressed
stores, even OS-level damage can never corrupt results, only cause
conservative re-execution that the stores then serve from cache.)

Every record additionally carries a ``crc`` field — a blake2b digest of
its canonical JSON — so :func:`read_journal` detects not just torn tails
but bit-flipped entries anywhere in the file.  Unlike the event-stream
reader, a bad *mid-file* line is skipped and counted rather than fatal:
losing a journal entry conservatively re-queues work, which the dedup
protocol makes free, so refusing to start over one damaged line would be
strictly worse than degrading.

The ``serve.journal`` fault site (:mod:`repro.faults`) is wired into
:meth:`Journal.append`, indexed by sequence number — chaos tests inject
append errors, silent drops, and torn half-lines exactly where real
crashes would put them.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.faults import FaultPlan, raise_injected

#: Format tag stamped into every journal's opening record.
JOURNAL_SCHEMA = "repro-serve-journal-v1"


def _canonical(record: dict[str, Any]) -> str:
    """Deterministic JSON text (sorted keys, compact separators)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def record_crc(record: dict[str, Any]) -> str:
    """The blake2b checksum of a record's canonical form, ``crc`` excluded."""
    material = _canonical({key: value for key, value in record.items() if key != "crc"})
    return hashlib.blake2b(material.encode(), digest_size=8).hexdigest()


@dataclass
class JournalView:
    """What :func:`read_journal` could salvage from a journal file."""

    #: Verified records (``crc`` stripped), in file order.
    entries: list[dict[str, Any]] = field(default_factory=list)
    #: Damaged non-final lines (bad JSON or crc mismatch), skipped.
    n_corrupt: int = 0
    #: Whether the file ends in an incomplete line (killed mid-write).
    torn_tail: bool = False


def read_journal(path: str | Path) -> JournalView:
    """Parse a journal file, tolerating any damage.

    A final line without a trailing newline that fails to parse or
    verify is the expected signature of a killed writer and sets
    :attr:`JournalView.torn_tail`; a damaged line anywhere else (bit
    flip, torn write followed by later appends) is skipped and counted
    in :attr:`JournalView.n_corrupt`.  A missing file reads as empty.
    """
    view = JournalView()
    path = Path(path)
    if not path.exists():
        return view
    lines = path.read_text(encoding="utf-8").split("\n")
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict) or record_crc(record) != record.get("crc"):
                raise ValueError("journal record failed its crc check")
        except (json.JSONDecodeError, ValueError):
            # Only a line not followed by a newline can be a torn tail;
            # ``split`` puts a trailing "" after a newline-terminated line.
            if i == len(lines) - 1:
                view.torn_tail = True
            else:
                view.n_corrupt += 1
            continue
        record.pop("crc", None)
        view.entries.append(record)
    return view


class Journal:
    """Append-only crc'd JSONL journal with monotonic sequence numbers.

    Thread-safe: HTTP handler threads journal submissions while the
    scheduler thread journals execution transitions.  Reopening an
    existing journal continues its sequence numbering from the last
    readable record.
    """

    def __init__(self, path: str | Path, faults: FaultPlan | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.faults = faults
        self._lock = threading.Lock()
        view = read_journal(self.path)
        self._seq = view.entries[-1]["seq"] + 1 if view.entries else 0
        self._file = self.path.open("a", encoding="utf-8")
        self._closed = False

    def append(self, event: str, **fields: Any) -> int:
        """Append one record (single write + flush); returns its seq number.

        The ``serve.journal`` fault site fires here, indexed by sequence
        number: ``error`` raises before anything lands on disk, ``drop``
        silently skips the write, and ``corrupt`` writes a torn
        half-line — exactly the damage an interrupted write would leave.
        Each is a failure mode recovery must absorb, because the journal
        is an optimization over the content-addressed stores, never the
        source of truth.
        """
        with self._lock:
            seq = self._seq
            self._seq += 1
            record: dict[str, Any] = {"seq": seq, "event": event}
            record.update(fields)
            record["crc"] = record_crc(record)
            line = json.dumps(record, sort_keys=True, default=str) + "\n"
            spec = (
                self.faults.decide("serve.journal", seq) if self.faults is not None else None
            )
            if spec is not None:
                if spec.kind == "error":
                    raise_injected(spec, "serve.journal", seq)
                if spec.kind == "drop":
                    return seq
                if spec.kind == "corrupt":
                    line = line[: max(1, len(line) // 2)]
            self._file.write(line)
            self._file.flush()
            return seq

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        with self._lock:
            if not self._closed:
                self._closed = True
                self._file.close()
