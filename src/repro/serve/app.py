"""The serve management plane: a stdlib HTTP/JSON API over the scheduler.

``ThreadingHTTPServer`` + ``json`` only — no web framework, matching the
repo's no-new-runtime-deps rule.  Endpoints:

* ``POST /campaigns`` — submit a campaign spec (see
  :mod:`repro.serve.model`); 202 on creation, 200 on deduplicated
  re-submission, 400 on an invalid spec, 429 (+ ``Retry-After``) when
  admission control refuses.
* ``GET /campaigns`` — all campaigns in submission order.
* ``GET /campaigns/{id}/status`` — one campaign's lifecycle status
  (``QUEUED → RUNNING → DONE | DEGRADED | LOST``), including the exact
  per-site coverage report for degraded campaigns.
* ``GET /campaigns/{id}/result`` — the raw result-file bytes; 409
  (+ ``Retry-After``) while still queued/running, 410 for lost.
* ``GET /telemetry`` — recent observability events (bridged from the
  in-process :class:`~repro.obs.RingBufferSink`).
* ``GET /healthz`` — liveness plus queue depth.

The ``serve.request`` fault site fires per arriving request (arrival
order is the index): injected ``error`` maps to 503 + ``Retry-After``
(transient) or 500 (fatal), ``hang`` stalls the handler, and ``drop``
closes the connection with no response — the client-visible failure
modes a degraded real deployment exhibits, now schedulable in tests.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro import __version__
from repro._util import atomic_write_text
from repro.obs import EventStream, MetricsRegistry, RingBufferSink, Telemetry, Tracer
from repro.serve.scheduler import AdmissionError, Scheduler, ServeConfig

#: Largest request body ``POST /campaigns`` accepts.
MAX_BODY_BYTES = 1 << 20


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], api: "ReproServer") -> None:
        super().__init__(address, _Handler)
        self.api = api


class _Handler(BaseHTTPRequestHandler):
    server: _HTTPServer

    # The default handler logs every request to stderr; the server has a
    # structured event stream for that.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- plumbing --------------------------------------------------------------

    @property
    def api(self) -> "ReproServer":
        return self.server.api

    def _json(self, code: int, payload: Any, headers: dict[str, str] | None = None) -> None:
        body = (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _fault(self) -> bool:
        """Apply the ``serve.request`` fault for this request.

        Returns True when a response (or a dropped connection) was
        already produced and the handler must stop.
        """
        plan = self.api.config.faults
        if plan is None:
            return False
        index = self.api.scheduler.next_request_index()
        spec = plan.decide("serve.request", index)
        if spec is None:
            return False
        if spec.kind == "hang":
            time.sleep(spec.hang_s)
            return False
        if spec.kind == "drop":
            self.close_connection = True
            return True
        if spec.kind == "error":
            if spec.fatal:
                self._json(500, {"error": f"injected fatal fault at serve.request[{index}]"})
            else:
                retry_after = f"{self.api.config.retry_after_s:g}"
                self._json(
                    503,
                    {"error": f"injected transient fault at serve.request[{index}]"},
                    headers={"Retry-After": retry_after},
                )
            return True
        return False

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        if self._fault():
            return
        path, _, query = self.path.partition("?")
        parts = [part for part in path.split("/") if part]
        if parts == ["healthz"]:
            scheduler = self.api.scheduler
            self._json(
                200,
                {
                    "status": "draining" if scheduler.draining else "ok",
                    "version": __version__,
                    "campaigns": len(scheduler.campaigns),
                    "queue_depth": scheduler.queue_depth(),
                },
            )
        elif parts == ["campaigns"]:
            self._json(200, {"campaigns": self.api.scheduler.snapshot()})
        elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "status":
            view = self.api.scheduler.status_view(parts[1])
            if view is None:
                self._json(404, {"error": f"unknown campaign {parts[1]!r}"})
            else:
                self._json(200, view)
        elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "result":
            self._result(parts[1])
        elif parts == ["telemetry"]:
            self._telemetry(query)
        else:
            self._json(404, {"error": f"no such endpoint: {self.path}"})

    def _result(self, cid: str) -> None:
        scheduler = self.api.scheduler
        view = scheduler.status_view(cid)
        if view is None:
            self._json(404, {"error": f"unknown campaign {cid!r}"})
            return
        if view["status"] in ("QUEUED", "RUNNING"):
            self._json(
                409,
                {"campaign": cid, "status": view["status"], "error": "campaign not finished"},
                headers={"Retry-After": f"{self.api.config.retry_after_s:g}"},
            )
            return
        if view["status"] == "LOST":
            self._json(410, {"campaign": cid, "status": "LOST", "error": view["error"]})
            return
        body = scheduler.result_bytes(cid)
        if body is None:
            self._json(404, {"error": f"result file for campaign {cid!r} is missing"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _telemetry(self, query: str) -> None:
        limit = 100
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == "limit":
                try:
                    limit = max(1, int(value))
                except ValueError:
                    self._json(400, {"error": f"limit must be an integer, got {value!r}"})
                    return
        sink = self.api.sink
        self._json(200, {"events": sink.events(limit=limit), "total_lines": sink.total_lines})

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        if self._fault():
            return
        path = self.path.partition("?")[0].rstrip("/")
        if path != "/campaigns":
            self._json(404, {"error": f"no such endpoint: {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._json(413, {"error": f"request body must be 0..{MAX_BODY_BYTES} bytes"})
            return
        try:
            data = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as error:
            self._json(400, {"error": f"request body is not valid JSON: {error}"})
            return
        try:
            cid, view, created = self.api.scheduler.submit(data)
        except AdmissionError as error:
            self._json(
                429,
                {"error": str(error)},
                headers={"Retry-After": f"{error.retry_after_s:g}"},
            )
            return
        except (ValueError, TypeError, KeyError) as error:
            self._json(400, {"error": f"invalid campaign spec: {error}"})
            return
        self._json(202 if created else 200, {**view, "created": created})


class ReproServer:
    """The campaign-serving process: scheduler + HTTP server + telemetry.

    Binds immediately on construction (``port=0`` picks a free port —
    the resolved address lands in ``<state_dir>/endpoint.json`` so
    clients and tests can find it); :meth:`start` begins serving,
    :meth:`shutdown` drains gracefully.  The telemetry stack is built
    plainly (no process-global logging capture) so multiple servers can
    coexist in one test process.
    """

    def __init__(self, config: ServeConfig, host: str = "127.0.0.1", port: int = 0) -> None:
        self.config = config
        state_dir = Path(config.state_dir)
        state_dir.mkdir(parents=True, exist_ok=True)
        self.sink = RingBufferSink(capacity=1024, path=state_dir / "events.jsonl")
        self.stream = EventStream(self.sink)
        self.telemetry = Telemetry(
            tracer=Tracer(stream=self.stream),
            metrics=MetricsRegistry(),
            stream=self.stream,
        )
        self.scheduler = Scheduler(config, telemetry=self.telemetry)
        self.httpd = _HTTPServer((host, port), self)
        self.host, self.port = self.httpd.server_address[:2]
        atomic_write_text(
            state_dir / "endpoint.json",
            json.dumps({"host": self.host, "port": self.port}, sort_keys=True) + "\n",
        )
        self._serve_thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        """The server's base URL."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start the scheduler and serve HTTP in a daemon thread."""
        self.scheduler.start()
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._serve_thread.start()
        self.stream.emit("serve.listening", url=self.url)

    def shutdown(self) -> None:
        """Graceful stop: close the listener, drain campaigns, flush telemetry.

        Order matters — the HTTP server stops accepting first (no new
        submissions race the drain), then the scheduler checkpoints and
        re-queues any in-flight campaign, then the event stream closes.
        """
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
        self.scheduler.drain()
        self.stream.close()
        self.sink.close()

    def run_until_signalled(self) -> int:
        """Serve until SIGTERM/SIGINT, then drain; the ``repro serve`` body."""
        stop = threading.Event()

        def _signalled(_signum: int, _frame: Any) -> None:
            stop.set()

        try:
            signal.signal(signal.SIGTERM, _signalled)
            signal.signal(signal.SIGINT, _signalled)
        except ValueError:
            pass  # not the main thread (tests drive shutdown() directly)
        self.start()
        stop.wait()
        self.shutdown()
        return 0
