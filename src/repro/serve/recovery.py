"""Crash recovery: rebuild scheduler state from the journal and results.

:func:`recover_state` is a **pure function** of ``(journal file, results
directory)`` — it mutates nothing on disk — so recovering twice from the
same wreckage yields identical state (the double-recovery idempotence
the chaos tests assert), and a recovery interrupted by *another* crash
costs nothing.

The fold is deliberately conservative: any campaign the journal cannot
prove finished — it was ``RUNNING`` at the kill, its ``finished`` record
was lost to a torn tail, or its result file is missing or fails its
digest — goes back to ``QUEUED``.  Re-execution is always safe because
every cell/epoch the interrupted run completed was checkpointed into a
content-addressed store before being reported, so the recovered rerun
replays from cache and produces **byte-identical** result bytes
(``tests/test_serve_chaos.py`` proves this differentially).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.serve.journal import read_journal

#: Campaign lifecycle states, in rough transition order.
STATUSES = ("QUEUED", "RUNNING", "DONE", "DEGRADED", "LOST")


def _fresh_record(campaign: str, record: dict[str, Any]) -> dict[str, Any]:
    return {
        "campaign": campaign,
        "spec": record.get("spec", {}),
        "status": "QUEUED",
        "submitted_seq": record.get("seq", -1),
        "result_sha256": None,
        "error": None,
        "provenance": None,
    }


def replay_journal(entries: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Fold journal records into per-campaign state, in journal order.

    ``submitted`` registers a campaign (the first submission wins the
    spec; a re-submission of a ``LOST`` campaign re-queues it — the only
    way a terminal loss is retried, and it is always client-initiated).
    ``started`` → ``RUNNING``; ``finished`` → ``DONE``/``DEGRADED`` with
    the result digest; ``lost`` → ``LOST``; ``drained`` → back to
    ``QUEUED`` (the server checkpointed and stopped it).  Server-level
    records (``server_start``/``server_stop``) are ignored here.
    """
    campaigns: dict[str, dict[str, Any]] = {}
    for record in entries:
        event = record.get("event")
        campaign = record.get("campaign")
        if not isinstance(campaign, str):
            continue
        if event == "submitted":
            if campaign not in campaigns:
                campaigns[campaign] = _fresh_record(campaign, record)
            elif campaigns[campaign]["status"] == "LOST":
                campaigns[campaign]["status"] = "QUEUED"
                campaigns[campaign]["error"] = None
            continue
        state = campaigns.get(campaign)
        if state is None:
            # An orphaned transition: its submit record was dropped or
            # damaged.  Without the spec the campaign cannot be re-run,
            # so there is nothing to register — the client's
            # re-submission (deduplicated by id) restores it.
            continue
        if event == "started":
            state["status"] = "RUNNING"
        elif event == "finished":
            status = record.get("status", "DONE")
            state["status"] = status if status in ("DONE", "DEGRADED") else "DONE"
            state["result_sha256"] = record.get("result_sha256")
        elif event == "lost":
            state["status"] = "LOST"
            state["error"] = record.get("error")
        elif event == "drained":
            state["status"] = "QUEUED"
    return campaigns


@dataclass
class RecoveredState:
    """The scheduler state :func:`recover_state` rebuilt."""

    #: campaign id -> state record (see :func:`replay_journal`).
    campaigns: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Campaign ids to (re-)run, in original submission order (FIFO).
    pending: list[str] = field(default_factory=list)
    #: Campaigns that claimed to be finished or running but had to be
    #: re-queued (interrupted, or their result file failed its digest).
    requeued: list[str] = field(default_factory=list)
    #: Damaged journal lines skipped during replay.
    n_corrupt: int = 0
    #: Whether the journal ended in a torn line (killed mid-write).
    torn_tail: bool = False


def recover_state(journal_path: str | Path, results_dir: str | Path) -> RecoveredState:
    """Rebuild campaign state after a crash (or a clean restart).

    Pure: reads the journal and digests result files, writes nothing.
    ``RUNNING`` campaigns were interrupted mid-execution and are
    re-queued; ``DONE``/``DEGRADED`` campaigns whose result file is
    missing or does not match the journaled sha256 are re-queued too
    (the write was torn, or the file was tampered with).  ``LOST``
    campaigns stay lost — re-running an unexplained failure forever is a
    crash loop, so retrying a loss requires an explicit re-submission.
    """
    view = read_journal(journal_path)
    campaigns = replay_journal(view.entries)
    results = Path(results_dir)
    requeued: list[str] = []
    for campaign, state in campaigns.items():
        if state["status"] == "RUNNING":
            state["status"] = "QUEUED"
            requeued.append(campaign)
        elif state["status"] in ("DONE", "DEGRADED"):
            path = results / f"{campaign}.json"
            digest = hashlib.sha256(path.read_bytes()).hexdigest() if path.exists() else None
            if digest is None or digest != state["result_sha256"]:
                state["status"] = "QUEUED"
                state["result_sha256"] = None
                requeued.append(campaign)
    pending = sorted(
        (campaign for campaign, state in campaigns.items() if state["status"] == "QUEUED"),
        key=lambda campaign: campaigns[campaign]["submitted_seq"],
    )
    return RecoveredState(
        campaigns=campaigns,
        pending=pending,
        requeued=requeued,
        n_corrupt=view.n_corrupt,
        torn_tail=view.torn_tail,
    )
