"""``repro.serve`` — a durable campaign-orchestration service.

The management plane is a stdlib HTTP/JSON API (:mod:`repro.serve.app`);
the data plane schedules study/sweep/timeline campaigns across the
repo's existing executors (:mod:`repro.serve.scheduler`).  Durability
comes from a crc'd write-ahead journal (:mod:`repro.serve.journal`) plus
pure crash recovery (:mod:`repro.serve.recovery`) layered over the
content-addressed stores — a SIGKILLed server restarts, re-queues
whatever it cannot prove finished, and replays it from cache to
**byte-identical** results.  ``repro serve`` is the CLI entry point.
"""

from repro.serve.app import MAX_BODY_BYTES, ReproServer
from repro.serve.journal import JOURNAL_SCHEMA, Journal, JournalView, read_journal, record_crc
from repro.serve.model import (
    CAMPAIGN_KINDS,
    RESULT_FORMAT,
    STATUSES,
    build_grid,
    build_timeline_config,
    campaign_id,
    normalize_spec,
)
from repro.serve.recovery import RecoveredState, recover_state, replay_journal
from repro.serve.scheduler import (
    DRAIN_FLAG,
    AdmissionError,
    DrainRequested,
    QueueFullError,
    QuotaExceededError,
    Scheduler,
    ServeConfig,
)

__all__ = [
    "AdmissionError",
    "CAMPAIGN_KINDS",
    "DRAIN_FLAG",
    "DrainRequested",
    "JOURNAL_SCHEMA",
    "Journal",
    "JournalView",
    "MAX_BODY_BYTES",
    "QueueFullError",
    "QuotaExceededError",
    "RESULT_FORMAT",
    "RecoveredState",
    "ReproServer",
    "STATUSES",
    "Scheduler",
    "ServeConfig",
    "build_grid",
    "build_timeline_config",
    "campaign_id",
    "normalize_spec",
    "read_journal",
    "record_crc",
    "recover_state",
    "replay_journal",
]
