"""The serve data plane: a FIFO scheduler over the repo's executors.

One scheduler thread drains a bounded FIFO of campaigns, executing each
through the same :func:`repro.sweep.run_campaign` /
:func:`repro.timeline.run_timeline` entry points the CLIs use — the
server adds *no* execution semantics, only admission control, journaling
and recovery around them.  That is the load-bearing design choice: every
durability property the service claims (byte-identical recovery, honest
degradation) is inherited from the checkpoint-before-report protocol
those campaign runners already enforce, not re-implemented here.

Admission control is two-tier: a bounded global queue (backpressure —
full queue → 429 with Retry-After at the HTTP layer) and a per-tenant
quota on active (queued + running) campaigns, so one noisy tenant cannot
starve the rest of a shared server.

Draining: the OS delivers SIGTERM to the *server*; the scheduler relays
it to the *campaign* via :class:`_DrainHook`, a picklable per-cell hook
that checks a flag file and raises :class:`DrainRequested` — a
:class:`KeyboardInterrupt` subclass **on purpose**, so the executors'
``except Exception`` retry/quarantine paths never swallow it and it
propagates out of both serial and process backends.  Everything the
campaign completed before the drain is already checkpointed, so the
re-queued campaign resumes from cache on restart.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Any

from repro._util import atomic_write_text
from repro.faults import FaultPlan, InjectedFault
from repro.obs import Telemetry
from repro.parallel import ParallelConfig, shutdown_pools
from repro.resilience import CoverageReport
from repro.serve.journal import Journal
from repro.serve.model import (
    RESULT_FORMAT,
    build_faults,
    build_grid,
    build_resilience,
    build_timeline_config,
    campaign_id,
    normalize_spec,
)
from repro.serve.recovery import recover_state

#: Flag file whose existence tells in-flight campaigns to drain.
DRAIN_FLAG = "drain.flag"


class AdmissionError(RuntimeError):
    """A submission the server refuses right now (HTTP 429)."""

    #: Suggested client back-off, surfaced as a Retry-After header.
    retry_after_s = 1.0


class QueueFullError(AdmissionError):
    """The global campaign queue is at capacity."""


class QuotaExceededError(AdmissionError):
    """The tenant already has its quota of active campaigns."""


class DrainRequested(KeyboardInterrupt):
    """Raised inside a campaign when the server is draining.

    A :class:`KeyboardInterrupt` subclass deliberately: the executors
    catch ``Exception`` for retry/quarantine, so an ``Exception``-based
    drain signal would be retried as a shard failure and burn the error
    budget.  ``KeyboardInterrupt`` propagates cleanly out of the serial
    backend and is pickled back to the parent by the process backend.
    """


class _DrainHook:
    """Picklable cell/epoch hook that raises once the drain flag exists.

    Fires *after* the cell it interrupts was checkpointed (hooks run
    post-checkpoint), so a drain never loses completed work.
    """

    def __init__(self, flag_path: str) -> None:
        self.flag_path = flag_path

    def __call__(self, _result: Any) -> None:
        if os.path.exists(self.flag_path):
            raise DrainRequested(f"drain flag present at {self.flag_path}")


@dataclass(frozen=True)
class ServeConfig:
    """How a :class:`Scheduler` (and :class:`~repro.serve.app.ReproServer`) runs."""

    #: Where the journal, stores, results and endpoint file live.
    state_dir: str | Path
    #: Executor config campaigns run under (``None`` = serial defaults).
    parallel: ParallelConfig | None = None
    #: Global queue bound (admission control; full → 429).
    max_queue: int = 8
    #: Max active (queued + running) campaigns per tenant.
    tenant_quota: int = 4
    #: Server-side fault plan (``serve.request`` / ``serve.journal`` sites).
    faults: FaultPlan | None = None
    #: StudyStore / StageStore gc bounds applied between campaigns.
    gc_max_entries: int | None = None
    gc_max_bytes: int | None = None
    #: Retry-After seconds surfaced with 429/503 responses.
    retry_after_s: float = 1.0


class Scheduler:
    """FIFO campaign scheduler with journaling, recovery, and drain.

    Construction *is* recovery: the journal is replayed, interrupted or
    unverifiable campaigns are re-queued (see
    :func:`repro.serve.recovery.recover_state`), and a ``server_start``
    record is journaled.  Call :meth:`start` to begin draining the
    queue and :meth:`drain` to checkpoint and stop.
    """

    def __init__(self, config: ServeConfig, telemetry: Telemetry | None = None) -> None:
        self.config = config
        self.telemetry = telemetry
        self.state_dir = Path(config.state_dir)
        self.results_dir = self.state_dir / "results"
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self._flag_path = self.state_dir / DRAIN_FLAG
        self._flag_path.unlink(missing_ok=True)
        recovered = recover_state(self.state_dir / "journal.jsonl", self.results_dir)
        self.recovered = recovered
        self.journal = Journal(self.state_dir / "journal.jsonl", faults=config.faults)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self.campaigns: dict[str, dict[str, Any]] = recovered.campaigns
        self._queue: deque[str] = deque(recovered.pending)
        self._stop = False
        self._thread: threading.Thread | None = None
        self._request_index = 0
        self._journal_append(
            "server_start",
            pid=os.getpid(),
            recovered=len(recovered.campaigns),
            requeued=list(recovered.requeued),
            journal_corrupt=recovered.n_corrupt,
            torn_tail=recovered.torn_tail,
        )

    # -- observability helpers -------------------------------------------------

    def _count(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.count(name)

    def _emit(self, event: str, **fields: Any) -> None:
        if self.telemetry is not None and self.telemetry.stream is not None:
            self.telemetry.stream.emit(event, **fields)

    def _journal_append(self, event: str, **fields: Any) -> int | None:
        """Journal best-effort: an append failure degrades, never aborts.

        A lost record only means recovery conservatively forgets or
        re-queues the campaign — and because campaign ids are content
        addresses served from the store, the client's re-submission
        restores any forgotten state for free.
        """
        try:
            return self.journal.append(event, **fields)
        except (InjectedFault, OSError) as error:
            self._count("serve.journal_failures")
            self._emit("serve.journal_failure", event=event, error=str(error))
            return None

    def next_request_index(self) -> int:
        """Monotonic arrival index for the ``serve.request`` fault site."""
        with self._lock:
            index = self._request_index
            self._request_index += 1
            return index

    # -- admission -------------------------------------------------------------

    def submit(self, data: Any) -> tuple[str, dict[str, Any], bool]:
        """Admit one submission; returns ``(campaign_id, view, created)``.

        Raises :class:`ValueError` (→ 400) on an invalid spec and
        :class:`AdmissionError` (→ 429) when the queue or the tenant's
        quota is full.  A re-submission of a known campaign is free —
        deduplicated by content address — unless that campaign is
        ``LOST``, in which case it is explicitly re-queued (the only
        retry path for terminal losses).
        """
        normalized = normalize_spec(data)
        cid = campaign_id(normalized)
        with self._wake:
            record = self.campaigns.get(cid)
            if record is not None and record["status"] != "LOST":
                self._count("serve.dedup_hits")
                return cid, self._view(record), False
            if len(self._queue) >= self.config.max_queue:
                self._count("serve.rejected_queue_full")
                raise QueueFullError(
                    f"queue is full ({self.config.max_queue} campaigns); retry later"
                )
            tenant = normalized["tenant"]
            active = sum(
                1
                for state in self.campaigns.values()
                if state["spec"].get("tenant") == tenant
                and state["status"] in ("QUEUED", "RUNNING")
            )
            if active >= self.config.tenant_quota:
                self._count("serve.rejected_quota")
                raise QuotaExceededError(
                    f"tenant {tenant!r} already has {active} active campaigns "
                    f"(quota {self.config.tenant_quota}); retry later"
                )
            seq = self._journal_append("submitted", campaign=cid, spec=normalized)
            if record is None:
                record = {
                    "campaign": cid,
                    "spec": normalized,
                    "status": "QUEUED",
                    "submitted_seq": seq if seq is not None else -1,
                    "result_sha256": None,
                    "error": None,
                    "provenance": None,
                }
                self.campaigns[cid] = record
            else:  # re-submitted LOST campaign: the only retry path
                record["spec"] = normalized
                record["status"] = "QUEUED"
                record["error"] = None
            self._queue.append(cid)
            self._count("serve.submitted")
            self._emit("serve.submitted", campaign=cid, tenant=tenant, kind=normalized["kind"])
            self._wake.notify_all()
            return cid, self._view(record), True

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Start the scheduler thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._run, name="repro-serve-scheduler", daemon=True)
            self._thread.start()

    def drain(self, timeout_s: float | None = None) -> None:
        """Checkpoint, stop, and close the journal (the SIGTERM path).

        Writes the drain flag so an in-flight campaign raises
        :class:`DrainRequested` at its next cell boundary — everything
        already completed is checkpointed, so nothing is lost — then
        joins the scheduler thread, journals ``server_stop``, and tears
        down any persistent worker pool the campaigns shared (with
        ``--backend pool`` the server leases one pool across *all*
        campaigns it executes; workers must not outlive the server).
        """
        self._flag_path.write_text("drain\n")
        with self._wake:
            self._stop = True
            self._wake.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
        self._journal_append("server_stop", pid=os.getpid())
        self.journal.close()
        self._flag_path.unlink(missing_ok=True)
        shutdown_pools()

    def wait(self, cid: str, timeout_s: float = 60.0) -> str:
        """Block until ``cid`` reaches a terminal status; returns it."""
        with self._wake:
            self._wake.wait_for(
                lambda: self.campaigns.get(cid, {}).get("status") not in ("QUEUED", "RUNNING"),
                timeout=timeout_s,
            )
            return self.campaigns.get(cid, {}).get("status", "UNKNOWN")

    # -- the scheduler loop ----------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._wake:
                self._wake.wait_for(lambda: self._queue or self._stop)
                if self._stop:
                    # Leave the queue untouched: QUEUED survives in the
                    # journal and is re-queued verbatim on restart.
                    return
                cid = self._queue.popleft()
                record = self.campaigns[cid]
                record["status"] = "RUNNING"
                self._wake.notify_all()
            self._journal_append("started", campaign=cid)
            self._emit("serve.started", campaign=cid)
            try:
                result, provenance = self._execute(cid, record["spec"])
            except DrainRequested:
                with self._wake:
                    record["status"] = "QUEUED"
                    self._queue.appendleft(cid)
                    self._stop = True
                    self._wake.notify_all()
                self._journal_append("drained", campaign=cid)
                self._emit("serve.drained", campaign=cid)
                return
            except Exception as error:  # noqa: BLE001 — LOST is the catch-all
                with self._wake:
                    record["status"] = "LOST"
                    record["error"] = f"{type(error).__name__}: {error}"
                    self._wake.notify_all()
                self._journal_append("lost", campaign=cid, error=record["error"])
                self._count("serve.lost")
                self._emit("serve.lost", campaign=cid, error=record["error"])
            else:
                payload = json.dumps(result, sort_keys=True, indent=2) + "\n"
                atomic_write_text(self.results_dir / f"{cid}.json", payload)
                digest = sha256(payload.encode()).hexdigest()
                with self._wake:
                    record["status"] = result["status"]
                    record["result_sha256"] = digest
                    record["provenance"] = provenance
                    self._wake.notify_all()
                # Checkpoint-before-report: the result file and its
                # digest land before the journal claims completion, so a
                # kill between the two re-queues (safe) rather than
                # trusting a missing file.
                self._journal_append(
                    "finished", campaign=cid, status=result["status"], result_sha256=digest
                )
                self._count("serve.finished")
                self._emit("serve.finished", campaign=cid, status=result["status"])
            self._collect_garbage()

    def _execute(self, cid: str, normalized: dict[str, Any]) -> tuple[dict[str, Any], dict[str, Any]]:
        """Run one campaign to a result dict + provenance (not in result bytes)."""
        hook = _DrainHook(str(self._flag_path))
        coverage = CoverageReport()
        if normalized["kind"] == "timeline":
            from repro.store import StageStore
            from repro.timeline import run_timeline

            config, max_epochs = build_timeline_config(normalized, parallel=self.config.parallel)
            store = StageStore(self.state_dir / "stages")
            report = run_timeline(
                config,
                store=store,
                telemetry=self.telemetry,
                max_epochs=max_epochs,
                epoch_hook=hook,
            )
            lost = [epoch.epoch for epoch in report.epochs if epoch.status != "ok"]
            coverage.record("timeline.epochs", len(lost), len(report.epochs))
        else:
            from repro.sensitivity import DEFAULT_METRICS
            from repro.store import StudyStore
            from repro.sweep import run_campaign

            grid, max_cells = build_grid(normalized)
            store = StudyStore(self.state_dir / "store")
            report = run_campaign(
                grid,
                DEFAULT_METRICS,
                store=store,
                parallel=self.config.parallel,
                telemetry=self.telemetry,
                max_cells=max_cells,
                cell_hook=hook,
                faults=build_faults(normalized),
                resilience=build_resilience(normalized),
            )
            lost = [cell.cell_id for cell in report.cells if cell.status != "ok"]
            coverage.record("sweep.cells", len(lost), len(report.cells))
        result = {
            "format": RESULT_FORMAT,
            "campaign": cid,
            "kind": normalized["kind"],
            "tenant": normalized["tenant"],
            "status": "DONE" if not lost else "DEGRADED",
            "coverage": coverage.to_json(),
            "lost": lost,
            "report": report.to_json(),
        }
        provenance = {"cache_hits": report.cache_hits, "cache_misses": report.cache_misses}
        return result, provenance

    def _collect_garbage(self) -> None:
        """Bound the shared stores between campaigns (best-effort)."""
        if self.config.gc_max_entries is None and self.config.gc_max_bytes is None:
            return
        try:
            from repro.store import StageStore, StudyStore

            StudyStore(self.state_dir / "store").gc(
                max_entries=self.config.gc_max_entries, max_bytes=self.config.gc_max_bytes
            )
            StageStore(self.state_dir / "stages").gc(
                max_entries=self.config.gc_max_entries, max_bytes=self.config.gc_max_bytes
            )
            self._count("serve.gc_runs")
        except OSError as error:
            self._emit("serve.gc_failure", error=str(error))

    # -- views -----------------------------------------------------------------

    @staticmethod
    def _view(record: dict[str, Any]) -> dict[str, Any]:
        return {
            "campaign": record["campaign"],
            "tenant": record["spec"].get("tenant", "default"),
            "kind": record["spec"].get("kind", "unknown"),
            "status": record["status"],
        }

    def snapshot(self) -> list[dict[str, Any]]:
        """All campaigns, in submission order (the ``GET /campaigns`` body)."""
        with self._lock:
            records = sorted(self.campaigns.values(), key=lambda r: r["submitted_seq"])
            return [self._view(record) for record in records]

    def status_view(self, cid: str) -> dict[str, Any] | None:
        """One campaign's detailed status (``GET /campaigns/{id}/status``)."""
        with self._lock:
            record = self.campaigns.get(cid)
            if record is None:
                return None
            view = self._view(record)
            view["error"] = record["error"]
            view["result_sha256"] = record["result_sha256"]
            view["provenance"] = record["provenance"]
        if view["status"] in ("DONE", "DEGRADED"):
            path = self.results_dir / f"{cid}.json"
            try:
                result = json.loads(path.read_text())
                view["coverage"] = result.get("coverage", {})
                view["lost"] = result.get("lost", [])
            except (OSError, json.JSONDecodeError):
                pass
        return view

    def result_bytes(self, cid: str) -> bytes | None:
        """The raw result file for a finished campaign, or ``None``."""
        path = self.results_dir / f"{cid}.json"
        try:
            return path.read_bytes()
        except OSError:
            return None

    def queue_depth(self) -> int:
        """How many campaigns are waiting (``/healthz``)."""
        with self._lock:
            return len(self._queue)

    @property
    def draining(self) -> bool:
        """Whether a drain has been requested."""
        return self._stop
