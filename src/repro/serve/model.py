"""Campaign specs: validation, canonicalization, content-addressed ids.

A submission to ``POST /campaigns`` is a JSON object::

    {
      "kind": "study" | "sweep" | "timeline",
      "tenant": "alice",                      # optional, default "default"
      "spec": {...},                          # kind-specific, see below
      "faults": {...},                        # optional FaultPlan JSON
      "resilience": {"retry": 3,              # optional
                     "shard_loss_budget": 0.5,
                     "fallback_in_process": true}
    }

``study``/``sweep`` specs are :mod:`repro.sweep.grid` spec files
(``scenario``/``overrides``/``axes``; a ``study`` is an axis-free sweep)
plus an optional ``max_cells``; ``timeline`` specs carry ``scenario``/
``overrides`` (dotted paths into :class:`repro.timeline.TimelineConfig`)
plus a ``timeline`` object of :class:`repro.timeline.TimelineSpec`
fields and an optional ``max_epochs``.

:func:`normalize_spec` validates a submission by *building* everything
it names (grid, timeline config, fault plan, resilience config — bad
input raises :class:`ValueError` long before anything is queued) and
returns the canonical dict; :func:`campaign_id` hashes that canonical
form, so the id is a content address: identical submissions — same
tenant, same work — collapse onto one campaign, which is what lets the
server serve re-submissions from the store without recomputation.
Execution placement (the server's ``parallel`` config) deliberately
stays *out* of the id, matching the repo-wide invariant that backends
never change artifacts.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro._util import require

#: Campaign lifecycle states exposed over the API.
STATUSES = ("QUEUED", "RUNNING", "DONE", "DEGRADED", "LOST")

#: Supported campaign kinds.
CAMPAIGN_KINDS = ("study", "sweep", "timeline")

#: Format tag stamped into every result file.
RESULT_FORMAT = "repro-serve-result-v1"

#: Fields a TimelineSpec accepts from a ``timeline`` spec object.
_TIMELINE_SPEC_FIELDS = (
    "start",
    "end",
    "policy",
    "eviction_rate",
    "capacity_ramp_quarters",
    "anchors",
    "edition",
    "seed",
)


def normalize_spec(data: Any) -> dict[str, Any]:
    """Validate a raw submission and return its canonical form.

    Raises :class:`ValueError` (or :class:`TypeError` from malformed
    nesting) on anything invalid — the HTTP layer maps both to 400.
    Validation is *constructive*: the grid / timeline config / fault
    plan / resilience config are actually built, so a spec that
    normalizes is a spec the scheduler can run.
    """
    require(isinstance(data, dict), f"a campaign submission must be a JSON object, got {type(data).__name__}")
    unknown = set(data) - {"kind", "tenant", "spec", "faults", "resilience"}
    require(not unknown, f"unknown submission keys: {sorted(unknown)}")
    kind = data.get("kind")
    require(
        kind in CAMPAIGN_KINDS,
        f"kind must be one of {CAMPAIGN_KINDS}, got {kind!r}",
    )
    tenant = data.get("tenant", "default")
    require(
        isinstance(tenant, str) and tenant.strip() != "" and len(tenant) <= 64,
        f"tenant must be a non-empty string of at most 64 chars, got {tenant!r}",
    )
    spec = data.get("spec", {})
    require(isinstance(spec, dict), f"spec must be a JSON object, got {type(spec).__name__}")
    normalized = {
        "kind": kind,
        "tenant": tenant,
        "spec": spec,
        "faults": data.get("faults"),
        "resilience": data.get("resilience"),
    }
    build_faults(normalized)
    build_resilience(normalized)
    if kind == "timeline":
        build_timeline_config(normalized)
    else:
        build_grid(normalized)
    return normalized


def campaign_id(normalized: dict[str, Any]) -> str:
    """The campaign's content address: a 12-hex-char digest of its spec."""
    material = json.dumps(normalized, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode()).hexdigest()[:12]


def build_faults(normalized: dict[str, Any]):
    """The campaign's :class:`~repro.faults.FaultPlan`, or ``None``."""
    data = normalized.get("faults")
    if data is None:
        return None
    require(isinstance(data, dict), "faults must be a FaultPlan JSON object")
    from repro.faults import FaultPlan

    return FaultPlan.from_json(data)


def build_resilience(normalized: dict[str, Any]):
    """The campaign's :class:`~repro.resilience.ResilienceConfig`, or ``None``."""
    data = normalized.get("resilience")
    if data is None:
        return None
    require(isinstance(data, dict), "resilience must be a JSON object")
    unknown = set(data) - {"retry", "shard_loss_budget", "fallback_in_process"}
    require(not unknown, f"unknown resilience keys: {sorted(unknown)}")
    from repro.resilience import ErrorBudget, ResilienceConfig, RetryPolicy

    return ResilienceConfig(
        retry=RetryPolicy(max_attempts=int(data.get("retry", 3))),
        fallback_in_process=bool(data.get("fallback_in_process", True)),
        budget=ErrorBudget(shard_loss_fraction=float(data.get("shard_loss_budget", 0.0))),
    )


def _scenario_config(name: Any):
    from repro.experiments.scenarios import scenario_by_name, scenario_names

    try:
        return scenario_by_name(name).config
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known scenarios: {', '.join(scenario_names())}"
        ) from None


def build_grid(normalized: dict[str, Any]):
    """The (grid, max_cells) a study/sweep campaign runs.

    A ``study`` is an axis-free sweep: one cell, the full pipeline, the
    same metrics — so the two kinds share the grid machinery and the
    store, and a study re-submitted as a one-cell sweep hits the same
    content-addressed artifacts.
    """
    from repro.sweep.grid import ParameterGrid

    spec = dict(normalized["spec"])
    max_cells = spec.pop("max_cells", None)
    if normalized["kind"] == "study":
        require("axes" not in spec, "a study spec has no axes (submit kind='sweep' instead)")
        require(max_cells is None, "a study spec has no max_cells")
    if "scenario" in spec:
        _scenario_config(spec["scenario"])  # friendlier error than from_spec's KeyError
    grid = ParameterGrid.from_spec(spec)
    if max_cells is not None:
        max_cells = int(max_cells)
        require(max_cells >= 1, "max_cells must be >= 1")
    return grid, max_cells


def build_timeline_config(normalized: dict[str, Any], parallel=None):
    """The (config, max_epochs) a timeline campaign runs.

    Built the same way ``repro timeline`` builds its config: scenario
    base fields, a :class:`~repro.timeline.TimelineSpec` from the
    ``timeline`` object, then dotted-path ``overrides`` applied to the
    assembled :class:`~repro.timeline.TimelineConfig`.  ``parallel`` is
    the server's executor config — execution-only, never part of the
    campaign id.
    """
    from repro.sweep.grid import apply_override
    from repro.timeline import TimelineConfig, TimelineSpec

    spec = dict(normalized["spec"])
    unknown = set(spec) - {"scenario", "overrides", "timeline", "max_epochs"}
    require(not unknown, f"unknown timeline spec keys: {sorted(unknown)}")
    timeline_fields = spec.get("timeline") or {}
    require(isinstance(timeline_fields, dict), "timeline must be a JSON object of TimelineSpec fields")
    unknown = set(timeline_fields) - set(_TIMELINE_SPEC_FIELDS)
    require(not unknown, f"unknown timeline fields: {sorted(unknown)}")
    tspec = TimelineSpec(**timeline_fields)
    base = _scenario_config(spec.get("scenario", "small"))
    config = TimelineConfig(
        internet=base.internet,
        placement=base.placement,
        scan=base.scan,
        campaign=base.campaign,
        spec=tspec,
        n_vantage_points=base.n_vantage_points,
        xis=base.xis,
        population_noise_sigma=base.population_noise_sigma,
        parallel=parallel if parallel is not None else base.parallel,
        faults=build_faults(normalized),
        resilience=build_resilience(normalized),
        seed=base.seed,
    )
    overrides = spec.get("overrides") or {}
    require(isinstance(overrides, dict), "overrides must be a JSON object of dotted paths")
    for path, value in overrides.items():
        config = apply_override(config, path, value)
    max_epochs = spec.get("max_epochs")
    if max_epochs is not None:
        max_epochs = int(max_epochs)
        require(max_epochs >= 1, "max_epochs must be >= 1")
    return config, max_epochs
